#!/usr/bin/env bash
# Offline CI for the DESAlign workspace.
#
# The workspace has a zero-dependency policy (see README.md): every
# dependency is an in-repo path crate, so build and tests must pass with
# --offline on a machine that has never touched crates.io.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

# Examples are documentation that compiles; keep them compiling.
echo "==> cargo build --examples --offline"
cargo build -q --offline --workspace --examples

echo "==> cargo test -q --offline (DESALIGN_THREADS=1, forced serial)"
DESALIGN_THREADS=1 cargo test -q --offline --workspace

echo "==> cargo test -q --offline (default thread count)"
cargo test -q --offline --workspace

# Documentation gates: every public item must be documented (each crate sets
# #![warn(missing_docs)], promoted to an error here) and every intra-doc link
# must resolve. Doc examples are executable and must pass.
echo "==> cargo doc --offline (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --workspace --no-deps

echo "==> cargo test --doc --offline"
cargo test -q --offline --workspace --doc

# Determinism gate for desalign-parallel: an end-to-end pipeline fingerprint
# (dataset → training → Semantic Propagation → metrics, hashed at the f32
# bit level) must not depend on the thread count.
echo "==> determinism fingerprint (serial vs default threads)"
fp_serial=$(DESALIGN_THREADS=1 cargo run -q --offline --release -p desalign-bench --bin determinism_fingerprint)
fp_default=$(cargo run -q --offline --release -p desalign-bench --bin determinism_fingerprint)
if [ "$fp_serial" != "$fp_default" ]; then
    echo "    DETERMINISM FAILURE: serial fingerprint $fp_serial != default $fp_default"
    exit 1
fi
echo "    fingerprint $fp_serial (identical)"

# Telemetry must be a pure observer: turning it on may not perturb a single
# bit of the training pipeline.
echo "==> determinism fingerprint (telemetry on vs off)"
fp_telemetry=$(DESALIGN_TELEMETRY=1 cargo run -q --offline --release -p desalign-bench --bin determinism_fingerprint)
if [ "$fp_telemetry" != "$fp_default" ]; then
    echo "    TELEMETRY PERTURBATION: fingerprint $fp_telemetry with DESALIGN_TELEMETRY=1 != $fp_default without"
    exit 1
fi
echo "    fingerprint $fp_telemetry (identical with telemetry on)"

# Failpoint instrumentation must be free when off (docs/RELIABILITY.md):
# with DESALIGN_FAILPOINTS set but empty every site is one atomic load and
# no behaviour may change — the end-to-end fingerprint must match the run
# without the variable, bit for bit.
echo "==> determinism fingerprint (failpoints present but inactive)"
fp_failpoints=$(DESALIGN_FAILPOINTS="" cargo run -q --offline --release -p desalign-bench --bin determinism_fingerprint)
if [ "$fp_failpoints" != "$fp_default" ]; then
    echo "    FAILPOINT PERTURBATION: fingerprint $fp_failpoints with DESALIGN_FAILPOINTS=\"\" != $fp_default without"
    exit 1
fi
echo "    fingerprint $fp_failpoints (identical with failpoints compiled in, schedule empty)"

# Crash-safety gate (docs/RELIABILITY.md): a run that checkpoints, loses a
# mid-write overwrite to a simulated kill, and resumes in a fresh process
# must reproduce the straight run bit for bit.
echo "==> resume fingerprint (straight vs kill-and-resume)"
resume_ckpt=$(mktemp -u)
fp_straight=$(DESALIGN_RESUME_MODE=straight cargo run -q --offline --release -p desalign-bench --bin resume_fingerprint)
fp_resume=$(DESALIGN_RESUME_MODE=resume DESALIGN_CHECKPOINT="$resume_ckpt" \
    cargo run -q --offline --release -p desalign-bench --bin resume_fingerprint)
rm -f "$resume_ckpt" "$resume_ckpt.tmp"
if [ "$fp_straight" != "$fp_resume" ]; then
    echo "    RESUME DIVERGENCE: straight fingerprint $fp_straight != kill-and-resume $fp_resume"
    exit 1
fi
echo "    fingerprint $fp_straight (identical after kill-and-resume)"

# Data-plane robustness gates (docs/RELIABILITY.md, "Data-plane
# robustness"). First: auditing clean data must be invisible — the
# end-to-end pipeline fingerprint with DESALIGN_AUDIT=repair must match the
# no-auditor run bit for bit.
echo "==> determinism fingerprint (repair audit on clean data is a no-op)"
fp_audit=$(DESALIGN_AUDIT=repair cargo run -q --offline --release -p desalign-bench --bin determinism_fingerprint)
if [ "$fp_audit" != "$fp_default" ]; then
    echo "    AUDIT PERTURBATION: fingerprint $fp_audit with DESALIGN_AUDIT=repair != $fp_default without"
    exit 1
fi
echo "    fingerprint $fp_audit (identical with repair audit)"

# Second: the robustness sweep (R_img/R_seed degradation grids plus every
# injectable corruption class, repaired and trained end to end) must
# complete and write an artifact free of non-finite metrics.
echo "==> robustness_sweep (smoke)"
robustness_out=$(mktemp)
DESALIGN_SCALE=40 DESALIGN_EPOCHS=2 DESALIGN_ROBUSTNESS_OUT="$robustness_out" \
    cargo run -q --offline --release -p desalign-bench --bin robustness_sweep >/dev/null
test -s "$robustness_out" || { echo "    robustness_sweep did not write its JSON artifact"; exit 1; }
if grep -q "NaN\|Infinity" "$robustness_out"; then
    echo "    NON-FINITE METRICS: robustness_sweep artifact contains NaN/Infinity"
    exit 1
fi
rm -f "$robustness_out"

# Telemetry report smoke: tiny scale — proves the span/counter/sink wiring
# end to end (trains a few epochs, prints the span tree, writes the JSON and
# JSONL artifacts to scratch files). The stdout counter dump must list the
# reliability counters registered by the trainer.
echo "==> telemetry_report (smoke)"
telemetry_json=$(mktemp)
telemetry_jsonl=$(mktemp)
telemetry_stdout=$(mktemp)
DESALIGN_SCALE=40 DESALIGN_EPOCHS=3 \
    DESALIGN_TELEMETRY_OUT="$telemetry_json" DESALIGN_METRICS_OUT="$telemetry_jsonl" \
    cargo run -q --offline --release -p desalign-bench --bin telemetry_report >"$telemetry_stdout"
test -s "$telemetry_json" || { echo "    telemetry_report did not write its JSON report"; exit 1; }
test -s "$telemetry_jsonl" || { echo "    telemetry_report did not stream JSONL metrics"; exit 1; }
for counter in train.resumes train.rollbacks tape.ws_fresh tape.ws_reused; do
    grep -q "$counter" "$telemetry_stdout" || { echo "    telemetry_report does not list the $counter counter"; exit 1; }
done
rm -f "$telemetry_json" "$telemetry_jsonl" "$telemetry_stdout"

# Kernel bench smoke + gate: tiny scale and sample count, output redirected
# to a scratch file so the committed full-scale BENCH_kernels.json is
# untouched. DESALIGN_KERNEL_GATE=1 makes the bench itself assert (mirrors
# the retrieval gate): naive and shipped matmul/spmm agree bit for bit,
# every median is a positive finite timing, the tiled matmul/spmm beat
# their in-bench naive baselines, and the dispatched leg never falls far
# behind forced-serial (the PAR_MIN_COST calibration). The greps below
# double-check the artifact so a silent gate regression cannot pass.
echo "==> cargo bench --bench kernels (smoke + kernel gate)"
smoke_out=$(mktemp)
DESALIGN_BENCH_SAMPLES=2 DESALIGN_BENCH_MAX_N=500 DESALIGN_BENCH_OUT="$smoke_out" \
    DESALIGN_KERNEL_GATE=1 \
    cargo bench -q --offline --bench kernels -p desalign-bench >/dev/null
test -s "$smoke_out" || { echo "    bench smoke did not write its JSON table"; exit 1; }
grep -q '"tiled_speedup"' "$smoke_out" || { echo "    bench table lost its tiled_speedup column"; exit 1; }
grep -q '"cpu_features"' "$smoke_out" || { echo "    bench table lost its cpu_features field"; exit 1; }
if grep -q "NaN\|Infinity" "$smoke_out"; then
    echo "    NON-FINITE TIMINGS: kernel bench artifact contains NaN/Infinity"
    exit 1
fi
rm -f "$smoke_out"

# Tape-allocation gate (docs/DESIGN.md "Tape workspace"): once warm, a
# training step must allocate zero new gradient buffers — every backward
# matrix comes from the shared workspace pool. The dedicated test trains a
# model past warmup and asserts the ws_fresh counter goes flat.
echo "==> tape workspace steady-state (allocation counters)"
cargo test -q --offline -p desalign-core --test workspace_steady_state

# Retrieval gate (README.md "Sub-quadratic retrieval"): on a seeded
# clustered workload the IVF index must hold recall@10 ≥ 0.95 against the
# blocked exact scan, the exact backend must reproduce the dense cosine
# path bit for bit (ids and f32 score bits of every top-10 list), and all
# reported QPS must be finite. The bench enforces all three itself with
# DESALIGN_RETRIEVAL_GATE=1; the greps below double-check the artifact so
# a silent gate regression cannot pass.
echo "==> retrieval_bench (recall + exact-bit-identity gate)"
retrieval_out=$(mktemp)
DESALIGN_RETRIEVAL_SIZES=2000 DESALIGN_RETRIEVAL_QUERIES=200 DESALIGN_RETRIEVAL_SAMPLES=2 \
    DESALIGN_RETRIEVAL_GATE=1 DESALIGN_RETRIEVAL_OUT="$retrieval_out" \
    cargo run -q --offline --release -p desalign-bench --bin retrieval_bench >/dev/null
test -s "$retrieval_out" || { echo "    retrieval_bench did not write its JSON artifact"; exit 1; }
if grep -q '"exact_bit_identical":false' "$retrieval_out"; then
    echo "    EXACT-BACKEND DIVERGENCE: blocked scan is not bit-identical to the dense path"
    exit 1
fi
if grep -q "NaN\|Infinity" "$retrieval_out"; then
    echo "    NON-FINITE METRICS: retrieval_bench artifact contains NaN/Infinity"
    exit 1
fi
rm -f "$retrieval_out"

# Serving gate (docs/SERVING.md "Determinism at the edge"): bring the
# server up on an ephemeral port, train + checkpoint, probe a fixed query
# through the loadgen smoke client (which also checks /healthz fields,
# /metrics JSON, and a malformed-body 400), drain gracefully, then restart
# from the same checkpoint under DESALIGN_THREADS=2 and probe again. The
# two probe bodies must be bit-identical: restarts and thread counts may
# not change a single response byte.
echo "==> desalign-serve smoke (restart + thread-count bit-identity)"
serve_ckpt=$(mktemp -u)
serve_probe1=$(mktemp)
serve_probe2=$(mktemp)
serve_metrics=$(mktemp)
for leg in 1 2; do
    serve_log=$(mktemp)
    env DESALIGN_SERVE_CHECKPOINT="$serve_ckpt" DESALIGN_SCALE=40 DESALIGN_EPOCHS=2 \
        DESALIGN_THREADS=$leg \
        cargo run -q --offline --release -p desalign-serve --bin serve >"$serve_log" 2>/dev/null &
    serve_pid=$!
    for _ in $(seq 1 240); do
        grep -q "listening on" "$serve_log" && break
        sleep 0.5
    done
    grep -q "listening on" "$serve_log" || { echo "    serve (leg $leg) did not come up"; kill "$serve_pid" 2>/dev/null; exit 1; }
    serve_addr=$(grep "listening on" "$serve_log" | awk '{print $NF}')
    probe_var=serve_probe$leg
    env DESALIGN_SERVE_ADDR="$serve_addr" DESALIGN_LOADGEN_PROBE="${!probe_var}" \
        DESALIGN_LOADGEN_METRICS="$serve_metrics" DESALIGN_LOADGEN_SHUTDOWN=1 \
        cargo run -q --offline --release -p desalign-serve --bin loadgen >/dev/null
    wait "$serve_pid"
    grep -q "drained" "$serve_log" || { echo "    serve (leg $leg) did not drain gracefully"; exit 1; }
    rm -f "$serve_log"
done
test -s "$serve_probe1" || { echo "    loadgen wrote no probe"; exit 1; }
if ! cmp -s "$serve_probe1" "$serve_probe2"; then
    echo "    SERVING DIVERGENCE: restart/thread-count changed response bytes"
    diff "$serve_probe1" "$serve_probe2" || true
    exit 1
fi
echo "    probe bit-identical across restart and DESALIGN_THREADS=2"

# The robustness counters (docs/RELIABILITY.md) must be registered at boot
# so dashboards see explicit zeros, not absent series: grep the /metrics
# dump the smoke client captured for each family.
for counter in serve.shed serve.breaker_open serve.deadline_expired checkpoint.reloads failpoint.evals; do
    grep -q "\"$counter\"" "$serve_metrics" || { echo "    /metrics lost the $counter counter"; exit 1; }
done
echo "    /metrics exposes the shed/breaker/reload/failpoint counter families"
rm -f "$serve_probe1" "$serve_probe2" "$serve_metrics" "$serve_ckpt" "$serve_ckpt.tmp"

# Serving latency bench smoke + gate: in-process servers, every
# (max_batch × thread-count) leg must report finite positive p50/p99/QPS
# with zero failed requests (DESALIGN_SERVE_GATE=1 makes the bench assert
# this itself). Scratch output so the committed BENCH_serve.json is the
# full-scale run.
echo "==> loadgen serve bench (latency gate)"
serve_bench_out=$(mktemp)
DESALIGN_LOADGEN_CLIENTS=2 DESALIGN_LOADGEN_REQUESTS=40 \
    DESALIGN_BENCH_OUT="$serve_bench_out" DESALIGN_SERVE_GATE=1 \
    cargo run -q --offline --release -p desalign-serve --bin loadgen >/dev/null
test -s "$serve_bench_out" || { echo "    loadgen did not write its JSON artifact"; exit 1; }
grep -q '"p50_us"' "$serve_bench_out" || { echo "    serve bench artifact lost its p50_us column"; exit 1; }
grep -q '"p99_us"' "$serve_bench_out" || { echo "    serve bench artifact lost its p99_us column"; exit 1; }
grep -q '"mode":"open"' "$serve_bench_out" || { echo "    serve bench artifact lost its open-loop legs"; exit 1; }
grep -q '"offered_qps"' "$serve_bench_out" || { echo "    serve bench artifact lost its offered_qps column"; exit 1; }
rm -f "$serve_bench_out"

# Chaos gate (docs/RELIABILITY.md): replay the seeded fault schedules —
# torn writes, flaky shard reads, a socket storm against a tiny admission
# queue, an engine-fault breaker trip, and reloads under load. The bin
# asserts every scenario itself under DESALIGN_CHAOS_GATE=1 (well-formed
# responses only, sheds actually happen, breaker opens and closes, faulted
# reload rolls back, zero panics); the greps pin the artifact schema.
echo "==> chaos_bench (fault replay + zero-panic gate)"
chaos_out=$(mktemp)
DESALIGN_CHAOS_GATE=1 DESALIGN_CHAOS_OUT="$chaos_out" \
    cargo run -q --offline --release -p desalign-serve --bin chaos_bench >/dev/null
test -s "$chaos_out" || { echo "    chaos_bench did not write its JSON artifact"; exit 1; }
grep -q '"schema":"chaos-bench-v1"' "$chaos_out" || { echo "    chaos artifact lost its schema tag"; exit 1; }
grep -q '"panics":0' "$chaos_out" || { echo "    CHAOS PANIC: chaos_bench recorded a panic"; exit 1; }
grep -q '"failed":0' "$chaos_out" || { echo "    chaos_bench recorded a failed scenario"; exit 1; }
rm -f "$chaos_out"

# Streaming data-plane gates (docs/DATA_FORMAT.md). First: byte-identity —
# the sharded layout must be a lossless encoding. Generate a split straight
# to shards through the CLI, export it back to JSON, and cmp against the
# same split generated in memory: a single differing byte fails.
echo "==> streaming data plane (shard round-trip byte-identity)"
stream_dir=$(mktemp -d)
cargo run -q --offline --release --bin desalign-cli -- \
    generate --preset fbdb15k --scale 80 --seed 11 --out "$stream_dir/direct.json" >/dev/null
cargo run -q --offline --release --bin desalign-cli -- \
    shard --preset fbdb15k --scale 80 --seed 11 --out "$stream_dir/shards" --shard-entities 30 >/dev/null
cargo run -q --offline --release --bin desalign-cli -- \
    shard-audit --dir "$stream_dir/shards" --policy strict >/dev/null
cargo run -q --offline --release --bin desalign-cli -- \
    shard-export --dir "$stream_dir/shards" --out "$stream_dir/roundtrip.json" >/dev/null
if ! cmp -s "$stream_dir/direct.json" "$stream_dir/roundtrip.json"; then
    echo "    STREAMING DIVERGENCE: shard round-trip JSON differs from the in-memory split"
    exit 1
fi
echo "    shard round-trip is byte-identical to the in-memory JSON path"
rm -rf "$stream_dir"

# Second: the hostile-shard sweep — truncations, bit flips, and semantic
# corruption against the streaming auditor (Strict must reject, Repair must
# quarantine/rewrite and converge to the in-memory auditor's fingerprint).
echo "==> hostile-shard sweep (streaming auditor)"
cargo test -q --offline -p desalign-mmkg --test shard_stream

# Third: the streaming bench smoke with its gate — streamed fingerprints
# must match the in-memory dataset at every scale, and the audit's peak
# payload must stay bounded by the largest shard while the JSON artifact
# grows with scale (the out-of-core claim). Scratch output so the committed
# BENCH_streaming.json stays the full-scale run.
echo "==> streaming_bench (peak-memory + fingerprint gate)"
streaming_out=$(mktemp)
DESALIGN_STREAMING_SIZES=500,2000 DESALIGN_STREAMING_SHARD_ENTITIES=200 \
    DESALIGN_STREAMING_SAMPLES=2 DESALIGN_STREAMING_GATE=1 DESALIGN_STREAMING_OUT="$streaming_out" \
    cargo run -q --offline --release -p desalign-bench --bin streaming_bench >/dev/null
test -s "$streaming_out" || { echo "    streaming_bench did not write its JSON artifact"; exit 1; }
grep -q '"fingerprints_match":true' "$streaming_out" || { echo "    streaming bench artifact lost its fingerprint column"; exit 1; }
if grep -q '"fingerprints_match":false' "$streaming_out"; then
    echo "    STREAMING FINGERPRINT MISMATCH: see $streaming_out"
    exit 1
fi
rm -f "$streaming_out"

# Fourth: the neighborhood-sampled training path must be as thread-count
# independent as the full-graph trainer — same cross-process fingerprint
# diff as above, with DESALIGN_SAMPLED=1 flipping the trainer to the
# block-sampled loop.
echo "==> determinism fingerprint (sampled path, serial vs default threads)"
fp_sampled_serial=$(DESALIGN_SAMPLED=1 DESALIGN_THREADS=1 cargo run -q --offline --release -p desalign-bench --bin determinism_fingerprint)
fp_sampled_default=$(DESALIGN_SAMPLED=1 cargo run -q --offline --release -p desalign-bench --bin determinism_fingerprint)
if [ "$fp_sampled_serial" != "$fp_sampled_default" ]; then
    echo "    SAMPLED DETERMINISM FAILURE: serial fingerprint $fp_sampled_serial != default $fp_sampled_default"
    exit 1
fi
echo "    fingerprint $fp_sampled_serial (identical)"

# Formatting is checked only when a rustfmt binary is installed — it is not
# part of the zero-dependency contract. The check is advisory: the codebase
# predates rustfmt enforcement and deliberately keeps a denser style than
# rustfmt's defaults, so drift is reported without failing the build.
if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check (advisory)"
    if ! cargo fmt --all -- --check >/dev/null 2>&1; then
        echo "    formatting drift detected (non-fatal); run 'cargo fmt --all' to inspect"
    fi
else
    echo "==> cargo fmt not available; skipping format check"
fi

echo "CI OK"
