#!/usr/bin/env bash
# Offline CI for the DESAlign workspace.
#
# The workspace has a zero-dependency policy (see README.md): every
# dependency is an in-repo path crate, so build and tests must pass with
# --offline on a machine that has never touched crates.io.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

# Formatting is checked only when a rustfmt binary is installed — it is not
# part of the zero-dependency contract. The check is advisory: the codebase
# predates rustfmt enforcement and deliberately keeps a denser style than
# rustfmt's defaults, so drift is reported without failing the build.
if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check (advisory)"
    if ! cargo fmt --all -- --check >/dev/null 2>&1; then
        echo "    formatting drift detected (non-fatal); run 'cargo fmt --all' to inspect"
    fi
else
    echo "==> cargo fmt not available; skipping format check"
fi

echo "CI OK"
