#!/usr/bin/env bash
# Offline CI for the DESAlign workspace.
#
# The workspace has a zero-dependency policy (see README.md): every
# dependency is an in-repo path crate, so build and tests must pass with
# --offline on a machine that has never touched crates.io.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline (DESALIGN_THREADS=1, forced serial)"
DESALIGN_THREADS=1 cargo test -q --offline --workspace

echo "==> cargo test -q --offline (default thread count)"
cargo test -q --offline --workspace

# Determinism gate for desalign-parallel: an end-to-end pipeline fingerprint
# (dataset → training → Semantic Propagation → metrics, hashed at the f32
# bit level) must not depend on the thread count.
echo "==> determinism fingerprint (serial vs default threads)"
fp_serial=$(DESALIGN_THREADS=1 cargo run -q --offline --release -p desalign-bench --bin determinism_fingerprint)
fp_default=$(cargo run -q --offline --release -p desalign-bench --bin determinism_fingerprint)
if [ "$fp_serial" != "$fp_default" ]; then
    echo "    DETERMINISM FAILURE: serial fingerprint $fp_serial != default $fp_default"
    exit 1
fi
echo "    fingerprint $fp_serial (identical)"

# Bench harness smoke: tiny scale and sample count — just proves the bench
# still compiles, runs, and writes its JSON table. Output is redirected to a
# scratch file so the committed full-scale BENCH_kernels.json is untouched.
echo "==> cargo bench --bench kernels (smoke)"
smoke_out=$(mktemp)
DESALIGN_BENCH_SAMPLES=2 DESALIGN_BENCH_MAX_N=500 DESALIGN_BENCH_OUT="$smoke_out" \
    cargo bench -q --offline --bench kernels -p desalign-bench >/dev/null
test -s "$smoke_out" || { echo "    bench smoke did not write its JSON table"; exit 1; }
rm -f "$smoke_out"

# Formatting is checked only when a rustfmt binary is installed — it is not
# part of the zero-dependency contract. The check is advisory: the codebase
# predates rustfmt enforcement and deliberately keeps a denser style than
# rustfmt's defaults, so drift is reported without failing the build.
if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check (advisory)"
    if ! cargo fmt --all -- --check >/dev/null 2>&1; then
        echo "    formatting drift detected (non-fatal); run 'cargo fmt --all' to inspect"
    fi
else
    echo "==> cargo fmt not available; skipping format check"
fi

echo "CI OK"
