//! Determinism regression tests: with the RNG now implemented in-repo,
//! every seeded stage of the pipeline must be reproducible to the bit.
//! A platform- or build-dependent divergence anywhere in generation,
//! initialization, or training shows up here as a byte-level mismatch.

use desalign::core::{DesalignConfig, DesalignModel};
use desalign::mmkg::{DatasetSpec, FeatureDims, SynthConfig};
use desalign::tensor::{glorot_uniform, rng_from_seed, Matrix};

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn synthetic_generation_is_byte_identical_across_runs() {
    let gen = || SynthConfig::preset(DatasetSpec::Dbp15kZhEn).scaled(80).with_image_ratio(0.5).generate(9);
    let (a, b) = (gen(), gen());
    assert_eq!(a.source.rel_triples, b.source.rel_triples);
    assert_eq!(a.source.attr_triples, b.source.attr_triples);
    assert_eq!(a.target.rel_triples, b.target.rel_triples);
    assert_eq!(a.train_pairs, b.train_pairs);
    assert_eq!(a.test_pairs, b.test_pairs);
    // Image features are floats — compare at the bit level.
    for (x, y) in a.source.images.iter().zip(&b.source.images) {
        match (x, y) {
            (Some(x), Some(y)) => {
                assert_eq!(x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), y.iter().map(|v| v.to_bits()).collect::<Vec<_>>())
            }
            (None, None) => {}
            _ => panic!("image presence differs between identical runs"),
        }
    }
}

#[test]
fn glorot_init_is_byte_identical_across_runs() {
    let init = || glorot_uniform(&mut rng_from_seed(77), 33, 17);
    assert_eq!(bits(&init()), bits(&init()));
    // And genuinely seed-dependent.
    assert_ne!(bits(&glorot_uniform(&mut rng_from_seed(78), 33, 17)), bits(&init()));
}

#[test]
fn one_training_step_is_byte_identical_across_runs() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(5);
    let run = || {
        let mut cfg = DesalignConfig::fast();
        cfg.hidden_dim = 32;
        cfg.feature_dims = FeatureDims { relation: 64, attribute: 64, visual: 64 };
        cfg.epochs = 1;
        cfg.batch_size = 64;
        let mut model = DesalignModel::new(cfg, &ds, 31);
        model.fit(&ds);
        bits(model.similarity_with_iterations(1).scores())
    };
    assert_eq!(run(), run(), "one epoch + SP diverged between identical seeded runs");
}

#[test]
fn training_is_byte_identical_with_telemetry_on_and_off() {
    // Telemetry is strictly read-only: spans, counters, and epoch records
    // observe the computation but never feed back into it, so forcing
    // collection on must reproduce the telemetry-off run bit-for-bit.
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(5);
    let run = |telemetry_on: bool| {
        desalign::telemetry::set_enabled(Some(telemetry_on));
        let mut cfg = DesalignConfig::fast();
        cfg.hidden_dim = 32;
        cfg.feature_dims = FeatureDims { relation: 64, attribute: 64, visual: 64 };
        cfg.epochs = 2;
        cfg.batch_size = 64;
        let mut model = DesalignModel::new(cfg, &ds, 31);
        model.fit(&ds);
        let out = bits(model.similarity_with_iterations(2).scores());
        desalign::telemetry::set_enabled(None);
        out
    };
    assert_eq!(run(false), run(true), "telemetry collection changed training results");
}

#[test]
fn one_training_step_is_byte_identical_across_thread_counts() {
    // The end-to-end guarantee behind desalign-parallel: training a step and
    // decoding on 7 threads must reproduce the serial build bit-for-bit,
    // because every parallelized kernel partitions work so each f32 keeps
    // its serial summation order.
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(5);
    let run = |threads: usize| {
        desalign::parallel::with_threads(threads, || {
            let mut cfg = DesalignConfig::fast();
            cfg.hidden_dim = 32;
            cfg.feature_dims = FeatureDims { relation: 64, attribute: 64, visual: 64 };
            cfg.epochs = 1;
            cfg.batch_size = 64;
            let mut model = DesalignModel::new(cfg, &ds, 31);
            model.fit(&ds);
            bits(model.similarity_with_iterations(1).scores())
        })
    };
    let serial = run(1);
    assert_eq!(run(2), serial, "2-thread training step diverged from the serial build");
    assert_eq!(run(7), serial, "7-thread training step diverged from the serial build");
}
