//! End-to-end integration: dataset generation → training → evaluation,
//! exercised through the public facade exactly as a downstream user would.

use desalign::baselines::{iterative_align, Aligner, DesalignAligner, EvaAligner, MeaformerAligner};
use desalign::core::{DesalignConfig, DesalignModel};
use desalign::mmkg::{DatasetSpec, FeatureDims, SynthConfig};

fn tiny_cfg(epochs: usize) -> DesalignConfig {
    let mut cfg = DesalignConfig::fast();
    cfg.hidden_dim = 32;
    cfg.feature_dims = FeatureDims { relation: 64, attribute: 64, visual: 64 };
    cfg.epochs = epochs;
    cfg.batch_size = 128;
    cfg
}

#[test]
fn smoke_training_beats_random_baseline() {
    // The cheapest possible end-to-end sanity check: on a tiny fixed-seed
    // synthetic MMKG, a short DESAlign fit must decrease its loss and land
    // H@1 clearly above the random-ranking baseline of 1/|test candidates|.
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(120).generate(11);
    let mut model = DesalignModel::new(tiny_cfg(15), &ds, 23);
    let report = model.fit(&ds);
    let metrics = model.evaluate(&ds);
    assert!(report.loss_decreased(), "loss never decreased over the fit");
    let random_h1 = 1.0 / ds.test_pairs.len() as f32;
    assert!(
        metrics.hits_at_1 > 3.0 * random_h1,
        "H@1 {} is not clearly above the random baseline {} ({} test pairs)",
        metrics.hits_at_1,
        random_h1,
        ds.test_pairs.len()
    );
}

#[test]
fn desalign_learns_alignment_signal() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(150).generate(1);
    let mut model = DesalignModel::new(tiny_cfg(25), &ds, 5);
    let before = model.evaluate(&ds);
    let report = model.fit(&ds);
    let after = model.evaluate(&ds);
    assert!(report.loss_decreased());
    assert!(after.mrr > before.mrr + 0.05, "training gained only {} → {}", before.mrr, after.mrr);
    assert!(after.hits_at_10 >= after.hits_at_1);
    assert!(after.mrr >= after.hits_at_1 && after.mrr <= 1.0);
}

#[test]
fn semantic_propagation_helps_under_severe_missing_modality() {
    let ds = SynthConfig::preset(DatasetSpec::Dbp15kFrEn)
        .scaled(200)
        .with_image_ratio(0.15)
        .generate(2);
    let mut with_sp = tiny_cfg(30);
    with_sp.sp_iterations = 3;
    let mut without_sp = with_sp.clone();
    without_sp.ablation.use_semantic_propagation = false;

    let mut m1 = DesalignModel::new(with_sp, &ds, 7);
    m1.fit(&ds);
    let sp = m1.evaluate(&ds);
    let mut m2 = DesalignModel::new(without_sp, &ds, 7);
    m2.fit(&ds);
    let plain = m2.evaluate(&ds);
    assert!(
        sp.mrr >= plain.mrr - 1e-3,
        "SP should not hurt under missing modality: {} vs {}",
        sp.mrr,
        plain.mrr
    );
}

#[test]
fn desalign_beats_meaformer_on_low_coverage_split() {
    // The headline comparison (Tables II–III): same encoder, DESAlign adds
    // the energy constraint + SP.
    let ds = SynthConfig::preset(DatasetSpec::Dbp15kJaEn)
        .scaled(200)
        .with_image_ratio(0.2)
        .generate(3);
    let cfg = tiny_cfg(40);
    let mut ours = DesalignAligner::new(cfg.clone(), &ds, 11);
    ours.fit(&ds);
    let ours_m = ours.evaluate(&ds);
    let mut base = MeaformerAligner::new(cfg, &ds, 11);
    base.fit(&ds);
    let base_m = base.evaluate(&ds);
    assert!(
        ours_m.mrr > base_m.mrr,
        "DESAlign {} should beat MEAformer {} at R_img=0.2",
        ours_m.mrr,
        base_m.mrr
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let ds = SynthConfig::preset(DatasetSpec::FbYg15k).scaled(120).generate(4);
    let run = || {
        let mut model = DesalignModel::new(tiny_cfg(10), &ds, 13);
        model.fit(&ds);
        let m = model.evaluate(&ds);
        (m.hits_at_1, m.mrr)
    };
    assert_eq!(run(), run());
}

#[test]
fn iterative_strategy_does_not_regress() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(150).with_seed_ratio(0.1).generate(5);
    let mut eva = EvaAligner::with_profile(32, 25, &ds, 17);
    let outcome = iterative_align(&mut eva, &ds, 1, 0.5);
    // Bootstrapping with a conservative threshold should help or be neutral.
    assert!(
        outcome.final_metrics().mrr >= outcome.base.mrr - 0.05,
        "iterative hurt badly: {} → {}",
        outcome.base.mrr,
        outcome.final_metrics().mrr
    );
}

#[test]
fn evaluation_is_restricted_to_test_candidates() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(100).generate(6);
    let mut model = DesalignModel::new(tiny_cfg(5), &ds, 19);
    model.fit(&ds);
    let m = model.evaluate(&ds);
    assert_eq!(m.num_queries, ds.test_pairs.len());
}
