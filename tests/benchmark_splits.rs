//! The 60-split benchmark matrix: every preset × every robustness knob the
//! paper sweeps must generate a valid dataset.

use desalign::baselines::{Aligner, GcnAligner, McleaAligner, TransEAligner};
use desalign::mmkg::{DatasetSpec, SynthConfig};

#[test]
fn all_sixty_splits_generate_and_validate() {
    // 2 monolingual × (3 R_seed + 6 R_tex) + 3 bilingual × (1 + 6 R_img)
    // + weak-supervision points = the paper's "60 benchmark splits" space.
    let mut count = 0;
    for spec in DatasetSpec::MONOLINGUAL {
        for r_seed in [0.2f32, 0.5, 0.8] {
            let ds = SynthConfig::preset(spec).scaled(60).with_seed_ratio(r_seed).generate(1);
            assert_eq!(ds.validate(), Ok(()), "{}", ds.name);
            count += 1;
        }
        for r_tex in [0.05f32, 0.2, 0.3, 0.4, 0.5, 0.6] {
            let ds = SynthConfig::preset(spec).scaled(60).with_text_ratio(r_tex).generate(1);
            assert_eq!(ds.validate(), Ok(()), "{}", ds.name);
            count += 1;
        }
    }
    for spec in DatasetSpec::BILINGUAL {
        let ds = SynthConfig::preset(spec).scaled(60).generate(1);
        assert_eq!(ds.validate(), Ok(()), "{}", ds.name);
        count += 1;
        for r_img in [0.05f32, 0.2, 0.3, 0.4, 0.5, 0.6] {
            let ds = SynthConfig::preset(spec).scaled(60).with_image_ratio(r_img).generate(1);
            assert_eq!(ds.validate(), Ok(()), "{}", ds.name);
            count += 1;
        }
    }
    for r_seed in [0.01f32, 0.05, 0.1, 0.15, 0.25, 0.3] {
        for spec in [DatasetSpec::FbDb15k, DatasetSpec::Dbp15kFrEn] {
            let ds = SynthConfig::preset(spec).scaled(60).with_seed_ratio(r_seed).generate(1);
            assert_eq!(ds.validate(), Ok(()), "{}", ds.name);
            count += 1;
        }
    }
    // Cross-family knobs: R_img on monolingual, R_tex on bilingual.
    for r in [0.2f32, 0.4, 0.6] {
        for spec in DatasetSpec::MONOLINGUAL {
            let ds = SynthConfig::preset(spec).scaled(60).with_image_ratio(r).generate(1);
            assert_eq!(ds.validate(), Ok(()), "{}", ds.name);
            count += 1;
        }
        for spec in DatasetSpec::BILINGUAL {
            let ds = SynthConfig::preset(spec).scaled(60).with_text_ratio(r).generate(1);
            assert_eq!(ds.validate(), Ok(()), "{}", ds.name);
            count += 1;
        }
    }
    assert!(count >= 60, "only {count} splits covered");
}

#[test]
fn split_names_are_unique_across_the_matrix() {
    let mut names = std::collections::HashSet::new();
    for spec in DatasetSpec::ALL {
        for r in [0.2f32, 0.5] {
            assert!(names.insert(SynthConfig::preset(spec).with_seed_ratio(r).split_name()));
            assert!(names.insert(SynthConfig::preset(spec).with_seed_ratio(r).with_image_ratio(0.3).split_name()));
            assert!(names.insert(SynthConfig::preset(spec).with_seed_ratio(r).with_text_ratio(0.3).split_name()));
        }
    }
}

#[test]
fn every_baseline_runs_on_every_preset() {
    for spec in DatasetSpec::ALL {
        let ds = SynthConfig::preset(spec).scaled(80).generate(2);
        let mut methods: Vec<Box<dyn Aligner>> = vec![
            Box::new(TransEAligner::new(&ds, 1)),
            Box::new(GcnAligner::with_profile(16, 4, &ds, 1)),
            Box::new(McleaAligner::with_profile(16, 4, &ds, 1)),
        ];
        for m in &mut methods {
            m.fit(&ds);
            let metrics = m.evaluate(&ds);
            assert_eq!(metrics.num_queries, ds.test_pairs.len(), "{} on {}", m.name(), ds.name);
        }
    }
}

#[test]
fn dataset_round_trip_through_json() {
    let ds = SynthConfig::preset(DatasetSpec::Dbp15kZhEn).scaled(50).generate(3);
    let dir = std::env::temp_dir().join("desalign-integration");
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("split.json");
    desalign::mmkg::save_dataset_json(&ds, &path).expect("save");
    let loaded = desalign::mmkg::load_dataset_json(&path).expect("load");
    assert_eq!(loaded.source.rel_triples, ds.source.rel_triples);
    assert_eq!(loaded.train_pairs, ds.train_pairs);
    std::fs::remove_file(&path).ok();
}
