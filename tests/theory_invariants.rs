//! Cross-crate checks of the paper's theoretical claims on *realistic*
//! generated graphs (the unit tests cover hand-built graphs; these use the
//! synthetic benchmark structures end-to-end).

use desalign::graph::{
    closed_form_interpolation, dirichlet_energy, lambda_max, propagate_features, PropagationConfig,
    SemanticPartition,
};
use desalign::mmkg::{DatasetSpec, ModalFeatures, SynthConfig};
use desalign::tensor::{normal_matrix, rng_from_seed};

#[test]
fn laplacian_spectrum_of_generated_graphs_is_in_range() {
    // Eigenvalues of the normalized Laplacian lie in [0, 2) (§II-C).
    for spec in DatasetSpec::ALL {
        let ds = SynthConfig::preset(spec).scaled(150).generate(1);
        for kg in [&ds.source, &ds.target] {
            let lap = kg.graph().laplacian();
            let lmax = lambda_max(&lap, 300, 1e-7);
            assert!((0.0..2.0).contains(&lmax), "{}: λ_max = {lmax}", ds.name);
        }
    }
}

#[test]
fn dirichlet_energy_nonnegative_on_generated_graphs() {
    let ds = SynthConfig::preset(DatasetSpec::Dbp15kZhEn).scaled(150).generate(2);
    let lap = ds.source.graph().laplacian();
    let mut rng = rng_from_seed(3);
    for _ in 0..5 {
        let x = normal_matrix(&mut rng, ds.source.num_entities, 8, 0.0, 1.0);
        assert!(dirichlet_energy(&lap, &x) >= -1e-3);
    }
}

#[test]
fn euler_scheme_approaches_closed_form_on_generated_graph() {
    // Proposition 4 / Eq. 19–22 on a real generated structure: iterate the
    // explicit Euler scheme long enough and it converges to the exact
    // energy minimizer on the largest connected component.
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(4);
    let g = ds.source.graph();
    let lap = g.laplacian();
    let adj = g.normalized_adjacency(true);
    let n = g.num_nodes();
    let mut rng = rng_from_seed(5);
    let x0 = normal_matrix(&mut rng, n, 4, 0.0, 1.0);
    // Mark 70 % of entities as known; restrict the comparison to the
    // largest component (isolated unknowns have no boundary information).
    let comp = g.components();
    let mut counts = std::collections::HashMap::new();
    for &c in &comp {
        *counts.entry(c).or_insert(0usize) += 1;
    }
    let main_comp = counts.into_iter().max_by_key(|&(_, n)| n).map(|(c, _)| c).expect("components");
    let known: Vec<bool> = (0..n).map(|i| i % 10 < 7 || comp[i] != main_comp).collect();
    let partition = SemanticPartition::known_missing(&known);
    let exact = closed_form_interpolation(&lap, &x0, &partition, 2000, 1e-10);
    let states = propagate_features(&adj, &x0, &known, &PropagationConfig { iterations: 600, step: 1.0, reset_known: true });
    let last = states.last().expect("states");
    let mut max_err = 0.0f32;
    #[allow(clippy::needless_range_loop)] // `i` indexes both `comp` and the matrices
    for i in 0..n {
        if comp[i] == main_comp {
            for (a, b) in last.row(i).iter().zip(exact.row(i)) {
                max_err = max_err.max((a - b).abs());
            }
        }
    }
    assert!(max_err < 5e-2, "Euler vs closed-form max err {max_err}");
}

#[test]
fn propagation_energy_descent_on_generated_graph() {
    // Eq. 21 as successive low-pass filtering: pure Euler steps never
    // increase the Dirichlet energy.
    let ds = SynthConfig::preset(DatasetSpec::Dbp15kFrEn).scaled(120).generate(6);
    let g = ds.target.graph();
    let adj = g.normalized_adjacency(true);
    let lap = g.laplacian();
    let mut rng = rng_from_seed(7);
    let x0 = normal_matrix(&mut rng, g.num_nodes(), 6, 0.0, 1.0);
    let states =
        propagate_features(&adj, &x0, &vec![false; g.num_nodes()], &PropagationConfig { iterations: 5, step: 1.0, reset_known: false });
    let energies: Vec<f32> = states.iter().map(|s| dirichlet_energy(&lap, s)).collect();
    for w in energies.windows(2) {
        assert!(w[1] <= w[0] + 1e-3, "energy rose: {energies:?}");
    }
}

#[test]
fn missing_modality_rates_follow_the_requested_ratios() {
    // The robustness splits (Tables II–III) must control the inconsistency
    // level precisely: measured missing rates track 1 − R.
    let dims = desalign::mmkg::FeatureDims::default();
    for r in [0.2f32, 0.5] {
        let ds = SynthConfig::preset(DatasetSpec::Dbp15kJaEn).scaled(300).with_image_ratio(r).generate(8);
        let f = ModalFeatures::build(&ds.source, &dims);
        let (_, _, v_missing) = f.missing_rates();
        assert!((v_missing - (1.0 - r)).abs() < 0.05, "R_img={r}: missing rate {v_missing}");
    }
}
