#!/usr/bin/env bash
# Regenerates every table and figure of the paper. See DESIGN.md §4.
set -u
cd "$(dirname "$0")"
SCALE="${DESALIGN_SCALE:-400}"
EPOCHS="${DESALIGN_EPOCHS:-60}"
export DESALIGN_SCALE="$SCALE" DESALIGN_EPOCHS="$EPOCHS"
echo "profile: scale=$SCALE epochs=$EPOCHS"
for bin in table1_stats table2_text_ratio table3_image_ratio table4_monolingual \
           table5_bilingual fig3_ablation fig3_weak_supervision fig4_sp_iterations \
           efficiency energy_trace ablation_design; do
  echo "=== running $bin ==="
  ./target/release/$bin 2>&1 | tee "results/${bin}.txt"
done
echo ALL_EXPERIMENTS_DONE
