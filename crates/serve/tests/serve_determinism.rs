//! Determinism at the edge: the serving contract promises that response
//! *bytes* for a given query are a pure function of the loaded embeddings
//! — independent of thread count, server restarts, batch composition,
//! cache temperature, and connection interleaving. These tests enforce it
//! on real sockets.

use desalign_serve::{AlignEngine, AlignQuery, Batcher, ServeConfig, Server};
use desalign_tensor::Matrix;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn synth_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| ((splitmix(seed.wrapping_add(i as u64)) >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0)
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn engine(cache: usize) -> AlignEngine {
    AlignEngine::from_embeddings(
        synth_matrix(48, 16, 3),
        synth_matrix(64, 16, 5),
        &desalign_eval::RetrievalConfig::default(),
        cache,
    )
    .unwrap()
}

/// One full HTTP round-trip on a fresh connection; returns the body.
fn query_once(server: &Server, body: &str) -> String {
    let mut s = TcpStream::connect(server.addr()).unwrap();
    write!(s, "POST /v1/align HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}", body.len(), body)
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    let (head, body) = out.split_once("\r\n\r\n").expect("framed response");
    assert!(head.starts_with("HTTP/1.1 200"), "{out}");
    body.to_string()
}

/// Thread overrides are process-wide, so every phase of the sweep lives in
/// this one test — Rust runs tests in one process.
#[test]
fn responses_are_bit_identical_across_threads_restarts_and_batching() {
    let q = r#"{"entity": 11, "k": 7}"#;
    let mut bodies = Vec::new();

    for (threads, max_batch) in [(1usize, 1usize), (2, 1), (4, 16), (1, 16)] {
        desalign_parallel::set_thread_override(Some(threads));
        // A fresh server per leg doubles as the restart check: same
        // embeddings, new process-state, same bytes.
        let cfg = ServeConfig { workers: 2, max_batch, ..ServeConfig::default() };
        let server = Server::start(engine(8), &cfg).unwrap();
        bodies.push(query_once(&server, q));
        server.shutdown();
    }
    desalign_parallel::set_thread_override(None);

    for (i, b) in bodies.iter().enumerate().skip(1) {
        assert_eq!(b, &bodies[0], "leg {i} diverged from leg 0");
    }
    assert!(bodies[0].contains("\"candidates\""));
}

#[test]
fn cache_temperature_cannot_change_bytes() {
    let server = Server::start(engine(4), &ServeConfig { workers: 2, ..ServeConfig::default() }).unwrap();
    let q = r#"{"entity": 3, "k": 5}"#;
    let cold = query_once(&server, q);
    // Churn the 4-entry cache past capacity, then re-ask.
    for id in 0..16 {
        query_once(&server, &format!("{{\"entity\": {id}, \"k\": 1}}"));
    }
    let warm = query_once(&server, q);
    assert_eq!(cold, warm, "cache state leaked into response bytes");
    server.shutdown();
}

#[test]
fn batch_composition_is_invisible_concurrent_vs_sequential() {
    let eng = Arc::new(engine(16));
    // Sequential ground truth straight from the engine.
    let singles: Vec<_> = (0..12usize)
        .map(|i| eng.answer(&AlignQuery::Entity(i % 48), 1 + i % 5).unwrap())
        .collect();

    // The same queries racing through a wide batching window.
    let (batcher, handle) = Batcher::spawn(eng.clone(), 8, Duration::from_millis(5));
    let mut joins = Vec::new();
    for i in 0..12usize {
        let b = batcher.clone();
        joins.push(std::thread::spawn(move || b.submit(AlignQuery::Entity(i % 48), 1 + i % 5).unwrap()));
    }
    for (i, j) in joins.into_iter().enumerate() {
        assert_eq!(j.join().unwrap(), singles[i], "query {i} changed under batching");
    }
    drop(batcher);
    handle.join().unwrap();
}

#[test]
fn entity_vector_and_wire_roundtrips_agree() {
    // A query sent as an entity id and the same row sent as an explicit
    // vector must serialize to identical candidate lists on the wire.
    let eng = engine(0);
    let row: Vec<f32> = (0..16).map(|j| eng_row_value(3, j)).collect();
    let server = Server::start(engine(0), &ServeConfig { workers: 2, ..ServeConfig::default() }).unwrap();
    let by_id = query_once(&server, r#"{"entity": 3, "k": 6}"#);
    let vec_json: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
    let by_vec = query_once(&server, &format!("{{\"vector\": [{}], \"k\": 6}}", vec_json.join(", ")));
    assert_eq!(by_id, by_vec, "entity-id and vector featurization disagree on the wire");
    drop(eng);
    server.shutdown();
}

/// The value `synth_matrix(48, 16, 3)` puts at `(row, col)`.
fn eng_row_value(row: usize, col: usize) -> f32 {
    ((splitmix(3u64.wrapping_add((row * 16 + col) as u64)) >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
}
