//! Shutdown races: `/admin/shutdown` arriving while a batch is in flight,
//! and while a hot reload is mid-build. The drain contract — every
//! admitted request gets a complete response, the drain finishes, nothing
//! panics — must hold in both interleavings.
//!
//! Failpoint schedules are process-global, so every test takes
//! `desalign_failpoint::exclusive()`.

use desalign_serve::{AlignEngine, ServeConfig, Server};
use desalign_tensor::Matrix;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn synth_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| ((splitmix(seed.wrapping_add(i as u64)) >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0)
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn engine() -> AlignEngine {
    AlignEngine::from_embeddings(
        synth_matrix(48, 16, 3),
        synth_matrix(64, 16, 5),
        &desalign_eval::RetrievalConfig::default(),
        64,
    )
    .unwrap()
}

fn round_trip(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(s, "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}", body.len())
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    let (head, body) = out.split_once("\r\n\r\n").expect("framed response");
    let status: u16 = head.split_whitespace().nth(1).and_then(|v| v.parse().ok()).expect("status line");
    (status, body.to_string())
}

#[test]
fn shutdown_racing_an_in_flight_batch_answers_the_batch() {
    let _guard = desalign_failpoint::exclusive();
    let cfg = ServeConfig { workers: 3, max_batch: 4, ..ServeConfig::default() };
    let server = Server::start(engine(), &cfg).unwrap();
    let addr = server.addr();

    // Hold the first engine batch for 400ms, then race a shutdown into
    // the middle of it.
    desalign_failpoint::install("serve.engine=delay:400@1").unwrap();
    let slow = std::thread::spawn(move || round_trip(addr, "POST", "/v1/align", r#"{"entity": 3, "k": 4}"#));
    std::thread::sleep(Duration::from_millis(100));
    let (status, body) = round_trip(addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("draining"), "{body}");

    // The in-flight request must still receive its complete answer —
    // drain means "finish what was admitted", not "drop it".
    let (status, body) = slow.join().unwrap();
    assert_eq!(status, 200, "in-flight request dropped during drain: {body}");
    assert!(body.contains("candidates"), "{body}");

    // The drain itself completes (bounded by the read timeout).
    server.wait();
    desalign_failpoint::clear();
    assert!(
        TcpStream::connect(addr).map(|mut s| {
            let _ = write!(s, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            out.is_empty()
        }).unwrap_or(true),
        "a drained server must not answer new requests"
    );
}

#[test]
fn shutdown_racing_a_mid_build_reload_drains_cleanly() {
    let _guard = desalign_failpoint::exclusive();
    let reloader = Box::new(move |_req: Option<&str>| {
        // A deliberately slow candidate build, so the shutdown lands
        // while the reload is in progress.
        std::thread::sleep(Duration::from_millis(300));
        Ok(engine())
    });
    let cfg = ServeConfig { workers: 3, ..ServeConfig::default() };
    let server = Server::start_reloadable(engine(), &cfg, reloader).unwrap();
    let addr = server.addr();

    let reload = std::thread::spawn(move || round_trip(addr, "POST", "/admin/reload", ""));
    std::thread::sleep(Duration::from_millis(100));
    let (status, body) = round_trip(addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200, "{body}");

    // The reload admitted before the drain still completes with a
    // well-formed response (the swap lands; the server then drains).
    let (status, body) = reload.join().unwrap();
    assert_eq!(status, 200, "mid-drain reload must still answer: {body}");
    assert!(body.contains("\"generation\":2"), "{body}");

    // No hang: workers exit and the batcher drains.
    server.wait();
}
