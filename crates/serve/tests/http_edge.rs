//! Hostile-input integration tests: every malformed, truncated, or
//! abusive request a client can send must come back as a typed 4xx over
//! the wire — never a panic, never a hung connection. Each test drives a
//! real in-process server through raw sockets, byte by byte.

use desalign_serve::{AlignEngine, ServeConfig, Server};
use desalign_tensor::Matrix;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn test_server(read_timeout: Duration) -> Server {
    let queries = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
    let items = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
    let engine =
        AlignEngine::from_embeddings(queries, items, &desalign_eval::RetrievalConfig::default(), 8).unwrap();
    let cfg = ServeConfig {
        workers: 2,
        max_body: 4096,
        read_timeout,
        batch_window: Duration::from_micros(100),
        ..ServeConfig::default()
    };
    Server::start(engine, &cfg).unwrap()
}

/// Sends raw bytes, shuts down the write side, and returns everything the
/// server answers before closing.
fn send_raw(server: &Server, payload: &[u8]) -> String {
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(payload).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

fn post_align(server: &Server, body: &str) -> String {
    send_raw(
        server,
        format!("POST /v1/align HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}", body.len(), body).as_bytes(),
    )
}

#[test]
fn hostile_requests_get_typed_4xx_never_panics() {
    let server = test_server(Duration::from_secs(5));

    // Truncated body: Content-Length promises more bytes than arrive.
    let r = send_raw(&server, b"POST /v1/align HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"entity\"");
    assert!(r.starts_with("HTTP/1.1 400"), "truncated body: {r}");

    // Content-Length beyond the configured limit.
    let r = send_raw(&server, b"POST /v1/align HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 413"), "oversized: {r}");

    // Body bytes that are not UTF-8.
    let r = send_raw(&server, b"POST /v1/align HTTP/1.1\r\nContent-Length: 4\r\n\r\n\xff\xfe\xfd\xfc");
    assert!(r.starts_with("HTTP/1.1 400"), "bad utf-8: {r}");
    assert!(r.contains("\"parse\""), "bad utf-8 should be a parse defect: {r}");

    // Well-formed JSON, wrong embedding width.
    let r = post_align(&server, r#"{"vector": [1.0, 2.0]}"#);
    assert!(r.starts_with("HTTP/1.1 400"), "wrong dims: {r}");
    assert!(r.contains("dimension-mismatch"), "wrong dims class: {r}");

    // Non-finite feature values.
    let r = post_align(&server, r#"{"vector": [1.0, NaN, 0.0]}"#);
    assert!(r.starts_with("HTTP/1.1 400"), "NaN vector: {r}");
    assert!(r.contains("non-finite-feature"), "NaN vector class: {r}");

    // Unknown entity id.
    let r = post_align(&server, r#"{"entity": 7}"#);
    assert!(r.starts_with("HTTP/1.1 404"), "unknown entity: {r}");
    assert!(r.contains("pair-out-of-range"), "unknown entity class: {r}");

    // Both query forms at once.
    let r = post_align(&server, r#"{"entity": 0, "vector": [1.0, 0.0, 0.0]}"#);
    assert!(r.starts_with("HTTP/1.1 400"), "ambiguous query: {r}");

    // Garbage request line.
    let r = send_raw(&server, b"\xff\xfe utter nonsense\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 400"), "garbage line: {r}");

    // Chunked transfer encoding is rejected, not half-implemented.
    let r = send_raw(&server, b"POST /v1/align HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 400"), "chunked: {r}");

    // Unknown path / wrong method.
    let r = send_raw(&server, b"GET /nope HTTP/1.1\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 404"), "unknown path: {r}");
    let r = send_raw(&server, b"DELETE /v1/align HTTP/1.1\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 405"), "wrong method: {r}");

    // Headers past the 16KiB cap.
    let huge = format!("GET /healthz HTTP/1.1\r\nX-Junk: {}\r\n\r\n", "a".repeat(20_000));
    let r = send_raw(&server, huge.as_bytes());
    assert!(r.starts_with("HTTP/1.1 431"), "header flood: {r}");

    // After all that abuse the server still answers politely.
    let r = post_align(&server, r#"{"entity": 0, "k": 2}"#);
    assert!(r.starts_with("HTTP/1.1 200"), "post-abuse sanity: {r}");
    server.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = test_server(Duration::from_secs(5));
    let q = r#"{"entity": 0, "k": 1}"#;
    let two = format!(
        "POST /v1/align HTTP/1.1\r\nContent-Length: {len}\r\n\r\n{q}GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        len = q.len()
    );
    let out = send_raw(&server, two.as_bytes());
    let responses: Vec<_> = out.match_indices("HTTP/1.1 200").collect();
    assert_eq!(responses.len(), 2, "expected two 200s in order: {out}");
    let align_at = out.find("\"candidates\"").expect("align body present");
    let health_at = out.find("\"status\"").expect("health body present");
    assert!(align_at < health_at, "responses out of order: {out}");
    server.shutdown();
}

#[test]
fn stalled_request_gets_408_and_shutdown_drains_anyway() {
    // Short read timeout so the stalled client bounds the test, not us.
    let server = test_server(Duration::from_millis(300));

    // A client that sends half a request and goes silent.
    let mut stalled = TcpStream::connect(server.addr()).unwrap();
    stalled.write_all(b"POST /v1/align HTTP/1.1\r\nContent-Le").unwrap();
    stalled.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Meanwhile another worker still serves healthy traffic.
    let ok = send_raw(&server, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");

    // The stalled connection is answered with 408 once the timeout fires.
    let mut out = String::new();
    stalled.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 408"), "stalled client: {out}");

    // A drain with a freshly-stalled client completes within the read
    // timeout instead of hanging on the dead connection.
    let mut zombie = TcpStream::connect(server.addr()).unwrap();
    zombie.write_all(b"POST /v1/align HTTP/1.1\r\n").unwrap();
    server.shutdown(); // must return; the join bounds the test
    drop(zombie);
}

#[test]
fn connection_drop_mid_request_does_not_poison_the_server() {
    let server = test_server(Duration::from_secs(5));
    // Kill the socket after half a request, repeatedly.
    for _ in 0..5 {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"POST /v1/align HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"ent").unwrap();
        drop(s); // RST/EOF mid-body
    }
    let r = post_align(&server, r#"{"entity": 1, "k": 3}"#);
    assert!(r.starts_with("HTTP/1.1 200"), "server poisoned: {r}");
    server.shutdown();
}
