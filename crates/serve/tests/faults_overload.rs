//! Overload and fault-injection behaviour over real sockets: admission
//! shedding, deadline budgets, the circuit breaker, and hot checkpoint
//! reload with rollback. Every scenario here drives a seeded failpoint
//! schedule (`desalign-failpoint`) and asserts the *response contract*:
//! well-formed HTTP with the right status, never a hang or a panic.
//!
//! Failpoint schedules are process-global, so every test takes
//! `desalign_failpoint::exclusive()`.

use desalign_serve::{AlignEngine, ServeConfig, Server};
use desalign_tensor::Matrix;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn synth_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| ((splitmix(seed.wrapping_add(i as u64)) >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0)
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn exact_engine() -> AlignEngine {
    AlignEngine::from_embeddings(
        synth_matrix(48, 16, 3),
        synth_matrix(64, 16, 5),
        &desalign_eval::RetrievalConfig::default(),
        64,
    )
    .unwrap()
}

fn ivf_engine() -> AlignEngine {
    let cfg = desalign_eval::RetrievalConfig {
        kind: desalign_eval::IndexKind::Ivf,
        ivf: desalign_eval::IvfParams { nlist: 4, nprobe: 2, kmeans_iters: 2, seed: 9 },
    };
    AlignEngine::from_embeddings(synth_matrix(48, 16, 3), synth_matrix(64, 16, 5), &cfg, 64).unwrap()
}

/// One round-trip on a fresh connection; returns (status, raw head, body).
fn round_trip(addr: std::net::SocketAddr, method: &str, path: &str, body: &str, headers: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n{headers}Connection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    let (head, body) = out.split_once("\r\n\r\n").expect("framed response");
    let status: u16 = head.split_whitespace().nth(1).and_then(|v| v.parse().ok()).expect("status line");
    (status, head.to_string(), body.to_string())
}

#[test]
fn saturated_queue_sheds_with_503_and_retry_after() {
    let _guard = desalign_failpoint::exclusive();
    let cfg = ServeConfig { workers: 2, queue_capacity: 1, max_batch: 1, ..ServeConfig::default() };
    let server = Server::start(exact_engine(), &cfg).unwrap();
    let addr = server.addr();

    // Hold the first query in the engine for 600ms so the second one
    // arrives while the queue slot is occupied.
    desalign_failpoint::install("serve.engine=delay:600@1").unwrap();
    let slow = std::thread::spawn(move || round_trip(addr, "POST", "/v1/align", r#"{"entity": 1, "k": 3}"#, ""));
    std::thread::sleep(Duration::from_millis(150));
    let (status, head, body) = round_trip(addr, "POST", "/v1/align", r#"{"entity": 2, "k": 3}"#, "");
    assert_eq!(status, 503, "over-capacity query must be shed: {body}");
    assert!(head.contains("Retry-After: 1"), "shed response must carry Retry-After, got:\n{head}");
    assert!(body.contains("serve.admission"), "{body}");

    // The admitted slow query still completes normally.
    let (status, _, body) = slow.join().unwrap();
    assert_eq!(status, 200, "{body}");
    desalign_failpoint::clear();

    // Capacity freed: the next query is admitted again.
    let (status, _, body) = round_trip(addr, "POST", "/v1/align", r#"{"entity": 2, "k": 3}"#, "");
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}

#[test]
fn zero_deadline_budget_is_shed_before_scoring() {
    let _guard = desalign_failpoint::exclusive();
    let server = Server::start(exact_engine(), &ServeConfig { workers: 1, ..ServeConfig::default() }).unwrap();
    let (status, _, body) = round_trip(
        server.addr(),
        "POST",
        "/v1/align",
        r#"{"entity": 0, "k": 3}"#,
        "x-desalign-deadline-ms: 0\r\n",
    );
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("serve.deadline"), "expired budget must surface the deadline location: {body}");
    // A generous budget answers normally.
    let (status, _, body) = round_trip(
        server.addr(),
        "POST",
        "/v1/align",
        r#"{"entity": 0, "k": 3}"#,
        "x-desalign-deadline-ms: 30000\r\n",
    );
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}

#[test]
fn breaker_degrades_readiness_and_recovers_when_faults_stop() {
    let _guard = desalign_failpoint::exclusive();
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 1,
        breaker_threshold: 2,
        breaker_probe_every: 1, // every open batch is a probe → fast recovery
        ..ServeConfig::default()
    };
    let server = Server::start(ivf_engine(), &cfg).unwrap();
    let addr = server.addr();

    let (status, _, body) = round_trip(addr, "GET", "/readyz", "", "");
    assert_eq!(status, 200, "{body}");

    // Two consecutive engine faults: the exact-scan fallback absorbs
    // both (clients still get 200s), and the breaker opens.
    desalign_failpoint::install("serve.engine=err@1~2").unwrap();
    for i in 0..2 {
        let (status, _, body) = round_trip(addr, "POST", "/v1/align", r#"{"entity": 1, "k": 3}"#, "");
        assert_eq!(status, 200, "fault {i} must be absorbed by the fallback: {body}");
    }
    let (status, _, body) = round_trip(addr, "GET", "/readyz", "", "");
    assert_eq!(status, 503, "open breaker must fail readiness: {body}");
    assert!(body.contains("\"breaker\":\"open\""), "{body}");
    let (_, _, health) = round_trip(addr, "GET", "/healthz", "", "");
    assert!(health.contains("\"breaker\":\"open\""), "liveness stays 200 but reports state: {health}");

    // Faults stop (schedule range exhausted): the next align is a
    // half-open probe, succeeds, and closes the breaker.
    let (status, _, body) = round_trip(addr, "POST", "/v1/align", r#"{"entity": 1, "k": 3}"#, "");
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = round_trip(addr, "GET", "/readyz", "", "");
    assert_eq!(status, 200, "breaker must close after a clean probe: {body}");
    desalign_failpoint::clear();
    server.shutdown();
}

#[test]
fn reload_swaps_generations_and_faulted_reload_rolls_back() {
    let _guard = desalign_failpoint::exclusive();
    let calls: Arc<Mutex<Vec<Option<String>>>> = Arc::new(Mutex::new(Vec::new()));
    let calls_in = calls.clone();
    let build_count = Arc::new(AtomicUsize::new(0));
    let build_count_in = build_count.clone();
    let reloader = Box::new(move |requested: Option<&str>| {
        calls_in.lock().unwrap().push(requested.map(str::to_string));
        build_count_in.fetch_add(1, Ordering::SeqCst);
        Ok(exact_engine())
    });
    let cfg = ServeConfig { workers: 2, ..ServeConfig::default() };
    let server = Server::start_reloadable(exact_engine(), &cfg, reloader).unwrap();
    let addr = server.addr();

    let (_, _, health) = round_trip(addr, "GET", "/healthz", "", "");
    assert!(health.contains("\"generation\":1"), "{health}");

    // Clean reload: generation bumps, the server keeps answering.
    let (status, _, body) = round_trip(addr, "POST", "/admin/reload", "", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"generation\":2"), "{body}");
    let (status, _, body) = round_trip(addr, "POST", "/v1/align", r#"{"entity": 0, "k": 3}"#, "");
    assert_eq!(status, 200, "{body}");

    // Reload with an explicit checkpoint path: the path reaches the
    // reloader verbatim.
    let (status, _, body) = round_trip(addr, "POST", "/admin/reload", r#"{"checkpoint": "/tmp/other.ckpt"}"#, "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"generation\":3"), "{body}");
    assert_eq!(
        calls.lock().unwrap().as_slice(),
        &[None, Some("/tmp/other.ckpt".to_string())],
        "reloader must see the requested path"
    );

    // Faulted reload (validation failpoint after a clean build): 503,
    // no swap, and the old generation keeps serving.
    desalign_failpoint::install("serve.reload=err").unwrap();
    let (status, _, body) = round_trip(addr, "POST", "/admin/reload", "", "");
    assert_eq!(status, 503, "faulted reload must be a 503: {body}");
    desalign_failpoint::clear();
    assert_eq!(build_count.load(Ordering::SeqCst), 3, "the candidate was built, then discarded");
    let (_, _, health) = round_trip(addr, "GET", "/healthz", "", "");
    assert!(health.contains("\"generation\":3"), "rollback must keep the last good generation: {health}");
    let (status, _, body) = round_trip(addr, "POST", "/v1/align", r#"{"entity": 0, "k": 3}"#, "");
    assert_eq!(status, 200, "serving must continue after a failed reload: {body}");

    // Malformed reload bodies are 400s, not faults.
    let (status, _, body) = round_trip(addr, "POST", "/admin/reload", r#"{"checkpoint": 7}"#, "");
    assert_eq!(status, 400, "{body}");
    server.shutdown();
}

#[test]
fn reload_without_a_reloader_is_a_clean_503() {
    let _guard = desalign_failpoint::exclusive();
    let server = Server::start(exact_engine(), &ServeConfig { workers: 1, ..ServeConfig::default() }).unwrap();
    let (status, _, body) = round_trip(server.addr(), "POST", "/admin/reload", "", "");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("without a reloader"), "{body}");
    server.shutdown();
}

#[test]
fn socket_read_faults_never_kill_the_server() {
    let _guard = desalign_failpoint::exclusive();
    let server = Server::start(exact_engine(), &ServeConfig { workers: 2, ..ServeConfig::default() }).unwrap();
    let addr = server.addr();
    // Every 3rd socket read faults with a hard error, the ones between
    // with a spurious timeout. Interleaved queries must still succeed
    // (fresh connections get fresh reads), and the server must survive.
    desalign_failpoint::install("serve.read=err@%3").unwrap();
    let mut ok = 0;
    for i in 0..12 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let body = format!("{{\"entity\": {}, \"k\": 2}}", i % 8);
        let _ = write!(s, "POST /v1/align HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}", body.len());
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        if out.starts_with("HTTP/1.1 200") {
            ok += 1;
        }
    }
    desalign_failpoint::clear();
    assert!(ok >= 6, "most queries should survive a 1-in-3 flaky read, got {ok}/12");
    // And the server still serves cleanly afterwards.
    let (status, _, body) = round_trip(addr, "POST", "/v1/align", r#"{"entity": 0, "k": 2}"#, "");
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}
