//! Chaos harness: replays seeded failpoint schedules against every layer
//! the `desalign-failpoint` sites cover and measures how the system
//! degrades and recovers. Writes `BENCH_chaos.json`.
//!
//! Scenarios (each runs under `catch_unwind`; a panic anywhere fails the
//! whole run — the zero-panic assertion is the headline number):
//!
//! 1. **kill_mid_write** — torn [`atomic_write`]s at a sweep of cut
//!    points; the destination must hold the old generation after every
//!    kill and a clean write must succeed afterwards.
//! 2. **flaky_shard_audit** — a sharded MMKG directory audited while the
//!    `shard.read` site injects a flaky disk: the strict audit must fail
//!    with a typed error (no panic), and pass once the disk heals.
//! 3. **socket_storm** — a deliberately tiny admission queue under a
//!    concurrent client storm: every response must be well-formed HTTP
//!    (200 or a 503 shed), sheds must actually happen, and p99 of the
//!    successful requests is recorded.
//! 4. **breaker_degrade** — consecutive engine faults trip the breaker;
//!    requests keep answering through the exact-scan fallback and the
//!    breaker closes once faults stop; recovery time is recorded.
//! 5. **reload_under_load** — hot checkpoint reloads (one clean, one
//!    faulted) while align traffic flows: the faulted reload rolls back,
//!    and not one in-flight request is dropped without a response.
//!
//! `DESALIGN_CHAOS_GATE=1` (ci.sh) turns scenario failures into a
//! non-zero exit. `DESALIGN_CHAOS_OUT` overrides the output path.

use desalign_mmkg::{AuditPolicy, DatasetSpec, StreamingAuditor, SynthConfig};
use desalign_serve::{AlignEngine, ServeConfig, Server};
use desalign_tensor::Matrix;
use desalign_util::{atomic_write, json, read_verified, Json};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn synth_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| ((splitmix(seed.wrapping_add(i as u64)) >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0)
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn exact_engine() -> AlignEngine {
    AlignEngine::from_embeddings(
        synth_matrix(128, 24, 3),
        synth_matrix(256, 24, 5),
        &desalign_eval::RetrievalConfig::default(),
        128,
    )
    .expect("build exact engine")
}

fn ivf_engine() -> AlignEngine {
    let cfg = desalign_eval::RetrievalConfig {
        kind: desalign_eval::IndexKind::Ivf,
        ivf: desalign_eval::IvfParams { nlist: 8, nprobe: 2, kmeans_iters: 3, seed: 17 },
    };
    AlignEngine::from_embeddings(synth_matrix(128, 24, 3), synth_matrix(256, 24, 5), &cfg, 128)
        .expect("build ivf engine")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("desalign-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create chaos tempdir");
    dir
}

/// One full HTTP round-trip on a fresh connection. Returns `None` when
/// the response was not well-formed HTTP (the storm scenarios count
/// those as contract violations).
fn round_trip(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Option<(u16, String)> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(30))).ok()?;
    write!(s, "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}", body.len())
        .ok()?;
    let mut out = String::new();
    s.read_to_string(&mut out).ok()?;
    let (head, body) = out.split_once("\r\n\r\n")?;
    let status: u16 = head.split_whitespace().nth(1).and_then(|v| v.parse().ok())?;
    Some((status, body.to_string()))
}

fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64
}

// ---------------------------------------------------------------------
// Scenarios: each returns (detail fields, failures)
// ---------------------------------------------------------------------

fn kill_mid_write() -> (Vec<(String, Json)>, Vec<String>) {
    let mut failures = Vec::new();
    let dir = temp_dir("kill-mid-write");
    let path = dir.join("state.bin");
    let old = b"generation-old".to_vec();
    atomic_write(&path, &old).expect("seed write");

    let cuts = [0usize, 1, 7, 13, 37, 10_000];
    let mut kills = 0;
    for &cut in &cuts {
        desalign_failpoint::install(&format!("atomicio.write=torn:{cut}@1")).expect("install");
        match atomic_write(&path, b"generation-new") {
            Err(_) => kills += 1,
            Ok(_) => failures.push(format!("torn:{cut} write unexpectedly succeeded")),
        }
        match read_verified(&path) {
            Ok(bytes) if bytes == old => {}
            Ok(_) => failures.push(format!("torn:{cut} left a NEW/mixed generation visible")),
            Err(e) => failures.push(format!("torn:{cut} corrupted the destination: {e}")),
        }
        desalign_failpoint::clear();
    }
    // The disk heals: a clean write replaces the old generation.
    atomic_write(&path, b"generation-new").expect("recovery write");
    match read_verified(&path) {
        Ok(bytes) if bytes == b"generation-new" => {}
        other => failures.push(format!("recovery write not visible: {other:?}")),
    }
    let _ = std::fs::remove_dir_all(&dir);
    (
        vec![
            ("kills_replayed".into(), json!(kills)),
            ("cut_points".into(), json!(cuts.len())),
        ],
        failures,
    )
}

fn flaky_shard_audit() -> (Vec<(String, Json)>, Vec<String>) {
    let mut failures = Vec::new();
    let dir = temp_dir("flaky-shard");
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(30);
    let manifest = ds.generate_sharded(11, &dir, 10).expect("generate shards");

    // Flaky disk: the first shard read fails. The streaming auditor must
    // surface a typed error — not a panic, not a silently short census.
    desalign_failpoint::install("shard.read=err@1").expect("install");
    let under_fault = StreamingAuditor::new(AuditPolicy::Strict).audit_dir(&dir);
    match &under_fault {
        Err(e) => {
            let msg = e.to_string();
            if !msg.contains("shard.read") {
                failures.push(format!("fault error does not name the failpoint site: {msg}"));
            }
        }
        Ok(_) => failures.push("audit succeeded through an injected read fault".into()),
    }
    desalign_failpoint::clear();

    // Healed disk: the same directory audits clean.
    let t0 = Instant::now();
    match StreamingAuditor::new(AuditPolicy::Strict).audit_dir(&dir) {
        Ok(report) => {
            if !report.audit.is_clean() {
                failures.push(format!("clean shards audit dirty after recovery: {}", report.audit.summary()));
            }
        }
        Err(e) => failures.push(format!("recovery audit failed: {e}")),
    }
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_dir_all(&dir);
    (
        vec![
            ("shards".into(), json!(manifest.shards.len())),
            ("faulted_audit_failed_cleanly".into(), json!(under_fault.is_err())),
            ("recovery_audit_ms".into(), json!(recovery_ms)),
        ],
        failures,
    )
}

fn socket_storm() -> (Vec<(String, Json)>, Vec<String>) {
    let mut failures = Vec::new();
    let cfg = ServeConfig {
        workers: 8,
        queue_capacity: 2, // deliberately tiny: force sheds
        max_batch: 4,
        ..ServeConfig::default()
    };
    let server = Server::start(exact_engine(), &cfg).expect("start storm server");
    let addr = server.addr();

    let clients = 8usize;
    let per_client = 40usize;
    let mut joins = Vec::new();
    for c in 0..clients {
        joins.push(std::thread::spawn(move || -> (Vec<u64>, usize, usize) {
            let (mut ok_lat, mut shed, mut malformed) = (Vec::new(), 0usize, 0usize);
            for i in 0..per_client {
                let body = format!("{{\"entity\": {}, \"k\": 5}}", (c * per_client + i) % 128);
                let t = Instant::now();
                match round_trip(addr, "POST", "/v1/align", &body) {
                    Some((200, _)) => ok_lat.push(t.elapsed().as_micros() as u64),
                    Some((503, b)) if b.contains("serve.admission") => shed += 1,
                    Some((status, b)) => {
                        let _ = (status, b);
                        malformed += 1;
                    }
                    None => malformed += 1,
                }
            }
            (ok_lat, shed, malformed)
        }));
    }
    let (mut all, mut shed, mut malformed) = (Vec::new(), 0usize, 0usize);
    for j in joins {
        let (lat, s, m) = j.join().expect("storm client");
        all.extend(lat);
        shed += s;
        malformed += m;
    }
    if malformed > 0 {
        failures.push(format!("{malformed} responses were not well-formed 200/503"));
    }
    if shed == 0 {
        failures.push("a queue of 2 under an 8-way storm shed nothing — admission control inert".into());
    }
    if all.is_empty() {
        failures.push("no request succeeded during the storm".into());
    }

    // Recovery: with the storm gone, a lone request is admitted.
    let t0 = Instant::now();
    match round_trip(addr, "POST", "/v1/align", r#"{"entity": 0, "k": 5}"#) {
        Some((200, _)) => {}
        other => failures.push(format!("post-storm request not admitted: {other:?}")),
    }
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    server.shutdown();

    all.sort_unstable();
    (
        vec![
            ("requests".into(), json!(clients * per_client)),
            ("ok".into(), json!(all.len())),
            ("shed".into(), json!(shed)),
            ("shed_rate".into(), json!(shed as f64 / (clients * per_client) as f64)),
            ("p50_us".into(), json!(percentile(&all, 0.50))),
            ("p99_us".into(), json!(percentile(&all, 0.99))),
            ("recovery_ms".into(), json!(recovery_ms)),
        ],
        failures,
    )
}

fn breaker_degrade() -> (Vec<(String, Json)>, Vec<String>) {
    let mut failures = Vec::new();
    let cfg = ServeConfig {
        workers: 2,
        max_batch: 1,
        breaker_threshold: 3,
        breaker_probe_every: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(ivf_engine(), &cfg).expect("start breaker server");
    let addr = server.addr();

    // Six consecutive engine faults — past the threshold of 3.
    desalign_failpoint::install("serve.engine=err@1~6").expect("install");
    let t_fault = Instant::now();
    let mut lat_under_fault = Vec::new();
    for i in 0..6 {
        let body = format!("{{\"entity\": {i}, \"k\": 5}}");
        let t = Instant::now();
        match round_trip(addr, "POST", "/v1/align", &body) {
            Some((200, _)) => lat_under_fault.push(t.elapsed().as_micros() as u64),
            other => failures.push(format!("fault {i}: fallback did not absorb the engine fault: {other:?}")),
        }
    }
    let opened = match round_trip(addr, "GET", "/readyz", "") {
        Some((503, b)) if b.contains("\"breaker\":\"open\"") => true,
        other => {
            failures.push(format!("breaker did not open after 6 consecutive faults: {other:?}"));
            false
        }
    };

    // Faults stop; probes close the breaker.
    let mut recovery_ms = f64::NAN;
    if opened {
        let t0 = Instant::now();
        let mut closed = false;
        for _ in 0..10 {
            let _ = round_trip(addr, "POST", "/v1/align", r#"{"entity": 0, "k": 5}"#);
            if let Some((200, _)) = round_trip(addr, "GET", "/readyz", "") {
                closed = true;
                recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
                break;
            }
        }
        if !closed {
            failures.push("breaker never closed after faults stopped".into());
        }
    }
    desalign_failpoint::clear();
    server.shutdown();

    lat_under_fault.sort_unstable();
    (
        vec![
            ("faults_injected".into(), json!(6)),
            ("breaker_opened".into(), json!(opened)),
            ("p99_under_fault_us".into(), json!(percentile(&lat_under_fault, 0.99))),
            ("fault_phase_ms".into(), json!(t_fault.elapsed().as_secs_f64() * 1e3)),
            ("recovery_ms".into(), json!(recovery_ms)),
        ],
        failures,
    )
}

fn reload_under_load() -> (Vec<(String, Json)>, Vec<String>) {
    let mut failures = Vec::new();
    let reloader = Box::new(move |_req: Option<&str>| {
        std::thread::sleep(Duration::from_millis(50)); // a non-trivial build
        Ok(exact_engine())
    });
    let cfg = ServeConfig { workers: 6, ..ServeConfig::default() };
    let server = Server::start_reloadable(exact_engine(), &cfg, reloader).expect("start reload server");
    let addr = server.addr();

    // Background load: hammer /v1/align while reloads happen. Every
    // response must be a complete 200.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut load_joins = Vec::new();
    for c in 0..3 {
        let stop = stop.clone();
        load_joins.push(std::thread::spawn(move || -> (usize, usize) {
            let (mut ok, mut bad) = (0usize, 0usize);
            let mut i = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let body = format!("{{\"entity\": {}, \"k\": 5}}", (c * 37 + i) % 128);
                match round_trip(addr, "POST", "/v1/align", &body) {
                    Some((200, _)) => ok += 1,
                    _ => bad += 1,
                }
                i += 1;
            }
            (ok, bad)
        }));
    }
    std::thread::sleep(Duration::from_millis(100));

    // Clean reload under load.
    match round_trip(addr, "POST", "/admin/reload", "") {
        Some((200, b)) if b.contains("\"generation\":2") => {}
        other => failures.push(format!("clean reload under load failed: {other:?}")),
    }
    std::thread::sleep(Duration::from_millis(100));

    // Faulted reload: validation fails after the build; the swap must
    // not happen and generation must stay at 2.
    desalign_failpoint::install("serve.reload=err").expect("install");
    let t0 = Instant::now();
    match round_trip(addr, "POST", "/admin/reload", "") {
        Some((503, _)) => {}
        other => failures.push(format!("faulted reload must be a 503: {other:?}")),
    }
    desalign_failpoint::clear();
    let rollback_ms = t0.elapsed().as_secs_f64() * 1e3;
    match round_trip(addr, "GET", "/healthz", "") {
        Some((200, b)) if b.contains("\"generation\":2") => {}
        other => failures.push(format!("rollback did not keep generation 2: {other:?}")),
    }
    std::thread::sleep(Duration::from_millis(100));

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let (mut ok, mut bad) = (0usize, 0usize);
    for j in load_joins {
        let (o, b) = j.join().expect("load client");
        ok += o;
        bad += b;
    }
    if bad > 0 {
        failures.push(format!("{bad} in-flight requests failed across the reloads"));
    }
    if ok == 0 {
        failures.push("load clients completed zero requests".into());
    }
    server.shutdown();
    (
        vec![
            ("load_requests_ok".into(), json!(ok)),
            ("load_requests_failed".into(), json!(bad)),
            ("rollback_ms".into(), json!(rollback_ms)),
        ],
        failures,
    )
}

// ---------------------------------------------------------------------

fn main() {
    // The harness owns the process-global schedule registry; refuse to
    // inherit one from the environment so every scenario is seeded
    // exactly as written above.
    desalign_failpoint::clear();

    let scenarios: Vec<(&str, fn() -> (Vec<(String, Json)>, Vec<String>))> = vec![
        ("kill_mid_write", kill_mid_write),
        ("flaky_shard_audit", flaky_shard_audit),
        ("socket_storm", socket_storm),
        ("breaker_degrade", breaker_degrade),
        ("reload_under_load", reload_under_load),
    ];

    let mut panics = 0usize;
    let mut failed = 0usize;
    let mut reports: Vec<Json> = Vec::new();
    for (name, run) in scenarios {
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(run));
        desalign_failpoint::clear(); // never leak a schedule across scenarios
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (mut fields, failures, panicked) = match outcome {
            Ok((fields, failures)) => (fields, failures, false),
            Err(_) => (Vec::new(), vec!["scenario panicked".to_string()], true),
        };
        if panicked {
            panics += 1;
        }
        let passed = failures.is_empty() && !panicked;
        if !passed {
            failed += 1;
        }
        for f in &failures {
            eprintln!("chaos_bench: {name}: FAIL: {f}");
        }
        println!(
            "chaos_bench: {name}: {} ({elapsed_ms:.0}ms)",
            if passed { "ok" } else { "FAILED" }
        );
        let mut entry: Vec<(String, Json)> = vec![
            ("name".into(), json!(name)),
            ("passed".into(), json!(passed)),
            ("panicked".into(), json!(panicked)),
            ("elapsed_ms".into(), json!(elapsed_ms)),
            (
                "failures".into(),
                Json::Array(failures.iter().map(|f| json!(f.as_str())).collect()),
            ),
        ];
        entry.append(&mut fields);
        reports.push(Json::Object(entry));
    }

    let doc = json!({
        "schema": "chaos-bench-v1",
        "scenarios": Json::Array(reports),
        "panics": panics,
        "failed": failed,
    });
    let out_path = std::env::var("DESALIGN_CHAOS_OUT").unwrap_or_else(|_| "BENCH_chaos.json".into());
    std::fs::write(&out_path, format!("{doc}\n")).expect("write chaos report");
    println!("chaos_bench: wrote {out_path} ({panics} panics, {failed} failed scenarios)");

    if std::env::var("DESALIGN_CHAOS_GATE").as_deref() == Ok("1") && (panics > 0 || failed > 0) {
        eprintln!("chaos_bench: chaos gate FAILED ({panics} panics, {failed} failed scenarios)");
        std::process::exit(1);
    }
}
