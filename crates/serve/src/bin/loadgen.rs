//! Load generator + smoke client for `desalign-serve`.
//!
//! Two modes, selected by the environment:
//!
//! - **Smoke client** (`DESALIGN_SERVE_ADDR` set): drives a running server
//!   over one keep-alive connection — `/healthz`, `/metrics`, a fixed
//!   `/v1/align` query, and a deliberately malformed body. With
//!   `DESALIGN_LOADGEN_PROBE=<file>` the raw align response body is
//!   written there (ci.sh diffs probes across restarts and thread counts
//!   to enforce bit-identity); `DESALIGN_LOADGEN_SHUTDOWN=1` finishes by
//!   draining the server via `POST /admin/shutdown`.
//!
//! - **Bench** (no `DESALIGN_SERVE_ADDR`): starts in-process servers over
//!   a deterministic synthetic engine and measures latency two ways,
//!   writing exact p50/p99/QPS to `BENCH_serve.json`:
//!   *closed-loop* legs (every max_batch × thread-count combination; each
//!   client waits for its response before sending the next request) and
//!   *open-loop* legs (`DESALIGN_LOADGEN_RATES`, default `2000,8000`
//!   offered QPS; requests depart on a fixed arrival schedule whether or
//!   not earlier ones finished, so queueing delay is visible — the
//!   offered vs. achieved QPS gap is the overload signal).
//!   `DESALIGN_SERVE_GATE=1` turns the sanity conditions (≥ 3 legs,
//!   finite positive percentiles, zero errors) into hard failures for
//!   ci.sh.

use desalign_serve::{AlignEngine, ServeConfig, Server};
use desalign_tensor::Matrix;
use desalign_util::{json, Json};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn or_die<T, E: std::fmt::Display>(what: &str, result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("loadgen: {what}: {e}");
            std::process::exit(1);
        }
    }
}

// ---------------------------------------------------------------------
// Minimal HTTP/1.1 client (keep-alive aware)
// ---------------------------------------------------------------------

/// One keep-alive client connection with its own read buffer, so bytes of
/// the next pipelined response are never lost between round-trips.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Self { stream, buf: Vec::new() })
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed the connection"));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// Sends one request and reads one `Content-Length`-framed response.
    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: desalign\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.stream.flush()?;

        let header_end = loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad status line in {head:?}")))?;
        let content_length: usize = head
            .lines()
            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(|v| v.trim().to_string()))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        while self.buf.len() < header_end + content_length {
            self.fill()?;
        }
        let body = String::from_utf8_lossy(&self.buf[header_end..header_end + content_length]).into_owned();
        self.buf.drain(..header_end + content_length);
        Ok((status, body))
    }
}

// ---------------------------------------------------------------------
// Smoke-client mode
// ---------------------------------------------------------------------

fn expect(status: u16, want: u16, what: &str, body: &str) {
    if status != want {
        eprintln!("loadgen: {what}: expected HTTP {want}, got {status}: {body}");
        std::process::exit(1);
    }
}

fn smoke(addr: &str) {
    let mut client = or_die(&format!("connect {addr}"), Client::connect(addr));

    let (status, body) = or_die("GET /healthz", client.request("GET", "/healthz", ""));
    expect(status, 200, "healthz", &body);
    let health = or_die("parse healthz", Json::parse(&body));
    for field in ["status", "source_entities", "target_entities", "dim", "backend", "threads", "workers"] {
        if health.get(field).is_none() {
            eprintln!("loadgen: healthz is missing '{field}': {body}");
            std::process::exit(1);
        }
    }
    println!("loadgen: healthz ok: {body}");

    let (status, body) = or_die("GET /metrics", client.request("GET", "/metrics", ""));
    expect(status, 200, "metrics", &body);
    or_die("parse metrics", Json::parse(&body));
    println!("loadgen: metrics ok ({} bytes)", body.len());

    // The fixed probe query: ci.sh diffs this body bit-for-bit across
    // server restarts and DESALIGN_THREADS settings.
    let probe_query = r#"{"entity": 0, "k": 5}"#;
    let (status, probe_body) = or_die("POST /v1/align", client.request("POST", "/v1/align", probe_query));
    expect(status, 200, "align", &probe_body);
    let answer = or_die("parse align response", Json::parse(&probe_body));
    let n = answer.get("candidates").and_then(|c| c.as_array()).map_or(0, |c| c.len());
    if n == 0 {
        eprintln!("loadgen: align returned no candidates: {probe_body}");
        std::process::exit(1);
    }
    println!("loadgen: align ok ({n} candidates)");

    let (status, body) = or_die("POST bad align", client.request("POST", "/v1/align", r#"{"entity": "x"}"#));
    expect(status, 400, "malformed align must be a 400", &body);
    println!("loadgen: malformed query rejected with 400");

    let (status, body) = or_die("GET /readyz", client.request("GET", "/readyz", ""));
    expect(status, 200, "readyz", &body);
    let ready = or_die("parse readyz", Json::parse(&body));
    if ready.get("ready").and_then(Json::as_bool) != Some(true) {
        eprintln!("loadgen: /readyz reports not ready on an idle server: {body}");
        std::process::exit(1);
    }
    println!("loadgen: readyz ok");

    if let Ok(path) = std::env::var("DESALIGN_LOADGEN_PROBE") {
        or_die(&format!("write probe {path}"), std::fs::write(&path, &probe_body));
        println!("loadgen: probe written to {path}");
    }

    // Dump the raw /metrics body (fetched after the probe, so the
    // robustness counters are registered and visible) for ci.sh greps.
    if let Ok(path) = std::env::var("DESALIGN_LOADGEN_METRICS") {
        let (status, body) = or_die("GET /metrics (dump)", client.request("GET", "/metrics", ""));
        expect(status, 200, "metrics dump", &body);
        or_die(&format!("write metrics {path}"), std::fs::write(&path, &body));
        println!("loadgen: metrics written to {path}");
    }

    if std::env::var("DESALIGN_LOADGEN_SHUTDOWN").as_deref() == Ok("1") {
        let (status, body) = or_die("POST /admin/shutdown", client.request("POST", "/admin/shutdown", ""));
        expect(status, 200, "shutdown", &body);
        if !body.contains("draining") {
            eprintln!("loadgen: unexpected shutdown response: {body}");
            std::process::exit(1);
        }
        println!("loadgen: server draining");
    }
}

// ---------------------------------------------------------------------
// Bench mode
// ---------------------------------------------------------------------

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random embeddings in `[-1, 1)`.
fn synth_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| ((splitmix(seed.wrapping_add(i as u64)) >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0)
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64
}

struct Leg {
    mode: &'static str,
    max_batch: usize,
    threads: usize,
    requests: usize,
    errors: usize,
    shed: usize,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    /// Arrival rate the schedule asked for (open-loop only; NaN closed).
    offered_qps: f64,
    qps: f64,
}

fn run_leg(max_batch: usize, threads: usize, clients: usize, per_client: usize) -> Leg {
    desalign_parallel::set_thread_override(Some(threads));
    let engine = or_die(
        "build bench engine",
        AlignEngine::from_embeddings(
            synth_matrix(256, 32, 11),
            synth_matrix(512, 32, 23),
            &desalign_eval::RetrievalConfig::default(),
            256,
        ),
    );
    let cfg = ServeConfig {
        max_batch,
        batch_window: Duration::from_micros(200),
        workers: clients, // one worker per closed-loop client
        ..ServeConfig::default()
    };
    let server = or_die("start bench server", Server::start(engine, &cfg));
    let addr = server.addr().to_string();

    let t0 = Instant::now();
    let mut joins = Vec::new();
    for c in 0..clients {
        let addr = addr.clone();
        joins.push(std::thread::spawn(move || -> (Vec<u64>, usize) {
            let mut client = match Client::connect(&addr) {
                Ok(cl) => cl,
                Err(_) => return (Vec::new(), per_client),
            };
            let mut lat = Vec::with_capacity(per_client);
            let mut errors = 0usize;
            for i in 0..per_client {
                let body = format!("{{\"entity\": {}, \"k\": 10}}", (c * per_client + i) % 256);
                let t = Instant::now();
                match client.request("POST", "/v1/align", &body) {
                    Ok((200, _)) => lat.push(t.elapsed().as_micros() as u64),
                    _ => errors += 1,
                }
            }
            (lat, errors)
        }));
    }
    let mut all = Vec::new();
    let mut errors = 0usize;
    for j in joins {
        let (lat, e) = j.join().expect("client thread");
        all.extend(lat);
        errors += e;
    }
    let wall = t0.elapsed().as_secs_f64();
    server.shutdown();
    desalign_parallel::set_thread_override(None);

    all.sort_unstable();
    let mean = if all.is_empty() { f64::NAN } else { all.iter().sum::<u64>() as f64 / all.len() as f64 };
    Leg {
        mode: "closed",
        max_batch,
        threads,
        requests: all.len(),
        errors,
        shed: 0,
        p50_us: percentile(&all, 0.50),
        p99_us: percentile(&all, 0.99),
        mean_us: mean,
        offered_qps: f64::NAN,
        qps: if wall > 0.0 { all.len() as f64 / wall } else { f64::NAN },
    }
}

/// One open-loop leg: `total` requests depart on a fixed `rate`-QPS
/// arrival schedule split round-robin across `clients` connections. A
/// client that falls behind its schedule sends immediately (the backlog
/// is the point — latency is measured from the *scheduled* departure, so
/// queueing delay shows up in the percentiles). 503 sheds are counted
/// separately from hard errors: shedding under overload is the designed
/// response, not a failure.
fn run_open_leg(rate: f64, clients: usize, total: usize) -> Leg {
    desalign_parallel::set_thread_override(Some(2));
    let engine = or_die(
        "build bench engine",
        AlignEngine::from_embeddings(
            synth_matrix(256, 32, 11),
            synth_matrix(512, 32, 23),
            &desalign_eval::RetrievalConfig::default(),
            256,
        ),
    );
    let cfg = ServeConfig {
        max_batch: 16,
        batch_window: Duration::from_micros(200),
        workers: clients,
        ..ServeConfig::default()
    };
    let server = or_die("start bench server", Server::start(engine, &cfg));
    let addr = server.addr().to_string();

    let per_client = total.div_ceil(clients);
    let interval = Duration::from_secs_f64(clients as f64 / rate);
    let t0 = Instant::now();
    let mut joins = Vec::new();
    for c in 0..clients {
        let addr = addr.clone();
        joins.push(std::thread::spawn(move || -> (Vec<u64>, usize, usize) {
            let mut client = match Client::connect(&addr) {
                Ok(cl) => cl,
                Err(_) => return (Vec::new(), per_client, 0),
            };
            // Client c owns arrivals c, c+clients, c+2·clients, … of the
            // global schedule.
            let offset = Duration::from_secs_f64(c as f64 / rate);
            let mut lat = Vec::with_capacity(per_client);
            let (mut errors, mut shed) = (0usize, 0usize);
            for i in 0..per_client {
                let scheduled = t0 + offset + interval * (i as u32);
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                let body = format!("{{\"entity\": {}, \"k\": 10}}", (c * per_client + i) % 256);
                match client.request("POST", "/v1/align", &body) {
                    Ok((200, _)) => lat.push(scheduled.elapsed().as_micros() as u64),
                    Ok((503, _)) => shed += 1,
                    _ => errors += 1,
                }
            }
            (lat, errors, shed)
        }));
    }
    let mut all = Vec::new();
    let (mut errors, mut shed) = (0usize, 0usize);
    for j in joins {
        let (lat, e, s) = j.join().expect("client thread");
        all.extend(lat);
        errors += e;
        shed += s;
    }
    let wall = t0.elapsed().as_secs_f64();
    server.shutdown();
    desalign_parallel::set_thread_override(None);

    all.sort_unstable();
    let mean = if all.is_empty() { f64::NAN } else { all.iter().sum::<u64>() as f64 / all.len() as f64 };
    Leg {
        mode: "open",
        max_batch: 16,
        threads: 2,
        requests: all.len(),
        errors,
        shed,
        p50_us: percentile(&all, 0.50),
        p99_us: percentile(&all, 0.99),
        mean_us: mean,
        offered_qps: rate,
        qps: if wall > 0.0 { all.len() as f64 / wall } else { f64::NAN },
    }
}

fn bench() {
    let clients = env_usize("DESALIGN_LOADGEN_CLIENTS", 4);
    let per_client = env_usize("DESALIGN_LOADGEN_REQUESTS", 150);
    let out_path = std::env::var("DESALIGN_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());

    let mut legs = Vec::new();
    for &threads in &[1usize, 2] {
        for &max_batch in &[1usize, 4, 16] {
            let leg = run_leg(max_batch, threads, clients, per_client);
            println!(
                "loadgen: batch={:<2} threads={} → p50 {:>7.0}µs  p99 {:>7.0}µs  {:>7.0} qps  ({} req, {} errors)",
                leg.max_batch, leg.threads, leg.p50_us, leg.p99_us, leg.qps, leg.requests, leg.errors
            );
            legs.push(leg);
        }
    }

    // Open-loop legs: fixed arrival rates, offered vs. achieved QPS.
    let rates: Vec<f64> = std::env::var("DESALIGN_LOADGEN_RATES")
        .unwrap_or_else(|_| "2000,8000".into())
        .split(',')
        .filter_map(|r| r.trim().parse().ok())
        .filter(|r: &f64| *r > 0.0)
        .collect();
    let open_total = env_usize("DESALIGN_LOADGEN_OPEN_REQUESTS", 400);
    for &rate in &rates {
        let leg = run_open_leg(rate, clients, open_total);
        println!(
            "loadgen: open rate={:>6.0} → offered {:>6.0} achieved {:>6.0} qps  p50 {:>7.0}µs  p99 {:>7.0}µs  ({} req, {} shed, {} errors)",
            rate, leg.offered_qps, leg.qps, leg.p50_us, leg.p99_us, leg.requests, leg.shed, leg.errors
        );
        legs.push(leg);
    }

    let legs_json: Vec<Json> = legs
        .iter()
        .map(|l| {
            json!({
                "mode": l.mode,
                "max_batch": l.max_batch,
                "threads": l.threads,
                "requests": l.requests,
                "errors": l.errors,
                "shed": l.shed,
                "p50_us": l.p50_us,
                "p99_us": l.p99_us,
                "mean_us": l.mean_us,
                "offered_qps": l.offered_qps,
                "qps": l.qps,
            })
        })
        .collect();
    let doc = json!({
        "schema": "serve-bench-v1",
        "clients": clients,
        "requests_per_client": per_client,
        "legs": Json::Array(legs_json),
    });
    or_die(&format!("write {out_path}"), std::fs::write(&out_path, format!("{doc}\n")));
    println!("loadgen: wrote {out_path}");

    if std::env::var("DESALIGN_SERVE_GATE").as_deref() == Ok("1") {
        let mut failures = Vec::new();
        if legs.len() < 3 {
            failures.push(format!("only {} legs measured (need ≥ 3)", legs.len()));
        }
        if !legs.iter().any(|l| l.mode == "open") {
            failures.push("no open-loop legs measured (DESALIGN_LOADGEN_RATES empty?)".into());
        }
        for l in &legs {
            let tag = format!("mode={} batch={} threads={}", l.mode, l.max_batch, l.threads);
            if l.mode == "open" && !(l.offered_qps.is_finite() && l.offered_qps > 0.0) {
                failures.push(format!("{tag}: bogus offered rate {}", l.offered_qps));
            }
            if !(l.p50_us.is_finite() && l.p50_us > 0.0 && l.p99_us.is_finite() && l.p99_us > 0.0) {
                failures.push(format!("{tag}: non-finite or zero percentile (p50 {}, p99 {})", l.p50_us, l.p99_us));
            }
            if !(l.qps.is_finite() && l.qps > 0.0) {
                failures.push(format!("{tag}: bogus throughput {}", l.qps));
            }
            if l.errors > 0 {
                failures.push(format!("{tag}: {} failed requests", l.errors));
            }
        }
        if !failures.is_empty() {
            eprintln!("loadgen: serve gate FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        println!("loadgen: serve gate passed ({} legs)", legs.len());
    }
}

fn main() {
    match std::env::var("DESALIGN_SERVE_ADDR") {
        Ok(addr) => smoke(&addr),
        Err(_) => bench(),
    }
}
