//! The `desalign-serve` daemon: train-or-load a model, precompute serving
//! embeddings, and answer alignment queries over HTTP until drained.
//!
//! With `DESALIGN_SERVE_CHECKPOINT` pointing at an existing file the model
//! is revived through the digest-checked inference loader
//! (`load_checkpoint_inference`) — the restart bit-identity contract in
//! docs/SERVING.md rests on that path. Pointing it at a missing file
//! trains the synthetic model and saves the checkpoint there, so two
//! consecutive invocations with the same environment serve identical
//! bits: first train+save, then load.
//!
//! Knobs (all env, see docs/SERVING.md): `DESALIGN_SEED`,
//! `DESALIGN_SCALE`, `DESALIGN_EPOCHS`, `DESALIGN_SERVE_BACKEND`
//! (`dense` | `exact` | `ivf`), `DESALIGN_SERVE_CHECKPOINT`, plus the
//! `DESALIGN_SERVE_*` server knobs read by `ServeConfig::from_env`.

use desalign_core::{DesalignConfig, DesalignModel, RetrievalBackend};
use desalign_mmkg::{DatasetSpec, SynthConfig};
use desalign_serve::{AlignEngine, ServeConfig, Server};
use std::io::Write;
use std::path::PathBuf;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn or_die<T, E: std::fmt::Display>(what: &str, result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("desalign-serve: {what}: {e}");
            std::process::exit(1);
        }
    }
}

/// The model configuration is a pure function of the environment, so a
/// restarted server reconstructs the exact `config_digest` its checkpoint
/// was written under.
fn model_config(epochs: usize) -> DesalignConfig {
    let mut cfg = DesalignConfig::fast();
    cfg.epochs = epochs;
    cfg.retrieval.backend = match std::env::var("DESALIGN_SERVE_BACKEND").as_deref() {
        Err(_) | Ok("dense") => RetrievalBackend::Dense,
        Ok("exact") => RetrievalBackend::Exact,
        Ok("ivf") => RetrievalBackend::Ivf,
        Ok(other) => {
            eprintln!("desalign-serve: unknown DESALIGN_SERVE_BACKEND '{other}' (use dense|exact|ivf)");
            std::process::exit(2);
        }
    };
    cfg
}

fn main() {
    let seed = env_usize("DESALIGN_SEED", 7) as u64;
    let scale = env_usize("DESALIGN_SCALE", 60);
    let epochs = env_usize("DESALIGN_EPOCHS", 4);
    let serve_cfg = ServeConfig::from_env();

    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(scale).generate(seed);
    let mut model = DesalignModel::new(model_config(epochs), &ds, seed);

    match std::env::var("DESALIGN_SERVE_CHECKPOINT").ok().map(PathBuf::from) {
        Some(path) if path.exists() => {
            or_die(&format!("load checkpoint {}", path.display()), model.load_checkpoint_inference(&ds, &path));
            eprintln!("desalign-serve: loaded checkpoint {}", path.display());
        }
        Some(path) => {
            eprintln!("desalign-serve: training {epochs} epochs (no checkpoint at {})", path.display());
            let mut state = model.begin_training(&ds);
            model.train_epochs(&mut state, usize::MAX);
            or_die(&format!("save checkpoint {}", path.display()), model.save_checkpoint(&state, &path));
            model.end_training(state);
        }
        None => {
            eprintln!("desalign-serve: training {epochs} epochs (no DESALIGN_SERVE_CHECKPOINT)");
            model.fit(&ds);
        }
    }

    let engine = or_die("build serving engine", AlignEngine::from_model(&model, serve_cfg.cache_capacity));
    eprintln!(
        "desalign-serve: engine ready ({} source / {} target entities, dim {}, backend {:?})",
        engine.num_queries(),
        engine.num_items(),
        engine.dim(),
        engine.backend(),
    );

    // With a checkpoint source, expose POST /admin/reload: the reloader
    // rebuilds a fresh model shell (same env-derived config, so the
    // checkpoint header digests still match), loads the requested — or
    // boot — checkpoint through the digest-checked inference loader, and
    // hands back a candidate engine. Any failure leaves the serving
    // engine untouched.
    let boot_checkpoint = std::env::var("DESALIGN_SERVE_CHECKPOINT").ok().map(PathBuf::from);
    let server = match boot_checkpoint {
        Some(boot) => {
            let cache_capacity = serve_cfg.cache_capacity;
            let reloader = Box::new(move |requested: Option<&str>| {
                let path = requested.map(PathBuf::from).unwrap_or_else(|| boot.clone());
                let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(scale).generate(seed);
                let mut model = DesalignModel::new(model_config(epochs), &ds, seed);
                model
                    .load_checkpoint_inference(&ds, &path)
                    .map_err(|e| desalign_util::DesalignError::io(path.display().to_string(), e))?;
                AlignEngine::from_model(&model, cache_capacity)
            });
            or_die("bind server", Server::start_reloadable(engine, &serve_cfg, reloader))
        }
        None => or_die("bind server", Server::start(engine, &serve_cfg)),
    };

    // ci.sh greps this exact line for the ephemeral port.
    println!("desalign-serve listening on {}", server.addr());
    or_die("flush stdout", std::io::stdout().flush());

    // Blocks until a client POSTs /admin/shutdown (or the process is
    // signalled); the drain finishes in-flight requests first.
    server.wait();
    println!("desalign-serve drained");
}
