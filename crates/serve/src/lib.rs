//! # desalign-serve — alignment-as-a-service
//!
//! An online inference server for trained DESAlign models: load a
//! digest-checked checkpoint once, precompute the per-round L2-normalized
//! SP-state retrieval embeddings once, then answer top-k alignment
//! queries over plain HTTP/1.1 — std-only, like everything else in this
//! workspace. The wire protocol, configuration knobs, and operational
//! runbook are specified in `docs/SERVING.md`; this crate is the
//! implementation of that contract.
//!
//! ## Shape
//!
//! - [`AlignEngine`] — the read-only core: a query-side embedding table,
//!   an `ItemIndex` over the target corpus (exact or IVF, per the
//!   checkpoint's retrieval settings), an exact-scan fallback index for
//!   IVF engines, and an [`LruCache`] for entity-id featurizations.
//! - [`EngineSlot`] — the mutable cell between batcher and engine: an
//!   atomically swappable `Arc<AlignEngine>` (hot checkpoint reload) plus
//!   a circuit breaker that routes batches to the fallback after
//!   [`BreakerConfig::threshold`] consecutive engine faults and closes
//!   again on a clean half-open probe.
//! - [`Batcher`] — time/size-windowed coalescing: concurrent requests
//!   merge into one `search_batch` call without changing a single
//!   response bit (each row is scored independently). Queries carrying a
//!   deadline budget are shed at dequeue instead of scored late.
//! - [`Server`] — the TCP front: worker threads, bounded admission
//!   (deterministic 503 + `Retry-After` shedding), `POST /v1/align`,
//!   `GET /healthz` (liveness), `GET /readyz` (readiness: drain,
//!   breaker, queue room), `GET /metrics`, `POST /admin/reload`
//!   (digest-checked engine swap with rollback-by-absence, when started
//!   via [`Server::start_reloadable`]), `POST /admin/shutdown`, typed
//!   errors mapped to 4xx/5xx, graceful drain.
//!
//! Every I/O boundary evaluates `desalign-failpoint` sites
//! (`serve.read`, `serve.write`, `serve.engine`, `serve.reload`), so the
//! fault paths above are driven deterministically by the `faults_overload`
//! / `shutdown_race` suites and the `chaos_bench` bin — see
//! `docs/RELIABILITY.md`.
//!
//! ## Determinism at the edge
//!
//! The same query against the same checkpoint returns bit-identical
//! scores regardless of `DESALIGN_THREADS`, batch composition, cache
//! state, or server restarts — the serving path reuses the exact scan
//! kernels and normalization the evaluation harness uses, and every
//! source of nondeterminism (batching, caching, concurrency) is
//! confined to scheduling, never arithmetic.
//!
//! ## One query, end to end
//!
//! ```
//! use desalign_serve::{AlignEngine, ServeConfig, Server};
//! use desalign_eval::RetrievalConfig;
//! use desalign_tensor::Matrix;
//! use std::io::{Read, Write};
//! use std::net::TcpStream;
//!
//! // Serving embeddings normally come from a checkpoint
//! // (`AlignEngine::from_model`); explicit matrices keep this example
//! // self-contained.
//! let queries = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
//! let items = Matrix::from_rows(&[&[1.0, 0.0], &[0.7, 0.7], &[0.0, 1.0]]);
//! let engine = AlignEngine::from_embeddings(queries, items, &RetrievalConfig::default(), 16).unwrap();
//!
//! // Port 0 → the OS picks an ephemeral port; `addr()` reports it.
//! let server = Server::start(engine, &ServeConfig::default()).unwrap();
//!
//! let mut conn = TcpStream::connect(server.addr()).unwrap();
//! let body = r#"{"entity": 0, "k": 2}"#;
//! write!(
//!     conn,
//!     "POST /v1/align HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut response = String::new();
//! conn.read_to_string(&mut response).unwrap();
//! assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
//! assert!(response.contains("\"candidates\""), "{response}");
//!
//! server.shutdown(); // graceful drain: in-flight requests finish first
//! ```

mod batch;
mod cache;
mod engine;
mod http;
mod server;
mod slot;

pub use batch::Batcher;
pub use cache::LruCache;
pub use engine::{AlignAnswer, AlignEngine, AlignQuery};
pub use http::{write_response, write_response_with, Conn, HttpRequest, ReadOutcome, MAX_HEADER_BYTES};
pub use server::{Reloader, ServeConfig, Server};
pub use slot::{BreakerConfig, EngineSlot};
