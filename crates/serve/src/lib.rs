//! # desalign-serve — alignment-as-a-service
//!
//! An online inference server for trained DESAlign models: load a
//! digest-checked checkpoint once, precompute the per-round L2-normalized
//! SP-state retrieval embeddings once, then answer top-k alignment
//! queries over plain HTTP/1.1 — std-only, like everything else in this
//! workspace. The wire protocol, configuration knobs, and operational
//! runbook are specified in `docs/SERVING.md`; this crate is the
//! implementation of that contract.
//!
//! ## Shape
//!
//! - [`AlignEngine`] — the read-only core: a query-side embedding table,
//!   an `ItemIndex` over the target corpus (exact or IVF, per the
//!   checkpoint's retrieval settings), and an [`LruCache`] for
//!   entity-id featurizations.
//! - [`Batcher`] — time/size-windowed coalescing: concurrent requests
//!   merge into one `search_batch` call without changing a single
//!   response bit (each row is scored independently).
//! - [`Server`] — the TCP front: worker threads, `POST /v1/align`,
//!   `GET /healthz`, `GET /metrics`, `POST /admin/shutdown`, typed
//!   errors mapped to 4xx/5xx, graceful drain.
//!
//! ## Determinism at the edge
//!
//! The same query against the same checkpoint returns bit-identical
//! scores regardless of `DESALIGN_THREADS`, batch composition, cache
//! state, or server restarts — the serving path reuses the exact scan
//! kernels and normalization the evaluation harness uses, and every
//! source of nondeterminism (batching, caching, concurrency) is
//! confined to scheduling, never arithmetic.
//!
//! ## One query, end to end
//!
//! ```
//! use desalign_serve::{AlignEngine, ServeConfig, Server};
//! use desalign_eval::RetrievalConfig;
//! use desalign_tensor::Matrix;
//! use std::io::{Read, Write};
//! use std::net::TcpStream;
//!
//! // Serving embeddings normally come from a checkpoint
//! // (`AlignEngine::from_model`); explicit matrices keep this example
//! // self-contained.
//! let queries = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
//! let items = Matrix::from_rows(&[&[1.0, 0.0], &[0.7, 0.7], &[0.0, 1.0]]);
//! let engine = AlignEngine::from_embeddings(queries, items, &RetrievalConfig::default(), 16).unwrap();
//!
//! // Port 0 → the OS picks an ephemeral port; `addr()` reports it.
//! let server = Server::start(engine, &ServeConfig::default()).unwrap();
//!
//! let mut conn = TcpStream::connect(server.addr()).unwrap();
//! let body = r#"{"entity": 0, "k": 2}"#;
//! write!(
//!     conn,
//!     "POST /v1/align HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut response = String::new();
//! conn.read_to_string(&mut response).unwrap();
//! assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
//! assert!(response.contains("\"candidates\""), "{response}");
//!
//! server.shutdown(); // graceful drain: in-flight requests finish first
//! ```

mod batch;
mod cache;
mod engine;
mod http;
mod server;

pub use batch::Batcher;
pub use cache::LruCache;
pub use engine::{AlignAnswer, AlignEngine, AlignQuery};
pub use http::{write_response, Conn, HttpRequest, ReadOutcome, MAX_HEADER_BYTES};
pub use server::{ServeConfig, Server};
