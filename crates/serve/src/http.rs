//! A minimal, std-only HTTP/1.1 server-side codec.
//!
//! Implements exactly what the serving contract (docs/SERVING.md) needs:
//! request-line + header parsing, `Content-Length`-framed bodies,
//! keep-alive and pipelining (leftover buffered bytes feed the next
//! request), and fixed-layout responses. Chunked transfer encoding is
//! rejected, not implemented. Every malformed input degrades to a typed
//! [`ReadOutcome::Bad`] with an HTTP status — never a panic — which the
//! hostile-input integration tests drive byte by byte.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on request-line + header bytes (anti-slowloris).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request path (query strings are not split off; the serving API
    /// does not use them).
    pub path: String,
    /// The `Content-Length`-framed body.
    pub body: Vec<u8>,
    /// Whether the connection should stay open after responding
    /// (HTTP/1.1 default, overridden by `Connection: close`).
    pub keep_alive: bool,
    /// Per-request deadline budget in milliseconds, from the optional
    /// `x-desalign-deadline-ms` header. `None` means no deadline.
    /// Unparseable values are treated as absent rather than rejected —
    /// a deadline hint must never turn a valid request into a 400.
    pub deadline_ms: Option<u64>,
}

/// What reading one request produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, well-formed request.
    Request(HttpRequest),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out; `mid_request` tells whether bytes of an
    /// unfinished request had already arrived (408 material) or the
    /// connection was simply idle.
    Timeout {
        /// True when a partial request was already buffered.
        mid_request: bool,
    },
    /// A malformed or oversized request; respond with `status` and close.
    Bad {
        /// HTTP status to answer with (400, 405, 413, …).
        status: u16,
        /// One-line diagnostic for the error body.
        detail: String,
    },
    /// A transport error other than timeout; drop the connection.
    Io(io::Error),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// A buffered connection reader. Unlike `BufReader`, partial reads
/// interrupted by a timeout stay in the internal buffer, so a slow client
/// can resume mid-request, and bytes of a pipelined second request are
/// preserved for the next [`Conn::read_request`] call.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

impl Conn {
    /// Wraps an accepted stream.
    pub fn new(stream: TcpStream) -> Self {
        Self { stream, buf: Vec::new(), pos: 0 }
    }

    /// The underlying stream (for writing responses).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    fn buffered(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Reads more bytes from the socket into the buffer. `Ok(0)` is EOF.
    fn fill(&mut self) -> io::Result<usize> {
        // Failpoint `serve.read`: `wouldblock`/`timeout` faults route
        // through the existing timeout handling (408 / idle close), `err`
        // through the I/O drop path. No-op without an active schedule.
        desalign_failpoint::fail_io("serve.read")?;
        self.compact();
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Finds `\r\n` (or a bare `\n`) in the buffered bytes, returning the
    /// line without its terminator and consuming through it.
    fn take_line(&mut self) -> Option<String> {
        let hay = self.buffered();
        let nl = hay.iter().position(|&b| b == b'\n')?;
        let line = &hay[..nl];
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let text = String::from_utf8_lossy(line).into_owned();
        self.pos += nl + 1;
        Some(text)
    }

    /// Reads and parses one request. `max_body` bounds `Content-Length`.
    pub fn read_request(&mut self, max_body: usize) -> ReadOutcome {
        // --- request line + headers -----------------------------------
        let mut lines: Vec<String> = Vec::new();
        let mut header_bytes = 0usize;
        loop {
            match self.take_line() {
                Some(line) => {
                    header_bytes += line.len() + 2;
                    if header_bytes > MAX_HEADER_BYTES {
                        return ReadOutcome::Bad { status: 431, detail: "request headers exceed 16KiB".into() };
                    }
                    if line.is_empty() {
                        if lines.is_empty() {
                            // Tolerate stray blank lines between requests.
                            continue;
                        }
                        break;
                    }
                    lines.push(line);
                }
                None => match self.fill() {
                    Ok(0) => {
                        return if lines.is_empty() && self.buffered().is_empty() {
                            ReadOutcome::Closed
                        } else {
                            ReadOutcome::Bad { status: 400, detail: "connection closed mid-headers".into() }
                        };
                    }
                    Ok(_) => {}
                    Err(e) if is_timeout(&e) => {
                        return ReadOutcome::Timeout { mid_request: !lines.is_empty() || !self.buffered().is_empty() };
                    }
                    Err(e) => return ReadOutcome::Io(e),
                },
            }
        }

        // --- request line ---------------------------------------------
        let mut parts = lines[0].split_whitespace();
        let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v),
            _ => return ReadOutcome::Bad { status: 400, detail: format!("malformed request line '{}'", lines[0]) },
        };
        if !version.starts_with("HTTP/1.") {
            return ReadOutcome::Bad { status: 400, detail: format!("unsupported protocol '{version}'") };
        }
        let mut keep_alive = version != "HTTP/1.0";

        // --- headers ---------------------------------------------------
        let mut content_length = 0usize;
        let mut deadline_ms: Option<u64> = None;
        for line in &lines[1..] {
            let Some((name, value)) = line.split_once(':') else {
                return ReadOutcome::Bad { status: 400, detail: format!("malformed header '{line}'") };
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => match value.parse::<usize>() {
                    Ok(n) => content_length = n,
                    Err(_) => return ReadOutcome::Bad { status: 400, detail: format!("bad Content-Length '{value}'") },
                },
                "transfer-encoding" => {
                    return ReadOutcome::Bad { status: 400, detail: "chunked transfer encoding is not supported".into() };
                }
                "connection" => {
                    let v = value.to_ascii_lowercase();
                    if v.contains("close") {
                        keep_alive = false;
                    } else if v.contains("keep-alive") {
                        keep_alive = true;
                    }
                }
                "x-desalign-deadline-ms" => deadline_ms = value.parse::<u64>().ok(),
                _ => {}
            }
        }
        if content_length > max_body {
            return ReadOutcome::Bad {
                status: 413,
                detail: format!("Content-Length {content_length} exceeds the {max_body}-byte limit"),
            };
        }

        // --- body -------------------------------------------------------
        while self.buffered().len() < content_length {
            match self.fill() {
                Ok(0) => {
                    return ReadOutcome::Bad {
                        status: 400,
                        detail: format!(
                            "connection closed after {} of {content_length} body bytes",
                            self.buffered().len()
                        ),
                    };
                }
                Ok(_) => {}
                Err(e) if is_timeout(&e) => return ReadOutcome::Timeout { mid_request: true },
                Err(e) => return ReadOutcome::Io(e),
            }
        }
        let body = self.buffered()[..content_length].to_vec();
        self.pos += content_length;
        ReadOutcome::Request(HttpRequest { method, path, body, keep_alive, deadline_ms })
    }
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one JSON response with explicit framing. `keep_alive: false`
/// adds `Connection: close` so well-behaved clients stop pipelining.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str, keep_alive: bool) -> io::Result<()> {
    write_response_with(stream, status, body, keep_alive, &[])
}

/// [`write_response`] with additional response headers (e.g.
/// `Retry-After` on a load-shed 503). Header names and values are
/// emitted verbatim; callers pass well-formed tokens only.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    // Failpoint `serve.write`: a fault here drops the connection after
    // the request was processed — the client sees a torn response, the
    // server must survive it. No-op without an active schedule.
    desalign_failpoint::fail_io("serve.write")?;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}",
        status,
        reason(status),
        body.len(),
        if keep_alive { "" } else { "Connection: close\r\n" },
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn roundtrip(payload: &[u8]) -> ReadOutcome {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload = payload.to_vec();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&payload).unwrap();
            // Drop closes the socket → EOF on the server side.
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::new(stream);
        let out = conn.read_request(1024);
        client.join().unwrap();
        out
    }

    #[test]
    fn parses_a_complete_request() {
        let out = roundtrip(b"POST /v1/align HTTP/1.1\r\nContent-Length: 4\r\n\r\nhej!");
        match out {
            ReadOutcome::Request(r) => {
                assert_eq!(r.method, "POST");
                assert_eq!(r.path, "/v1/align");
                assert_eq!(r.body, b"hej!");
                assert!(r.keep_alive);
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn deadline_header_parses_and_bad_values_are_ignored() {
        let out = roundtrip(b"POST /v1/align HTTP/1.1\r\nx-desalign-deadline-ms: 250\r\nContent-Length: 0\r\n\r\n");
        match out {
            ReadOutcome::Request(r) => assert_eq!(r.deadline_ms, Some(250)),
            other => panic!("expected request, got {other:?}"),
        }
        let out = roundtrip(b"POST /v1/align HTTP/1.1\r\nX-Desalign-Deadline-Ms: soon\r\nContent-Length: 0\r\n\r\n");
        match out {
            ReadOutcome::Request(r) => assert_eq!(r.deadline_ms, None, "bad value must degrade to no deadline"),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_a_400() {
        let out = roundtrip(b"POST /v1/align HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort");
        match out {
            ReadOutcome::Bad { status: 400, detail } => assert!(detail.contains("5 of 100")),
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn oversized_content_length_is_a_413() {
        let out = roundtrip(b"POST /v1/align HTTP/1.1\r\nContent-Length: 999999\r\n\r\n");
        assert!(matches!(out, ReadOutcome::Bad { status: 413, .. }));
    }

    #[test]
    fn garbage_request_line_is_a_400_and_eof_is_closed() {
        assert!(matches!(roundtrip(b"\xff\xfe garbage\r\n\r\n"), ReadOutcome::Bad { status: 400, .. }));
        assert!(matches!(roundtrip(b""), ReadOutcome::Closed));
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n").unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::new(stream);
        let first = match conn.read_request(1024) {
            ReadOutcome::Request(r) => r.path,
            other => panic!("expected request, got {other:?}"),
        };
        let second = match conn.read_request(1024) {
            ReadOutcome::Request(r) => r.path,
            other => panic!("expected request, got {other:?}"),
        };
        assert_eq!((first.as_str(), second.as_str()), ("/healthz", "/metrics"));
        client.join().unwrap();
    }
}
