//! Time/size-windowed request batching.
//!
//! Concurrent connections each hold a [`Batcher`] handle; queries funnel
//! into one dedicated batching thread that coalesces everything arriving
//! within a small window (or until `max_batch`) into **one**
//! [`AlignEngine::answer_batch`] call — one `desalign-parallel` region
//! instead of per-request scans. Because every query row is scored
//! independently, coalescing is invisible in the response bytes; it only
//! changes throughput.

use crate::engine::{AlignAnswer, AlignEngine, AlignQuery};
use desalign_util::{DefectClass, DesalignError};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct BatchItem {
    query: AlignQuery,
    k: usize,
    reply: mpsc::Sender<Result<AlignAnswer, DesalignError>>,
}

/// A clonable handle submitting queries to the batching thread. The
/// thread exits when the last handle is dropped, so batcher lifetime
/// follows the workers that hold the handles.
#[derive(Clone)]
pub struct Batcher {
    tx: mpsc::Sender<BatchItem>,
}

struct BatchCounters {
    batches: desalign_telemetry::Counter,
    queries: desalign_telemetry::Counter,
    last_batch: desalign_telemetry::Gauge,
}

fn batch_counters() -> &'static BatchCounters {
    static C: OnceLock<BatchCounters> = OnceLock::new();
    C.get_or_init(|| BatchCounters {
        batches: desalign_telemetry::counter("serve.batches"),
        queries: desalign_telemetry::counter("serve.batched_queries"),
        last_batch: desalign_telemetry::gauge("serve.last_batch"),
    })
}

impl Batcher {
    /// Spawns the batching thread over `engine`. `max_batch` bounds how
    /// many queries one engine call may coalesce; `window` is how long the
    /// thread waits for stragglers after the first query of a batch
    /// arrives (ignored when `max_batch <= 1` — nothing to wait for).
    pub fn spawn(engine: Arc<AlignEngine>, max_batch: usize, window: Duration) -> (Self, JoinHandle<()>) {
        let (tx, rx) = mpsc::channel::<BatchItem>();
        let max_batch = max_batch.max(1);
        let handle = std::thread::Builder::new()
            .name("desalign-serve-batcher".into())
            .spawn(move || run_batcher(engine, rx, max_batch, window))
            .expect("spawn batcher thread");
        (Self { tx }, handle)
    }

    /// Submits one query and blocks until its answer arrives (typically
    /// one batching window plus the engine call).
    ///
    /// # Errors
    /// The query's own typed error, or [`DefectClass::Io`] when the
    /// batching thread is gone (server shutting down).
    pub fn submit(&self, query: AlignQuery, k: usize) -> Result<AlignAnswer, DesalignError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let unavailable = || DesalignError::new(DefectClass::Io, "serve.batcher", "batching thread is gone (server draining)");
        self.tx.send(BatchItem { query, k, reply: reply_tx }).map_err(|_| unavailable())?;
        reply_rx.recv().map_err(|_| unavailable())?
    }
}

fn run_batcher(engine: Arc<AlignEngine>, rx: mpsc::Receiver<BatchItem>, max_batch: usize, window: Duration) {
    loop {
        // Block for the first query of the next batch; a closed channel
        // means every handle (worker) is gone → drain complete.
        let first = match rx.recv() {
            Ok(item) => item,
            Err(_) => return,
        };
        let mut batch = vec![first];
        if max_batch > 1 {
            let deadline = Instant::now() + window;
            while batch.len() < max_batch {
                let now = Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero()) else {
                    break;
                };
                match rx.recv_timeout(remaining) {
                    Ok(item) => batch.push(item),
                    Err(_) => break, // window elapsed or channel closed
                }
            }
        }
        let c = batch_counters();
        c.batches.incr();
        c.queries.add(batch.len() as u64);
        c.last_batch.set(batch.len() as f64);
        let queries: Vec<(AlignQuery, usize)> = batch.iter().map(|i| (i.query.clone(), i.k)).collect();
        let answers = engine.answer_batch(&queries);
        for (item, answer) in batch.into_iter().zip(answers) {
            // A reply send fails only when the submitter gave up
            // (connection died); the batch itself is unaffected.
            let _ = item.reply.send(answer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_eval::RetrievalConfig;
    use desalign_tensor::Matrix;

    fn tiny_engine() -> Arc<AlignEngine> {
        let queries = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let items = Matrix::from_rows(&[&[1.0, 0.0], &[0.7, 0.7], &[0.0, 1.0]]);
        Arc::new(AlignEngine::from_embeddings(queries, items, &RetrievalConfig::default(), 8).unwrap())
    }

    #[test]
    fn concurrent_submissions_match_direct_answers() {
        let engine = tiny_engine();
        let (batcher, handle) = Batcher::spawn(engine.clone(), 4, Duration::from_millis(5));
        let mut joins = Vec::new();
        for i in 0..8usize {
            let b = batcher.clone();
            joins.push(std::thread::spawn(move || (i, b.submit(AlignQuery::Entity(i % 2), 2).unwrap())));
        }
        for j in joins {
            let (i, got) = j.join().unwrap();
            assert_eq!(got, engine.answer(&AlignQuery::Entity(i % 2), 2).unwrap(), "query {i}");
        }
        drop(batcher);
        handle.join().unwrap(); // thread drains once every handle is gone
    }

    #[test]
    fn bad_queries_fail_alone_through_the_batcher() {
        let engine = tiny_engine();
        let (batcher, handle) = Batcher::spawn(engine, 4, Duration::from_millis(2));
        let err = batcher.submit(AlignQuery::Entity(42), 2).unwrap_err();
        assert_eq!(err.class, DefectClass::PairOutOfRange);
        let ok = batcher.submit(AlignQuery::Entity(0), 2).unwrap();
        assert_eq!(ok.candidates.len(), 2);
        drop(batcher);
        handle.join().unwrap();
    }
}
