//! Time/size-windowed request batching.
//!
//! Concurrent connections each hold a [`Batcher`] handle; queries funnel
//! into one dedicated batching thread that coalesces everything arriving
//! within a small window (or until `max_batch`) into **one**
//! [`AlignEngine::answer_batch`] call — one `desalign-parallel` region
//! instead of per-request scans. Because every query row is scored
//! independently, coalescing is invisible in the response bytes; it only
//! changes throughput.
//!
//! Two robustness hooks ride on the batch path:
//!
//! - **Deadline shedding.** A query carrying an already-expired deadline
//!   ([`Batcher::submit_with_deadline`]) is answered with a typed
//!   `Io`-class error *before* the engine runs — scoring work whose
//!   caller has stopped waiting only steals capacity from live requests.
//!   Counted in `serve.deadline_expired`.
//! - **Engine slot.** [`Batcher::spawn_slot`] runs batches through an
//!   [`EngineSlot`] (circuit breaker + hot reload): the engine `Arc` is
//!   snapshotted once per batch, so a concurrent checkpoint reload never
//!   swaps the engine out from under in-flight queries.

use crate::engine::{AlignAnswer, AlignEngine, AlignQuery};
use crate::slot::EngineSlot;
use desalign_util::{DefectClass, DesalignError};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct BatchItem {
    query: AlignQuery,
    k: usize,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<AlignAnswer, DesalignError>>,
}

/// A clonable handle submitting queries to the batching thread. The
/// thread exits when the last handle is dropped, so batcher lifetime
/// follows the workers that hold the handles.
#[derive(Clone)]
pub struct Batcher {
    tx: mpsc::Sender<BatchItem>,
}

struct BatchCounters {
    batches: desalign_telemetry::Counter,
    queries: desalign_telemetry::Counter,
    expired: desalign_telemetry::Counter,
    last_batch: desalign_telemetry::Gauge,
}

fn batch_counters() -> &'static BatchCounters {
    static C: OnceLock<BatchCounters> = OnceLock::new();
    C.get_or_init(|| BatchCounters {
        batches: desalign_telemetry::counter("serve.batches"),
        queries: desalign_telemetry::counter("serve.batched_queries"),
        expired: desalign_telemetry::counter("serve.deadline_expired"),
        last_batch: desalign_telemetry::gauge("serve.last_batch"),
    })
}

/// How one batch of items gets answered: a pinned engine (the original
/// [`Batcher::spawn`] contract) or a reloadable slot with breaker.
enum EngineSource {
    Fixed(Arc<AlignEngine>),
    Slot(Arc<EngineSlot>),
}

impl EngineSource {
    fn answer(&self, queries: &[(AlignQuery, usize)]) -> Vec<Result<AlignAnswer, DesalignError>> {
        match self {
            EngineSource::Fixed(engine) => engine.answer_batch(queries),
            EngineSource::Slot(slot) => {
                // One snapshot per batch: a swap mid-batch is invisible.
                let engine = slot.current();
                slot.answer_batch(&engine, queries)
            }
        }
    }
}

impl Batcher {
    /// Spawns the batching thread over `engine`. `max_batch` bounds how
    /// many queries one engine call may coalesce; `window` is how long the
    /// thread waits for stragglers after the first query of a batch
    /// arrives (ignored when `max_batch <= 1` — nothing to wait for).
    pub fn spawn(engine: Arc<AlignEngine>, max_batch: usize, window: Duration) -> (Self, JoinHandle<()>) {
        Self::spawn_source(EngineSource::Fixed(engine), max_batch, window)
    }

    /// [`spawn`](Self::spawn) over an [`EngineSlot`]: batches go through
    /// the circuit breaker and pick up hot-reloaded engines at batch
    /// granularity.
    pub fn spawn_slot(slot: Arc<EngineSlot>, max_batch: usize, window: Duration) -> (Self, JoinHandle<()>) {
        Self::spawn_source(EngineSource::Slot(slot), max_batch, window)
    }

    fn spawn_source(source: EngineSource, max_batch: usize, window: Duration) -> (Self, JoinHandle<()>) {
        let (tx, rx) = mpsc::channel::<BatchItem>();
        let max_batch = max_batch.max(1);
        let handle = std::thread::Builder::new()
            .name("desalign-serve-batcher".into())
            .spawn(move || run_batcher(source, rx, max_batch, window))
            .expect("spawn batcher thread");
        (Self { tx }, handle)
    }

    /// Submits one query and blocks until its answer arrives (typically
    /// one batching window plus the engine call).
    ///
    /// # Errors
    /// The query's own typed error, or [`DefectClass::Io`] when the
    /// batching thread is gone (server shutting down).
    pub fn submit(&self, query: AlignQuery, k: usize) -> Result<AlignAnswer, DesalignError> {
        self.submit_with_deadline(query, k, None)
    }

    /// [`submit`](Self::submit) with an optional deadline. A query whose
    /// deadline has passed by the time the batcher dequeues it is shed
    /// with an `Io`-class error (HTTP 503) instead of being scored.
    pub fn submit_with_deadline(
        &self,
        query: AlignQuery,
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<AlignAnswer, DesalignError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let unavailable = || DesalignError::new(DefectClass::Io, "serve.batcher", "batching thread is gone (server draining)");
        self.tx.send(BatchItem { query, k, deadline, reply: reply_tx }).map_err(|_| unavailable())?;
        reply_rx.recv().map_err(|_| unavailable())?
    }
}

fn expired_error() -> DesalignError {
    DesalignError::new(DefectClass::Io, "serve.deadline", "deadline expired before the query was scored")
}

fn run_batcher(source: EngineSource, rx: mpsc::Receiver<BatchItem>, max_batch: usize, window: Duration) {
    loop {
        // Block for the first query of the next batch; a closed channel
        // means every handle (worker) is gone → drain complete.
        let first = match rx.recv() {
            Ok(item) => item,
            Err(_) => return,
        };
        let mut batch = vec![first];
        if max_batch > 1 {
            let deadline = Instant::now() + window;
            while batch.len() < max_batch {
                let now = Instant::now();
                // `filter(!is_zero)` matters: `recv_timeout(ZERO)` can
                // still dequeue an already-queued item on some
                // platforms, turning "window over" into a busy spin.
                // The regression tests below pin both edges.
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero()) else {
                    break;
                };
                match rx.recv_timeout(remaining) {
                    Ok(item) => batch.push(item),
                    Err(mpsc::RecvTimeoutError::Timeout) => break, // window elapsed
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        // Shed items whose deadline passed while they queued: reply with
        // the typed expiry error, score only the rest.
        let now = Instant::now();
        let (expired, live): (Vec<BatchItem>, Vec<BatchItem>) =
            batch.into_iter().partition(|i| matches!(i.deadline, Some(d) if d <= now));
        let c = batch_counters();
        if !expired.is_empty() {
            c.expired.add(expired.len() as u64);
            for item in expired {
                let _ = item.reply.send(Err(expired_error()));
            }
        }
        if live.is_empty() {
            continue;
        }
        let batch = live;
        c.batches.incr();
        c.queries.add(batch.len() as u64);
        c.last_batch.set(batch.len() as f64);
        let queries: Vec<(AlignQuery, usize)> = batch.iter().map(|i| (i.query.clone(), i.k)).collect();
        let answers = source.answer(&queries);
        for (item, answer) in batch.into_iter().zip(answers) {
            // A reply send fails only when the submitter gave up
            // (connection died); the batch itself is unaffected.
            let _ = item.reply.send(answer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::BreakerConfig;
    use desalign_eval::RetrievalConfig;
    use desalign_tensor::Matrix;

    fn tiny_engine() -> Arc<AlignEngine> {
        let queries = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let items = Matrix::from_rows(&[&[1.0, 0.0], &[0.7, 0.7], &[0.0, 1.0]]);
        Arc::new(AlignEngine::from_embeddings(queries, items, &RetrievalConfig::default(), 8).unwrap())
    }

    #[test]
    fn concurrent_submissions_match_direct_answers() {
        let engine = tiny_engine();
        let (batcher, handle) = Batcher::spawn(engine.clone(), 4, Duration::from_millis(5));
        let mut joins = Vec::new();
        for i in 0..8usize {
            let b = batcher.clone();
            joins.push(std::thread::spawn(move || (i, b.submit(AlignQuery::Entity(i % 2), 2).unwrap())));
        }
        for j in joins {
            let (i, got) = j.join().unwrap();
            assert_eq!(got, engine.answer(&AlignQuery::Entity(i % 2), 2).unwrap(), "query {i}");
        }
        drop(batcher);
        handle.join().unwrap(); // thread drains once every handle is gone
    }

    #[test]
    fn bad_queries_fail_alone_through_the_batcher() {
        let engine = tiny_engine();
        let (batcher, handle) = Batcher::spawn(engine, 4, Duration::from_millis(2));
        let err = batcher.submit(AlignQuery::Entity(42), 2).unwrap_err();
        assert_eq!(err.class, DefectClass::PairOutOfRange);
        let ok = batcher.submit(AlignQuery::Entity(0), 2).unwrap();
        assert_eq!(ok.candidates.len(), 2);
        drop(batcher);
        handle.join().unwrap();
    }

    #[test]
    fn zero_window_never_spins_and_still_answers_every_query() {
        // Regression: with window = 0 the straggler loop must break
        // immediately (each query becomes its own batch) instead of
        // calling recv_timeout with a zero/expired deadline forever.
        let engine = tiny_engine();
        let (batcher, handle) = Batcher::spawn(engine, 8, Duration::ZERO);
        for i in 0..16usize {
            let ok = batcher.submit(AlignQuery::Entity(i % 2), 2).unwrap();
            assert_eq!(ok.candidates.len(), 2);
        }
        drop(batcher);
        handle.join().unwrap();
    }

    #[test]
    fn expired_deadlines_are_shed_without_touching_the_engine() {
        let engine = tiny_engine();
        let (batcher, handle) = Batcher::spawn(engine.clone(), 4, Duration::from_millis(2));
        // A deadline already in the past must come back as the typed
        // expiry error, not an answer.
        let past = Instant::now() - Duration::from_millis(10);
        let err = batcher.submit_with_deadline(AlignQuery::Entity(0), 2, Some(past)).unwrap_err();
        assert_eq!(err.class, DefectClass::Io);
        assert_eq!(err.location, "serve.deadline");
        // A generous deadline still answers normally afterwards — the
        // shed path must not wedge the batching loop.
        let future = Instant::now() + Duration::from_secs(5);
        let ok = batcher.submit_with_deadline(AlignQuery::Entity(0), 2, Some(future)).unwrap();
        assert_eq!(ok, engine.answer(&AlignQuery::Entity(0), 2).unwrap());
        drop(batcher);
        handle.join().unwrap();
    }

    #[test]
    fn slot_batcher_answers_and_survives_a_mid_stream_swap() {
        let slot = Arc::new(EngineSlot::from_arc(tiny_engine(), BreakerConfig::default()));
        let (batcher, handle) = Batcher::spawn_slot(slot.clone(), 4, Duration::from_millis(2));
        let before = batcher.submit(AlignQuery::Entity(0), 2).unwrap();
        assert_eq!(before.candidates.len(), 2);
        // Swap in a smaller engine; subsequent batches see it.
        let queries = Matrix::from_rows(&[&[1.0, 0.0]]);
        let items = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let fresh = AlignEngine::from_embeddings(queries, items, &RetrievalConfig::default(), 4).unwrap();
        assert_eq!(slot.swap(fresh), 2);
        let after = batcher.submit(AlignQuery::Entity(0), 2).unwrap();
        assert_eq!(after.candidates.len(), 2);
        // Entity 1 exists only in the old engine: the new generation
        // rejects it, proving batches picked up the swap.
        let err = batcher.submit(AlignQuery::Entity(1), 2).unwrap_err();
        assert_eq!(err.class, DefectClass::PairOutOfRange);
        drop(batcher);
        handle.join().unwrap();
    }
}
