//! The TCP/HTTP server: worker threads, routing, error mapping, graceful
//! drain.
//!
//! Connections are handled by dedicated OS worker threads (blocking socket
//! reads must not occupy the `desalign-parallel` pool, whose workers are
//! batch-synchronous); the *compute* still runs through the pool, because
//! every `/v1/align` query funnels into the [`Batcher`]'s single
//! `search_batch` call. Shutdown is cooperative and std-only: a drain flag
//! plus one self-connect "poke" per worker unblocks `accept`, workers
//! finish their in-flight requests (bounded by the read timeout), and the
//! batching thread exits when the last worker drops its handle.

use crate::batch::Batcher;
use crate::engine::{AlignEngine, AlignQuery};
use crate::http::{write_response, Conn, HttpRequest, ReadOutcome};
use desalign_eval::IndexKind;
use desalign_util::{json, DefectClass, DesalignError, Json};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the server's behaviour is parameterized by. Every knob is
/// documented in docs/SERVING.md and exercised by a test or the ci.sh
/// smoke.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port `0` selects an ephemeral port (the bound
    /// address is reported by [`Server::addr`]).
    pub addr: String,
    /// Connection worker threads (concurrent connections served; further
    /// connections queue in the OS accept backlog).
    pub workers: usize,
    /// Maximum queries coalesced into one engine call.
    pub max_batch: usize,
    /// How long the batcher waits for stragglers after a batch opens.
    pub batch_window: Duration,
    /// LRU featurization-cache capacity (entries); 0 disables.
    pub cache_capacity: usize,
    /// Maximum accepted `Content-Length` in bytes.
    pub max_body: usize,
    /// `k` used when a query omits it.
    pub default_k: usize,
    /// Socket read timeout — bounds how long a stalled client can hold a
    /// worker, and therefore the drain latency of [`Server::shutdown`].
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_batch: 16,
            batch_window: Duration::from_micros(500),
            cache_capacity: 1024,
            max_body: 1 << 20,
            default_k: 10,
            read_timeout: Duration::from_secs(5),
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

impl ServeConfig {
    /// Reads every knob from `DESALIGN_SERVE_*` environment variables,
    /// falling back to the defaults above. Documented in docs/SERVING.md.
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            addr: std::env::var("DESALIGN_SERVE_ADDR").unwrap_or(d.addr),
            workers: env_usize("DESALIGN_SERVE_WORKERS", d.workers).max(1),
            max_batch: env_usize("DESALIGN_SERVE_BATCH", d.max_batch).max(1),
            batch_window: Duration::from_micros(env_usize("DESALIGN_SERVE_WINDOW_US", 500) as u64),
            cache_capacity: env_usize("DESALIGN_SERVE_CACHE", d.cache_capacity),
            max_body: env_usize("DESALIGN_SERVE_MAX_BODY", d.max_body),
            default_k: env_usize("DESALIGN_SERVE_K", d.default_k),
            read_timeout: Duration::from_millis(env_usize("DESALIGN_SERVE_TIMEOUT_MS", 5000) as u64),
        }
    }
}

struct Shared {
    engine: Arc<AlignEngine>,
    draining: AtomicBool,
    addr: SocketAddr,
    workers: usize,
    max_body: usize,
    default_k: usize,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the drain flag and unblocks every worker's `accept` with one
    /// self-connect per worker. Idempotent and non-blocking, so request
    /// handlers can call it (`POST /admin/shutdown`) without deadlocking
    /// the worker they run on.
    fn initiate(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        for _ in 0..self.workers {
            // A refused poke means the worker already stopped accepting.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or have a client POST `/admin/shutdown` and then
/// [`Server::wait`]).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    batcher: JoinHandle<()>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the batching thread and `cfg.workers`
    /// connection workers, and returns immediately.
    pub fn start(engine: AlignEngine, cfg: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(engine);
        let (batcher, batcher_handle) = Batcher::spawn(engine.clone(), cfg.max_batch, cfg.batch_window);
        let shared = Arc::new(Shared {
            engine,
            draining: AtomicBool::new(false),
            addr,
            workers: cfg.workers.max(1),
            max_body: cfg.max_body,
            default_k: cfg.default_k.max(1),
        });
        let mut workers = Vec::with_capacity(shared.workers);
        for w in 0..shared.workers {
            let listener = listener.try_clone()?;
            let shared = shared.clone();
            let batcher = batcher.clone();
            let timeout = cfg.read_timeout;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("desalign-serve-worker-{w}"))
                    .spawn(move || worker_loop(listener, shared, batcher, timeout))?,
            );
        }
        // Only workers hold batcher handles now: when they exit, the
        // batching thread drains and exits too.
        drop(batcher);
        Ok(Server { addr, shared, workers, batcher: batcher_handle })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain without blocking: no new connections are
    /// accepted, in-flight requests finish (bounded by the read timeout).
    pub fn initiate_shutdown(&self) {
        self.shared.initiate();
    }

    /// Blocks until every worker and the batching thread have exited —
    /// i.e. until someone (this process or a client's `/admin/shutdown`)
    /// initiated a drain and it completed.
    pub fn wait(self) {
        for w in self.workers {
            let _ = w.join();
        }
        let _ = self.batcher.join();
    }

    /// Graceful shutdown: initiate the drain and wait for it.
    pub fn shutdown(self) {
        self.initiate_shutdown();
        self.wait();
    }
}

struct ServeMetrics {
    requests: desalign_telemetry::Counter,
    errors: desalign_telemetry::Counter,
    align_queries: desalign_telemetry::Counter,
    connections: desalign_telemetry::Counter,
    request_us: desalign_telemetry::Histogram,
    align_us: desalign_telemetry::Histogram,
}

fn serve_metrics() -> &'static ServeMetrics {
    static M: OnceLock<ServeMetrics> = OnceLock::new();
    M.get_or_init(|| ServeMetrics {
        requests: desalign_telemetry::counter("serve.requests"),
        errors: desalign_telemetry::counter("serve.errors"),
        align_queries: desalign_telemetry::counter("serve.align_queries"),
        connections: desalign_telemetry::counter("serve.connections"),
        request_us: desalign_telemetry::histogram("serve.request_us"),
        align_us: desalign_telemetry::histogram("serve.align_us"),
    })
}

fn worker_loop(listener: TcpListener, shared: Arc<Shared>, batcher: Batcher, timeout: Duration) {
    loop {
        if shared.draining() {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => continue,
        };
        if shared.draining() {
            return; // the poke connection itself lands here
        }
        serve_metrics().connections.incr();
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_nodelay(true);
        handle_connection(Conn::new(stream), &shared, &batcher);
    }
}

fn handle_connection(mut conn: Conn, shared: &Shared, batcher: &Batcher) {
    loop {
        match conn.read_request(shared.max_body) {
            ReadOutcome::Request(req) => {
                let t0 = Instant::now();
                let _span = desalign_telemetry::span("serve.request");
                let (status, body, shutdown) = route(&req, shared, batcher);
                let m = serve_metrics();
                m.requests.incr();
                if status >= 400 {
                    m.errors.incr();
                }
                m.request_us.record(t0.elapsed().as_micros() as u64);
                let keep = req.keep_alive && !shutdown && !shared.draining();
                let write_ok = write_response(conn.stream(), status, &body, keep).is_ok();
                if shutdown {
                    shared.initiate();
                }
                if !write_ok || !keep {
                    return;
                }
            }
            ReadOutcome::Closed | ReadOutcome::Io(_) => return,
            ReadOutcome::Timeout { mid_request } => {
                if mid_request {
                    serve_metrics().errors.incr();
                    let _ = write_response(conn.stream(), 408, &error_body_raw("io", "serve.read", "request timed out"), false);
                    return;
                }
                if shared.draining() {
                    return; // idle keep-alive connection during a drain
                }
            }
            ReadOutcome::Bad { status, detail } => {
                serve_metrics().errors.incr();
                let class = if status == 413 { "schema" } else { "parse" };
                let _ = write_response(conn.stream(), status, &error_body_raw(class, "serve.http", &detail), false);
                return;
            }
        }
    }
}

/// Maps a typed error to its HTTP status: unknown entities are 404,
/// server-side unavailability 503, and every other data defect a 400.
fn status_for(class: DefectClass) -> u16 {
    match class {
        DefectClass::PairOutOfRange => 404,
        DefectClass::Io => 503,
        _ => 400,
    }
}

fn error_body(err: &DesalignError) -> String {
    json!({
        "error": json!({
            "class": err.class.name(),
            "location": err.location.as_str(),
            "context": err.context.as_str(),
        })
    })
    .to_string()
}

fn error_body_raw(class: &str, location: &str, context: &str) -> String {
    json!({ "error": json!({ "class": class, "location": location, "context": context }) }).to_string()
}

fn route(req: &HttpRequest, shared: &Shared, batcher: &Batcher) -> (u16, String, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, health_body(shared), false),
        ("GET", "/metrics") => (200, desalign_telemetry::metrics_json().to_string(), false),
        ("POST", "/v1/align") => {
            let (status, body) = align(req, shared, batcher);
            (status, body, false)
        }
        ("POST", "/admin/shutdown") => (200, json!({ "status": "draining" }).to_string(), true),
        (_, "/healthz" | "/metrics" | "/v1/align" | "/admin/shutdown") => {
            (405, error_body_raw("schema", "serve.route", &format!("method {} not allowed here", req.method)), false)
        }
        (_, path) => (404, error_body_raw("schema", "serve.route", &format!("unknown path '{path}'")), false),
    }
}

fn health_body(shared: &Shared) -> String {
    let e = &shared.engine;
    let (hits, misses) = e.cache_stats();
    json!({
        "status": if shared.draining() { "draining" } else { "ok" },
        "source_entities": e.num_queries(),
        "target_entities": e.num_items(),
        "dim": e.dim(),
        "backend": match e.backend() {
            IndexKind::Exact => "exact",
            IndexKind::Ivf => "ivf",
        },
        "threads": desalign_parallel::current_threads(),
        "workers": shared.workers,
        "cache_hits": hits as f64,
        "cache_misses": misses as f64,
    })
    .to_string()
}

/// Parses the `/v1/align` body. Schema (docs/SERVING.md): exactly one of
/// `"entity"` (source entity id) or `"vector"` (embedding row), plus an
/// optional `"k"`.
fn parse_align(body: &[u8], default_k: usize) -> Result<(AlignQuery, usize), DesalignError> {
    let text = std::str::from_utf8(body)
        .map_err(|e| DesalignError::parse("align.body", format!("body is not UTF-8: {e}")))?;
    let doc = Json::parse(text).map_err(|e| DesalignError::parse("align.body", e.to_string()))?;
    if doc.as_object().is_none() {
        return Err(DesalignError::schema("align.body", "body must be a JSON object"));
    }
    let k = match doc.get("k") {
        None => default_k,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| DesalignError::schema("align.k", "'k' must be a non-negative integer"))?,
    };
    let query = match (doc.get("entity"), doc.get("vector")) {
        (Some(e), None) => AlignQuery::Entity(
            e.as_usize()
                .ok_or_else(|| DesalignError::schema("align.entity", "'entity' must be a non-negative integer"))?,
        ),
        (None, Some(v)) => {
            let arr = v
                .as_array()
                .ok_or_else(|| DesalignError::schema("align.vector", "'vector' must be an array of numbers"))?;
            let mut row = Vec::with_capacity(arr.len());
            for (i, x) in arr.iter().enumerate() {
                let Some(f) = x.as_f64() else {
                    return Err(DesalignError::schema("align.vector", format!("'vector[{i}]' is not a number")));
                };
                row.push(f as f32);
            }
            AlignQuery::Vector(row)
        }
        _ => {
            return Err(DesalignError::schema(
                "align.body",
                "provide exactly one of 'entity' (source id) or 'vector' (embedding row)",
            ))
        }
    };
    Ok((query, k))
}

fn align(req: &HttpRequest, shared: &Shared, batcher: &Batcher) -> (u16, String) {
    let t0 = Instant::now();
    let (query, k) = match parse_align(&req.body, shared.default_k) {
        Ok(parsed) => parsed,
        Err(e) => return (status_for(e.class), error_body(&e)),
    };
    let m = serve_metrics();
    m.align_queries.incr();
    let result = batcher.submit(query, k);
    m.align_us.record(t0.elapsed().as_micros() as u64);
    match result {
        Ok(answer) => {
            let cands: Vec<Json> = answer
                .candidates
                .iter()
                .map(|&(id, score)| json!({ "id": id, "score": score }))
                .collect();
            (200, json!({ "k": k, "candidates": Json::Array(cands) }).to_string())
        }
        Err(e) => (status_for(e.class), error_body(&e)),
    }
}
