//! The TCP/HTTP server: worker threads, routing, error mapping, overload
//! control, hot reload, graceful drain.
//!
//! Connections are handled by dedicated OS worker threads (blocking socket
//! reads must not occupy the `desalign-parallel` pool, whose workers are
//! batch-synchronous); the *compute* still runs through the pool, because
//! every `/v1/align` query funnels into the [`Batcher`]'s single
//! `search_batch` call. Shutdown is cooperative and std-only: a drain flag
//! plus one self-connect "poke" per worker unblocks `accept`, workers
//! finish their in-flight requests (bounded by the read timeout), and the
//! batching thread exits when the last worker drops its handle.
//!
//! ## Overload behaviour (docs/RELIABILITY.md has the full matrix)
//!
//! - **Admission control.** At most `queue_capacity` align queries may be
//!   in flight; the next one is *shed* deterministically with a 503 +
//!   `Retry-After: 1` before any engine work happens (`serve.shed`).
//! - **Deadline budget.** A request carrying `x-desalign-deadline-ms`
//!   that expires while queued is shed by the batcher instead of scored
//!   (`serve.deadline_expired`).
//! - **Circuit breaker.** Consecutive engine faults flip the
//!   [`EngineSlot`] into degraded (exact-scan) mode; `GET /readyz`
//!   reports it so load balancers route around the replica.
//! - **Hot reload.** `POST /admin/reload` builds a candidate engine from
//!   the (digest-checked) checkpoint and atomically swaps it in; any
//!   load or validation fault rolls back to the serving engine.

use crate::batch::Batcher;
use crate::engine::{AlignEngine, AlignQuery};
use crate::http::{write_response, write_response_with, Conn, HttpRequest, ReadOutcome};
use crate::slot::{BreakerConfig, EngineSlot};
use desalign_eval::IndexKind;
use desalign_util::{json, DefectClass, DesalignError, Json};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Builds a replacement [`AlignEngine`] for `POST /admin/reload`. The
/// argument is the optional `"checkpoint"` path from the request body
/// (`None` reloads whatever source the server was booted from). The
/// engine is swapped in only when this returns `Ok`.
pub type Reloader = dyn Fn(Option<&str>) -> Result<AlignEngine, DesalignError> + Send + Sync;

/// Everything the server's behaviour is parameterized by. Every knob is
/// documented in docs/SERVING.md and exercised by a test or the ci.sh
/// smoke.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port `0` selects an ephemeral port (the bound
    /// address is reported by [`Server::addr`]).
    pub addr: String,
    /// Connection worker threads (concurrent connections served; further
    /// connections queue in the OS accept backlog).
    pub workers: usize,
    /// Maximum queries coalesced into one engine call.
    pub max_batch: usize,
    /// How long the batcher waits for stragglers after a batch opens.
    pub batch_window: Duration,
    /// LRU featurization-cache capacity (entries); 0 disables.
    pub cache_capacity: usize,
    /// Maximum accepted `Content-Length` in bytes.
    pub max_body: usize,
    /// `k` used when a query omits it.
    pub default_k: usize,
    /// Socket read timeout — bounds how long a stalled client can hold a
    /// worker, and therefore the drain latency of [`Server::shutdown`].
    pub read_timeout: Duration,
    /// Admission bound: align queries in flight beyond this are shed
    /// with 503 + `Retry-After` instead of queueing without bound.
    pub queue_capacity: usize,
    /// Circuit breaker: consecutive engine-fault batches before the
    /// server degrades to the exact-scan fallback.
    pub breaker_threshold: usize,
    /// Circuit breaker: while open, probe the primary every this-many
    /// batches.
    pub breaker_probe_every: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_batch: 16,
            batch_window: Duration::from_micros(500),
            cache_capacity: 1024,
            max_body: 1 << 20,
            default_k: 10,
            read_timeout: Duration::from_secs(5),
            queue_capacity: 256,
            breaker_threshold: 5,
            breaker_probe_every: 16,
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

impl ServeConfig {
    /// Reads every knob from `DESALIGN_SERVE_*` environment variables,
    /// falling back to the defaults above. Documented in docs/SERVING.md.
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            addr: std::env::var("DESALIGN_SERVE_ADDR").unwrap_or(d.addr),
            workers: env_usize("DESALIGN_SERVE_WORKERS", d.workers).max(1),
            max_batch: env_usize("DESALIGN_SERVE_BATCH", d.max_batch).max(1),
            batch_window: Duration::from_micros(env_usize("DESALIGN_SERVE_WINDOW_US", 500) as u64),
            cache_capacity: env_usize("DESALIGN_SERVE_CACHE", d.cache_capacity),
            max_body: env_usize("DESALIGN_SERVE_MAX_BODY", d.max_body),
            default_k: env_usize("DESALIGN_SERVE_K", d.default_k),
            read_timeout: Duration::from_millis(env_usize("DESALIGN_SERVE_TIMEOUT_MS", 5000) as u64),
            queue_capacity: env_usize("DESALIGN_SERVE_QUEUE", d.queue_capacity).max(1),
            breaker_threshold: env_usize("DESALIGN_SERVE_BREAKER", d.breaker_threshold).max(1),
            breaker_probe_every: env_usize("DESALIGN_SERVE_BREAKER_PROBE", d.breaker_probe_every).max(1),
        }
    }
}

struct Shared {
    slot: Arc<EngineSlot>,
    draining: AtomicBool,
    addr: SocketAddr,
    workers: usize,
    max_body: usize,
    default_k: usize,
    queue_capacity: usize,
    inflight: AtomicUsize,
    reloader: Option<Box<Reloader>>,
    /// Serializes concurrent `/admin/reload` requests: one candidate
    /// engine is built at a time.
    reload_lock: Mutex<()>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the drain flag and unblocks every worker's `accept` with one
    /// self-connect per worker. Idempotent and non-blocking, so request
    /// handlers can call it (`POST /admin/shutdown`) without deadlocking
    /// the worker they run on.
    fn initiate(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        for _ in 0..self.workers {
            // A refused poke means the worker already stopped accepting.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or have a client POST `/admin/shutdown` and then
/// [`Server::wait`]).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    batcher: JoinHandle<()>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the batching thread and `cfg.workers`
    /// connection workers, and returns immediately. `/admin/reload` is
    /// not available (use [`Server::start_reloadable`] to enable it).
    pub fn start(engine: AlignEngine, cfg: &ServeConfig) -> io::Result<Server> {
        Self::start_inner(engine, cfg, None)
    }

    /// [`start`](Self::start) with a [`Reloader`]: `POST /admin/reload`
    /// builds a replacement engine through it and hot-swaps on success.
    pub fn start_reloadable(engine: AlignEngine, cfg: &ServeConfig, reloader: Box<Reloader>) -> io::Result<Server> {
        Self::start_inner(engine, cfg, Some(reloader))
    }

    fn start_inner(engine: AlignEngine, cfg: &ServeConfig, reloader: Option<Box<Reloader>>) -> io::Result<Server> {
        register_robustness_counters();
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let breaker = BreakerConfig {
            threshold: cfg.breaker_threshold.max(1),
            probe_every: cfg.breaker_probe_every.max(1),
        };
        let slot = Arc::new(EngineSlot::new(engine, breaker));
        let (batcher, batcher_handle) = Batcher::spawn_slot(slot.clone(), cfg.max_batch, cfg.batch_window);
        let shared = Arc::new(Shared {
            slot,
            draining: AtomicBool::new(false),
            addr,
            workers: cfg.workers.max(1),
            max_body: cfg.max_body,
            default_k: cfg.default_k.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            inflight: AtomicUsize::new(0),
            reloader,
            reload_lock: Mutex::new(()),
        });
        let mut workers = Vec::with_capacity(shared.workers);
        for w in 0..shared.workers {
            let listener = listener.try_clone()?;
            let shared = shared.clone();
            let batcher = batcher.clone();
            let timeout = cfg.read_timeout;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("desalign-serve-worker-{w}"))
                    .spawn(move || worker_loop(listener, shared, batcher, timeout))?,
            );
        }
        // Only workers hold batcher handles now: when they exit, the
        // batching thread drains and exits too.
        drop(batcher);
        Ok(Server { addr, shared, workers, batcher: batcher_handle })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain without blocking: no new connections are
    /// accepted, in-flight requests finish (bounded by the read timeout).
    pub fn initiate_shutdown(&self) {
        self.shared.initiate();
    }

    /// Blocks until every worker and the batching thread have exited —
    /// i.e. until someone (this process or a client's `/admin/shutdown`)
    /// initiated a drain and it completed.
    pub fn wait(self) {
        for w in self.workers {
            let _ = w.join();
        }
        let _ = self.batcher.join();
    }

    /// Graceful shutdown: initiate the drain and wait for it.
    pub fn shutdown(self) {
        self.initiate_shutdown();
        self.wait();
    }
}

/// Touches every robustness counter once so `/metrics` reports them at 0
/// from the first scrape — the ci.sh grep gates (and dashboards) never
/// see them pop into existence mid-incident.
fn register_robustness_counters() {
    for name in [
        "serve.shed",
        "serve.breaker_open",
        "serve.breaker_close",
        "serve.degraded_answers",
        "serve.engine_faults",
        "serve.deadline_expired",
        "checkpoint.reloads",
        "checkpoint.reload_failures",
    ] {
        let _ = desalign_telemetry::counter(name);
    }
}

struct ServeMetrics {
    requests: desalign_telemetry::Counter,
    errors: desalign_telemetry::Counter,
    align_queries: desalign_telemetry::Counter,
    connections: desalign_telemetry::Counter,
    shed: desalign_telemetry::Counter,
    reloads: desalign_telemetry::Counter,
    reload_failures: desalign_telemetry::Counter,
    request_us: desalign_telemetry::Histogram,
    align_us: desalign_telemetry::Histogram,
}

fn serve_metrics() -> &'static ServeMetrics {
    static M: OnceLock<ServeMetrics> = OnceLock::new();
    M.get_or_init(|| ServeMetrics {
        requests: desalign_telemetry::counter("serve.requests"),
        errors: desalign_telemetry::counter("serve.errors"),
        align_queries: desalign_telemetry::counter("serve.align_queries"),
        connections: desalign_telemetry::counter("serve.connections"),
        shed: desalign_telemetry::counter("serve.shed"),
        reloads: desalign_telemetry::counter("checkpoint.reloads"),
        reload_failures: desalign_telemetry::counter("checkpoint.reload_failures"),
        request_us: desalign_telemetry::histogram("serve.request_us"),
        align_us: desalign_telemetry::histogram("serve.align_us"),
    })
}

fn worker_loop(listener: TcpListener, shared: Arc<Shared>, batcher: Batcher, timeout: Duration) {
    loop {
        if shared.draining() {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => continue,
        };
        if shared.draining() {
            return; // the poke connection itself lands here
        }
        serve_metrics().connections.incr();
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_nodelay(true);
        handle_connection(Conn::new(stream), &shared, &batcher);
    }
}

/// One routed response: status, JSON body, and the flags that shape how
/// it is written (shutdown initiation, `Retry-After` on sheds).
struct Routed {
    status: u16,
    body: String,
    shutdown: bool,
    retry_after: bool,
}

impl Routed {
    fn plain(status: u16, body: String) -> Self {
        Self { status, body, shutdown: false, retry_after: false }
    }
}

fn handle_connection(mut conn: Conn, shared: &Shared, batcher: &Batcher) {
    loop {
        match conn.read_request(shared.max_body) {
            ReadOutcome::Request(req) => {
                let t0 = Instant::now();
                let _span = desalign_telemetry::span("serve.request");
                let routed = route(&req, shared, batcher);
                let m = serve_metrics();
                m.requests.incr();
                if routed.status >= 400 {
                    m.errors.incr();
                }
                m.request_us.record(t0.elapsed().as_micros() as u64);
                let keep = req.keep_alive && !routed.shutdown && !shared.draining();
                let extra: &[(&str, &str)] = if routed.retry_after { &[("Retry-After", "1")] } else { &[] };
                let write_ok = write_response_with(conn.stream(), routed.status, &routed.body, keep, extra).is_ok();
                if routed.shutdown {
                    shared.initiate();
                }
                if !write_ok || !keep {
                    return;
                }
            }
            ReadOutcome::Closed | ReadOutcome::Io(_) => return,
            ReadOutcome::Timeout { mid_request } => {
                if mid_request {
                    serve_metrics().errors.incr();
                    let _ = write_response(conn.stream(), 408, &error_body_raw("io", "serve.read", "request timed out"), false);
                    return;
                }
                if shared.draining() {
                    return; // idle keep-alive connection during a drain
                }
            }
            ReadOutcome::Bad { status, detail } => {
                serve_metrics().errors.incr();
                let class = if status == 413 { "schema" } else { "parse" };
                let _ = write_response(conn.stream(), status, &error_body_raw(class, "serve.http", &detail), false);
                return;
            }
        }
    }
}

/// Maps a typed error to its HTTP status: unknown entities are 404,
/// server-side unavailability 503, and every other data defect a 400.
fn status_for(class: DefectClass) -> u16 {
    match class {
        DefectClass::PairOutOfRange => 404,
        DefectClass::Io => 503,
        _ => 400,
    }
}

fn error_body(err: &DesalignError) -> String {
    json!({
        "error": json!({
            "class": err.class.name(),
            "location": err.location.as_str(),
            "context": err.context.as_str(),
        })
    })
    .to_string()
}

fn error_body_raw(class: &str, location: &str, context: &str) -> String {
    json!({ "error": json!({ "class": class, "location": location, "context": context }) }).to_string()
}

fn route(req: &HttpRequest, shared: &Shared, batcher: &Batcher) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Routed::plain(200, health_body(shared)),
        ("GET", "/readyz") => {
            let (status, body) = readiness(shared);
            Routed::plain(status, body)
        }
        ("GET", "/metrics") => Routed::plain(200, metrics_body()),
        ("POST", "/v1/align") => align(req, shared, batcher),
        ("POST", "/admin/reload") => {
            let (status, body) = reload(req, shared);
            Routed::plain(status, body)
        }
        ("POST", "/admin/shutdown") => {
            Routed { status: 200, body: json!({ "status": "draining" }).to_string(), shutdown: true, retry_after: false }
        }
        (_, "/healthz" | "/readyz" | "/metrics" | "/v1/align" | "/admin/reload" | "/admin/shutdown") => Routed::plain(
            405,
            error_body_raw("schema", "serve.route", &format!("method {} not allowed here", req.method)),
        ),
        (_, path) => Routed::plain(404, error_body_raw("schema", "serve.route", &format!("unknown path '{path}'"))),
    }
}

/// The `/metrics` body: telemetry counters/gauges/histograms with the
/// failpoint crate's own counters merged into the `counters` object
/// (`desalign-failpoint` sits below `desalign-telemetry` in the crate
/// graph, so it cannot register them itself).
fn metrics_body() -> String {
    let mut doc = desalign_telemetry::metrics_json();
    if let Json::Object(sections) = &mut doc {
        for (name, section) in sections.iter_mut() {
            if name == "counters" {
                if let Json::Object(counters) = section {
                    for (fp_name, value) in desalign_failpoint::counters() {
                        counters.push((fp_name, Json::Num(value as f64)));
                    }
                }
            }
        }
    }
    doc.to_string()
}

fn health_body(shared: &Shared) -> String {
    let e = shared.slot.current();
    let (hits, misses) = e.cache_stats();
    json!({
        "status": if shared.draining() { "draining" } else { "ok" },
        "source_entities": e.num_queries(),
        "target_entities": e.num_items(),
        "dim": e.dim(),
        "backend": match e.backend() {
            IndexKind::Exact => "exact",
            IndexKind::Ivf => "ivf",
        },
        "threads": desalign_parallel::current_threads(),
        "workers": shared.workers,
        "cache_hits": hits as f64,
        "cache_misses": misses as f64,
        "generation": shared.slot.generation(),
        "breaker": if shared.slot.breaker_open() { "open" } else { "closed" },
        "queue_capacity": shared.queue_capacity,
    })
    .to_string()
}

/// `GET /readyz` — the load-balancer contract, distinct from liveness:
/// 200 only when this replica should receive traffic (not draining, not
/// degraded, admission queue not saturated). docs/SERVING.md specifies
/// the states.
fn readiness(shared: &Shared) -> (u16, String) {
    let draining = shared.draining();
    let breaker_open = shared.slot.breaker_open();
    let inflight = shared.inflight.load(Ordering::SeqCst);
    let saturated = inflight >= shared.queue_capacity;
    let ready = !draining && !breaker_open && !saturated;
    let body = json!({
        "ready": ready,
        "draining": draining,
        "breaker": if breaker_open { "open" } else { "closed" },
        "inflight": inflight,
        "queue_capacity": shared.queue_capacity,
        "generation": shared.slot.generation(),
    })
    .to_string();
    (if ready { 200 } else { 503 }, body)
}

/// `POST /admin/reload`: build a candidate engine (optionally from the
/// `"checkpoint"` path in the body), then atomically swap it in. Any
/// fault during load or validation leaves the serving engine untouched —
/// rollback is the absence of the swap.
fn reload(req: &HttpRequest, shared: &Shared) -> (u16, String) {
    let Some(reloader) = shared.reloader.as_deref() else {
        return (503, error_body_raw("io", "serve.reload", "this server was started without a reloader (no checkpoint source)"));
    };
    // Parse the optional body: `{}` / empty → reload the boot source.
    let checkpoint: Option<String> = if req.body.is_empty() {
        None
    } else {
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(e) => return (400, error_body_raw("parse", "reload.body", &format!("body is not UTF-8: {e}"))),
        };
        match Json::parse(text) {
            Ok(doc) => match doc.get("checkpoint") {
                None => None,
                Some(v) => match v.as_str() {
                    Some(s) => Some(s.to_string()),
                    None => return (400, error_body_raw("schema", "reload.checkpoint", "'checkpoint' must be a string path")),
                },
            },
            Err(e) => return (400, error_body_raw("parse", "reload.body", &e.to_string())),
        }
    };
    // One reload at a time: candidate builds are memory-heavy and the
    // generation sequence should be observable.
    let _serial = shared.reload_lock.lock().expect("reload lock");
    let m = serve_metrics();
    let built = reloader(checkpoint.as_deref()).and_then(|engine| {
        // Failpoint `serve.reload`: a validation fault *after* a clean
        // build — the swap must still not happen.
        desalign_failpoint::fail_io("serve.reload")
            .map_err(|e| DesalignError::io("serve.reload", e))?;
        Ok(engine)
    });
    match built {
        Ok(engine) => {
            let generation = shared.slot.swap(engine);
            m.reloads.incr();
            (200, json!({ "status": "reloaded", "generation": generation }).to_string())
        }
        Err(e) => {
            m.reload_failures.incr();
            (status_for(e.class), error_body(&e))
        }
    }
}

/// Parses the `/v1/align` body. Schema (docs/SERVING.md): exactly one of
/// `"entity"` (source entity id) or `"vector"` (embedding row), plus an
/// optional `"k"`.
fn parse_align(body: &[u8], default_k: usize) -> Result<(AlignQuery, usize), DesalignError> {
    let text = std::str::from_utf8(body)
        .map_err(|e| DesalignError::parse("align.body", format!("body is not UTF-8: {e}")))?;
    let doc = Json::parse(text).map_err(|e| DesalignError::parse("align.body", e.to_string()))?;
    if doc.as_object().is_none() {
        return Err(DesalignError::schema("align.body", "body must be a JSON object"));
    }
    let k = match doc.get("k") {
        None => default_k,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| DesalignError::schema("align.k", "'k' must be a non-negative integer"))?,
    };
    let query = match (doc.get("entity"), doc.get("vector")) {
        (Some(e), None) => AlignQuery::Entity(
            e.as_usize()
                .ok_or_else(|| DesalignError::schema("align.entity", "'entity' must be a non-negative integer"))?,
        ),
        (None, Some(v)) => {
            let arr = v
                .as_array()
                .ok_or_else(|| DesalignError::schema("align.vector", "'vector' must be an array of numbers"))?;
            let mut row = Vec::with_capacity(arr.len());
            for (i, x) in arr.iter().enumerate() {
                let Some(f) = x.as_f64() else {
                    return Err(DesalignError::schema("align.vector", format!("'vector[{i}]' is not a number")));
                };
                row.push(f as f32);
            }
            AlignQuery::Vector(row)
        }
        _ => {
            return Err(DesalignError::schema(
                "align.body",
                "provide exactly one of 'entity' (source id) or 'vector' (embedding row)",
            ))
        }
    };
    Ok((query, k))
}

fn align(req: &HttpRequest, shared: &Shared, batcher: &Batcher) -> Routed {
    let t0 = Instant::now();
    let (query, k) = match parse_align(&req.body, shared.default_k) {
        Ok(parsed) => parsed,
        Err(e) => return Routed::plain(status_for(e.class), error_body(&e)),
    };
    // Admission control: shed the (capacity+1)-th concurrent query
    // before any engine work. `Retry-After: 1` tells well-behaved
    // clients when to come back.
    let admitted = shared.inflight.fetch_add(1, Ordering::SeqCst);
    if admitted >= shared.queue_capacity {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        serve_metrics().shed.incr();
        let body = error_body_raw("io", "serve.admission", "server at capacity; retry after the queue drains");
        return Routed { status: 503, body, shutdown: false, retry_after: true };
    }
    let deadline = req.deadline_ms.map(|ms| t0 + Duration::from_millis(ms));
    let m = serve_metrics();
    m.align_queries.incr();
    let result = batcher.submit_with_deadline(query, k, deadline);
    shared.inflight.fetch_sub(1, Ordering::SeqCst);
    m.align_us.record(t0.elapsed().as_micros() as u64);
    match result {
        Ok(answer) => {
            let cands: Vec<Json> = answer
                .candidates
                .iter()
                .map(|&(id, score)| json!({ "id": id, "score": score }))
                .collect();
            Routed::plain(200, json!({ "k": k, "candidates": Json::Array(cands) }).to_string())
        }
        Err(e) => Routed::plain(status_for(e.class), error_body(&e)),
    }
}
