//! The engine slot: one swappable [`AlignEngine`] behind a circuit
//! breaker.
//!
//! Two robustness mechanisms live here, both driven by the batcher:
//!
//! **Hot reload.** The slot holds the engine as `RwLock<Arc<AlignEngine>>`.
//! `POST /admin/reload` builds a *candidate* engine off to the side and
//! calls [`EngineSlot::swap`] only after the build and validation fully
//! succeed — so a faulted reload rolls back by simply never swapping.
//! The batcher snapshots the `Arc` once per batch
//! ([`EngineSlot::current`]), so requests in flight during a swap finish
//! on the engine that admitted them and the next batch picks up the new
//! one. No request ever observes a half-swapped engine.
//!
//! **Circuit breaker.** Engine-level faults (I/O-class errors from the
//! primary index — in practice only injectable via the `serve.engine`
//! failpoint or a genuinely broken backend) are counted per batch. After
//! `threshold` *consecutive* faulty batches the breaker opens and batches
//! are answered through the engine's exact-scan shadow index
//! ([`AlignEngine::answer_batch_degraded`]) — degraded recall beats
//! refusing to answer. While open, every `probe_every`-th batch is sent
//! to the primary as a half-open probe; one clean probe closes the
//! breaker. The degraded path never evaluates the failpoint, so a chaos
//! schedule that breaks the primary cannot also break the fallback.
//!
//! Counters: `serve.breaker_open` / `serve.breaker_close` (transitions),
//! `serve.degraded_answers` (queries answered via the shadow index),
//! `serve.engine_faults` (faulty batches observed).

use crate::engine::{AlignAnswer, AlignEngine, AlignQuery};
use desalign_util::{DefectClass, DesalignError};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Circuit-breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive faulty batches before the breaker opens.
    pub threshold: usize,
    /// While open, probe the primary every this-many batches.
    pub probe_every: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { threshold: 5, probe_every: 16 }
    }
}

/// A swappable engine with breaker state. See the module docs.
#[derive(Debug)]
pub struct EngineSlot {
    engine: RwLock<Arc<AlignEngine>>,
    cfg: BreakerConfig,
    consecutive_faults: AtomicUsize,
    open: AtomicBool,
    batches_while_open: AtomicUsize,
    generation: AtomicUsize,
}

impl EngineSlot {
    /// Wraps an engine with breaker configuration. Generation starts at 1.
    pub fn new(engine: AlignEngine, cfg: BreakerConfig) -> Self {
        Self::from_arc(Arc::new(engine), cfg)
    }

    /// [`new`](Self::new) for an engine already behind an `Arc`.
    pub fn from_arc(engine: Arc<AlignEngine>, cfg: BreakerConfig) -> Self {
        Self {
            engine: RwLock::new(engine),
            cfg,
            consecutive_faults: AtomicUsize::new(0),
            open: AtomicBool::new(false),
            batches_while_open: AtomicUsize::new(0),
            generation: AtomicUsize::new(1),
        }
    }

    /// Snapshot of the current engine. Cheap (one `Arc` clone under a
    /// read lock); callers hold the snapshot for the duration of a batch
    /// so a concurrent swap cannot pull the engine out from under them.
    pub fn current(&self) -> Arc<AlignEngine> {
        self.engine.read().expect("engine slot lock").clone()
    }

    /// Monotonic engine generation: 1 for the boot engine, +1 per
    /// successful [`swap`](Self::swap).
    pub fn generation(&self) -> usize {
        self.generation.load(Ordering::SeqCst)
    }

    /// Whether the breaker is currently open (degraded mode).
    pub fn breaker_open(&self) -> bool {
        self.open.load(Ordering::SeqCst)
    }

    /// Installs a fully built replacement engine and returns the new
    /// generation. Resets the breaker — the new engine deserves a clean
    /// fault history.
    pub fn swap(&self, engine: AlignEngine) -> usize {
        let mut slot = self.engine.write().expect("engine slot lock");
        *slot = Arc::new(engine);
        self.consecutive_faults.store(0, Ordering::SeqCst);
        self.batches_while_open.store(0, Ordering::SeqCst);
        if self.open.swap(false, Ordering::SeqCst) {
            desalign_telemetry::counter("serve.breaker_close").incr();
        }
        self.generation.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Answers one batch through the breaker state machine.
    ///
    /// Closed: answer on the primary; an engine-fault batch increments
    /// the consecutive-fault count (threshold reached → open). Open:
    /// answer degraded, except every `probe_every`-th batch which probes
    /// the primary (clean probe → close). Per-query client errors
    /// (unknown id, bad vector) are *not* engine faults and never move
    /// the breaker.
    pub fn answer_batch(&self, engine: &AlignEngine, batch: &[(AlignQuery, usize)]) -> Vec<Result<AlignAnswer, DesalignError>> {
        if self.open.load(Ordering::SeqCst) {
            let n = self.batches_while_open.fetch_add(1, Ordering::SeqCst) + 1;
            if n % self.cfg.probe_every.max(1) != 0 {
                desalign_telemetry::counter("serve.degraded_answers").add(batch.len() as u64);
                return engine.answer_batch_degraded(batch);
            }
            // Half-open probe: fall through to the primary path below.
        }
        let answers = self.primary_answers(engine, batch);
        let faulted = answers.iter().any(|r| matches!(r, Err(e) if is_engine_fault(e)));
        if faulted {
            desalign_telemetry::counter("serve.engine_faults").incr();
            let faults = self.consecutive_faults.fetch_add(1, Ordering::SeqCst) + 1;
            if faults >= self.cfg.threshold && !self.open.swap(true, Ordering::SeqCst) {
                desalign_telemetry::counter("serve.breaker_open").incr();
                self.batches_while_open.store(0, Ordering::SeqCst);
            }
            // A faulted probe (or pre-open batch) still owes answers:
            // retry the batch degraded rather than surfacing 503s for
            // queries the shadow index can serve.
            if engine.has_fallback() {
                desalign_telemetry::counter("serve.degraded_answers").add(batch.len() as u64);
                return engine.answer_batch_degraded(batch);
            }
            return answers;
        }
        self.consecutive_faults.store(0, Ordering::SeqCst);
        if self.open.swap(false, Ordering::SeqCst) {
            desalign_telemetry::counter("serve.breaker_close").incr();
        }
        answers
    }

    /// The primary path, with the `serve.engine` failpoint in front. The
    /// failpoint is evaluated here — and only here — so degraded-mode
    /// answers keep flowing under a schedule that breaks the primary.
    fn primary_answers(&self, engine: &AlignEngine, batch: &[(AlignQuery, usize)]) -> Vec<Result<AlignAnswer, DesalignError>> {
        if let Err(e) = desalign_failpoint::fail_io("serve.engine") {
            let err = DesalignError::io("serve.engine", e);
            return batch.iter().map(|_| Err(err.clone())).collect();
        }
        engine.answer_batch(batch)
    }
}

/// Engine faults are I/O-class failures of the backend itself; typed
/// per-query validation errors are the client's problem, not the
/// engine's.
fn is_engine_fault(e: &DesalignError) -> bool {
    e.class == DefectClass::Io
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AlignQuery;
    use desalign_eval::{IndexKind, IvfParams, RetrievalConfig};
    use desalign_tensor::Matrix;

    fn ivf_slot(cfg: BreakerConfig) -> EngineSlot {
        let queries = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let items = Matrix::from_rows(&[&[1.0, 0.0], &[0.7, 0.7], &[0.0, 1.0]]);
        let rcfg = RetrievalConfig {
            kind: IndexKind::Ivf,
            ivf: IvfParams { nlist: 2, nprobe: 2, kmeans_iters: 2, seed: 7 },
        };
        EngineSlot::new(AlignEngine::from_embeddings(queries, items, &rcfg, 8).unwrap(), cfg)
    }

    fn one_query() -> Vec<(AlignQuery, usize)> {
        vec![(AlignQuery::Entity(0), 2)]
    }

    #[test]
    fn breaker_trips_after_threshold_and_probe_closes_it() {
        let _guard = desalign_failpoint::exclusive();
        let slot = ivf_slot(BreakerConfig { threshold: 3, probe_every: 2 });
        let engine = slot.current();
        // Faults on hits 1..=3 of the serve.engine site, clean after.
        desalign_failpoint::install("serve.engine=err@1~3").unwrap();
        for i in 1..=3 {
            let answers = slot.answer_batch(&engine, &one_query());
            // The shadow index absorbs the fault: callers still get answers.
            assert!(answers[0].is_ok(), "batch {i} not absorbed by fallback");
        }
        assert!(slot.breaker_open(), "threshold=3 consecutive faults must open the breaker");
        // Open: batch 1 after opening is degraded (no failpoint eval), batch 2
        // is the half-open probe — the schedule is exhausted, so it's clean
        // and closes the breaker.
        assert!(slot.answer_batch(&engine, &one_query())[0].is_ok());
        assert!(slot.breaker_open());
        assert!(slot.answer_batch(&engine, &one_query())[0].is_ok());
        assert!(!slot.breaker_open(), "clean probe must close the breaker");
        desalign_failpoint::clear();
    }

    #[test]
    fn client_errors_never_move_the_breaker() {
        let _guard = desalign_failpoint::exclusive();
        let slot = ivf_slot(BreakerConfig { threshold: 1, probe_every: 2 });
        let engine = slot.current();
        for _ in 0..5 {
            let answers = slot.answer_batch(&engine, &[(AlignQuery::Entity(999), 2)]);
            assert!(answers[0].is_err());
        }
        assert!(!slot.breaker_open(), "PairOutOfRange is a client error, not an engine fault");
    }

    #[test]
    fn swap_bumps_generation_and_resets_the_breaker() {
        let _guard = desalign_failpoint::exclusive();
        let slot = ivf_slot(BreakerConfig { threshold: 1, probe_every: 1000 });
        assert_eq!(slot.generation(), 1);
        let engine = slot.current();
        desalign_failpoint::install("serve.engine=err").unwrap();
        let _ = slot.answer_batch(&engine, &one_query());
        assert!(slot.breaker_open());
        desalign_failpoint::clear();
        let queries = Matrix::from_rows(&[&[1.0, 0.0]]);
        let items = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let fresh = AlignEngine::from_embeddings(queries, items, &RetrievalConfig::default(), 4).unwrap();
        assert_eq!(slot.swap(fresh), 2);
        assert_eq!(slot.generation(), 2);
        assert!(!slot.breaker_open(), "swap must reset breaker state");
        // The old snapshot still answers — in-flight batches survive a swap.
        assert!(slot.answer_batch(&engine, &one_query())[0].is_ok());
        assert_eq!(slot.current().num_items(), 2);
    }
}
