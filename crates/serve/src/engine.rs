//! The alignment engine: precomputed embeddings behind an [`ItemIndex`],
//! with per-query featurization and an LRU featurization cache.
//!
//! One engine is built at server startup — from a trained
//! [`DesalignModel`] (usually revived via
//! `DesalignModel::load_checkpoint_inference`) or directly from embedding
//! matrices — and shared read-only across every connection worker. All
//! mutability is confined to the featurization cache, which stores pure
//! functions of the checkpoint, so concurrent queries can never observe
//! (or produce) different bits than sequential ones.

use crate::cache::LruCache;
use desalign_core::DesalignModel;
use desalign_eval::{IndexKind, ItemIndex, RetrievalConfig};
use desalign_tensor::Matrix;
use desalign_util::{DefectClass, DesalignError};
use std::sync::Mutex;

/// One alignment query: who to find matches for.
#[derive(Clone, Debug, PartialEq)]
pub enum AlignQuery {
    /// A source-KG entity id; featurized by looking up its precomputed
    /// retrieval embedding.
    Entity(usize),
    /// A raw embedding row (already in retrieval-embedding space); must
    /// match the index width and be finite.
    Vector(Vec<f32>),
}

/// Ranked alignment candidates for one query.
#[derive(Clone, Debug, PartialEq)]
pub struct AlignAnswer {
    /// `(target entity id, score)` sorted by descending score, ties broken
    /// by ascending id.
    pub candidates: Vec<(usize, f32)>,
}

/// The serving engine: a query-side embedding table, an [`ItemIndex`] over
/// the target side, and the featurization cache.
#[derive(Debug)]
pub struct AlignEngine {
    queries: Matrix,
    index: ItemIndex,
    /// Exact-scan shadow index, built only when the primary is IVF. The
    /// circuit breaker (`EngineSlot`) answers from it while the primary
    /// is suspected faulty — exact scan has no probe-list tuning to go
    /// wrong and is the recall reference the IVF harness audits against.
    fallback: Option<ItemIndex>,
    cache: Mutex<LruCache>,
}

impl AlignEngine {
    /// Builds an engine over explicit embedding matrices: `queries` is the
    /// source-side featurization table (row = entity id), `items` the
    /// target-side corpus the index is built over.
    ///
    /// # Errors
    /// Propagates the index constructor's typed errors (non-finite rows,
    /// bad IVF knobs) plus a dimension mismatch between the two sides.
    pub fn from_embeddings(
        queries: Matrix,
        items: Matrix,
        cfg: &RetrievalConfig,
        cache_capacity: usize,
    ) -> Result<Self, DesalignError> {
        if queries.cols() != items.cols() && queries.rows() > 0 && items.rows() > 0 {
            return Err(DesalignError::new(
                DefectClass::DimensionMismatch,
                "AlignEngine::from_embeddings",
                format!("query dim {} != item dim {}", queries.cols(), items.cols()),
            ));
        }
        let index = ItemIndex::build(&items, cfg)?;
        let fallback = if index.kind() == IndexKind::Ivf {
            let exact = RetrievalConfig { kind: IndexKind::Exact, ..cfg.clone() };
            Some(ItemIndex::build(&items, &exact)?)
        } else {
            None
        };
        Ok(Self { queries, index, fallback, cache: Mutex::new(LruCache::new(cache_capacity)) })
    }

    /// Builds an engine from a trained model: the per-round L2-normalized
    /// SP-state embeddings (`DesalignModel::retrieval_embeddings`) are
    /// precomputed **once** here, and the index backend follows the
    /// model's `RetrievalSettings` (`Dense` maps to the exact scan — the
    /// same mapping `eval_config` applies everywhere else).
    ///
    /// # Errors
    /// Propagates the index constructor's typed errors.
    pub fn from_model(model: &DesalignModel, cache_capacity: usize) -> Result<Self, DesalignError> {
        let _span = desalign_telemetry::span("serve.precompute");
        let (x_s, x_t) = model.retrieval_embeddings();
        let cfg = model.config().retrieval.eval_config(model.seed());
        Self::from_embeddings(x_s, x_t, &cfg, cache_capacity)
    }

    /// Number of source entities that can be queried by id.
    pub fn num_queries(&self) -> usize {
        self.queries.rows()
    }

    /// Number of target entities in the index.
    pub fn num_items(&self) -> usize {
        self.index.num_items()
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.index.dim()
    }

    /// The index backend in use.
    pub fn backend(&self) -> IndexKind {
        self.index.kind()
    }

    /// Lifetime featurization-cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Featurizes one query into a raw (un-normalized) embedding row.
    /// Entity lookups go through the LRU cache; cached rows are copies of
    /// the same table rows, so a hit cannot change a single bit.
    fn featurize(&self, query: &AlignQuery) -> Result<Vec<f32>, DesalignError> {
        match query {
            AlignQuery::Entity(id) => {
                if *id >= self.queries.rows() {
                    return Err(DesalignError::new(
                        DefectClass::PairOutOfRange,
                        "align.entity",
                        format!("unknown entity id {id} (source KG holds {})", self.queries.rows()),
                    ));
                }
                let mut cache = self.cache.lock().expect("cache lock");
                if let Some(row) = cache.get(*id) {
                    count_cache(true);
                    return Ok(row.to_vec());
                }
                count_cache(false);
                let row = self.queries.row(*id).to_vec();
                cache.insert(*id, row.clone());
                Ok(row)
            }
            AlignQuery::Vector(row) => {
                if row.len() != self.dim() {
                    return Err(DesalignError::new(
                        DefectClass::DimensionMismatch,
                        "align.vector",
                        format!("query dim {} != index dim {}", row.len(), self.dim()),
                    ));
                }
                if row.iter().any(|v| !v.is_finite()) {
                    return Err(DesalignError::new(
                        DefectClass::NonFiniteFeature,
                        "align.vector",
                        "query vector contains NaN or ±inf",
                    ));
                }
                Ok(row.clone())
            }
        }
    }

    /// Answers one query: top-`k` target candidates.
    ///
    /// # Errors
    /// [`DefectClass::PairOutOfRange`] for unknown entity ids,
    /// [`DefectClass::DimensionMismatch`] / [`DefectClass::NonFiniteFeature`]
    /// for malformed vectors.
    pub fn answer(&self, query: &AlignQuery, k: usize) -> Result<AlignAnswer, DesalignError> {
        let row = self.featurize(query)?;
        Ok(AlignAnswer { candidates: self.index.search(&row, k)? })
    }

    /// Answers a coalesced batch in **one** index call: featurizes each
    /// query (malformed ones fail individually without poisoning the
    /// batch), stacks the valid rows into a matrix, runs a single
    /// `search_batch` over `desalign-parallel`, and scatters results back
    /// in request order.
    ///
    /// Each row is scored independently inside `search_batch` and top-k
    /// lists are strictly ordered, so truncating the batch-wide `max(k)`
    /// list to each request's own `k` is bit-identical to answering that
    /// request alone — batch composition can never change response bytes.
    pub fn answer_batch(&self, batch: &[(AlignQuery, usize)]) -> Vec<Result<AlignAnswer, DesalignError>> {
        self.answer_batch_on(&self.index, batch)
    }

    /// Whether a degraded-mode shadow index exists (true iff the primary
    /// backend is IVF).
    pub fn has_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// [`answer_batch`](Self::answer_batch) through the exact-scan shadow
    /// index. Falls through to the primary when no fallback exists (the
    /// primary already *is* the exact scan then). Used by the circuit
    /// breaker while the primary backend is suspected faulty.
    pub fn answer_batch_degraded(&self, batch: &[(AlignQuery, usize)]) -> Vec<Result<AlignAnswer, DesalignError>> {
        match &self.fallback {
            Some(exact) => self.answer_batch_on(exact, batch),
            None => self.answer_batch_on(&self.index, batch),
        }
    }

    fn answer_batch_on(&self, index: &ItemIndex, batch: &[(AlignQuery, usize)]) -> Vec<Result<AlignAnswer, DesalignError>> {
        let _span = desalign_telemetry::span("serve.batch");
        let mut out: Vec<Option<Result<AlignAnswer, DesalignError>>> = batch.iter().map(|_| None).collect();
        let mut rows: Vec<f32> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        let mut max_k = 0usize;
        for (i, (query, k)) in batch.iter().enumerate() {
            match self.featurize(query) {
                Ok(row) => {
                    rows.extend_from_slice(&row);
                    slots.push(i);
                    max_k = max_k.max(*k);
                }
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        if !slots.is_empty() {
            let stacked = Matrix::from_vec(slots.len(), self.dim(), rows);
            // Featurization already validated every row, so the only
            // errors left are construction-time ones that cannot occur
            // here; map them defensively anyway.
            match index.search_batch(&stacked, max_k) {
                Ok(lists) => {
                    for (slot, mut list) in slots.into_iter().zip(lists) {
                        list.truncate(batch[slot].1);
                        out[slot] = Some(Ok(AlignAnswer { candidates: list }));
                    }
                }
                Err(e) => {
                    for slot in slots {
                        out[slot] = Some(Err(e.clone()));
                    }
                }
            }
        }
        out.into_iter().map(|r| r.expect("every slot answered")).collect()
    }
}

fn count_cache(hit: bool) {
    use std::sync::OnceLock;
    static HITS: OnceLock<desalign_telemetry::Counter> = OnceLock::new();
    static MISSES: OnceLock<desalign_telemetry::Counter> = OnceLock::new();
    if hit {
        HITS.get_or_init(|| desalign_telemetry::counter("serve.cache_hits")).incr();
    } else {
        MISSES.get_or_init(|| desalign_telemetry::counter("serve.cache_misses")).incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_engine(cache: usize) -> AlignEngine {
        let queries = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let items = Matrix::from_rows(&[&[1.0, 0.0], &[0.7, 0.7], &[0.0, 1.0]]);
        AlignEngine::from_embeddings(queries, items, &RetrievalConfig::default(), cache).unwrap()
    }

    #[test]
    fn entity_and_vector_queries_agree() {
        let engine = tiny_engine(8);
        let by_id = engine.answer(&AlignQuery::Entity(0), 2).unwrap();
        let by_vec = engine.answer(&AlignQuery::Vector(vec![1.0, 0.0]), 2).unwrap();
        assert_eq!(by_id, by_vec);
        assert_eq!(by_id.candidates[0].0, 0);
    }

    #[test]
    fn cache_hits_do_not_change_answers() {
        let engine = tiny_engine(2);
        let cold = engine.answer(&AlignQuery::Entity(1), 3).unwrap();
        let warm = engine.answer(&AlignQuery::Entity(1), 3).unwrap();
        assert_eq!(cold, warm);
        let (hits, misses) = engine.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn batch_matches_singles_and_isolates_bad_queries() {
        let engine = tiny_engine(8);
        let batch = vec![
            (AlignQuery::Entity(0), 2),
            (AlignQuery::Entity(99), 2), // unknown id: fails alone
            (AlignQuery::Vector(vec![0.0, 1.0]), 3),
            (AlignQuery::Vector(vec![1.0]), 2), // wrong dim: fails alone
        ];
        let answers = engine.answer_batch(&batch);
        assert_eq!(answers[0].as_ref().unwrap(), &engine.answer(&batch[0].0, 2).unwrap());
        assert_eq!(answers[1].as_ref().unwrap_err().class, DefectClass::PairOutOfRange);
        assert_eq!(answers[2].as_ref().unwrap(), &engine.answer(&batch[2].0, 3).unwrap());
        assert_eq!(answers[3].as_ref().unwrap_err().class, DefectClass::DimensionMismatch);
    }

    #[test]
    fn ivf_engine_carries_an_exact_fallback_and_degraded_answers_match_exact() {
        use desalign_eval::IvfParams;
        let queries = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let items = Matrix::from_rows(&[&[1.0, 0.0], &[0.7, 0.7], &[0.0, 1.0], &[0.5, 0.1]]);
        let ivf_cfg = RetrievalConfig {
            kind: IndexKind::Ivf,
            ivf: IvfParams { nlist: 2, nprobe: 1, kmeans_iters: 2, seed: 7 },
        };
        let ivf = AlignEngine::from_embeddings(queries.clone(), items.clone(), &ivf_cfg, 8).unwrap();
        let exact = AlignEngine::from_embeddings(queries, items, &RetrievalConfig::default(), 8).unwrap();
        assert!(ivf.has_fallback());
        assert!(!exact.has_fallback());
        let batch = vec![(AlignQuery::Entity(0), 3), (AlignQuery::Entity(2), 2)];
        let degraded = ivf.answer_batch_degraded(&batch);
        let reference = exact.answer_batch(&batch);
        for (d, r) in degraded.iter().zip(&reference) {
            assert_eq!(d.as_ref().unwrap(), r.as_ref().unwrap());
        }
        // Without a fallback, degraded answers fall through to the primary.
        assert_eq!(
            exact.answer_batch_degraded(&batch)[0].as_ref().unwrap(),
            reference[0].as_ref().unwrap()
        );
    }

    #[test]
    fn hostile_vectors_surface_typed_errors() {
        let engine = tiny_engine(0);
        let err = engine.answer(&AlignQuery::Vector(vec![f32::NAN, 0.0]), 2).unwrap_err();
        assert_eq!(err.class, DefectClass::NonFiniteFeature);
        let err = engine.answer(&AlignQuery::Entity(3), 2).unwrap_err();
        assert_eq!(err.class, DefectClass::PairOutOfRange);
    }
}
