//! A bounded LRU cache for query-side featurizations.
//!
//! The serving engine featurizes every `{"entity": id}` query into an
//! embedding row before searching. Rows are pure functions of the loaded
//! checkpoint, so caching them can never change response bits — the cache
//! trades a row copy for a map lookup on hot entities and, more
//! importantly, establishes the eviction discipline the out-of-core
//! roadmap item will need when featurization stops being a table lookup.

use std::collections::HashMap;

/// A least-recently-used cache from entity id to featurized row.
///
/// Recency is tracked with a monotone access tick per entry; eviction
/// scans for the minimum tick (O(len), fine at the few-thousand-entry
/// capacities serving uses) and breaks ties on the smaller key, so the
/// eviction order is deterministic. A `capacity` of 0 disables the cache
/// (every `get` misses, `insert` is a no-op).
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    tick: u64,
    map: HashMap<usize, (Vec<f32>, u64)>,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// An empty cache holding at most `capacity` rows.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, tick: 0, map: HashMap::new(), hits: 0, misses: 0 }
    }

    /// Maximum number of rows retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime `(hits, misses)` counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: usize) -> Option<&[f32]> {
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some((row, tick)) => {
                *tick = self.tick;
                self.hits += 1;
                Some(row.as_slice())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&mut self, key: usize, row: Vec<f32>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            let victim = self
                .map
                .iter()
                .map(|(&k, &(_, t))| (t, k))
                .min() // oldest tick, then smallest key — deterministic
                .map(|(_, k)| k)
                .expect("non-empty at capacity");
            self.map.remove(&victim);
        }
        self.map.insert(key, (row, self.tick));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, vec![1.0]);
        c.insert(2, vec![2.0]);
        assert!(c.get(1).is_some()); // 1 is now fresher than 2
        c.insert(3, vec![3.0]); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn refreshing_an_existing_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert(1, vec![1.0]);
        c.insert(2, vec![2.0]);
        c.insert(1, vec![1.5]); // refresh in place
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).unwrap(), &[1.5]);
        assert!(c.get(2).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert(1, vec![1.0]);
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (0, 1));
    }
}
