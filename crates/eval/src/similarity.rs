//! Similarity matrices between two embedding sets.

use desalign_tensor::Matrix;

/// A dense `n_source × n_target` pairwise-similarity matrix `Ω`
/// (Algorithm 1's output).
#[derive(Clone, Debug)]
pub struct SimilarityMatrix {
    scores: Matrix,
}

impl SimilarityMatrix {
    /// Wraps a raw score matrix.
    pub fn new(scores: Matrix) -> Self {
        Self { scores }
    }

    /// The raw score matrix.
    pub fn scores(&self) -> &Matrix {
        &self.scores
    }

    /// Shape `(n_source, n_target)`.
    pub fn shape(&self) -> (usize, usize) {
        self.scores.shape()
    }

    /// Element-wise average of several similarity matrices — the mean over
    /// Semantic Propagation rounds (Algorithm 1, line 15).
    ///
    /// # Panics
    /// Panics if `mats` is empty or shapes disagree.
    pub fn average(mats: &[SimilarityMatrix]) -> SimilarityMatrix {
        assert!(!mats.is_empty(), "SimilarityMatrix::average: no matrices");
        let mut acc = mats[0].scores.clone();
        for m in &mats[1..] {
            acc = acc.add(&m.scores);
        }
        SimilarityMatrix { scores: acc.scale(1.0 / mats.len() as f32) }
    }

    /// For source row `i`, the target indices sorted by descending score.
    pub fn ranked_targets(&self, i: usize) -> Vec<usize> {
        let row = self.scores.row(i);
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal));
        idx
    }

    /// Rank (1-based) of `target` among source row `i`'s candidates, i.e.
    /// `1 + |{j : score(i,j) > score(i,target)}|`. Ties rank optimistically
    /// (standard competition ranking on strictly-greater scores).
    pub fn rank_of(&self, i: usize, target: usize) -> usize {
        let row = self.scores.row(i);
        let s = row[target];
        1 + row.iter().filter(|&&v| v > s).count()
    }

    /// Argmax target for source row `i`.
    pub fn best_target(&self, i: usize) -> usize {
        let row = self.scores.row(i);
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(j, _)| j)
            .unwrap_or(0)
    }
}

/// Cosine similarity between every row of `source` and every row of
/// `target` (`n_s × n_t`).
pub fn cosine_similarity(source: &Matrix, target: &Matrix) -> SimilarityMatrix {
    assert_eq!(source.cols(), target.cols(), "cosine_similarity: dims differ ({} vs {})", source.cols(), target.cols());
    let s = source.l2_normalize_rows(1e-9);
    let t = target.l2_normalize_rows(1e-9);
    SimilarityMatrix::new(s.matmul_nt(&t))
}

/// CSLS (Cross-domain Similarity Local Scaling) re-scoring, the standard
/// hubness correction for alignment retrieval:
///
/// `csls(i,j) = 2·sim(i,j) − r_s(i) − r_t(j)`
///
/// where `r_s(i)` is the mean similarity of `i` to its `k` nearest targets
/// and `r_t(j)` symmetric.
///
/// Degenerate `k` is **silently clamped** here (`0 → 1`, `k > n` → `n`) for
/// backward compatibility; use [`try_csls_rescale`] to reject such `k` with
/// a typed error instead, and `DesalignConfig::validate` to catch it at
/// configuration time.
pub fn csls_rescale(sim: &SimilarityMatrix, k: usize) -> SimilarityMatrix {
    let m = sim.scores();
    let (n_s, n_t) = m.shape();
    let k = k.max(1);
    let mean_topk = |row: &[f32]| -> f32 {
        let mut v = row.to_vec();
        let kk = k.min(v.len());
        if kk == 0 {
            return 0.0;
        }
        v.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        v[..kk].iter().sum::<f32>() / kk as f32
    };
    // r_s(i) / r_t(j) are independent per row/column, and the output is
    // element-wise — all three loops parallelize with bit-identical results
    // at any thread count.
    let hood_cost = n_s.saturating_mul(n_t).saturating_mul(8); // sort-dominated
    let mut r_s = vec![0.0f32; n_s];
    desalign_parallel::par_rows(&mut r_s, 1, hood_cost, |i, slot| slot[0] = mean_topk(m.row(i)));
    let mut r_t = vec![0.0f32; n_t];
    desalign_parallel::par_rows(&mut r_t, 1, hood_cost, |j, slot| slot[0] = mean_topk(&m.col(j)));
    let mut out = Matrix::zeros(n_s, n_t);
    if n_t > 0 {
        desalign_parallel::par_rows(out.as_mut_slice(), n_t, n_s.saturating_mul(n_t), |i, out_row| {
            let (row, ri) = (m.row(i), r_s[i]);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = 2.0 * row[j] - ri - r_t[j];
            }
        });
    }
    SimilarityMatrix::new(out)
}

/// Validating [`csls_rescale`]: rejects neighbourhood sizes the clamping
/// variant would silently shrink.
///
/// # Errors
/// [`DefectClass::Config`](desalign_util::DefectClass::Config) when
/// `k == 0` or `k` exceeds either side of the matrix (`r_s` means over
/// `n_t` targets, `r_t` over `n_s` sources).
pub fn try_csls_rescale(sim: &SimilarityMatrix, k: usize) -> Result<SimilarityMatrix, desalign_util::DesalignError> {
    let (n_s, n_t) = sim.shape();
    if k == 0 {
        return Err(desalign_util::DesalignError::config("csls.k", "CSLS neighbourhood k must be ≥ 1"));
    }
    if k > n_s || k > n_t {
        return Err(desalign_util::DesalignError::config(
            "csls.k",
            format!("CSLS neighbourhood k = {k} exceeds the {n_s}×{n_t} similarity matrix; the top-k mean would silently clamp"),
        ));
    }
    Ok(csls_rescale(sim, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_identical_rows_is_one() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let sim = cosine_similarity(&a, &a);
        assert!((sim.scores()[(0, 0)] - 1.0).abs() < 1e-6);
        assert!((sim.scores()[(1, 1)] - 1.0).abs() < 1e-6);
        assert!(sim.scores()[(0, 1)].abs() < 1e-6);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        let sim = cosine_similarity(&a, &b);
        assert!((sim.scores()[(0, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ranking_helpers() {
        let sim = SimilarityMatrix::new(Matrix::from_rows(&[&[0.1, 0.9, 0.5]]));
        assert_eq!(sim.ranked_targets(0), vec![1, 2, 0]);
        assert_eq!(sim.rank_of(0, 1), 1);
        assert_eq!(sim.rank_of(0, 2), 2);
        assert_eq!(sim.rank_of(0, 0), 3);
        assert_eq!(sim.best_target(0), 1);
    }

    #[test]
    fn average_of_matrices() {
        let a = SimilarityMatrix::new(Matrix::full(2, 2, 1.0));
        let b = SimilarityMatrix::new(Matrix::full(2, 2, 3.0));
        let avg = SimilarityMatrix::average(&[a, b]);
        assert_eq!(avg.scores()[(0, 0)], 2.0);
    }

    #[test]
    fn csls_penalizes_hubs() {
        // Target 0 is a "hub": similar to everything. CSLS should demote it
        // relative to the discriminative target 1.
        let raw = Matrix::from_rows(&[
            &[0.9, 0.8, 0.0],
            &[0.9, 0.0, 0.1],
            &[0.9, 0.1, 0.0],
        ]);
        let sim = SimilarityMatrix::new(raw);
        let csls = csls_rescale(&sim, 2);
        // For source 0, the margin (hub − alternative) shrinks under CSLS.
        let before = sim.scores()[(0, 0)] - sim.scores()[(0, 1)];
        let after = csls.scores()[(0, 0)] - csls.scores()[(0, 1)];
        assert!(after < before, "CSLS did not demote the hub: {after} >= {before}");
    }
}
