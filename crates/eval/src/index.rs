//! Sub-quadratic retrieval: the [`Retriever`] abstraction, a blocked exact
//! scanner, and a deterministic IVF approximate index.
//!
//! Every retrieval consumer in the reproduction — `evaluate_ranking`, CSLS
//! re-scoring, mutual-NN pseudo-pair mining — historically materialized the
//! dense `n_s × n_t` similarity matrix, which caps the pipeline at toy
//! scale. This module factors the three consumers onto one [`Retriever`]
//! trait with two memory-bounded backends:
//!
//! - [`ExactRetriever`] — a blocked/tiled scan over ℓ2-normalized rows.
//!   It never materializes more than one score at a time, yet is
//!   **bit-identical** to the dense [`cosine_similarity`] path: both
//!   normalize with the same `l2_normalize_rows(1e-9)` and score with the
//!   same fixed-accumulator [`dot`], and top-k selection uses a strict
//!   total order (score descending, id ascending) whose result is
//!   independent of scan order, block size, and thread count.
//! - [`IvfRetriever`] — an IVF (inverted-file) index: seeded spherical
//!   k-means over `Rng64` partitions the items into `nlist` cells; a
//!   query scans only the `nprobe` cells whose centroids score highest.
//!   Build and search are bit-deterministic under `DESALIGN_THREADS`
//!   because assignment parallelizes per row (each row's result depends
//!   only on that row) and centroid updates accumulate serially in item
//!   order.
//!
//! Approximation is surfaced, never silent: telemetry counters
//! `retrieval.probes` / `retrieval.candidates` record how much of the
//! corpus each search touched, and the `retrieval_bench` harness plus the
//! ci.sh recall gate enforce recall@10 ≥ 0.95 against the exact backend.
//!
//! [`cosine_similarity`]: crate::cosine_similarity

use crate::{AlignmentMetrics, SimilarityMatrix};
use desalign_tensor::{dot, rng_from_seed, Matrix, SliceRandom};
use desalign_util::{DefectClass, DesalignError};
use std::sync::OnceLock;

/// Default block length (rows per tile) for the blocked exact scan.
pub const DEFAULT_BLOCK_LEN: usize = 256;

/// Search-volume telemetry. Cached handles so the gated hot path pays one
/// atomic load + two atomic adds (same idiom as `desalign-parallel`).
struct RetrievalCounters {
    probes: desalign_telemetry::Counter,
    candidates: desalign_telemetry::Counter,
}

fn retrieval_counters() -> &'static RetrievalCounters {
    static COUNTERS: OnceLock<RetrievalCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| RetrievalCounters {
        probes: desalign_telemetry::counter("retrieval.probes"),
        candidates: desalign_telemetry::counter("retrieval.candidates"),
    })
}

fn count_search(probes: u64, candidates: u64) {
    if desalign_telemetry::enabled() {
        let c = retrieval_counters();
        c.probes.add(probes);
        c.candidates.add(candidates);
    }
}

/// The strict total order used everywhere in this module: higher score
/// first, ties broken by **ascending id**. Total because ids are unique
/// within one scan; NaN scores sort as −∞ (below every real score), so a
/// poisoned candidate can never displace a real one. (Index constructors
/// reject non-finite rows; this only matters for the dense bridge.)
#[inline]
fn beats(a: (usize, f32), b: (usize, f32)) -> bool {
    let sa = if a.1.is_nan() { f32::NEG_INFINITY } else { a.1 };
    let sb = if b.1.is_nan() { f32::NEG_INFINITY } else { b.1 };
    sa > sb || (sa == sb && a.0 < b.0)
}

/// Bounded top-k buffer over the [`beats`] order. Because the order is a
/// strict total order on distinct ids, the final contents (and their
/// sorted layout) depend only on the offered *set*, not the offer order —
/// the keystone of block-size and thread-count invariance.
struct TopK {
    k: usize,
    entries: Vec<(usize, f32)>,
}

impl TopK {
    fn new(k: usize) -> Self {
        Self { k, entries: Vec::with_capacity(k.min(1024)) }
    }

    #[inline]
    fn offer(&mut self, id: usize, score: f32) {
        if self.k == 0 {
            return;
        }
        let cand = (id, score);
        if self.entries.len() == self.k {
            let worst = *self.entries.last().expect("non-empty at capacity");
            if !beats(cand, worst) {
                return;
            }
            self.entries.pop();
        }
        let pos = self.entries.partition_point(|&e| beats(e, cand));
        self.entries.insert(pos, cand);
    }

    fn into_sorted(self) -> Vec<(usize, f32)> {
        self.entries
    }
}

/// Rejects matrices containing NaN/±∞ rows with a typed error, so poisoned
/// embeddings surface at index-build time instead of corrupting rankings.
fn ensure_finite(m: &Matrix, location: &str) -> Result<(), DesalignError> {
    for i in 0..m.rows() {
        if m.row(i).iter().any(|v| !v.is_finite()) {
            return Err(DesalignError::new(
                DefectClass::NonFiniteFeature,
                format!("{location}[{i}]"),
                "embedding row contains NaN or ±inf; refusing to build a retriever over it",
            ));
        }
    }
    Ok(())
}

fn ensure_same_dim(queries: &Matrix, items: &Matrix, location: &str) -> Result<(), DesalignError> {
    if queries.cols() != items.cols() {
        return Err(DesalignError::new(
            DefectClass::DimensionMismatch,
            location,
            format!("query dim {} != item dim {}", queries.cols(), items.cols()),
        ));
    }
    Ok(())
}

/// A nearest-neighbour search backend over a fixed query set and item set.
///
/// Queries and items are addressed by **position** (`0..num_queries`,
/// `0..num_items`); callers that search over candidate subsets map
/// positions back to entity ids themselves. All methods are `&self` and
/// implementations are `Sync`, so batch drivers parallelize per query with
/// bit-identical results at any thread count.
pub trait Retriever: Sync {
    /// Number of query rows.
    fn num_queries(&self) -> usize;
    /// Number of indexed items.
    fn num_items(&self) -> usize;
    /// Similarity of query `q` to item `item` (always exact, even on
    /// approximate backends — used for gold scores and re-scoring).
    fn score(&self, q: usize, item: usize) -> f32;
    /// Optimistic competition rank of `gold` for query `q`:
    /// `1 + |{examined items scoring strictly above gold}|`. Approximate
    /// backends count only the items their probes examine.
    fn rank_of(&self, q: usize, gold: usize) -> usize;
    /// The `k` best items for query `q`, sorted by descending score with
    /// ties broken by ascending item position. Returns fewer than `k`
    /// entries when the (examined) corpus is smaller than `k`.
    fn top_k(&self, q: usize, k: usize) -> Vec<(usize, f32)>;
}

// ---------------------------------------------------------------------------
// Dense backend: a view over a precomputed similarity matrix.
// ---------------------------------------------------------------------------

/// A [`Retriever`] view over a precomputed dense [`SimilarityMatrix`] —
/// the bridge that lets `evaluate_ranking` and `mutual_nearest_neighbours`
/// keep their historical (bit-exact) dense semantics while running through
/// the shared retrieval engines.
pub struct DenseRetriever<'a> {
    sim: &'a SimilarityMatrix,
    queries: Vec<usize>,
    items: Vec<usize>,
    /// When true, positions index the matrix transposed: query `q` is
    /// column `queries[q]`, item `j` is row `items[j]`. Used for the
    /// reverse direction of mutual-NN mining.
    transposed: bool,
}

impl<'a> DenseRetriever<'a> {
    /// Queries select rows of `sim`, items select columns.
    ///
    /// # Panics
    /// Panics if any index is out of bounds (matching the historical
    /// `evaluate_ranking` contract for malformed pairs).
    pub fn new(sim: &'a SimilarityMatrix, queries: Vec<usize>, items: Vec<usize>) -> Self {
        let (n_s, n_t) = sim.shape();
        for &q in &queries {
            assert!(q < n_s, "DenseRetriever: query row {q} out of bounds for {n_s}x{n_t}");
        }
        for &j in &items {
            assert!(j < n_t, "DenseRetriever: item column {j} out of bounds for {n_s}x{n_t}");
        }
        Self { sim, queries, items, transposed: false }
    }

    /// Transposed view: queries select **columns** of `sim`, items select
    /// rows — the reverse direction of a forward similarity matrix.
    pub fn transposed(sim: &'a SimilarityMatrix, queries: Vec<usize>, items: Vec<usize>) -> Self {
        let (n_s, n_t) = sim.shape();
        for &q in &queries {
            assert!(q < n_t, "DenseRetriever: query column {q} out of bounds for {n_s}x{n_t}");
        }
        for &j in &items {
            assert!(j < n_s, "DenseRetriever: item row {j} out of bounds for {n_s}x{n_t}");
        }
        Self { sim, queries, items, transposed: true }
    }
}

impl Retriever for DenseRetriever<'_> {
    fn num_queries(&self) -> usize {
        self.queries.len()
    }

    fn num_items(&self) -> usize {
        self.items.len()
    }

    #[inline]
    fn score(&self, q: usize, item: usize) -> f32 {
        let m = self.sim.scores();
        if self.transposed {
            m[(self.items[item], self.queries[q])]
        } else {
            m[(self.queries[q], self.items[item])]
        }
    }

    fn rank_of(&self, q: usize, gold: usize) -> usize {
        let gold_score = self.score(q, gold);
        let n = self.items.len();
        count_search(1, n as u64);
        1 + (0..n).filter(|&j| self.score(q, j) > gold_score).count()
    }

    fn top_k(&self, q: usize, k: usize) -> Vec<(usize, f32)> {
        let n = self.items.len();
        count_search(1, n as u64);
        let mut buf = TopK::new(k);
        for j in 0..n {
            buf.offer(j, self.score(q, j));
        }
        buf.into_sorted()
    }
}

// ---------------------------------------------------------------------------
// Exact backend: blocked scan over normalized embeddings.
// ---------------------------------------------------------------------------

/// Blocked exact cosine search: ℓ2-normalizes both sides once, then scans
/// items in tiles of `block_len` rows, keeping only a bounded top-k buffer
/// — O(dim) extra memory per query instead of an `n_q × n_items` matrix.
///
/// Bit-identical to [`cosine_similarity`](crate::cosine_similarity)
/// followed by a dense scan: same `l2_normalize_rows(1e-9)`, same [`dot`],
/// and a scan-order-independent selection rule.
#[derive(Debug)]
pub struct ExactRetriever {
    queries: Matrix,
    items: Matrix,
    block_len: usize,
}

impl ExactRetriever {
    /// Normalizes and validates both embedding sets.
    ///
    /// # Errors
    /// [`DefectClass::DimensionMismatch`] when the embedding widths
    /// disagree; [`DefectClass::NonFiniteFeature`] when any row contains
    /// NaN/±∞.
    pub fn new(queries: &Matrix, items: &Matrix) -> Result<Self, DesalignError> {
        ensure_same_dim(queries, items, "ExactRetriever::new")?;
        ensure_finite(queries, "retrieval.queries")?;
        ensure_finite(items, "retrieval.items")?;
        Ok(Self {
            queries: queries.l2_normalize_rows(1e-9),
            items: items.l2_normalize_rows(1e-9),
            block_len: DEFAULT_BLOCK_LEN,
        })
    }

    /// Overrides the tile size (testing hook; any positive value yields
    /// identical results).
    ///
    /// # Panics
    /// Panics if `block_len` is zero.
    pub fn with_block_len(mut self, block_len: usize) -> Self {
        assert!(block_len > 0, "ExactRetriever: block_len must be positive");
        self.block_len = block_len;
        self
    }
}

impl Retriever for ExactRetriever {
    fn num_queries(&self) -> usize {
        self.queries.rows()
    }

    fn num_items(&self) -> usize {
        self.items.rows()
    }

    #[inline]
    fn score(&self, q: usize, item: usize) -> f32 {
        dot(self.queries.row(q), self.items.row(item))
    }

    fn rank_of(&self, q: usize, gold: usize) -> usize {
        let qrow = self.queries.row(q);
        let gold_score = dot(qrow, self.items.row(gold));
        let n = self.items.rows();
        count_search(1, n as u64);
        let mut above = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + self.block_len).min(n);
            for j in start..end {
                if dot(qrow, self.items.row(j)) > gold_score {
                    above += 1;
                }
            }
            start = end;
        }
        1 + above
    }

    fn top_k(&self, q: usize, k: usize) -> Vec<(usize, f32)> {
        exact_scan_top_k(self.queries.row(q), &self.items, self.block_len, k)
    }
}

/// The blocked exact top-k scan, shared by [`ExactRetriever::top_k`] and
/// [`ItemIndex::search`] so the two entry points are bit-identical by
/// construction. `qrow` and `items` must already be ℓ2-normalized.
fn exact_scan_top_k(qrow: &[f32], items: &Matrix, block_len: usize, k: usize) -> Vec<(usize, f32)> {
    let n = items.rows();
    count_search(1, n as u64);
    let mut buf = TopK::new(k);
    let mut start = 0;
    while start < n {
        let end = (start + block_len).min(n);
        for j in start..end {
            buf.offer(j, dot(qrow, items.row(j)));
        }
        start = end;
    }
    buf.into_sorted()
}

// ---------------------------------------------------------------------------
// IVF backend: seeded spherical k-means + nprobe-bounded search.
// ---------------------------------------------------------------------------

/// IVF build/search hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IvfParams {
    /// Number of k-means cells; `0` selects `⌈√n⌉` automatically. Values
    /// above the item count are clamped to it (every cell needs a seed
    /// row).
    pub nlist: usize,
    /// Number of cells scanned per query, in descending centroid-score
    /// order. Clamped to `nlist` at search time. Must be ≥ 1.
    pub nprobe: usize,
    /// Lloyd iterations (assign + update rounds) after seeding.
    pub kmeans_iters: usize,
    /// Seed for the `Rng64` that shuffles the initial centroid choice.
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        Self { nlist: 0, nprobe: 16, kmeans_iters: 8, seed: 0xDE5A_11F0 }
    }
}

/// A built inverted-file index over one item set: normalized item rows,
/// spherical k-means centroids, and per-cell posting lists (ascending item
/// order, so scans are deterministic).
#[derive(Debug)]
pub struct IvfIndex {
    items: Matrix,
    centroids: Matrix,
    lists: Vec<Vec<u32>>,
    nprobe: usize,
}

impl IvfIndex {
    /// Builds the index: seeded shuffle picks `nlist` distinct item rows as
    /// initial centroids, then `kmeans_iters` Lloyd rounds refine them
    /// (assignment parallel per row, update serial in item order — both
    /// bit-deterministic under `DESALIGN_THREADS`). Empty item sets build
    /// an empty index whose searches return nothing.
    ///
    /// # Errors
    /// [`DefectClass::Config`] when `nprobe == 0`;
    /// [`DefectClass::NonFiniteFeature`] on NaN/±∞ rows.
    pub fn build(items: &Matrix, params: &IvfParams) -> Result<Self, DesalignError> {
        if params.nprobe == 0 {
            return Err(DesalignError::config("retrieval.nprobe", "nprobe must be ≥ 1 (0 cells probed would return nothing)"));
        }
        ensure_finite(items, "retrieval.items")?;
        let _span = desalign_telemetry::span("retrieval.build");
        let items = items.l2_normalize_rows(1e-9);
        let (n, d) = items.shape();
        if n == 0 {
            return Ok(Self { items, centroids: Matrix::zeros(0, d), lists: Vec::new(), nprobe: params.nprobe });
        }
        let nlist = if params.nlist == 0 { (n as f64).sqrt().ceil() as usize } else { params.nlist }.clamp(1, n);

        // Seeded init: shuffle item positions, take the first nlist as
        // centroid seeds. The shuffle draws from a dedicated Rng64, so the
        // choice is a pure function of (seed, n).
        let mut rng = rng_from_seed(params.seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut centroids = items.gather_rows(&order[..nlist]);

        let mut assign = vec![0u32; n];
        let assign_cost = n.saturating_mul(nlist).saturating_mul(d.max(1));
        for _ in 0..params.kmeans_iters {
            Self::assign_cells(&items, &centroids, assign_cost, &mut assign);
            // Serial, item-order centroid update: mean of members, then
            // spherical renormalization. Empty cells keep their previous
            // centroid (they can re-acquire members next round).
            let mut sums = Matrix::zeros(nlist, d);
            let mut counts = vec![0usize; nlist];
            for (i, &c) in assign.iter().enumerate() {
                let row = items.row(i);
                let acc = sums.row_mut(c as usize);
                for (a, v) in acc.iter_mut().zip(row) {
                    *a += v;
                }
                counts[c as usize] += 1;
            }
            for c in 0..nlist {
                if counts[c] == 0 {
                    continue;
                }
                let inv = 1.0 / counts[c] as f32;
                let mean: Vec<f32> = sums.row(c).iter().map(|v| v * inv).collect();
                let norm = mean.iter().map(|v| v * v).sum::<f32>().sqrt();
                let dst = centroids.row_mut(c);
                if norm > 1e-9 {
                    for (o, v) in dst.iter_mut().zip(&mean) {
                        *o = v / norm;
                    }
                } else {
                    dst.copy_from_slice(&mean);
                }
            }
        }
        // Final assignment against the refined centroids feeds the posting
        // lists; pushing in ascending item order keeps scans deterministic.
        Self::assign_cells(&items, &centroids, assign_cost, &mut assign);
        let mut lists = vec![Vec::new(); nlist];
        for (i, &c) in assign.iter().enumerate() {
            lists[c as usize].push(i as u32);
        }
        Ok(Self { items, centroids, lists, nprobe: params.nprobe })
    }

    /// Nearest-centroid assignment (max dot, ties to the lower centroid
    /// id). Each row's result depends only on that row → safe to
    /// parallelize per row with identical bits at any thread count.
    fn assign_cells(items: &Matrix, centroids: &Matrix, cost: usize, assign: &mut [u32]) {
        desalign_parallel::par_rows(assign, 1, cost, |i, slot| {
            let row = items.row(i);
            let (mut arg, mut best) = (0u32, f32::NEG_INFINITY);
            for c in 0..centroids.rows() {
                let s = dot(row, centroids.row(c));
                if s > best {
                    best = s;
                    arg = c as u32;
                }
            }
            slot[0] = arg;
        });
    }

    /// Number of indexed items.
    pub fn num_items(&self) -> usize {
        self.items.rows()
    }

    /// Number of k-means cells.
    pub fn num_cells(&self) -> usize {
        self.lists.len()
    }

    /// The cells to probe for a (normalized) query row: the `nprobe`
    /// highest-scoring centroids, ids ascending on ties.
    fn probe_order(&self, qrow: &[f32]) -> Vec<(usize, f32)> {
        let mut buf = TopK::new(self.nprobe);
        for c in 0..self.centroids.rows() {
            buf.offer(c, dot(qrow, self.centroids.row(c)));
        }
        buf.into_sorted()
    }
}

/// Approximate [`Retriever`] over an [`IvfIndex`] and a fixed query set.
#[derive(Debug)]
pub struct IvfRetriever {
    queries: Matrix,
    index: IvfIndex,
}

impl IvfRetriever {
    /// Binds normalized queries to a built index.
    ///
    /// # Errors
    /// [`DefectClass::DimensionMismatch`] when query and index dims
    /// disagree; [`DefectClass::NonFiniteFeature`] on NaN/±∞ query rows.
    pub fn new(queries: &Matrix, index: IvfIndex) -> Result<Self, DesalignError> {
        ensure_same_dim(queries, &index.items, "IvfRetriever::new")?;
        ensure_finite(queries, "retrieval.queries")?;
        Ok(Self { queries: queries.l2_normalize_rows(1e-9), index })
    }

    /// The underlying index.
    pub fn index(&self) -> &IvfIndex {
        &self.index
    }
}

impl Retriever for IvfRetriever {
    fn num_queries(&self) -> usize {
        self.queries.rows()
    }

    fn num_items(&self) -> usize {
        self.index.items.rows()
    }

    #[inline]
    fn score(&self, q: usize, item: usize) -> f32 {
        dot(self.queries.row(q), self.index.items.row(item))
    }

    fn rank_of(&self, q: usize, gold: usize) -> usize {
        let qrow = self.queries.row(q);
        let gold_score = dot(qrow, self.index.items.row(gold));
        let probes = self.index.probe_order(qrow);
        let mut above = 0usize;
        let mut scanned = 0u64;
        for &(cell, _) in &probes {
            for &i in &self.index.lists[cell] {
                scanned += 1;
                if dot(qrow, self.index.items.row(i as usize)) > gold_score {
                    above += 1;
                }
            }
        }
        count_search(probes.len() as u64, scanned);
        1 + above
    }

    fn top_k(&self, q: usize, k: usize) -> Vec<(usize, f32)> {
        ivf_scan_top_k(self.queries.row(q), &self.index, k)
    }
}

/// The nprobe-bounded IVF top-k scan, shared by [`IvfRetriever::top_k`]
/// and [`ItemIndex::search`]. `qrow` must already be ℓ2-normalized.
fn ivf_scan_top_k(qrow: &[f32], index: &IvfIndex, k: usize) -> Vec<(usize, f32)> {
    let probes = index.probe_order(qrow);
    let mut buf = TopK::new(k);
    let mut scanned = 0u64;
    for &(cell, _) in &probes {
        for &i in &index.lists[cell] {
            scanned += 1;
            buf.offer(i as usize, dot(qrow, index.items.row(i as usize)));
        }
    }
    count_search(probes.len() as u64, scanned);
    buf.into_sorted()
}

// ---------------------------------------------------------------------------
// Backend selection.
// ---------------------------------------------------------------------------

/// Which index structure a [`RetrievalConfig`] builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// Blocked exact scan — bit-identical to the dense cosine path.
    Exact,
    /// Approximate IVF index — sub-quadratic, recall-gated.
    Ivf,
}

/// Embedding-level retrieval configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetrievalConfig {
    /// Backend to build.
    pub kind: IndexKind,
    /// IVF hyper-parameters (ignored by [`IndexKind::Exact`]).
    pub ivf: IvfParams,
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        Self { kind: IndexKind::Exact, ivf: IvfParams::default() }
    }
}

/// Builds the configured backend over `queries` × `items`.
///
/// # Errors
/// Propagates the backend constructors' typed errors (dimension mismatch,
/// non-finite rows, bad `nprobe`).
pub fn build_retriever(queries: &Matrix, items: &Matrix, cfg: &RetrievalConfig) -> Result<Box<dyn Retriever>, DesalignError> {
    match cfg.kind {
        IndexKind::Exact => Ok(Box::new(ExactRetriever::new(queries, items)?)),
        IndexKind::Ivf => {
            let index = IvfIndex::build(items, &cfg.ivf)?;
            Ok(Box::new(IvfRetriever::new(queries, index)?))
        }
    }
}

// ---------------------------------------------------------------------------
// Serving-side index: fixed items, queries arriving one (or a batch) at a
// time.
// ---------------------------------------------------------------------------

/// A query-at-a-time nearest-neighbour index over one fixed item set —
/// the serving-side counterpart of [`Retriever`], whose query set is bound
/// at construction. `desalign-serve` builds one `ItemIndex` over the
/// precomputed entity embeddings at startup and feeds it request rows as
/// they arrive.
///
/// Searches go through the same scan helpers as [`ExactRetriever`] /
/// [`IvfRetriever`] and the same per-row `1e-9`-eps normalization as
/// `l2_normalize_rows`, so a query row produces **bit-identical** scores
/// to binding it in a retriever up front — and, because every query is
/// scored independently, identical bits whether it arrives alone, inside
/// any batch composition, or at any `DESALIGN_THREADS` setting.
#[derive(Debug)]
pub struct ItemIndex {
    backend: ItemBackend,
    dim: usize,
}

#[derive(Debug)]
enum ItemBackend {
    Exact { items: Matrix, block_len: usize },
    Ivf(IvfIndex),
}

/// Per-row ℓ2 normalization matching `l2_normalize_rows(1e-9)` bit-for-bit
/// (same in-order sum-of-squares, same `> eps` guard, same division).
fn normalized_query(query: &[f32]) -> Vec<f32> {
    let mut row = query.to_vec();
    let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm > 1e-9 {
        for v in &mut row {
            *v /= norm;
        }
    }
    row
}

impl ItemIndex {
    /// Builds the configured backend over `items` only.
    ///
    /// # Errors
    /// Propagates the backend constructors' typed errors (non-finite rows,
    /// bad `nprobe`).
    pub fn build(items: &Matrix, cfg: &RetrievalConfig) -> Result<Self, DesalignError> {
        let dim = items.cols();
        let backend = match cfg.kind {
            IndexKind::Exact => {
                ensure_finite(items, "retrieval.items")?;
                ItemBackend::Exact { items: items.l2_normalize_rows(1e-9), block_len: DEFAULT_BLOCK_LEN }
            }
            IndexKind::Ivf => ItemBackend::Ivf(IvfIndex::build(items, &cfg.ivf)?),
        };
        Ok(Self { backend, dim })
    }

    /// Number of indexed items.
    pub fn num_items(&self) -> usize {
        match &self.backend {
            ItemBackend::Exact { items, .. } => items.rows(),
            ItemBackend::Ivf(index) => index.num_items(),
        }
    }

    /// Embedding width every query must match.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Which backend this index was built with.
    pub fn kind(&self) -> IndexKind {
        match &self.backend {
            ItemBackend::Exact { .. } => IndexKind::Exact,
            ItemBackend::Ivf(_) => IndexKind::Ivf,
        }
    }

    /// Validates one query row: width must match the index, values must be
    /// finite.
    fn check_query(&self, query: &[f32], location: &str) -> Result<(), DesalignError> {
        if query.len() != self.dim {
            return Err(DesalignError::new(
                DefectClass::DimensionMismatch,
                location,
                format!("query dim {} != index dim {}", query.len(), self.dim),
            ));
        }
        if query.iter().any(|v| !v.is_finite()) {
            return Err(DesalignError::new(
                DefectClass::NonFiniteFeature,
                location,
                "query row contains NaN or ±inf",
            ));
        }
        Ok(())
    }

    fn scan(&self, qrow: &[f32], k: usize) -> Vec<(usize, f32)> {
        match &self.backend {
            ItemBackend::Exact { items, block_len } => exact_scan_top_k(qrow, items, *block_len, k),
            ItemBackend::Ivf(index) => ivf_scan_top_k(qrow, index, k),
        }
    }

    /// The `k` best items for one raw (un-normalized) query row, sorted by
    /// descending score with ties broken by ascending item position.
    ///
    /// # Errors
    /// [`DefectClass::DimensionMismatch`] on a wrong-width query,
    /// [`DefectClass::NonFiniteFeature`] on NaN/±∞ values.
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<(usize, f32)>, DesalignError> {
        self.check_query(query, "ItemIndex::search")?;
        Ok(self.scan(&normalized_query(query), k))
    }

    /// [`search`](Self::search) over every row of `queries`, parallel per
    /// row over `desalign-parallel`. Each row is normalized and scanned
    /// independently, so the result is bit-identical to calling `search`
    /// row by row, regardless of batch composition or thread count.
    ///
    /// # Errors
    /// Validates every row **before** scanning any, so a poisoned row in a
    /// batch fails the whole call instead of half-answering.
    pub fn search_batch(&self, queries: &Matrix, k: usize) -> Result<Vec<Vec<(usize, f32)>>, DesalignError> {
        if queries.cols() != self.dim && queries.rows() > 0 {
            return Err(DesalignError::new(
                DefectClass::DimensionMismatch,
                "ItemIndex::search_batch",
                format!("query dim {} != index dim {}", queries.cols(), self.dim),
            ));
        }
        ensure_finite(queries, "ItemIndex::search_batch")?;
        let nq = queries.rows();
        let mut lists: Vec<Vec<(usize, f32)>> = vec![Vec::new(); nq];
        let cost = nq.saturating_mul(self.num_items()).saturating_mul(self.dim.max(1));
        desalign_parallel::par_rows(&mut lists, 1, cost, |q, slot| {
            slot[0] = self.scan(&normalized_query(queries.row(q)), k);
        });
        Ok(lists)
    }
}

// ---------------------------------------------------------------------------
// Shared engines: evaluation, batch top-k, mutual-NN, candidate CSLS.
// ---------------------------------------------------------------------------

/// Ranks gold pairs `(query position, gold item position)` through a
/// retriever and aggregates H@1 / H@10 / MRR exactly like the historical
/// dense `evaluate_ranking`: per-query ranks in parallel, the float MRR
/// accumulation serial in pair order.
pub fn evaluate_retriever(r: &dyn Retriever, gold: &[(usize, usize)]) -> AlignmentMetrics {
    if gold.is_empty() {
        return AlignmentMetrics::default();
    }
    let _span = desalign_telemetry::span("evaluate_ranking");
    let mut ranks = vec![0usize; gold.len()];
    let cost = gold.len().saturating_mul(r.num_items());
    desalign_parallel::par_rows(&mut ranks, 1, cost, |i, slot| {
        let (q, g) = gold[i];
        slot[0] = r.rank_of(q, g);
    });
    let mut h1 = 0usize;
    let mut h10 = 0usize;
    let mut mrr = 0.0f64;
    for &rank in &ranks {
        if rank <= 1 {
            h1 += 1;
        }
        if rank <= 10 {
            h10 += 1;
        }
        mrr += 1.0 / rank as f64;
    }
    let n = gold.len();
    AlignmentMetrics {
        hits_at_1: h1 as f32 / n as f32,
        hits_at_10: h10 as f32 / n as f32,
        mrr: (mrr / n as f64) as f32,
        num_queries: n,
    }
}

/// Checks alignment pairs against two embedding tables, returning a typed
/// error (instead of the dense path's panic) on out-of-range entities.
fn ensure_pairs_in_range(pairs: &[(usize, usize)], n_s: usize, n_t: usize, location: &str) -> Result<(), DesalignError> {
    for (i, &(s, t)) in pairs.iter().enumerate() {
        if s >= n_s || t >= n_t {
            return Err(DesalignError::new(
                DefectClass::PairOutOfRange,
                format!("{location}[{i}]"),
                format!("pair ({s},{t}) out of bounds for {n_s}x{n_t} entities"),
            ));
        }
    }
    Ok(())
}

/// Embedding-level evaluation under the paper's protocol (candidate pool =
/// the test targets): gathers the pair rows, builds the configured
/// backend, and ranks each query's gold among the test targets only.
///
/// With [`IndexKind::Exact`] this is bit-identical to
/// `evaluate_ranking(&cosine_similarity(x_s, x_t), test_pairs)`.
///
/// # Errors
/// [`DefectClass::PairOutOfRange`] on malformed pairs, plus the backend
/// constructors' errors.
pub fn evaluate_ranking_embeddings(
    x_s: &Matrix,
    x_t: &Matrix,
    test_pairs: &[(usize, usize)],
    cfg: &RetrievalConfig,
) -> Result<AlignmentMetrics, DesalignError> {
    if test_pairs.is_empty() {
        return Ok(AlignmentMetrics::default());
    }
    ensure_pairs_in_range(test_pairs, x_s.rows(), x_t.rows(), "test_pairs")?;
    let sources: Vec<usize> = test_pairs.iter().map(|&(s, _)| s).collect();
    let targets: Vec<usize> = test_pairs.iter().map(|&(_, t)| t).collect();
    let queries = x_s.gather_rows(&sources);
    let items = x_t.gather_rows(&targets);
    let r = build_retriever(&queries, &items, cfg)?;
    let gold: Vec<(usize, usize)> = (0..test_pairs.len()).map(|i| (i, i)).collect();
    Ok(evaluate_retriever(r.as_ref(), &gold))
}

/// Batch top-k: one sorted candidate list per query, queries in parallel
/// (bit-identical at any thread count because each query's list depends
/// only on its own row).
pub fn batch_top_k(r: &dyn Retriever, k: usize) -> Vec<Vec<(usize, f32)>> {
    let nq = r.num_queries();
    let mut lists: Vec<Vec<(usize, f32)>> = vec![Vec::new(); nq];
    let cost = nq.saturating_mul(r.num_items());
    desalign_parallel::par_rows(&mut lists, 1, cost, |q, slot| {
        slot[0] = r.top_k(q, k);
    });
    lists
}

/// Mutual nearest neighbours through a forward retriever (`source →
/// target`) and a reverse retriever (`target → source`): keeps pairs
/// `(q, t, score)` where `t` is `q`'s top-1 **and** `q` is `t`'s top-1 and
/// `score ≥ min_score`, sorted by descending score (stable in query
/// order). Positions index the retrievers' query/item sets.
pub fn mutual_top1(forward: &dyn Retriever, reverse: &dyn Retriever, min_score: f32) -> Vec<(usize, usize, f32)> {
    let nq = forward.num_queries();
    let nt = forward.num_items();
    debug_assert_eq!(nq, reverse.num_items(), "mutual_top1: asymmetric retrievers");
    debug_assert_eq!(nt, reverse.num_queries(), "mutual_top1: asymmetric retrievers");
    if nq == 0 || nt == 0 {
        return Vec::new();
    }
    let mut best_t: Vec<(usize, f32)> = vec![(usize::MAX, f32::NEG_INFINITY); nq];
    desalign_parallel::par_rows(&mut best_t, 1, nq.saturating_mul(nt), |q, slot| {
        if let Some(&top) = forward.top_k(q, 1).first() {
            slot[0] = top;
        }
    });
    let mut best_s: Vec<usize> = vec![usize::MAX; nt];
    desalign_parallel::par_rows(&mut best_s, 1, nq.saturating_mul(nt), |t, slot| {
        if let Some(&(s, _)) = reverse.top_k(t, 1).first() {
            slot[0] = s;
        }
    });
    let mut pairs: Vec<(usize, usize, f32)> = best_t
        .into_iter()
        .enumerate()
        .filter(|&(q, (t, score))| t != usize::MAX && score >= min_score && best_s[t] == q)
        .map(|(q, (t, score))| (q, t, score))
        .collect();
    pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    pairs
}

/// Embedding-level mutual-NN mining over candidate entity sets: builds a
/// forward and a reverse backend over the gathered candidate rows, then
/// runs [`mutual_top1`] and maps positions back to entity ids.
///
/// With [`IndexKind::Exact`] this reproduces
/// `mutual_nearest_neighbours(&cosine_similarity(x_s, x_t), …)`
/// bit-for-bit (same normalization, same dot, same tie-breaks).
///
/// # Errors
/// [`DefectClass::PairOutOfRange`] when a candidate id is out of range,
/// plus the backend constructors' errors.
pub fn mine_mutual_nn(
    x_s: &Matrix,
    x_t: &Matrix,
    source_candidates: &[usize],
    target_candidates: &[usize],
    min_score: f32,
    cfg: &RetrievalConfig,
) -> Result<Vec<(usize, usize, f32)>, DesalignError> {
    if source_candidates.is_empty() || target_candidates.is_empty() {
        return Ok(Vec::new());
    }
    for (name, ids, bound) in [("source_candidates", source_candidates, x_s.rows()), ("target_candidates", target_candidates, x_t.rows())] {
        if let Some(&bad) = ids.iter().find(|&&i| i >= bound) {
            return Err(DesalignError::new(
                DefectClass::PairOutOfRange,
                format!("mine_mutual_nn.{name}"),
                format!("candidate {bad} out of bounds for {bound} entities"),
            ));
        }
    }
    let qs = x_s.gather_rows(source_candidates);
    let it = x_t.gather_rows(target_candidates);
    let forward = build_retriever(&qs, &it, cfg)?;
    let reverse = build_retriever(&it, &qs, cfg)?;
    let pairs = mutual_top1(forward.as_ref(), reverse.as_ref(), min_score);
    Ok(pairs
        .into_iter()
        .map(|(q, t, score)| (source_candidates[q], target_candidates[t], score))
        .collect())
}

/// CSLS re-scoring on candidate lists only (no dense matrix):
///
/// `csls(i,j) = 2·sim(i,j) − r_s(i) − r_t(j)`
///
/// where `r_s(i)` is the mean of query `i`'s top-`k` forward scores and
/// `r_t(j)` the mean of item `j`'s top-`k` reverse scores. `forward[i]`
/// and `reverse[j]` must be sorted descending (as [`batch_top_k`]
/// returns); lists shorter than `k` average what they have, empty lists
/// contribute 0. Each query's candidates are re-scored and re-sorted under
/// the deterministic (score desc, id asc) order.
///
/// On dense-equivalent inputs (exact full-length lists) the re-scored
/// entries match `csls_rescale` bit-for-bit: the top-`k` mean sums the
/// same values in the same (sorted) order, and the rescale expression is
/// evaluated identically.
pub fn csls_rescale_candidates(
    forward: &[Vec<(usize, f32)>],
    reverse: &[Vec<(usize, f32)>],
    k: usize,
) -> Vec<Vec<(usize, f32)>> {
    let mean_topk = |list: &[(usize, f32)]| -> f32 {
        let kk = k.min(list.len());
        if kk == 0 {
            return 0.0;
        }
        list[..kk].iter().map(|&(_, s)| s).sum::<f32>() / kk as f32
    };
    let r_t: Vec<f32> = reverse.iter().map(|l| mean_topk(l)).collect();
    forward
        .iter()
        .map(|cands| {
            let ri = mean_topk(cands);
            let mut out: Vec<(usize, f32)> = cands.iter().map(|&(j, s)| (j, 2.0 * s - ri - r_t[j])).collect();
            out.sort_by(|&a, &b| if beats(a, b) { std::cmp::Ordering::Less } else { std::cmp::Ordering::Greater });
            out
        })
        .collect()
}

/// End-to-end candidate-set CSLS: retrieves `max(k, topk)` forward
/// candidates per query and `k` reverse candidates per item through the
/// configured backend, applies [`csls_rescale_candidates`], and truncates
/// each re-sorted list to `topk`.
///
/// # Errors
/// [`DefectClass::Config`] when `k == 0` or `k > n_items` (the neighbour
/// mean would silently clamp), plus the backend constructors' errors.
pub fn csls_retrieve_top_k(
    x_s: &Matrix,
    x_t: &Matrix,
    k: usize,
    topk: usize,
    cfg: &RetrievalConfig,
) -> Result<Vec<Vec<(usize, f32)>>, DesalignError> {
    if k == 0 {
        return Err(DesalignError::config("retrieval.csls_k", "CSLS neighbourhood k must be ≥ 1"));
    }
    if k > x_t.rows() || k > x_s.rows() {
        return Err(DesalignError::config(
            "retrieval.csls_k",
            format!("CSLS neighbourhood k = {k} exceeds the candidate pool ({} × {}); the mean would silently clamp", x_s.rows(), x_t.rows()),
        ));
    }
    let forward_r = build_retriever(x_s, x_t, cfg)?;
    let reverse_r = build_retriever(x_t, x_s, cfg)?;
    let forward = batch_top_k(forward_r.as_ref(), k.max(topk));
    let reverse = batch_top_k(reverse_r.as_ref(), k);
    let mut rescored = csls_rescale_candidates(&forward, &reverse, k);
    for list in &mut rescored {
        list.truncate(topk);
    }
    Ok(rescored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosine_similarity;
    use desalign_tensor::normal_matrix;

    fn rand_pair(seed: u64, nq: usize, n: usize, d: usize) -> (Matrix, Matrix) {
        let mut rng = rng_from_seed(seed);
        let q = normal_matrix(&mut rng, nq, d, 0.0, 1.0);
        let t = normal_matrix(&mut rng, n, d, 0.0, 1.0);
        (q, t)
    }

    #[test]
    fn topk_buffer_is_offer_order_invariant() {
        let scores = [0.3f32, 0.9, 0.9, 0.1, 0.5];
        let mut fwd = TopK::new(3);
        for (i, &s) in scores.iter().enumerate() {
            fwd.offer(i, s);
        }
        let mut rev = TopK::new(3);
        for (i, &s) in scores.iter().enumerate().rev() {
            rev.offer(i, s);
        }
        let (f, r) = (fwd.into_sorted(), rev.into_sorted());
        assert_eq!(f, r);
        assert_eq!(f, vec![(1, 0.9), (2, 0.9), (4, 0.5)]); // tie 1 vs 2 → lower id first
    }

    #[test]
    fn exact_matches_dense_scores_bitwise() {
        let (q, t) = rand_pair(3, 7, 11, 5);
        let sim = cosine_similarity(&q, &t);
        let exact = ExactRetriever::new(&q, &t).unwrap().with_block_len(4);
        for i in 0..7 {
            for j in 0..11 {
                assert_eq!(exact.score(i, j).to_bits(), sim.scores()[(i, j)].to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn evaluate_embeddings_exact_equals_dense_path() {
        let (q, t) = rand_pair(11, 20, 20, 8);
        let pairs: Vec<(usize, usize)> = (0..20).map(|i| (i, (i * 3) % 20)).collect();
        let dense = crate::evaluate_ranking(&cosine_similarity(&q, &t), &pairs);
        let exact = evaluate_ranking_embeddings(&q, &t, &pairs, &RetrievalConfig::default()).unwrap();
        assert_eq!(dense.hits_at_1.to_bits(), exact.hits_at_1.to_bits());
        assert_eq!(dense.hits_at_10.to_bits(), exact.hits_at_10.to_bits());
        assert_eq!(dense.mrr.to_bits(), exact.mrr.to_bits());
    }

    #[test]
    fn ivf_probing_everything_is_exact() {
        let (q, t) = rand_pair(5, 6, 40, 4);
        let cfg = RetrievalConfig {
            kind: IndexKind::Ivf,
            ivf: IvfParams { nlist: 5, nprobe: 5, kmeans_iters: 3, seed: 9 },
        };
        let ivf = build_retriever(&q, &t, &cfg).unwrap();
        let exact = ExactRetriever::new(&q, &t).unwrap();
        for i in 0..6 {
            assert_eq!(ivf.top_k(i, 3), exact.top_k(i, 3), "query {i}");
        }
    }

    #[test]
    fn empty_and_overlong_k_are_benign() {
        let (q, t) = rand_pair(7, 2, 3, 4);
        let exact = ExactRetriever::new(&q, &t).unwrap();
        assert_eq!(exact.top_k(0, 0), vec![]);
        assert_eq!(exact.top_k(0, 99).len(), 3);
        let empty = IvfIndex::build(&Matrix::zeros(0, 4), &IvfParams::default()).unwrap();
        let r = IvfRetriever::new(&q, empty).unwrap();
        assert_eq!(r.top_k(0, 5), vec![]);
    }

    #[test]
    fn nan_rows_surface_typed_errors() {
        let mut bad = Matrix::zeros(3, 2);
        bad[(1, 0)] = f32::NAN;
        let good = Matrix::zeros(2, 2);
        let err = ExactRetriever::new(&bad, &good).unwrap_err();
        assert_eq!(err.class, DefectClass::NonFiniteFeature);
        let err = IvfIndex::build(&bad, &IvfParams::default()).unwrap_err();
        assert_eq!(err.class, DefectClass::NonFiniteFeature);
    }

    #[test]
    fn item_index_matches_bound_retrievers_bitwise() {
        let (q, t) = rand_pair(17, 6, 30, 5);
        // Exact: same bits as an ExactRetriever with the queries bound up
        // front.
        let exact_cfg = RetrievalConfig::default();
        let idx = ItemIndex::build(&t, &exact_cfg).unwrap();
        let bound = ExactRetriever::new(&q, &t).unwrap();
        for i in 0..q.rows() {
            assert_eq!(idx.search(q.row(i), 4).unwrap(), bound.top_k(i, 4), "exact query {i}");
        }
        // IVF: same bits as an IvfRetriever over the same built index
        // parameters.
        let ivf_cfg = RetrievalConfig {
            kind: IndexKind::Ivf,
            ivf: IvfParams { nlist: 4, nprobe: 2, kmeans_iters: 3, seed: 21 },
        };
        let idx = ItemIndex::build(&t, &ivf_cfg).unwrap();
        assert_eq!(idx.kind(), IndexKind::Ivf);
        let bound = build_retriever(&q, &t, &ivf_cfg).unwrap();
        for i in 0..q.rows() {
            assert_eq!(idx.search(q.row(i), 4).unwrap(), bound.top_k(i, 4), "ivf query {i}");
        }
    }

    #[test]
    fn item_index_batch_matches_single_search() {
        let (q, t) = rand_pair(19, 9, 25, 6);
        let idx = ItemIndex::build(&t, &RetrievalConfig::default()).unwrap();
        let batch = idx.search_batch(&q, 3).unwrap();
        assert_eq!(batch.len(), q.rows());
        for i in 0..q.rows() {
            assert_eq!(batch[i], idx.search(q.row(i), 3).unwrap(), "query {i}");
        }
    }

    #[test]
    fn item_index_rejects_hostile_queries() {
        let (_, t) = rand_pair(23, 1, 10, 4);
        let idx = ItemIndex::build(&t, &RetrievalConfig::default()).unwrap();
        assert_eq!(idx.num_items(), 10);
        assert_eq!(idx.dim(), 4);
        let err = idx.search(&[1.0, 2.0], 3).unwrap_err();
        assert_eq!(err.class, DefectClass::DimensionMismatch);
        let err = idx.search(&[1.0, f32::NAN, 0.0, 0.0], 3).unwrap_err();
        assert_eq!(err.class, DefectClass::NonFiniteFeature);
        let bad = Matrix::from_rows(&[&[1.0, f32::INFINITY, 0.0, 0.0]]);
        assert!(idx.search_batch(&bad, 3).is_err());
        // A zero query is benign (normalization leaves it untouched).
        assert_eq!(idx.search(&[0.0; 4], 2).unwrap().len(), 2);
    }

    #[test]
    fn csls_retrieve_rejects_degenerate_k() {
        let (q, t) = rand_pair(13, 4, 4, 3);
        let err = csls_retrieve_top_k(&q, &t, 0, 2, &RetrievalConfig::default()).unwrap_err();
        assert_eq!(err.class, DefectClass::Config);
        let err = csls_retrieve_top_k(&q, &t, 10, 2, &RetrievalConfig::default()).unwrap_err();
        assert_eq!(err.class, DefectClass::Config);
        assert!(csls_retrieve_top_k(&q, &t, 2, 2, &RetrievalConfig::default()).is_ok());
    }
}
