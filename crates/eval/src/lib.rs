//! Entity-alignment evaluation: ranking metrics, similarity matrices, and
//! pseudo-pair mining.
//!
//! Implements the paper's evaluation protocol (§V-A3): cosine similarity
//! between entity embeddings, `H@k` (Eq. 23) and `MRR` (Eq. 24) over the
//! test alignments, plus CSLS re-scoring and the mutual-nearest-neighbour
//! mining used by the iterative training strategy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod mining;
mod similarity;

pub use metrics::{evaluate_ranking, AlignmentMetrics};
pub use mining::mutual_nearest_neighbours;
pub use similarity::{cosine_similarity, csls_rescale, SimilarityMatrix};
