//! Entity-alignment evaluation: ranking metrics, similarity matrices, and
//! pseudo-pair mining.
//!
//! Implements the paper's evaluation protocol (§V-A3): cosine similarity
//! between entity embeddings, `H@k` (Eq. 23) and `MRR` (Eq. 24) over the
//! test alignments, plus CSLS re-scoring and the mutual-nearest-neighbour
//! mining used by the iterative training strategy.
//!
//! The [`index`] module provides the sub-quadratic retrieval layer: a
//! [`Retriever`] trait over a blocked exact scanner ([`ExactRetriever`],
//! bit-identical to the dense cosine path) and a deterministic IVF
//! approximate index ([`IvfRetriever`]), plus embedding-level engines for
//! evaluation, mutual-NN mining, and candidate-set CSLS that never
//! materialize the full `n_s × n_t` similarity matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
mod metrics;
mod mining;
mod similarity;

pub use index::{
    batch_top_k, build_retriever, csls_rescale_candidates, csls_retrieve_top_k, evaluate_ranking_embeddings,
    evaluate_retriever, mine_mutual_nn, mutual_top1, DenseRetriever, ExactRetriever, IndexKind, ItemIndex, IvfIndex,
    IvfParams, IvfRetriever, RetrievalConfig, Retriever, DEFAULT_BLOCK_LEN,
};
pub use metrics::{evaluate_ranking, AlignmentMetrics};
pub use mining::mutual_nearest_neighbours;
pub use similarity::{cosine_similarity, csls_rescale, try_csls_rescale, SimilarityMatrix};
