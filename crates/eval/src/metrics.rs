//! Ranking metrics: `H@k` (Eq. 23) and `MRR` (Eq. 24).

use crate::SimilarityMatrix;

/// Evaluation summary over a set of test alignments.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AlignmentMetrics {
    /// `H@1` — fraction of queries whose gold target ranks first.
    pub hits_at_1: f32,
    /// `H@10`.
    pub hits_at_10: f32,
    /// Mean reciprocal rank.
    pub mrr: f32,
    /// Number of evaluated query entities.
    pub num_queries: usize,
}

impl AlignmentMetrics {
    /// Formats as the `H@1 / H@10 / MRR` percentage triple used in the
    /// paper's tables.
    pub fn as_table_row(&self) -> String {
        format!("{:5.1} {:5.1} {:5.1}", self.hits_at_1 * 100.0, self.hits_at_10 * 100.0, self.mrr * 100.0)
    }
}

/// Evaluates a similarity matrix against gold `(source, target)` pairs.
///
/// Candidate restriction follows the paper's protocol: each query source
/// entity ranks **the test-set target entities only** (the standard MMEA
/// evaluation where train pairs are excluded from the candidate pool).
///
/// Implemented as a [`DenseRetriever`](crate::DenseRetriever) view run
/// through the shared retrieval engine — per-query ranks in parallel, the
/// float MRR accumulation serial in pair order — so the metrics are
/// bit-identical to the historical dense loop at any thread count.
///
/// # Panics
/// Panics if a pair is out of bounds.
pub fn evaluate_ranking(sim: &SimilarityMatrix, test_pairs: &[(usize, usize)]) -> AlignmentMetrics {
    if test_pairs.is_empty() {
        return AlignmentMetrics::default();
    }
    let (n_s, n_t) = sim.shape();
    for &(s, gold) in test_pairs {
        assert!(s < n_s && gold < n_t, "evaluate_ranking: pair ({s},{gold}) out of bounds for {n_s}x{n_t}");
    }
    // Queries: the pair sources; candidate pool: the test targets.
    let queries: Vec<usize> = test_pairs.iter().map(|&(s, _)| s).collect();
    let candidates: Vec<usize> = test_pairs.iter().map(|&(_, t)| t).collect();
    let r = crate::DenseRetriever::new(sim, queries, candidates);
    let gold: Vec<(usize, usize)> = (0..test_pairs.len()).map(|i| (i, i)).collect();
    crate::evaluate_retriever(&r, &gold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_tensor::Matrix;

    fn diag_sim(n: usize, noise: f32) -> SimilarityMatrix {
        let mut m = Matrix::full(n, n, noise);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        SimilarityMatrix::new(m)
    }

    #[test]
    fn perfect_alignment_scores_one() {
        let sim = diag_sim(5, 0.0);
        let pairs: Vec<(usize, usize)> = (0..5).map(|i| (i, i)).collect();
        let m = evaluate_ranking(&sim, &pairs);
        assert_eq!(m.hits_at_1, 1.0);
        assert_eq!(m.hits_at_10, 1.0);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.num_queries, 5);
    }

    #[test]
    fn rank_two_gives_half_mrr() {
        // Gold always ranked second behind one distractor.
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = 0.9; // distractor beats gold (0,0)
        m[(0, 0)] = 0.5;
        m[(1, 1)] = 0.9;
        m[(1, 0)] = 0.95; // distractor beats gold (1,1)
        let sim = SimilarityMatrix::new(m);
        let metrics = evaluate_ranking(&sim, &[(0, 0), (1, 1)]);
        assert_eq!(metrics.hits_at_1, 0.0);
        assert_eq!(metrics.hits_at_10, 1.0);
        assert!((metrics.mrr - 0.5).abs() < 1e-6);
    }

    #[test]
    fn candidates_limited_to_test_targets() {
        // A non-test target with a huge score must not affect the ranking.
        let mut m = Matrix::zeros(1, 3);
        m[(0, 2)] = 10.0; // not in the test pool
        m[(0, 0)] = 1.0; // gold
        m[(0, 1)] = 0.5;
        let sim = SimilarityMatrix::new(m);
        let metrics = evaluate_ranking(&sim, &[(0, 0)]);
        assert_eq!(metrics.hits_at_1, 1.0);
    }

    #[test]
    fn empty_test_set_is_zeroes() {
        let sim = diag_sim(2, 0.0);
        let metrics = evaluate_ranking(&sim, &[]);
        assert_eq!(metrics.num_queries, 0);
        assert_eq!(metrics.mrr, 0.0);
    }

    #[test]
    fn brute_force_oracle_agreement() {
        // Randomized check against an independent rank computation.
        let mut rng = desalign_tensor::rng_from_seed(9);
        let scores = desalign_tensor::normal_matrix(&mut rng, 20, 20, 0.0, 1.0);
        let sim = SimilarityMatrix::new(scores.clone());
        let pairs: Vec<(usize, usize)> = (0..20).map(|i| (i, (i * 7) % 20)).collect();
        let metrics = evaluate_ranking(&sim, &pairs);
        // Oracle: sort candidates per query.
        let candidates: Vec<usize> = pairs.iter().map(|&(_, t)| t).collect();
        let mut mrr = 0.0f64;
        for &(s, gold) in &pairs {
            let mut ranked: Vec<usize> = candidates.clone();
            ranked.sort_by(|&a, &b| scores[(s, b)].partial_cmp(&scores[(s, a)]).unwrap());
            let rank = ranked.iter().position(|&c| c == gold).unwrap() + 1;
            mrr += 1.0 / rank as f64;
        }
        assert!((metrics.mrr - (mrr / 20.0) as f32).abs() < 1e-6);
    }

    #[test]
    fn table_row_formatting() {
        let m = AlignmentMetrics { hits_at_1: 0.497, hits_at_10: 0.75, mrr: 0.586, num_queries: 10 };
        assert_eq!(m.as_table_row().split_whitespace().collect::<Vec<_>>(), vec!["49.7", "75.0", "58.6"]);
    }
}
