//! Pseudo-pair mining for the iterative training strategy.
//!
//! The paper's iterative variant (following MCLEA) "maintains a temporary
//! cache to store cross-graph mutual nearest entity pairs from the testing
//! set" (§V-A2) and feeds them back as extra seeds.

use crate::SimilarityMatrix;

/// Finds mutual nearest neighbours: pairs `(s, t)` where `t` is `s`'s best
/// target **and** `s` is `t`'s best source, restricted to the given
/// candidate sets (pass the unaligned entities, each entity at most once).
/// Pairs whose similarity is below `min_score` are dropped.
///
/// Implemented as two [`DenseRetriever`](crate::DenseRetriever) views
/// (forward and transposed) run through the shared
/// [`mutual_top1`](crate::mutual_top1) engine; argmax ties break to the
/// earliest candidate, matching the historical strict-`>` scan.
///
/// Returns pairs sorted by descending similarity.
pub fn mutual_nearest_neighbours(
    sim: &SimilarityMatrix,
    source_candidates: &[usize],
    target_candidates: &[usize],
    min_score: f32,
) -> Vec<(usize, usize, f32)> {
    if source_candidates.is_empty() || target_candidates.is_empty() {
        return Vec::new();
    }
    let forward = crate::DenseRetriever::new(sim, source_candidates.to_vec(), target_candidates.to_vec());
    let reverse = crate::DenseRetriever::transposed(sim, target_candidates.to_vec(), source_candidates.to_vec());
    crate::mutual_top1(&forward, &reverse, min_score)
        .into_iter()
        .map(|(q, t, score)| (source_candidates[q], target_candidates[t], score))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_tensor::Matrix;

    #[test]
    fn mutual_pairs_found_on_diagonal() {
        let mut m = Matrix::full(3, 3, 0.1);
        for i in 0..3 {
            m[(i, i)] = 0.9;
        }
        let sim = SimilarityMatrix::new(m);
        let pairs = mutual_nearest_neighbours(&sim, &[0, 1, 2], &[0, 1, 2], 0.0);
        assert_eq!(pairs.len(), 3);
        assert!(pairs.iter().all(|&(s, t, _)| s == t));
    }

    #[test]
    fn one_sided_preference_is_rejected() {
        // Source 0 and 1 both prefer target 0; target 0 prefers source 0.
        // So (1, 0) fails the mutual check, and source 1 — whose best target
        // is taken — produces no pair at all.
        let m = Matrix::from_rows(&[&[0.9, 0.1], &[0.8, 0.2]]);
        let sim = SimilarityMatrix::new(m);
        let pairs = mutual_nearest_neighbours(&sim, &[0, 1], &[0, 1], 0.0);
        assert_eq!(pairs.iter().map(|&(s, t, _)| (s, t)).collect::<Vec<_>>(), vec![(0, 0)]);
    }

    #[test]
    fn min_score_filters_weak_pairs() {
        let m = Matrix::from_rows(&[&[0.3, 0.0], &[0.0, 0.9]]);
        let sim = SimilarityMatrix::new(m);
        let pairs = mutual_nearest_neighbours(&sim, &[0, 1], &[0, 1], 0.5);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (1, 1));
    }

    #[test]
    fn candidates_restrict_the_search() {
        let mut m = Matrix::full(3, 3, 0.0);
        m[(0, 2)] = 1.0; // outside candidate targets
        m[(0, 1)] = 0.6;
        m[(1, 1)] = 0.4;
        let sim = SimilarityMatrix::new(m);
        let pairs = mutual_nearest_neighbours(&sim, &[0, 1], &[1], 0.0);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 1));
    }

    #[test]
    fn sorted_by_descending_score() {
        let m = Matrix::from_rows(&[&[0.5, 0.0], &[0.0, 0.9]]);
        let sim = SimilarityMatrix::new(m);
        let pairs = mutual_nearest_neighbours(&sim, &[0, 1], &[0, 1], 0.0);
        assert!(pairs[0].2 >= pairs[1].2);
    }

    #[test]
    fn empty_candidates_yield_no_pairs() {
        let sim = SimilarityMatrix::new(Matrix::zeros(2, 2));
        assert!(mutual_nearest_neighbours(&sim, &[], &[0], 0.0).is_empty());
        assert!(mutual_nearest_neighbours(&sim, &[0], &[], 0.0).is_empty());
    }
}
