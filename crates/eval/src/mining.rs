//! Pseudo-pair mining for the iterative training strategy.
//!
//! The paper's iterative variant (following MCLEA) "maintains a temporary
//! cache to store cross-graph mutual nearest entity pairs from the testing
//! set" (§V-A2) and feeds them back as extra seeds.

use crate::SimilarityMatrix;

/// Finds mutual nearest neighbours: pairs `(s, t)` where `t` is `s`'s best
/// target **and** `s` is `t`'s best source, restricted to the given
/// candidate sets (pass the unaligned entities). Pairs whose similarity is
/// below `min_score` are dropped.
///
/// Returns pairs sorted by descending similarity.
pub fn mutual_nearest_neighbours(
    sim: &SimilarityMatrix,
    source_candidates: &[usize],
    target_candidates: &[usize],
    min_score: f32,
) -> Vec<(usize, usize, f32)> {
    let m = sim.scores();
    if source_candidates.is_empty() || target_candidates.is_empty() {
        return Vec::new();
    }
    // Best target per candidate source (within target candidates).
    let mut best_t = Vec::with_capacity(source_candidates.len());
    for &s in source_candidates {
        let row = m.row(s);
        let (mut arg, mut best) = (target_candidates[0], f32::NEG_INFINITY);
        for &t in target_candidates {
            if row[t] > best {
                best = row[t];
                arg = t;
            }
        }
        best_t.push((s, arg, best));
    }
    // Best source per candidate target.
    let mut best_s = std::collections::HashMap::with_capacity(target_candidates.len());
    for &t in target_candidates {
        let (mut arg, mut best) = (source_candidates[0], f32::NEG_INFINITY);
        for &s in source_candidates {
            if m[(s, t)] > best {
                best = m[(s, t)];
                arg = s;
            }
        }
        best_s.insert(t, arg);
    }
    let mut pairs: Vec<(usize, usize, f32)> = best_t
        .into_iter()
        .filter(|&(s, t, score)| score >= min_score && best_s.get(&t) == Some(&s))
        .collect();
    pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_tensor::Matrix;

    #[test]
    fn mutual_pairs_found_on_diagonal() {
        let mut m = Matrix::full(3, 3, 0.1);
        for i in 0..3 {
            m[(i, i)] = 0.9;
        }
        let sim = SimilarityMatrix::new(m);
        let pairs = mutual_nearest_neighbours(&sim, &[0, 1, 2], &[0, 1, 2], 0.0);
        assert_eq!(pairs.len(), 3);
        assert!(pairs.iter().all(|&(s, t, _)| s == t));
    }

    #[test]
    fn one_sided_preference_is_rejected() {
        // Source 0 and 1 both prefer target 0; target 0 prefers source 0.
        // So (1, 0) fails the mutual check, and source 1 — whose best target
        // is taken — produces no pair at all.
        let m = Matrix::from_rows(&[&[0.9, 0.1], &[0.8, 0.2]]);
        let sim = SimilarityMatrix::new(m);
        let pairs = mutual_nearest_neighbours(&sim, &[0, 1], &[0, 1], 0.0);
        assert_eq!(pairs.iter().map(|&(s, t, _)| (s, t)).collect::<Vec<_>>(), vec![(0, 0)]);
    }

    #[test]
    fn min_score_filters_weak_pairs() {
        let m = Matrix::from_rows(&[&[0.3, 0.0], &[0.0, 0.9]]);
        let sim = SimilarityMatrix::new(m);
        let pairs = mutual_nearest_neighbours(&sim, &[0, 1], &[0, 1], 0.5);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (1, 1));
    }

    #[test]
    fn candidates_restrict_the_search() {
        let mut m = Matrix::full(3, 3, 0.0);
        m[(0, 2)] = 1.0; // outside candidate targets
        m[(0, 1)] = 0.6;
        m[(1, 1)] = 0.4;
        let sim = SimilarityMatrix::new(m);
        let pairs = mutual_nearest_neighbours(&sim, &[0, 1], &[1], 0.0);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 1));
    }

    #[test]
    fn sorted_by_descending_score() {
        let m = Matrix::from_rows(&[&[0.5, 0.0], &[0.0, 0.9]]);
        let sim = SimilarityMatrix::new(m);
        let pairs = mutual_nearest_neighbours(&sim, &[0, 1], &[0, 1], 0.0);
        assert!(pairs[0].2 >= pairs[1].2);
    }

    #[test]
    fn empty_candidates_yield_no_pairs() {
        let sim = SimilarityMatrix::new(Matrix::zeros(2, 2));
        assert!(mutual_nearest_neighbours(&sim, &[], &[0], 0.0).is_empty());
        assert!(mutual_nearest_neighbours(&sim, &[0], &[], 0.0).is_empty());
    }
}
