//! Property tests for the retrieval subsystem (`desalign_eval::index`).
//!
//! The contracts pinned here are the ones ci.sh relies on:
//!
//! - the blocked exact scan is **bit-identical** to the dense cosine path
//!   for any block length and any thread count;
//! - IVF recall against the exact top-k is **monotone in `nprobe`** (probing
//!   more cells can only add candidates, and a true top-k element can only
//!   be displaced by globally better elements — of which there are < k);
//! - IVF build + search are bit-identical across `DESALIGN_THREADS`;
//! - candidate-set CSLS reproduces the dense `csls_rescale` entries
//!   bit-for-bit when the candidate lists are exact and full-length;
//! - embedding-level mutual-NN mining with the exact backend reproduces the
//!   historical dense `mutual_nearest_neighbours`.

use desalign_eval::{
    batch_top_k, csls_rescale, csls_rescale_candidates, cosine_similarity, evaluate_ranking,
    evaluate_ranking_embeddings, mine_mutual_nn, mutual_nearest_neighbours, DenseRetriever,
    ExactRetriever, IndexKind, IvfIndex, IvfParams, IvfRetriever, RetrievalConfig, Retriever,
};
use desalign_parallel::with_threads;
use desalign_testkit::{self as testkit, ensure, ensure_eq, gen};
use desalign_tensor::Matrix;

const THREADS: [usize; 3] = [1, 2, 4];

fn bits(lists: &[Vec<(usize, f32)>]) -> Vec<Vec<(usize, u32)>> {
    lists.iter().map(|l| l.iter().map(|&(i, s)| (i, s.to_bits())).collect()).collect()
}

/// Clustered embeddings: rows near `centers` shared cluster anchors, which
/// is the regime where IVF cells are meaningful. Returns (queries, items)
/// where each query perturbs some item row.
fn clustered(rng: &mut testkit::Rng64, nq: usize, n: usize, d: usize, centers: usize) -> (Matrix, Matrix) {
    let anchors = gen::matrix(rng, centers, d, -1.0, 1.0);
    let mut items = Vec::with_capacity(n * d);
    for i in 0..n {
        let a = i % centers;
        for j in 0..d {
            items.push(anchors[(a, j)] + 0.35 * rng.gen_range(-1.0f32..1.0));
        }
    }
    let items = Matrix::from_vec(n, d, items);
    let mut queries = Vec::with_capacity(nq * d);
    for q in 0..nq {
        let src = rng.gen_range(0..n);
        for j in 0..d {
            queries.push(items[(src, j)] + 0.1 * rng.gen_range(-1.0f32..1.0));
        }
        let _ = q;
    }
    (Matrix::from_vec(nq, d, queries), items)
}

#[test]
fn blocked_exact_matches_dense_for_any_block_len_and_thread_count() {
    testkit::check(
        "blocked_exact_matches_dense",
        12,
        |rng| {
            let nq = rng.gen_range(1..12usize);
            let n = rng.gen_range(1..40usize);
            let d = rng.gen_range(2..10usize);
            let k = rng.gen_range(1..=n + 2);
            (gen::matrix(rng, nq, d, -1.0, 1.0), gen::matrix(rng, n, d, -1.0, 1.0), k)
        },
        |(q, t, k)| {
            let sim = cosine_similarity(q, t);
            let dense = DenseRetriever::new(&sim, (0..q.rows()).collect(), (0..t.rows()).collect());
            let reference = bits(&batch_top_k(&dense, *k));
            for block_len in [1usize, 3, 64, 1000] {
                for threads in THREADS {
                    let exact = ExactRetriever::new(q, t)
                        .map_err(|e| format!("ExactRetriever::new failed: {e}"))?
                        .with_block_len(block_len);
                    let got = with_threads(threads, || bits(&batch_top_k(&exact, *k)));
                    ensure!(
                        got == reference,
                        "block_len {block_len} × {threads} threads diverged from dense top-{k}"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn ivf_recall_is_monotone_in_nprobe() {
    testkit::check(
        "ivf_recall_monotone_in_nprobe",
        8,
        |rng| {
            let n = rng.gen_range(60..160usize);
            let (q, t) = clustered(rng, 10, n, 8, 8);
            (q, t)
        },
        |(q, t)| {
            let k = 10usize;
            let exact = ExactRetriever::new(q, t).map_err(|e| e.to_string())?;
            let truth: Vec<std::collections::HashSet<usize>> = batch_top_k(&exact, k)
                .iter()
                .map(|l| l.iter().map(|&(i, _)| i).collect())
                .collect();
            let mut prev = -1.0f64;
            for nprobe in [1usize, 2, 4, 8, 64] {
                let params = IvfParams { nprobe, ..IvfParams::default() };
                let index = IvfIndex::build(t, &params).map_err(|e| e.to_string())?;
                let r = IvfRetriever::new(q, index).map_err(|e| e.to_string())?;
                let mut hit = 0usize;
                let mut total = 0usize;
                for (qi, gold) in truth.iter().enumerate() {
                    total += gold.len();
                    hit += r.top_k(qi, k).iter().filter(|&&(i, _)| gold.contains(&i)).count();
                }
                let recall = hit as f64 / total.max(1) as f64;
                ensure!(
                    recall + 1e-12 >= prev,
                    "recall dropped from {prev} to {recall} when nprobe rose to {nprobe}"
                );
                prev = recall;
            }
            // Probing every cell must recover the exact answer entirely.
            ensure!((prev - 1.0).abs() < 1e-12, "nprobe ≥ nlist should give recall 1.0, got {prev}");
            Ok(())
        },
    );
}

#[test]
fn ivf_build_and_search_are_bit_identical_across_thread_counts() {
    testkit::check(
        "ivf_bit_identical_across_threads",
        8,
        |rng| {
            let n = rng.gen_range(40..120usize);
            let (q, t) = clustered(rng, 8, n, 6, 6);
            (q, t)
        },
        |(q, t)| {
            let params = IvfParams { nprobe: 3, ..IvfParams::default() };
            let runs: Vec<_> = THREADS
                .iter()
                .map(|&threads| {
                    with_threads(threads, || {
                        let index = IvfIndex::build(t, &params).map_err(|e| e.to_string())?;
                        let cells = index.num_cells();
                        let r = IvfRetriever::new(q, index).map_err(|e| e.to_string())?;
                        Ok::<_, String>((cells, bits(&batch_top_k(&r, 5))))
                    })
                })
                .collect::<Result<_, _>>()?;
            for pair in runs.windows(2) {
                ensure_eq!(pair[0], pair[1]);
            }
            Ok(())
        },
    );
}

#[test]
fn candidate_csls_matches_dense_csls_bitwise() {
    testkit::check(
        "candidate_csls_matches_dense",
        10,
        |rng| {
            let nq = rng.gen_range(2..10usize);
            let n = rng.gen_range(2..16usize);
            let d = rng.gen_range(2..8usize);
            let k = rng.gen_range(1..=n.min(nq));
            (gen::matrix(rng, nq, d, -1.0, 1.0), gen::matrix(rng, n, d, -1.0, 1.0), k)
        },
        |(q, t, k)| {
            let sim = cosine_similarity(q, t);
            let rescaled = csls_rescale(&sim, *k);
            // Candidate path: exact full-length lists through the retriever.
            let forward_r = ExactRetriever::new(q, t).map_err(|e| e.to_string())?;
            let reverse_r = ExactRetriever::new(t, q).map_err(|e| e.to_string())?;
            let forward = batch_top_k(&forward_r, t.rows());
            let reverse = batch_top_k(&reverse_r, *k);
            let rescored = csls_rescale_candidates(&forward, &reverse, *k);
            for (qi, list) in rescored.iter().enumerate() {
                ensure_eq!(list.len(), t.rows());
                for &(j, s) in list {
                    let want = rescaled.scores()[(qi, j)];
                    ensure!(
                        s.to_bits() == want.to_bits(),
                        "csls({qi},{j}) = {s} but dense rescale says {want}"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn exact_mutual_nn_matches_dense_mining() {
    testkit::check(
        "exact_mutual_nn_matches_dense",
        10,
        |rng| {
            let n_s = rng.gen_range(3..20usize);
            let n_t = rng.gen_range(3..20usize);
            let d = rng.gen_range(2..8usize);
            let cand_s: Vec<usize> = (0..n_s).filter(|_| rng.gen_bool(0.7)).collect();
            let cand_t: Vec<usize> = (0..n_t).filter(|_| rng.gen_bool(0.7)).collect();
            let min_score = rng.gen_range(-0.5f32..0.5);
            (gen::matrix(rng, n_s, d, -1.0, 1.0), gen::matrix(rng, n_t, d, -1.0, 1.0), cand_s, cand_t, min_score)
        },
        |(x_s, x_t, cand_s, cand_t, min_score)| {
            let sim = cosine_similarity(x_s, x_t);
            let want = mutual_nearest_neighbours(&sim, cand_s, cand_t, *min_score);
            let cfg = RetrievalConfig { kind: IndexKind::Exact, ..RetrievalConfig::default() };
            let got = mine_mutual_nn(x_s, x_t, cand_s, cand_t, *min_score, &cfg).map_err(|e| e.to_string())?;
            let norm = |v: &[(usize, usize, f32)]| -> Vec<(usize, usize, u32)> {
                v.iter().map(|&(s, t, sc)| (s, t, sc.to_bits())).collect()
            };
            ensure_eq!(norm(&got), norm(&want));
            Ok(())
        },
    );
}

#[test]
fn exact_embedding_evaluation_matches_dense_bitwise() {
    testkit::check(
        "exact_eval_matches_dense",
        10,
        |rng| {
            let n = rng.gen_range(2..24usize);
            let d = rng.gen_range(2..8usize);
            let n_pairs = rng.gen_range(1..=n);
            let pairs: Vec<(usize, usize)> = gen::usize_vec(rng, n_pairs, n)
                .into_iter()
                .zip(gen::usize_vec(rng, n, n))
                .collect();
            (gen::matrix(rng, n, d, -1.0, 1.0), gen::matrix(rng, n, d, -1.0, 1.0), pairs)
        },
        |(x_s, x_t, pairs)| {
            let want = evaluate_ranking(&cosine_similarity(x_s, x_t), pairs);
            let cfg = RetrievalConfig { kind: IndexKind::Exact, ..RetrievalConfig::default() };
            let got = evaluate_ranking_embeddings(x_s, x_t, pairs, &cfg).map_err(|e| e.to_string())?;
            ensure_eq!(got.hits_at_1.to_bits(), want.hits_at_1.to_bits());
            ensure_eq!(got.hits_at_10.to_bits(), want.hits_at_10.to_bits());
            ensure_eq!(got.mrr.to_bits(), want.mrr.to_bits());
            ensure_eq!(got.num_queries, want.num_queries);
            Ok(())
        },
    );
}
