//! Adversarial inputs for the retrieval subsystem: the index must degrade
//! into **typed errors or well-defined answers**, never panics or
//! nondeterminism, on the corruption shapes the data plane lets through.

use desalign_eval::{
    batch_top_k, build_retriever, csls_retrieve_top_k, evaluate_ranking_embeddings, ExactRetriever,
    IndexKind, IvfIndex, IvfParams, IvfRetriever, RetrievalConfig, Retriever,
};
use desalign_tensor::Matrix;
use desalign_util::DefectClass;

fn ivf_cfg(nprobe: usize) -> RetrievalConfig {
    RetrievalConfig { kind: IndexKind::Ivf, ivf: IvfParams { nprobe, ..IvfParams::default() } }
}

fn both_backends() -> Vec<RetrievalConfig> {
    vec![RetrievalConfig { kind: IndexKind::Exact, ..RetrievalConfig::default() }, ivf_cfg(4)]
}

#[test]
fn duplicate_embeddings_break_ties_by_lowest_id() {
    // Four identical items: every score ties, so the deterministic
    // (score desc, id asc) order must return ids in ascending order.
    let row = vec![0.3f32, -0.7, 0.2];
    let items = Matrix::from_vec(4, 3, row.iter().cloned().cycle().take(12).collect());
    let queries = Matrix::from_vec(1, 3, row.clone());
    for cfg in both_backends() {
        let r = build_retriever(&queries, &items, &cfg).expect("duplicates are legal input");
        let ids: Vec<usize> = r.top_k(0, 3).iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2], "{:?} must tie-break by entity id", cfg.kind);
        assert_eq!(r.rank_of(0, 2), 1, "ties never count as strictly greater");
    }
}

#[test]
fn all_zero_rows_are_tolerated_and_rank_last() {
    // A zero row cannot be normalized; the shared 1e-9-eps normalization
    // leaves it untouched, so it scores 0 against everything and loses to
    // any positively-correlated candidate — without poisoning the rest.
    let items = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 0.0, 0.9, 0.1]);
    let queries = Matrix::from_vec(1, 2, vec![1.0, 0.05]);
    for cfg in both_backends() {
        let r = build_retriever(&queries, &items, &cfg).expect("zero rows are legal input");
        let top = r.top_k(0, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 0, "{:?}: unit x-axis item must win", cfg.kind);
        assert_eq!(top[2].0, 1, "{:?}: the zero row must rank last", cfg.kind);
        assert!(top.iter().all(|&(_, s)| s.is_finite()), "no NaN/inf may leak out");
    }
}

#[test]
fn nan_poisoned_rows_are_rejected_with_typed_errors() {
    let mut bad = Matrix::from_vec(3, 2, vec![1.0, 0.0, f32::NAN, 1.0, 0.0, 1.0]);
    let good = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);

    let err = ExactRetriever::new(&good, &bad).expect_err("NaN items must be rejected");
    assert_eq!(err.class, DefectClass::NonFiniteFeature);
    let err = ExactRetriever::new(&bad, &good).expect_err("NaN queries must be rejected");
    assert_eq!(err.class, DefectClass::NonFiniteFeature);
    let err = IvfIndex::build(&bad, &IvfParams::default()).expect_err("NaN index rows must be rejected");
    assert_eq!(err.class, DefectClass::NonFiniteFeature);

    bad[(1, 0)] = f32::INFINITY;
    let err = ExactRetriever::new(&good, &bad).expect_err("inf rows must be rejected");
    assert_eq!(err.class, DefectClass::NonFiniteFeature);

    // The whole embedding-level evaluation path surfaces the same error
    // instead of panicking mid-metric (the gather keeps only pair rows, so
    // the pair must point at the poisoned row).
    bad[(1, 0)] = f32::NAN;
    let err = evaluate_ranking_embeddings(&bad, &good, &[(1, 0)], &RetrievalConfig::default())
        .expect_err("poisoned queries must fail evaluation");
    assert_eq!(err.class, DefectClass::NonFiniteFeature);
}

#[test]
fn dimension_mismatch_is_a_typed_error_not_a_panic() {
    let q = Matrix::from_vec(2, 3, vec![0.0; 6]);
    let t = Matrix::from_vec(2, 4, vec![0.0; 8]);
    for cfg in both_backends() {
        let Err(err) = build_retriever(&q, &t, &cfg) else {
            panic!("dimension mismatch must be a typed error, not a retriever");
        };
        assert_eq!(err.class, DefectClass::DimensionMismatch);
    }
}

#[test]
fn k_larger_than_n_returns_everything_in_order() {
    let items = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
    let queries = Matrix::from_vec(1, 2, vec![1.0, 0.2]);
    for cfg in both_backends() {
        let r = build_retriever(&queries, &items, &cfg).expect("valid input");
        let top = r.top_k(0, 100);
        assert_eq!(top.len(), 2, "{:?}: overlong k clamps to n", cfg.kind);
        assert_eq!(top[0].0, 0);
        let lists = batch_top_k(r.as_ref(), 100);
        assert_eq!(lists[0].len(), 2);
    }
}

#[test]
fn empty_index_and_empty_queries_are_benign() {
    let empty = Matrix::from_vec(0, 3, Vec::new());
    let queries = Matrix::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
    for cfg in both_backends() {
        let r = build_retriever(&queries, &empty, &cfg).expect("empty item set is legal");
        assert_eq!(r.num_items(), 0);
        assert!(r.top_k(0, 5).is_empty(), "{:?}: no items → empty top-k", cfg.kind);

        let r = build_retriever(&empty, &queries, &cfg).expect("empty query set is legal");
        assert_eq!(r.num_queries(), 0);
        assert!(batch_top_k(r.as_ref(), 3).is_empty());
    }
}

#[test]
fn degenerate_ivf_and_csls_knobs_are_config_errors() {
    let m = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);

    let err = IvfIndex::build(&m, &IvfParams { nprobe: 0, ..IvfParams::default() })
        .expect_err("nprobe = 0 must be rejected");
    assert_eq!(err.class, DefectClass::Config);

    let cfg = RetrievalConfig::default();
    let err = csls_retrieve_top_k(&m, &m, 0, 1, &cfg).expect_err("k = 0 must be rejected");
    assert_eq!(err.class, DefectClass::Config);
    let err = csls_retrieve_top_k(&m, &m, 4, 1, &cfg).expect_err("k > n must be rejected, not clamped");
    assert_eq!(err.class, DefectClass::Config);
}

#[test]
fn tie_breaks_are_identical_across_backends_and_block_lengths() {
    // Two clusters of duplicates → heavy score ties. Every backend and
    // block length must produce the same deterministic list.
    let a = [0.6f32, 0.8];
    let b = [-0.8f32, 0.6];
    let mut data = Vec::new();
    for i in 0..10 {
        data.extend_from_slice(if i % 2 == 0 { &a } else { &b });
    }
    let items = Matrix::from_vec(10, 2, data);
    let queries = Matrix::from_vec(1, 2, a.to_vec());
    let reference: Vec<(usize, u32)> = ExactRetriever::new(&queries, &items)
        .unwrap()
        .top_k(0, 7)
        .iter()
        .map(|&(i, s)| (i, s.to_bits()))
        .collect();
    assert_eq!(
        reference.iter().take(5).map(|&(i, _)| i).collect::<Vec<_>>(),
        vec![0, 2, 4, 6, 8],
        "even ids (the query's own cluster) must come first, ascending"
    );
    for block_len in [1usize, 2, 7, 100] {
        let r = ExactRetriever::new(&queries, &items).unwrap().with_block_len(block_len);
        let got: Vec<(usize, u32)> = r.top_k(0, 7).iter().map(|&(i, s)| (i, s.to_bits())).collect();
        assert_eq!(got, reference, "block_len {block_len} changed the tie order");
    }
    let ivf = IvfRetriever::new(&queries, IvfIndex::build(&items, &IvfParams { nprobe: 16, ..IvfParams::default() }).unwrap()).unwrap();
    let got: Vec<(usize, u32)> = ivf.top_k(0, 7).iter().map(|&(i, s)| (i, s.to_bits())).collect();
    assert_eq!(got, reference, "full-probe IVF changed the tie order");
}
