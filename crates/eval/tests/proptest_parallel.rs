//! Determinism-under-parallelism properties for evaluation: similarity
//! construction, CSLS re-scoring, and ranking metrics must produce
//! **byte-identical** results at 1, 2, and 7 threads.

use desalign_eval::{cosine_similarity, csls_rescale, evaluate_ranking, SimilarityMatrix};
use desalign_parallel::with_threads;
use desalign_tensor::Matrix;
use desalign_testkit::{check, ensure, gen};

const CASES: u64 = 8;
const THREADS: [usize; 3] = [1, 2, 7];

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn identical_matrix_bits(name: &str, f: impl Fn() -> Matrix) -> Result<(), String> {
    let reference = with_threads(THREADS[0], &f);
    for &t in &THREADS[1..] {
        let got = with_threads(t, &f);
        ensure!(bits(&got) == bits(&reference), "{name}: {t}-thread bits diverge from serial");
    }
    Ok(())
}

#[test]
fn cosine_similarity_is_thread_count_invariant() {
    check("cosine_similarity_is_thread_count_invariant", CASES, |rng| {
        (gen::matrix(rng, 120, 48, -3.0, 3.0), gen::matrix(rng, 110, 48, -3.0, 3.0))
    }, |(s, t)| {
        identical_matrix_bits("cosine_similarity", || cosine_similarity(s, t).scores().clone())
    });
}

#[test]
fn csls_rescale_is_thread_count_invariant() {
    check("csls_rescale_is_thread_count_invariant", CASES, |rng| {
        SimilarityMatrix::new(gen::matrix(rng, 100, 100, -1.0, 1.0))
    }, |sim| {
        identical_matrix_bits("csls_rescale", || csls_rescale(sim, 10).scores().clone())
    });
}

#[test]
fn evaluate_ranking_is_thread_count_invariant() {
    check("evaluate_ranking_is_thread_count_invariant", CASES, |rng| {
        let sim = SimilarityMatrix::new(gen::matrix(rng, 200, 200, -1.0, 1.0));
        let pairs: Vec<(usize, usize)> = (0..200).map(|i| (i, gen::usize_vec(rng, 1, 200)[0])).collect();
        (sim, pairs)
    }, |(sim, pairs)| {
        let run = |t: usize| {
            let m = with_threads(t, || evaluate_ranking(sim, pairs));
            (m.hits_at_1.to_bits(), m.hits_at_10.to_bits(), m.mrr.to_bits(), m.num_queries)
        };
        let reference = run(THREADS[0]);
        for &t in &THREADS[1..] {
            ensure!(run(t) == reference, "evaluate_ranking: {t}-thread metrics diverge from serial");
        }
        Ok(())
    });
}
