//! Property tests for the evaluation stack: metric identities and a
//! brute-force ranking oracle.

use desalign_eval::{csls_rescale, evaluate_ranking, mutual_nearest_neighbours, SimilarityMatrix};
use desalign_tensor::{Matrix, Rng64};
use desalign_testkit::{check, ensure, ensure_eq, gen};

const CASES: u64 = 64;

fn scores(rng: &mut Rng64, n: usize, m: usize) -> Matrix {
    gen::matrix(rng, n, m, -1.0, 1.0)
}

#[test]
fn metric_ranges_and_ordering() {
    check("metric_ranges_and_ordering", CASES, |rng| scores(rng, 8, 8), |s| {
        let sim = SimilarityMatrix::new(s.clone());
        let pairs: Vec<(usize, usize)> = (0..8).map(|i| (i, i)).collect();
        let m = evaluate_ranking(&sim, &pairs);
        ensure!((0.0..=1.0).contains(&m.hits_at_1));
        ensure!((0.0..=1.0).contains(&m.hits_at_10));
        ensure!((0.0..=1.0).contains(&m.mrr));
        ensure!(m.hits_at_10 >= m.hits_at_1);
        ensure!(m.mrr >= m.hits_at_1 - 1e-6);
        ensure!(m.mrr <= m.hits_at_1 + (1.0 - m.hits_at_1) * 0.5 + 1e-6);
        Ok(())
    });
}

#[test]
fn mrr_matches_bruteforce_oracle() {
    check("mrr_matches_bruteforce_oracle", CASES, |rng| scores(rng, 6, 6), |s| {
        let sim = SimilarityMatrix::new(s.clone());
        let pairs: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 2) % 6)).collect();
        let m = evaluate_ranking(&sim, &pairs);
        let cands: Vec<usize> = pairs.iter().map(|&(_, t)| t).collect();
        let mut mrr = 0.0f64;
        for &(q, gold) in &pairs {
            let rank = 1 + cands.iter().filter(|&&c| s[(q, c)] > s[(q, gold)]).count();
            mrr += 1.0 / rank as f64;
        }
        ensure!((m.mrr - (mrr / 6.0) as f32).abs() < 1e-5);
        Ok(())
    });
}

#[test]
fn monotone_transform_preserves_metrics() {
    check("monotone_transform_preserves_metrics", CASES, |rng| scores(rng, 6, 6), |s| {
        // Ranking metrics are invariant under strictly increasing maps.
        let pairs: Vec<(usize, usize)> = (0..6).map(|i| (i, i)).collect();
        let before = evaluate_ranking(&SimilarityMatrix::new(s.clone()), &pairs);
        let transformed = s.map(|v| v.mul_add(2.0, 1.0).tanh());
        let after = evaluate_ranking(&SimilarityMatrix::new(transformed), &pairs);
        ensure!((before.mrr - after.mrr).abs() < 1e-5);
        ensure_eq!(before.hits_at_1, after.hits_at_1);
        Ok(())
    });
}

#[test]
fn rank_of_is_consistent_with_ranked_targets() {
    check("rank_of_is_consistent_with_ranked_targets", CASES, |rng| scores(rng, 5, 7), |s| {
        let sim = SimilarityMatrix::new(s.clone());
        for i in 0..5 {
            let ranked = sim.ranked_targets(i);
            ensure_eq!(sim.best_target(i), ranked[0]);
            // rank_of counts strictly-greater scores, so it is ≤ position+1.
            for (pos, &t) in ranked.iter().enumerate() {
                ensure!(sim.rank_of(i, t) <= pos + 1);
            }
        }
        Ok(())
    });
}

#[test]
fn mutual_pairs_are_one_to_one() {
    check("mutual_pairs_are_one_to_one", CASES, |rng| scores(rng, 7, 7), |s| {
        let sim = SimilarityMatrix::new(s.clone());
        let all: Vec<usize> = (0..7).collect();
        let pairs = mutual_nearest_neighbours(&sim, &all, &all, f32::NEG_INFINITY);
        let mut seen_s = std::collections::HashSet::new();
        let mut seen_t = std::collections::HashSet::new();
        for &(a, b, _) in &pairs {
            ensure!(seen_s.insert(a), "source {a} repeated");
            ensure!(seen_t.insert(b), "target {b} repeated");
        }
        Ok(())
    });
}

#[test]
fn csls_preserves_shape_and_finiteness() {
    check("csls_preserves_shape_and_finiteness", CASES, |rng| scores(rng, 6, 5), |s| {
        let out = csls_rescale(&SimilarityMatrix::new(s.clone()), 3);
        ensure_eq!(out.shape(), (6, 5));
        ensure!(out.scores().all_finite());
        Ok(())
    });
}

#[test]
fn average_of_identical_matrices_is_identity() {
    check("average_of_identical_matrices_is_identity", CASES, |rng| scores(rng, 4, 4), |s| {
        let sim = SimilarityMatrix::new(s.clone());
        let avg = SimilarityMatrix::average(&[sim.clone(), sim]);
        ensure!(avg.scores().sub(s).max_abs() < 1e-5);
        Ok(())
    });
}
