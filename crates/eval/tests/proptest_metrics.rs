//! Property tests for the evaluation stack: metric identities and a
//! brute-force ranking oracle.

use desalign_eval::{csls_rescale, evaluate_ranking, mutual_nearest_neighbours, SimilarityMatrix};
use desalign_tensor::Matrix;
use proptest::prelude::*;

fn scores(n: usize, m: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f32..1.0, n * m).prop_map(move |v| Matrix::from_vec(n, m, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metric_ranges_and_ordering(s in scores(8, 8)) {
        let sim = SimilarityMatrix::new(s);
        let pairs: Vec<(usize, usize)> = (0..8).map(|i| (i, i)).collect();
        let m = evaluate_ranking(&sim, &pairs);
        prop_assert!((0.0..=1.0).contains(&m.hits_at_1));
        prop_assert!((0.0..=1.0).contains(&m.hits_at_10));
        prop_assert!((0.0..=1.0).contains(&m.mrr));
        prop_assert!(m.hits_at_10 >= m.hits_at_1);
        prop_assert!(m.mrr >= m.hits_at_1 - 1e-6);
        prop_assert!(m.mrr <= m.hits_at_1 + (1.0 - m.hits_at_1) * 0.5 + 1e-6);
    }

    #[test]
    fn mrr_matches_bruteforce_oracle(s in scores(6, 6)) {
        let sim = SimilarityMatrix::new(s.clone());
        let pairs: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 2) % 6)).collect();
        let m = evaluate_ranking(&sim, &pairs);
        let cands: Vec<usize> = pairs.iter().map(|&(_, t)| t).collect();
        let mut mrr = 0.0f64;
        for &(q, gold) in &pairs {
            let rank = 1 + cands.iter().filter(|&&c| s[(q, c)] > s[(q, gold)]).count();
            mrr += 1.0 / rank as f64;
        }
        prop_assert!((m.mrr - (mrr / 6.0) as f32).abs() < 1e-5);
    }

    #[test]
    fn monotone_transform_preserves_metrics(s in scores(6, 6)) {
        // Ranking metrics are invariant under strictly increasing maps.
        let pairs: Vec<(usize, usize)> = (0..6).map(|i| (i, i)).collect();
        let before = evaluate_ranking(&SimilarityMatrix::new(s.clone()), &pairs);
        let transformed = s.map(|v| v.mul_add(2.0, 1.0).tanh());
        let after = evaluate_ranking(&SimilarityMatrix::new(transformed), &pairs);
        prop_assert!((before.mrr - after.mrr).abs() < 1e-5);
        prop_assert_eq!(before.hits_at_1, after.hits_at_1);
    }

    #[test]
    fn rank_of_is_consistent_with_ranked_targets(s in scores(5, 7)) {
        let sim = SimilarityMatrix::new(s);
        for i in 0..5 {
            let ranked = sim.ranked_targets(i);
            prop_assert_eq!(sim.best_target(i), ranked[0]);
            // rank_of counts strictly-greater scores, so it is ≤ position+1.
            for (pos, &t) in ranked.iter().enumerate() {
                prop_assert!(sim.rank_of(i, t) <= pos + 1);
            }
        }
    }

    #[test]
    fn mutual_pairs_are_one_to_one(s in scores(7, 7)) {
        let sim = SimilarityMatrix::new(s);
        let all: Vec<usize> = (0..7).collect();
        let pairs = mutual_nearest_neighbours(&sim, &all, &all, f32::NEG_INFINITY);
        let mut seen_s = std::collections::HashSet::new();
        let mut seen_t = std::collections::HashSet::new();
        for &(a, b, _) in &pairs {
            prop_assert!(seen_s.insert(a), "source {} repeated", a);
            prop_assert!(seen_t.insert(b), "target {} repeated", b);
        }
    }

    #[test]
    fn csls_preserves_shape_and_finiteness(s in scores(6, 5)) {
        let out = csls_rescale(&SimilarityMatrix::new(s), 3);
        prop_assert_eq!(out.shape(), (6, 5));
        prop_assert!(out.scores().all_finite());
    }

    #[test]
    fn average_of_identical_matrices_is_identity(s in scores(4, 4)) {
        let sim = SimilarityMatrix::new(s.clone());
        let avg = SimilarityMatrix::average(&[sim.clone(), sim]);
        prop_assert!(avg.scores().sub(&s).max_abs() < 1e-5);
    }
}
