//! Learning-rate schedules.

/// Cosine decay with linear warmup — the paper trains with a "cosine warm-up
/// schedule (15 % steps for LR warmup)" (§V-A).
#[derive(Clone, Copy, Debug)]
pub struct CosineWarmup {
    base_lr: f32,
    total_steps: usize,
    warmup_steps: usize,
    /// Floor learning rate after full decay.
    pub min_lr: f32,
}

impl CosineWarmup {
    /// Creates a schedule over `total_steps` with `warmup_frac` of them
    /// spent in linear warmup (the paper's 0.15).
    pub fn new(base_lr: f32, total_steps: usize, warmup_frac: f32) -> Self {
        let warmup_steps = ((total_steps as f32) * warmup_frac).round() as usize;
        Self { base_lr, total_steps: total_steps.max(1), warmup_steps, min_lr: 0.0 }
    }

    /// Learning rate at `step` (0-based). Steps beyond `total_steps` stay at
    /// `min_lr`.
    pub fn lr(&self, step: usize) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            return self.base_lr * (step + 1) as f32 / self.warmup_steps as f32;
        }
        if step >= self.total_steps {
            return self.min_lr;
        }
        let progress = (step - self.warmup_steps) as f32 / (self.total_steps - self.warmup_steps).max(1) as f32;
        let cosine = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.min_lr + (self.base_lr - self.min_lr) * cosine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_rises_linearly() {
        let s = CosineWarmup::new(1.0, 100, 0.2);
        assert!(s.lr(0) < s.lr(10));
        assert!((s.lr(19) - 1.0).abs() < 1e-6); // last warmup step hits base
    }

    #[test]
    fn decays_to_floor() {
        let mut s = CosineWarmup::new(0.1, 50, 0.1);
        s.min_lr = 0.001;
        assert!(s.lr(49) < 0.01);
        assert_eq!(s.lr(60), 0.001);
    }

    #[test]
    fn peak_at_end_of_warmup() {
        let s = CosineWarmup::new(2.0, 200, 0.15);
        let peak = s.lr(29);
        for step in [0, 10, 60, 120, 199] {
            assert!(s.lr(step) <= peak + 1e-6);
        }
    }

    #[test]
    fn zero_warmup_starts_at_base() {
        let s = CosineWarmup::new(1.0, 10, 0.0);
        assert!((s.lr(0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn monotone_decay_after_warmup() {
        let s = CosineWarmup::new(1.0, 100, 0.15);
        let mut prev = f32::INFINITY;
        for step in 15..100 {
            let lr = s.lr(step);
            assert!(lr <= prev + 1e-6, "lr rose at step {step}");
            prev = lr;
        }
    }
}
