//! Persistent parameter storage and per-step autodiff sessions.

use desalign_autodiff::{Tape, Var};
use desalign_tensor::Matrix;
use std::collections::{BTreeMap, HashMap};

/// Handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Constructs an id by raw index — test helper only (ids are normally
    /// obtained from [`ParamStore::add`]).
    #[cfg(test)]
    pub(crate) fn test_id(i: usize) -> Self {
        ParamId(i)
    }
}

struct ParamEntry {
    name: String,
    value: Matrix,
}

/// Owns every trainable parameter of a model across training steps.
///
/// Tapes are transient (one per step); the store is the durable state the
/// optimizer updates. Layers keep `ParamId`s, never matrices, so weight
/// sharing is explicit and snapshots are trivial.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<ParamEntry>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an initial value; names aid debugging and
    /// snapshots and need not be unique.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.params.push(ParamEntry { name: name.into(), value });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Deep copy of all values (for snapshots / early stopping).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.params.iter().map(|p| p.value.clone()).collect()
    }

    /// Restores a snapshot taken with [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the store layout.
    pub fn restore(&mut self, snapshot: &[Matrix]) {
        assert_eq!(snapshot.len(), self.params.len(), "ParamStore::restore: snapshot has {} entries, store has {}", snapshot.len(), self.params.len());
        for (entry, saved) in self.params.iter_mut().zip(snapshot) {
            saved.expect_shape(entry.value.rows(), entry.value.cols(), "ParamStore::restore");
            entry.value = saved.clone();
        }
    }
}

/// Gradients collected from one backward pass, keyed by parameter.
///
/// Ordered by id (BTreeMap) so that float reductions over all gradients —
/// notably the global-norm clip in `AdamW::step` — accumulate in a fixed
/// order and training stays byte-for-byte reproducible. A HashMap here
/// makes the summation order (and hence the f32 rounding of the clip
/// factor) vary per process thanks to per-instance hasher seeds.
#[derive(Default)]
pub struct Gradients {
    grads: BTreeMap<ParamId, Matrix>,
}

impl Gradients {
    /// Gradient for a parameter, if it participated in the loss.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.grads.get(&id)
    }

    /// Number of parameters with gradients.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Whether no gradients were collected.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Global ℓ2 norm over all gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads.values().map(|g| {
            let n = g.frobenius_norm();
            n * n
        }).sum::<f32>().sqrt()
    }

    /// Scales every gradient in place (used for clipping).
    pub fn scale_all(&mut self, factor: f32) {
        for g in self.grads.values_mut() {
            g.map_inplace(|v| v * factor);
        }
    }

    /// Iterates over `(id, grad)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.grads.iter().map(|(&id, g)| (id, g))
    }
}

/// One training step's autodiff context: a fresh [`Tape`] plus the binding
/// of store parameters to tape leaves.
pub struct Session<'s> {
    /// The underlying tape; layers record their ops here.
    pub tape: Tape,
    store: &'s ParamStore,
    bound: HashMap<ParamId, Var>,
}

impl<'s> Session<'s> {
    /// Starts a session over the given store.
    pub fn new(store: &'s ParamStore) -> Self {
        Self { tape: Tape::new(), store, bound: HashMap::new() }
    }

    /// Starts a session whose tape draws gradient buffers from a shared
    /// [`Workspace`](desalign_autodiff::Workspace). Trainers hold one
    /// workspace for the whole run so that steady-state steps reuse every
    /// gradient buffer instead of reallocating (results are bit-identical
    /// either way).
    pub fn with_workspace(store: &'s ParamStore, ws: desalign_autodiff::SharedWorkspace) -> Self {
        Self { tape: Tape::with_workspace(ws), store, bound: HashMap::new() }
    }

    /// Binds a parameter as a trainable leaf (cached: binding the same id
    /// twice returns the same `Var`, so weight sharing accumulates
    /// gradients correctly).
    pub fn param(&mut self, id: ParamId) -> Var {
        if let Some(&v) = self.bound.get(&id) {
            return v;
        }
        let v = self.tape.leaf(self.store.value(id).clone());
        self.bound.insert(id, v);
        v
    }

    /// Records a non-trainable input.
    pub fn input(&mut self, value: Matrix) -> Var {
        self.tape.constant(value)
    }

    /// Runs backward from `loss` and collects per-parameter gradients.
    pub fn backward(&mut self, loss: Var) -> Gradients {
        self.tape.backward(loss);
        let mut grads = Gradients::default();
        for (&id, &var) in &self.bound {
            if let Some(g) = self.tape.grad(var) {
                grads.grads.insert(id, g.clone());
            }
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_round_trip() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(2, 2, 1.0));
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_weights(), 4);
        assert_eq!(store.name(w), "w");
        store.value_mut(w)[(0, 0)] = 5.0;
        assert_eq!(store.value(w)[(0, 0)], 5.0);
    }

    #[test]
    fn snapshot_restore() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 2, 1.0));
        let snap = store.snapshot();
        store.value_mut(w)[(0, 1)] = 9.0;
        store.restore(&snap);
        assert_eq!(store.value(w).as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn session_binds_once_and_accumulates_shared_grads() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 1, 3.0));
        let mut sess = Session::new(&store);
        let a = sess.param(w);
        let b = sess.param(w);
        assert_eq!(a, b);
        // loss = w·w → dL/dw = 2w = 6
        let prod = sess.tape.mul(a, b);
        let loss = sess.tape.sum_all(prod);
        let grads = sess.backward(loss);
        assert_eq!(grads.get(w).expect("grad")[(0, 0)], 6.0);
    }

    #[test]
    fn gradients_norm_and_scale() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 2, 2.0));
        let mut sess = Session::new(&store);
        let v = sess.param(w);
        let sq = sess.tape.square(v);
        let loss = sess.tape.sum_all(sq);
        let mut grads = sess.backward(loss);
        // grad = 2w = [4, 4]; norm = sqrt(32)
        assert!((grads.global_norm() - 32.0f32.sqrt()).abs() < 1e-5);
        grads.scale_all(0.5);
        assert_eq!(grads.get(w).expect("grad").as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn unused_params_have_no_grad() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::full(1, 1, 1.0));
        let u = store.add("unused", Matrix::full(1, 1, 1.0));
        let mut sess = Session::new(&store);
        let v = sess.param(w);
        let _also_bound_but_unused = sess.param(u);
        let loss = sess.tape.sum_all(v);
        let grads = sess.backward(loss);
        assert!(grads.get(w).is_some());
        assert!(grads.get(u).is_none());
    }
}
