//! Dense and diagonal linear layers.

use crate::{ParamId, ParamStore, Session};
use desalign_autodiff::Var;
use desalign_tensor::{glorot_uniform, Matrix, Rng64};

/// A dense linear layer `y = xW (+ b)` — the per-modality fully connected
/// transforms `FC_m` of Eq. 8.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a Glorot-initialized layer and registers its parameters.
    pub fn new(store: &mut ParamStore, rng: &mut Rng64, name: &str, in_dim: usize, out_dim: usize, bias: bool) -> Self {
        let w = store.add(format!("{name}.w"), glorot_uniform(rng, in_dim, out_dim));
        let b = bias.then(|| store.add(format!("{name}.b"), Matrix::zeros(1, out_dim)));
        Self { w, b, in_dim, out_dim }
    }

    /// Applies the layer: `x (n×in) → (n×out)`.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Var {
        let w = sess.param(self.w);
        let b = self.b.map(|id| sess.param(id));
        sess.tape.linear(x, w, b)
    }

    /// Weight parameter id (exposed for energy diagnostics: Proposition 2
    /// tracks the singular values of each layer's `W^{(k)}`).
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// A diagonal linear layer `y = x ⊙ diag(w)` — the `W_g ∈ ℝ^{d×d}` diagonal
/// weight of the structure branch (Eq. 7, following Yang et al.).
#[derive(Clone, Debug)]
pub struct DiagonalLinear {
    w: ParamId,
    dim: usize,
}

impl DiagonalLinear {
    /// Creates a layer initialized to the identity (all-ones diagonal).
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let w = store.add(format!("{name}.diag"), Matrix::full(1, dim, 1.0));
        Self { w, dim }
    }

    /// Applies the per-column scaling.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Var {
        let w = sess.param(self.w);
        sess.tape.mul_broadcast_row(x, w)
    }

    /// The diagonal parameter id.
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_tensor::rng_from_seed;

    #[test]
    fn linear_shapes_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = rng_from_seed(1);
        let layer = Linear::new(&mut store, &mut rng, "fc", 3, 5, true);
        assert_eq!(store.len(), 2);
        let mut sess = Session::new(&store);
        let x = sess.input(Matrix::full(4, 3, 1.0));
        let y = layer.forward(&mut sess, x);
        assert_eq!(sess.tape.value(y).shape(), (4, 5));
    }

    #[test]
    fn linear_gradients_reach_weight_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = rng_from_seed(2);
        let layer = Linear::new(&mut store, &mut rng, "fc", 2, 2, true);
        let mut sess = Session::new(&store);
        let x = sess.input(Matrix::full(3, 2, 1.0));
        let y = layer.forward(&mut sess, x);
        let sq = sess.tape.square(y);
        let loss = sess.tape.sum_all(sq);
        let grads = sess.backward(loss);
        assert_eq!(grads.len(), 2);
    }

    #[test]
    fn diagonal_linear_identity_init_is_noop() {
        let mut store = ParamStore::new();
        let layer = DiagonalLinear::new(&mut store, "wg", 3);
        let mut sess = Session::new(&store);
        let input = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let x = sess.input(input.clone());
        let y = layer.forward(&mut sess, x);
        assert_eq!(sess.tape.value(y), &input);
    }

    #[test]
    fn diagonal_linear_scales_columns() {
        let mut store = ParamStore::new();
        let layer = DiagonalLinear::new(&mut store, "wg", 2);
        store.value_mut(layer.weight()).as_mut_slice().copy_from_slice(&[2.0, -1.0]);
        let mut sess = Session::new(&store);
        let x = sess.input(Matrix::from_rows(&[&[1.0, 1.0], &[3.0, 4.0]]));
        let y = layer.forward(&mut sess, x);
        assert_eq!(sess.tape.value(y).as_slice(), &[2.0, -1.0, 6.0, -4.0]);
    }
}
