//! Multi-head Graph Attention (GAT) layers — the structure encoder of Eq. 7.
//!
//! The paper uses a two-layer, two-head GAT with a diagonal weight matrix
//! for the linear transformation (following Yang et al.). Both dense and
//! diagonal per-head weights are supported; heads are concatenated.

use crate::{ParamId, ParamStore, Session};
use desalign_autodiff::Var;
use desalign_tensor::{glorot_uniform, uniform_matrix, Rng64};
use std::rc::Rc;

/// How a GAT head transforms node features before attention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightKind {
    /// Dense `d_in × d_head` projection.
    Dense,
    /// Diagonal scaling (requires `d_head == d_in`), the paper's `W_g`.
    Diagonal,
}

#[derive(Clone, Debug)]
struct GatHead {
    w: ParamId,        // dense (d_in × d_h) or diagonal (1 × d_in)
    attn_src: ParamId, // d_h × 1
    attn_dst: ParamId, // d_h × 1
    kind: WeightKind,
}

/// One multi-head GAT layer.
#[derive(Clone, Debug)]
pub struct GatLayer {
    heads: Vec<GatHead>,
    negative_slope: f32,
    in_dim: usize,
    head_dim: usize,
    /// If true, heads are averaged (standard GAT output layer); otherwise
    /// concatenated (standard GAT hidden layer).
    average_heads: bool,
}

impl GatLayer {
    /// Creates a layer with `num_heads` heads of width `head_dim`
    /// (`head_dim` must equal `in_dim` for [`WeightKind::Diagonal`]).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng64,
        name: &str,
        in_dim: usize,
        head_dim: usize,
        num_heads: usize,
        kind: WeightKind,
    ) -> Self {
        assert!(num_heads > 0, "GatLayer::new: at least one head required");
        if kind == WeightKind::Diagonal {
            assert_eq!(head_dim, in_dim, "GatLayer::new: diagonal weights require head_dim == in_dim");
        }
        let heads = (0..num_heads)
            .map(|h| {
                let w = match kind {
                    WeightKind::Dense => store.add(format!("{name}.h{h}.w"), glorot_uniform(rng, in_dim, head_dim)),
                    WeightKind::Diagonal => {
                        // Near-identity init keeps early Dirichlet energy stable.
                        let init = uniform_matrix(rng, 1, in_dim, 0.9, 1.1);
                        store.add(format!("{name}.h{h}.diag"), init)
                    }
                };
                GatHead {
                    w,
                    attn_src: store.add(format!("{name}.h{h}.a_src"), glorot_uniform(rng, head_dim, 1)),
                    attn_dst: store.add(format!("{name}.h{h}.a_dst"), glorot_uniform(rng, head_dim, 1)),
                    kind,
                }
            })
            .collect();
        Self { heads, negative_slope: 0.2, in_dim, head_dim, average_heads: false }
    }

    /// Switches the layer to average its heads instead of concatenating
    /// them (the standard GAT output-layer behaviour).
    pub fn with_average_heads(mut self) -> Self {
        self.average_heads = true;
        self
    }

    /// Output width (`head_dim × num_heads` when concatenating, `head_dim`
    /// when averaging).
    pub fn out_dim(&self) -> usize {
        if self.average_heads {
            self.head_dim
        } else {
            self.head_dim * self.heads.len()
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Applies the layer over message edges `(src, dst)` (which should
    /// include self-loops; see `UndirectedGraph::message_edges`).
    ///
    /// Per head: `h' = XW`; edge logits
    /// `e_{uv} = LeakyReLU(a_srcᵀ h'_u + a_dstᵀ h'_v)`; attention
    /// `α = edge_softmax(e)` grouped by destination; output
    /// `out_v = Σ_{u→v} α_{uv} h'_u`. Heads are concatenated.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var, src: &Rc<Vec<usize>>, dst: &Rc<Vec<usize>>) -> Var {
        assert_eq!(src.len(), dst.len(), "GatLayer::forward: src/dst length mismatch");
        let n = sess.tape.value(x).rows();
        let mut head_outputs = Vec::with_capacity(self.heads.len());
        for head in &self.heads {
            let h = match head.kind {
                WeightKind::Dense => {
                    let w = sess.param(head.w);
                    sess.tape.matmul(x, w)
                }
                WeightKind::Diagonal => {
                    let w = sess.param(head.w);
                    sess.tape.mul_broadcast_row(x, w)
                }
            };
            let a_src = sess.param(head.attn_src);
            let a_dst = sess.param(head.attn_dst);
            let s_src = sess.tape.matmul(h, a_src); // n×1
            let s_dst = sess.tape.matmul(h, a_dst); // n×1
            let e_src = sess.tape.gather_rows(s_src, Rc::clone(src));
            let e_dst = sess.tape.gather_rows(s_dst, Rc::clone(dst));
            let logits = sess.tape.add(e_src, e_dst);
            let logits = sess.tape.leaky_relu(logits, self.negative_slope);
            let alpha = sess.tape.edge_softmax(logits, Rc::clone(dst)); // E×1
            let msgs = sess.tape.gather_rows(h, Rc::clone(src)); // E×d_h
            let weighted = sess.tape.mul_broadcast_col(msgs, alpha);
            let agg = sess.tape.scatter_add_rows(weighted, Rc::clone(dst), n);
            head_outputs.push(agg);
        }
        if head_outputs.len() == 1 {
            head_outputs[0]
        } else if self.average_heads {
            let mut acc = head_outputs[0];
            for &h in &head_outputs[1..] {
                acc = sess.tape.add(acc, h);
            }
            sess.tape.scale(acc, 1.0 / head_outputs.len() as f32)
        } else {
            sess.tape.concat_cols(&head_outputs)
        }
    }
}

/// A stack of GAT layers with ELU-like (leaky) nonlinearities between them —
/// the full structure embedding `h^g = GAT(W_g, A; x^g)` of Eq. 7.
///
/// Message edges are supplied at forward time so the same weights can
/// encode both knowledge graphs (standard parameter sharing in entity
/// alignment).
#[derive(Clone, Debug)]
pub struct GatEncoder {
    layers: Vec<GatLayer>,
}

impl GatEncoder {
    /// Builds the paper's default configuration (§IV-A: two layers, two
    /// heads, diagonal first-layer weights). The first layer uses diagonal
    /// per-head weights of width `dim`; hidden layers concatenate their
    /// heads; the final layer averages them (standard GAT), so the encoder
    /// output width is always `dim`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng64,
        name: &str,
        dim: usize,
        num_heads: usize,
        num_layers: usize,
    ) -> Self {
        assert!(num_layers > 0, "GatEncoder::new: at least one layer");
        let mut layers = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let last = l + 1 == num_layers;
            let mut layer = if l == 0 {
                GatLayer::new(store, rng, &format!("{name}.l0"), dim, dim, num_heads, WeightKind::Diagonal)
            } else {
                // Hidden layers concatenated their heads: fold back to `dim`.
                let in_dim = dim * num_heads;
                GatLayer::new(store, rng, &format!("{name}.l{l}"), in_dim, dim, num_heads, WeightKind::Dense)
            };
            if last {
                layer = layer.with_average_heads();
            }
            layers.push(layer);
        }
        Self { layers }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("at least one layer").out_dim()
    }

    /// Encodes node features over the given message edges.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var, src: &Rc<Vec<usize>>, dst: &Rc<Vec<usize>>) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(sess, h, src, dst);
            if i + 1 < self.layers.len() {
                h = sess.tape.leaky_relu(h, 0.2);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_graph::UndirectedGraph;
    use desalign_tensor::Matrix;
    use desalign_tensor::{normal_matrix, rng_from_seed};

    fn edges(g: &UndirectedGraph) -> (Rc<Vec<usize>>, Rc<Vec<usize>>) {
        let (s, d) = g.message_edges();
        (Rc::new(s), Rc::new(d))
    }

    #[test]
    fn gat_layer_shapes() {
        let g = UndirectedGraph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (src, dst) = edges(&g);
        let mut store = ParamStore::new();
        let mut rng = rng_from_seed(1);
        let layer = GatLayer::new(&mut store, &mut rng, "gat", 4, 3, 2, WeightKind::Dense);
        let mut sess = Session::new(&store);
        let x = sess.input(normal_matrix(&mut rng, 5, 4, 0.0, 1.0));
        let y = layer.forward(&mut sess, x, &src, &dst);
        assert_eq!(sess.tape.value(y).shape(), (5, 6)); // 2 heads × 3
    }

    #[test]
    fn isolated_node_keeps_self_message() {
        // With self-loops in message edges, an isolated node's output is its
        // own transformed feature (attention of 1 on itself).
        let g = UndirectedGraph::new(3, vec![(0, 1)]);
        let (src, dst) = edges(&g);
        let mut store = ParamStore::new();
        let mut rng = rng_from_seed(2);
        let layer = GatLayer::new(&mut store, &mut rng, "gat", 2, 2, 1, WeightKind::Diagonal);
        let mut sess = Session::new(&store);
        let input = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[5.0, 5.0]]);
        let x = sess.input(input);
        let y = layer.forward(&mut sess, x, &src, &dst);
        let v = sess.tape.value(y);
        // Node 2 is isolated: output = diag(w) ⊙ x₂ with α=1.
        let w = store.value(layer.heads[0].w);
        assert!((v[(2, 0)] - 5.0 * w[(0, 0)]).abs() < 1e-5);
        assert!((v[(2, 1)] - 5.0 * w[(0, 1)]).abs() < 1e-5);
    }

    #[test]
    fn gradients_flow_through_encoder() {
        let g = UndirectedGraph::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let (src, dst) = edges(&g);
        let mut store = ParamStore::new();
        let mut rng = rng_from_seed(3);
        let enc = GatEncoder::new(&mut store, &mut rng, "gat", 3, 2, 2);
        let mut sess = Session::new(&store);
        let x = sess.input(normal_matrix(&mut rng, 4, 3, 0.0, 1.0));
        let y = enc.forward(&mut sess, x, &src, &dst);
        assert_eq!(sess.tape.value(y).shape(), (4, enc.out_dim()));
        let sq = sess.tape.square(y);
        let loss = sess.tape.sum_all(sq);
        let grads = sess.backward(loss);
        // Every parameter of both layers should receive a gradient.
        assert_eq!(grads.len(), store.len(), "all {} params should have grads, got {}", store.len(), grads.len());
    }

    #[test]
    fn attention_is_a_convex_combination() {
        // Outputs of a 1-head diagonal GAT with identity weights lie in the
        // convex hull of neighbour features (per coordinate bounds).
        let g = UndirectedGraph::new(3, vec![(0, 1), (1, 2)]);
        let (src, dst) = edges(&g);
        let mut store = ParamStore::new();
        let mut rng = rng_from_seed(4);
        let layer = GatLayer::new(&mut store, &mut rng, "gat", 1, 1, 1, WeightKind::Diagonal);
        // Force exact identity transform.
        store.value_mut(layer.heads[0].w).as_mut_slice()[0] = 1.0;
        let mut sess = Session::new(&store);
        let x = sess.input(Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]));
        let y = layer.forward(&mut sess, x, &src, &dst);
        let v = sess.tape.value(y);
        for i in 0..3 {
            assert!(v[(i, 0)] >= 0.0 - 1e-5 && v[(i, 0)] <= 2.0 + 1e-5);
        }
        // Middle node attends to {0, 1, 2}: strictly inside.
        assert!(v[(1, 0)] > 0.0 && v[(1, 0)] < 2.0);
    }
}
