//! Cross-modal Attention Weighted (CAW) fusion — Eq. 9–13 of the paper.
//!
//! For every entity, the block runs multi-head attention *across its
//! modalities* (not across entities): modality `m`'s query attends to every
//! modality's key, producing attention weights `β_mj` per entity, a fused
//! embedding per modality (with residual + layer-norm + FFN, Eq. 11–12),
//! and the modal-level confidence `w̃^m` (Eq. 13).
//!
//! Confidence interpretation: Eq. 13 aggregates attention weights per
//! modality before a softmax over modalities. Because each query row of
//! `β` sums to one, aggregating over the *query* index is constant; the
//! informative direction — and the one matching MEAformer's released
//! implementation — is the attention *received* by modality `m` from all
//! queries, `Σ_i Σ_j β^{(i)}_{jm}`. We use that form: modalities that other
//! modalities attend to strongly (informative, present features) earn high
//! confidence; missing/noisy modalities earn low confidence.

use crate::{ParamId, ParamStore, Session};
use desalign_autodiff::Var;
use desalign_tensor::{glorot_uniform, Matrix, Rng64};

struct CawHead {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
}

/// The CAW block over a fixed-size modality set.
pub struct CrossModalAttention {
    heads: Vec<CawHead>,
    wo: ParamId,
    ffn_w1: ParamId,
    ffn_b1: ParamId,
    ffn_w2: ParamId,
    ffn_b2: ParamId,
    num_modalities: usize,
    dim: usize,
    head_dim: usize,
    ln_eps: f32,
}

/// Result of a CAW forward pass.
pub struct CawOutput {
    /// Fused per-modality embeddings `ĥ^ATT_m` (each `n × d`), Eq. 12.
    pub fused: Vec<Var>,
    /// Per-modality confidence `w̃^m` (each `n × 1`, rows of the modality
    /// softmax), Eq. 13.
    pub confidence: Vec<Var>,
    /// Raw per-entity attention matrices `β_m` (each `n × |M|`), exposed for
    /// diagnostics and tests.
    pub attention: Vec<Var>,
}

impl CrossModalAttention {
    /// Creates a CAW block for `num_modalities` embeddings of width `dim`,
    /// with `num_heads` heads (the paper's default is `N_h = 1`) and an FFN
    /// hidden width `ffn_dim`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng64,
        name: &str,
        num_modalities: usize,
        dim: usize,
        num_heads: usize,
        ffn_dim: usize,
    ) -> Self {
        assert!(num_heads > 0 && dim.is_multiple_of(num_heads), "CrossModalAttention::new: dim {dim} must divide into {num_heads} heads");
        let head_dim = dim / num_heads;
        let heads = (0..num_heads)
            .map(|h| CawHead {
                wq: store.add(format!("{name}.h{h}.wq"), glorot_uniform(rng, dim, head_dim)),
                wk: store.add(format!("{name}.h{h}.wk"), glorot_uniform(rng, dim, head_dim)),
                wv: store.add(format!("{name}.h{h}.wv"), glorot_uniform(rng, dim, head_dim)),
            })
            .collect();
        Self {
            heads,
            wo: store.add(format!("{name}.wo"), glorot_uniform(rng, dim, dim)),
            ffn_w1: store.add(format!("{name}.ffn.w1"), glorot_uniform(rng, dim, ffn_dim)),
            ffn_b1: store.add(format!("{name}.ffn.b1"), Matrix::zeros(1, ffn_dim)),
            ffn_w2: store.add(format!("{name}.ffn.w2"), glorot_uniform(rng, ffn_dim, dim)),
            ffn_b2: store.add(format!("{name}.ffn.b2"), Matrix::zeros(1, dim)),
            num_modalities,
            dim,
            head_dim,
            ln_eps: 1e-5,
        }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Runs the block over per-modality embeddings (each `n × dim`).
    ///
    /// # Panics
    /// Panics if the number or shape of inputs is wrong.
    pub fn forward(&self, sess: &mut Session<'_>, modalities: &[Var]) -> CawOutput {
        assert_eq!(modalities.len(), self.num_modalities, "CrossModalAttention::forward: expected {} modalities, got {}", self.num_modalities, modalities.len());
        let n = sess.tape.value(modalities[0]).rows();
        for &m in modalities {
            sess.tape.value(m).expect_shape(n, self.dim, "CrossModalAttention::forward: modality input");
        }
        let m_count = self.num_modalities;
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        // Per-head per-modality attention outputs and β matrices.
        let mut head_outputs: Vec<Vec<Var>> = vec![Vec::new(); m_count];
        // received[m] accumulates Σ_heads Σ_queries β_{query, m} (n×1 each).
        let mut received: Vec<Option<Var>> = vec![None; m_count];
        let mut betas: Vec<Var> = Vec::with_capacity(m_count);

        for (h_idx, head) in self.heads.iter().enumerate() {
            let wq = sess.param(head.wq);
            let wk = sess.param(head.wk);
            let wv = sess.param(head.wv);
            let qs: Vec<Var> = modalities.iter().map(|&m| sess.tape.matmul(m, wq)).collect();
            let ks: Vec<Var> = modalities.iter().map(|&m| sess.tape.matmul(m, wk)).collect();
            let vs: Vec<Var> = modalities.iter().map(|&m| sess.tape.matmul(m, wv)).collect();

            for (m, &q) in qs.iter().enumerate() {
                // Per-entity scores against every modality's key.
                let mut score_cols = Vec::with_capacity(m_count);
                for &k in &ks {
                    let prod = sess.tape.mul(q, k);
                    let s = sess.tape.row_sum(prod); // n×1
                    score_cols.push(sess.tape.scale(s, scale));
                }
                let scores = sess.tape.concat_cols(&score_cols); // n×M
                let beta = sess.tape.softmax_rows(scores);
                if h_idx == 0 {
                    betas.push(beta);
                }
                // Attention output: Σ_j β_mj ⊙ v_j.
                let mut out: Option<Var> = None;
                for (j, &v) in vs.iter().enumerate() {
                    let b_j = sess.tape.slice_cols(beta, j, j + 1); // n×1
                    let term = sess.tape.mul_broadcast_col(v, b_j);
                    out = Some(match out {
                        Some(acc) => sess.tape.add(acc, term),
                        None => term,
                    });
                    // Accumulate attention received by modality j.
                    received[j] = Some(match received[j] {
                        Some(acc) => sess.tape.add(acc, b_j),
                        None => b_j,
                    });
                }
                head_outputs[m].push(out.expect("at least one modality"));
            }
        }

        // Confidence w̃^m: softmax over modalities of the scaled received
        // attention (Eq. 13).
        let conf_scale = 1.0 / ((m_count * self.heads.len()) as f32).sqrt();
        let conf_cols: Vec<Var> = received
            .into_iter()
            .map(|r| {
                let r = r.expect("all modalities receive attention");
                sess.tape.scale(r, conf_scale)
            })
            .collect();
        let conf_logits = sess.tape.concat_cols(&conf_cols); // n×M
        let conf = sess.tape.softmax_rows(conf_logits);
        let confidence: Vec<Var> = (0..m_count).map(|m| sess.tape.slice_cols(conf, m, m + 1)).collect();

        // Output projection + residual + LN + FFN per modality (Eq. 11–12).
        let wo = sess.param(self.wo);
        let w1 = sess.param(self.ffn_w1);
        let b1 = sess.param(self.ffn_b1);
        let w2 = sess.param(self.ffn_w2);
        let b2 = sess.param(self.ffn_b2);
        let mut fused = Vec::with_capacity(m_count);
        for (m, outputs) in head_outputs.iter().enumerate() {
            let concat = if outputs.len() == 1 { outputs[0] } else { sess.tape.concat_cols(outputs) }; // n×dim
            let att = sess.tape.matmul(concat, wo);
            let res = sess.tape.add(att, modalities[m]);
            let h1 = sess.tape.layernorm_rows(res, self.ln_eps);
            let f1 = sess.tape.linear(h1, w1, Some(b1));
            let f1 = sess.tape.relu(f1);
            let f2 = sess.tape.linear(f1, w2, Some(b2));
            let res2 = sess.tape.add(f2, h1);
            fused.push(sess.tape.layernorm_rows(res2, self.ln_eps));
        }

        CawOutput { fused, confidence, attention: betas }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_tensor::{normal_matrix, rng_from_seed};

    fn make(num_modalities: usize, dim: usize, heads: usize) -> (ParamStore, CrossModalAttention) {
        let mut store = ParamStore::new();
        let mut rng = rng_from_seed(1);
        let caw = CrossModalAttention::new(&mut store, &mut rng, "caw", num_modalities, dim, heads, dim * 2);
        (store, caw)
    }

    #[test]
    fn output_shapes() {
        let (store, caw) = make(4, 8, 2);
        let mut sess = Session::new(&store);
        let mut rng = rng_from_seed(2);
        let inputs: Vec<_> = (0..4).map(|_| sess.input(normal_matrix(&mut rng, 5, 8, 0.0, 1.0))).collect();
        let out = caw.forward(&mut sess, &inputs);
        assert_eq!(out.fused.len(), 4);
        assert_eq!(out.confidence.len(), 4);
        for &f in &out.fused {
            assert_eq!(sess.tape.value(f).shape(), (5, 8));
        }
        for &c in &out.confidence {
            assert_eq!(sess.tape.value(c).shape(), (5, 1));
        }
    }

    #[test]
    fn confidences_sum_to_one_per_entity() {
        let (store, caw) = make(3, 6, 1);
        let mut sess = Session::new(&store);
        let mut rng = rng_from_seed(3);
        let inputs: Vec<_> = (0..3).map(|_| sess.input(normal_matrix(&mut rng, 4, 6, 0.0, 1.0))).collect();
        let out = caw.forward(&mut sess, &inputs);
        for i in 0..4 {
            let total: f32 = out.confidence.iter().map(|&c| sess.tape.value(c)[(i, 0)]).sum();
            assert!((total - 1.0).abs() < 1e-5, "entity {i}: confidences sum to {total}");
        }
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let (store, caw) = make(4, 8, 1);
        let mut sess = Session::new(&store);
        let mut rng = rng_from_seed(4);
        let inputs: Vec<_> = (0..4).map(|_| sess.input(normal_matrix(&mut rng, 3, 8, 0.0, 1.0))).collect();
        let out = caw.forward(&mut sess, &inputs);
        for &beta in &out.attention {
            let b = sess.tape.value(beta);
            for i in 0..b.rows() {
                let s: f32 = b.row(i).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let (store, caw) = make(2, 4, 2);
        let mut sess = Session::new(&store);
        let mut rng = rng_from_seed(5);
        let inputs: Vec<_> = (0..2).map(|_| sess.input(normal_matrix(&mut rng, 3, 4, 0.0, 1.0))).collect();
        let out = caw.forward(&mut sess, &inputs);
        let all = sess.tape.concat_cols(&out.fused);
        let sq = sess.tape.square(all);
        let loss = sess.tape.sum_all(sq);
        let grads = sess.backward(loss);
        assert_eq!(grads.len(), store.len(), "all params should get grads");
    }

    #[test]
    fn zeroed_modality_earns_lower_confidence_than_informative_one() {
        // A modality whose features are all zero produces zero keys, hence
        // uniform-ish low attention received compared with a strongly
        // self-similar informative modality.
        let (store, caw) = make(2, 4, 1);
        let mut sess = Session::new(&store);
        let mut rng = rng_from_seed(6);
        let strong = sess.input(normal_matrix(&mut rng, 6, 4, 0.0, 3.0));
        let zero = sess.input(Matrix::zeros(6, 4));
        let out = caw.forward(&mut sess, &[strong, zero]);
        let c_strong = sess.tape.value(out.confidence[0]).mean();
        let c_zero = sess.tape.value(out.confidence[1]).mean();
        // Not guaranteed per-entity with random init, but in aggregate the
        // zero modality cannot dominate: it receives the neutral 0 logit.
        assert!(c_strong + 1e-3 >= c_zero || (c_strong - c_zero).abs() < 0.5);
    }
}
