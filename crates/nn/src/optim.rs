//! AdamW — Adam with decoupled weight decay (Loshchilov & Hutter), the
//! optimizer the paper trains with (β₁ = 0.9, β₂ = 0.999, §V-A).

use crate::{Gradients, ParamId, ParamStore};
use desalign_tensor::Matrix;
use std::collections::HashMap;

/// AdamW optimizer state.
pub struct AdamW {
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    /// Optional global-norm gradient clip; `None` disables clipping.
    pub clip_norm: Option<f32>,
    step: u64,
    moments: HashMap<ParamId, (Matrix, Matrix)>, // (m, v)
}

impl AdamW {
    /// Creates an optimizer with the paper's betas and the given weight
    /// decay.
    pub fn new(weight_decay: f32) -> Self {
        Self { beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay, clip_norm: Some(5.0), step: 0, moments: HashMap::new() }
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one update with learning rate `lr`.
    ///
    /// Parameters without gradients in `grads` are untouched (their moments
    /// also stay frozen, matching PyTorch's sparse-participation behaviour).
    pub fn step(&mut self, store: &mut ParamStore, grads: &mut Gradients, lr: f32) {
        if let Some(max_norm) = self.clip_norm {
            let norm = grads.global_norm();
            if norm > max_norm && norm > 0.0 {
                grads.scale_all(max_norm / norm);
            }
        }
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for (id, grad) in grads.iter() {
            let value = store.value(id);
            let (m, v) = self
                .moments
                .entry(id)
                .or_insert_with(|| (Matrix::zeros(value.rows(), value.cols()), Matrix::zeros(value.rows(), value.cols())));
            let value = store.value_mut(id);
            for ((w, g), (m_i, v_i)) in value
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *m_i = self.beta1 * *m_i + (1.0 - self.beta1) * g;
                *v_i = self.beta2 * *v_i + (1.0 - self.beta2) * g * g;
                let m_hat = *m_i / bc1;
                let v_hat = *v_i / bc2;
                // Decoupled weight decay: applied to the weight directly.
                *w -= lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * *w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;

    fn quadratic_grads(store: &ParamStore, id: ParamId) -> Gradients {
        // loss = Σ w² → grad = 2w
        let mut sess = Session::new(store);
        let w = sess.param(id);
        let sq = sess.tape.square(w);
        let loss = sess.tape.sum_all(sq);
        sess.backward(loss)
    }

    #[test]
    fn adamw_minimizes_a_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::from_rows(&[&[3.0, -2.0]]));
        let mut opt = AdamW::new(0.0);
        for _ in 0..400 {
            let mut grads = quadratic_grads(&store, id);
            opt.step(&mut store, &mut grads, 0.05);
        }
        assert!(store.value(id).max_abs() < 1e-2, "did not converge: {:?}", store.value(id));
        assert_eq!(opt.steps(), 400);
    }

    #[test]
    fn weight_decay_shrinks_unused_gradient_free_weights_only_via_participation() {
        // A parameter with zero gradient is untouched — decay is only
        // applied to participating parameters (PyTorch semantics).
        let mut store = ParamStore::new();
        let used = store.add("used", Matrix::full(1, 1, 1.0));
        let unused = store.add("unused", Matrix::full(1, 1, 1.0));
        let mut opt = AdamW::new(0.1);
        let mut grads = quadratic_grads(&store, used);
        opt.step(&mut store, &mut grads, 0.01);
        assert!(store.value(used)[(0, 0)] < 1.0);
        assert_eq!(store.value(unused)[(0, 0)], 1.0);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::full(1, 4, 1000.0));
        let mut opt = AdamW::new(0.0);
        opt.clip_norm = Some(1.0);
        let mut grads = quadratic_grads(&store, id);
        let norm_before = grads.global_norm();
        assert!(norm_before > 1.0);
        opt.step(&mut store, &mut grads, 0.1);
        assert!(grads.global_norm() <= 1.0 + 1e-4);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let run = || {
            let mut store = ParamStore::new();
            let id = store.add("w", Matrix::from_rows(&[&[1.0, 2.0]]));
            let mut opt = AdamW::new(0.01);
            for _ in 0..10 {
                let mut grads = quadratic_grads(&store, id);
                opt.step(&mut store, &mut grads, 0.02);
            }
            store.value(id).clone()
        };
        assert_eq!(run(), run());
    }
}
