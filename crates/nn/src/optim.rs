//! AdamW — Adam with decoupled weight decay (Loshchilov & Hutter), the
//! optimizer the paper trains with (β₁ = 0.9, β₂ = 0.999, §V-A).
//!
//! The full optimizer state — hyper-parameters, step counter, first and
//! second moments — serializes through [`AdamW::state_to_json_string`] /
//! [`AdamW::restore_state`] so a resumed run continues the *identical*
//! update trajectory (bias correction depends on `step`; the moments carry
//! the gradient history). The step counter is written as a decimal string
//! (the workspace `u64` JSON policy), and floats use the bit-exact policy
//! of [`crate::checkpoint`].

use crate::checkpoint::{matrix_from_json, matrix_to_json_string, write_f32_json};
use crate::{Gradients, ParamId, ParamStore};
use desalign_tensor::Matrix;
use desalign_util::{u64_from_json, FromJson, Json};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;

/// AdamW optimizer state.
#[derive(Clone)]
pub struct AdamW {
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    /// Optional global-norm gradient clip; `None` disables clipping.
    pub clip_norm: Option<f32>,
    step: u64,
    moments: HashMap<ParamId, (Matrix, Matrix)>, // (m, v)
}

impl AdamW {
    /// Creates an optimizer with the paper's betas and the given weight
    /// decay.
    pub fn new(weight_decay: f32) -> Self {
        Self { beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay, clip_norm: Some(5.0), step: 0, moments: HashMap::new() }
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Serializes the complete optimizer state as a JSON string.
    ///
    /// Moments are emitted sorted by parameter id, so the output is a
    /// deterministic function of the state. Restoring with
    /// [`AdamW::restore_state`] reproduces the optimizer bit-for-bit:
    ///
    /// ```
    /// use desalign_nn::AdamW;
    /// use desalign_nn::ParamStore;
    /// use desalign_util::Json;
    ///
    /// let store = ParamStore::new();
    /// let opt = AdamW::new(0.01);
    /// let text = opt.state_to_json_string();
    /// let mut restored = AdamW::new(0.0); // wrong decay, fixed by restore
    /// restored.restore_state(&Json::parse(&text).unwrap(), &store).unwrap();
    /// assert_eq!(restored.state_to_json_string(), text);
    /// ```
    pub fn state_to_json_string(&self) -> String {
        let mut out = String::from("{\"beta1\":");
        write_f32_json(&mut out, self.beta1);
        out.push_str(",\"beta2\":");
        write_f32_json(&mut out, self.beta2);
        out.push_str(",\"eps\":");
        write_f32_json(&mut out, self.eps);
        out.push_str(",\"weight_decay\":");
        write_f32_json(&mut out, self.weight_decay);
        out.push_str(",\"clip_norm\":");
        match self.clip_norm {
            Some(c) => write_f32_json(&mut out, c),
            None => out.push_str("null"),
        }
        write!(out, ",\"step\":\"{}\",\"moments\":[", self.step).expect("string write");
        let mut ids: Vec<ParamId> = self.moments.keys().copied().collect();
        ids.sort_unstable();
        for (i, id) in ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (m, v) = &self.moments[id];
            write!(out, "{{\"param\":{},\"m\":{},\"v\":{}}}", id.0, matrix_to_json_string(m), matrix_to_json_string(v))
                .expect("string write");
        }
        out.push_str("]}");
        out
    }

    /// Restores state written by [`AdamW::state_to_json_string`].
    ///
    /// Every moment entry is validated against `store` — the parameter
    /// index must be in range and both moment matrices must match the
    /// parameter's shape — *before* anything is mutated, so the optimizer
    /// is untouched on error. This matters because [`AdamW::step`] zips
    /// moments against gradients element-wise; a silently mis-shaped
    /// moment would corrupt the trajectory instead of failing loudly.
    pub fn restore_state(&mut self, doc: &Json, store: &ParamStore) -> io::Result<()> {
        let bad = |e: desalign_util::JsonError| io::Error::new(io::ErrorKind::InvalidData, e);
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let beta1: f32 = doc.field("beta1").map_err(bad)?;
        let beta2: f32 = doc.field("beta2").map_err(bad)?;
        let eps: f32 = doc.field("eps").map_err(bad)?;
        let weight_decay: f32 = doc.field("weight_decay").map_err(bad)?;
        let clip_norm = match doc.get("clip_norm") {
            None | Some(Json::Null) => None,
            Some(v) => Some(f32::from_json(v).map_err(bad)?),
        };
        let step = doc
            .get("step")
            .ok_or_else(|| invalid("missing field 'step'".into()))
            .and_then(|v| u64_from_json(v).map_err(bad))?;
        let entries = doc
            .get("moments")
            .and_then(Json::as_array)
            .ok_or_else(|| invalid("missing or non-array field 'moments'".into()))?;
        let n_params = store.ids().count();
        let mut moments = HashMap::with_capacity(entries.len());
        for entry in entries {
            let idx: usize = entry.field("param").map_err(bad)?;
            if idx >= n_params {
                return Err(invalid(format!("moment for parameter {idx}, store has {n_params}")));
            }
            let id = ParamId(idx);
            let shape = {
                let w = store.value(id);
                (w.rows(), w.cols())
            };
            let m = matrix_from_json(entry.get("m").ok_or_else(|| invalid(format!("moment {idx}: missing 'm'")))?)
                .map_err(bad)?;
            let v = matrix_from_json(entry.get("v").ok_or_else(|| invalid(format!("moment {idx}: missing 'v'")))?)
                .map_err(bad)?;
            for (which, mat) in [("m", &m), ("v", &v)] {
                if (mat.rows(), mat.cols()) != shape {
                    return Err(invalid(format!(
                        "moment {idx} '{which}' is {}x{}, parameter is {}x{}",
                        mat.rows(),
                        mat.cols(),
                        shape.0,
                        shape.1
                    )));
                }
            }
            if moments.insert(id, (m, v)).is_some() {
                return Err(invalid(format!("duplicate moment entry for parameter {idx}")));
            }
        }
        self.beta1 = beta1;
        self.beta2 = beta2;
        self.eps = eps;
        self.weight_decay = weight_decay;
        self.clip_norm = clip_norm;
        self.step = step;
        self.moments = moments;
        Ok(())
    }

    /// Applies one update with learning rate `lr`.
    ///
    /// Parameters without gradients in `grads` are untouched (their moments
    /// also stay frozen, matching PyTorch's sparse-participation behaviour).
    pub fn step(&mut self, store: &mut ParamStore, grads: &mut Gradients, lr: f32) {
        if let Some(max_norm) = self.clip_norm {
            let norm = grads.global_norm();
            if norm > max_norm && norm > 0.0 {
                grads.scale_all(max_norm / norm);
            }
        }
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for (id, grad) in grads.iter() {
            let value = store.value(id);
            let (m, v) = self
                .moments
                .entry(id)
                .or_insert_with(|| (Matrix::zeros(value.rows(), value.cols()), Matrix::zeros(value.rows(), value.cols())));
            let value = store.value_mut(id);
            for ((w, g), (m_i, v_i)) in value
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *m_i = self.beta1 * *m_i + (1.0 - self.beta1) * g;
                *v_i = self.beta2 * *v_i + (1.0 - self.beta2) * g * g;
                let m_hat = *m_i / bc1;
                let v_hat = *v_i / bc2;
                // Decoupled weight decay: applied to the weight directly.
                *w -= lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * *w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;

    fn quadratic_grads(store: &ParamStore, id: ParamId) -> Gradients {
        // loss = Σ w² → grad = 2w
        let mut sess = Session::new(store);
        let w = sess.param(id);
        let sq = sess.tape.square(w);
        let loss = sess.tape.sum_all(sq);
        sess.backward(loss)
    }

    #[test]
    fn adamw_minimizes_a_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::from_rows(&[&[3.0, -2.0]]));
        let mut opt = AdamW::new(0.0);
        for _ in 0..400 {
            let mut grads = quadratic_grads(&store, id);
            opt.step(&mut store, &mut grads, 0.05);
        }
        assert!(store.value(id).max_abs() < 1e-2, "did not converge: {:?}", store.value(id));
        assert_eq!(opt.steps(), 400);
    }

    #[test]
    fn weight_decay_shrinks_unused_gradient_free_weights_only_via_participation() {
        // A parameter with zero gradient is untouched — decay is only
        // applied to participating parameters (PyTorch semantics).
        let mut store = ParamStore::new();
        let used = store.add("used", Matrix::full(1, 1, 1.0));
        let unused = store.add("unused", Matrix::full(1, 1, 1.0));
        let mut opt = AdamW::new(0.1);
        let mut grads = quadratic_grads(&store, used);
        opt.step(&mut store, &mut grads, 0.01);
        assert!(store.value(used)[(0, 0)] < 1.0);
        assert_eq!(store.value(unused)[(0, 0)], 1.0);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::full(1, 4, 1000.0));
        let mut opt = AdamW::new(0.0);
        opt.clip_norm = Some(1.0);
        let mut grads = quadratic_grads(&store, id);
        let norm_before = grads.global_norm();
        assert!(norm_before > 1.0);
        opt.step(&mut store, &mut grads, 0.1);
        assert!(grads.global_norm() <= 1.0 + 1e-4);
    }

    #[test]
    fn state_round_trip_resumes_identical_trajectory() {
        // Straight run: 10 steps. Resumed run: 6 steps, serialize/restore,
        // 4 more. The weights must match bit-for-bit — the restored step
        // counter and moments reproduce the exact bias correction.
        let straight = || {
            let mut store = ParamStore::new();
            let id = store.add("w", Matrix::from_rows(&[&[3.0, -2.0, 0.5]]));
            let mut opt = AdamW::new(0.02);
            for _ in 0..10 {
                let mut grads = quadratic_grads(&store, id);
                opt.step(&mut store, &mut grads, 0.05);
            }
            store.value(id).clone()
        };
        let resumed = || {
            let mut store = ParamStore::new();
            let id = store.add("w", Matrix::from_rows(&[&[3.0, -2.0, 0.5]]));
            let mut opt = AdamW::new(0.02);
            for _ in 0..6 {
                let mut grads = quadratic_grads(&store, id);
                opt.step(&mut store, &mut grads, 0.05);
            }
            let text = opt.state_to_json_string();
            let mut opt2 = AdamW::new(0.9); // deliberately wrong hyper-params
            opt2.clip_norm = None;
            opt2.restore_state(&Json::parse(&text).expect("parse"), &store).expect("restore");
            assert_eq!(opt2.steps(), 6);
            for _ in 0..4 {
                let mut grads = quadratic_grads(&store, id);
                opt2.step(&mut store, &mut grads, 0.05);
            }
            store.value(id).clone()
        };
        assert_eq!(straight(), resumed());
    }

    #[test]
    fn restore_rejects_bad_state_without_mutating() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::from_rows(&[&[1.0, 2.0]]));
        let mut opt = AdamW::new(0.01);
        let mut grads = quadratic_grads(&store, id);
        opt.step(&mut store, &mut grads, 0.02);
        let good = opt.state_to_json_string();

        // Out-of-range parameter index.
        let bad = good.replace("\"param\":0", "\"param\":7");
        let err = opt.restore_state(&Json::parse(&bad).expect("parse"), &store).expect_err("accepted");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Shape mismatch: moments are 1x2, lie about cols.
        let bad = good.replace("\"cols\":2", "\"cols\":3");
        assert!(opt.restore_state(&Json::parse(&bad).expect("parse"), &store).is_err());
        // The failed restores left the optimizer untouched.
        assert_eq!(opt.state_to_json_string(), good);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let run = || {
            let mut store = ParamStore::new();
            let id = store.add("w", Matrix::from_rows(&[&[1.0, 2.0]]));
            let mut opt = AdamW::new(0.01);
            for _ in 0..10 {
                let mut grads = quadratic_grads(&store, id);
                opt.step(&mut store, &mut grads, 0.02);
            }
            store.value(id).clone()
        };
        assert_eq!(run(), run());
    }
}
