//! Parameter-store checkpointing: save/load all weights as JSON.
//!
//! The format is deliberately simple and self-describing — one record per
//! parameter with name, shape, and row-major data — so checkpoints stay
//! inspectable and diff-able. Loading validates that the store layout
//! (count, order, shapes) matches; names are informative only.
//!
//! # The `f32` round-trip guarantee
//!
//! Weights reload **bit-exactly**. Every finite `f32` (including signed
//! zero and subnormals) is written with Rust's shortest-round-trip
//! `Display`, parsed back as `f64` (a lossless superset of `f32`), and
//! cast down — recovering the identical bit pattern. Non-finite values are
//! written as the literals `NaN` / `Infinity` / `-Infinity` (the
//! `desalign-util` JSON policy), so a diverged run's checkpoint says *NaN*
//! instead of silently corrupting. The single caveat: NaN *payload* bits
//! are not preserved — any NaN reloads as the canonical quiet NaN. No
//! trained weight depends on NaN payloads, and the guarantee is pinned by
//! the `json_round_trip_is_bit_exact_over_the_f32_space` test below and the
//! checkpoint property suite in `crates/nn/tests/proptest_checkpoint.rs`.
//!
//! This module also provides the serialization primitives the full
//! training checkpoint (`desalign-core::checkpoint`) builds on:
//! [`write_f32_json`], [`matrix_to_json_string`], and
//! [`matrix_from_json`].

use crate::{ParamId, ParamStore};
use desalign_tensor::Matrix;
use desalign_util::{FromJson, Json, JsonError};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Appends one `f32` to a JSON string under the workspace round-trip
/// policy: shortest `Display` for finite values, `NaN` / `Infinity` /
/// `-Infinity` literals otherwise.
pub fn write_f32_json(out: &mut String, x: f32) {
    if x.is_finite() {
        write!(out, "{x}").expect("string write");
    } else if x.is_nan() {
        out.push_str("NaN");
    } else if x > 0.0 {
        out.push_str("Infinity");
    } else {
        out.push_str("-Infinity");
    }
}

/// Serializes a matrix as `{"rows":r,"cols":c,"data":[...]}` with the
/// bit-exact float policy of [`write_f32_json`].
pub fn matrix_to_json_string(m: &Matrix) -> String {
    let mut out = String::with_capacity(32 + m.len() * 8);
    write!(out, "{{\"rows\":{},\"cols\":{},\"data\":[", m.rows(), m.cols()).expect("string write");
    for (j, &x) in m.as_slice().iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        write_f32_json(&mut out, x);
    }
    out.push_str("]}");
    out
}

/// Parses a matrix written with [`matrix_to_json_string`].
pub fn matrix_from_json(v: &Json) -> Result<Matrix, JsonError> {
    let rows: usize = v.field("rows")?;
    let cols: usize = v.field("cols")?;
    let data: Vec<f32> = v.field("data")?;
    if data.len() != rows * cols {
        return Err(JsonError::schema(format!("matrix {rows}x{cols} needs {} values, found {}", rows * cols, data.len())));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

impl ParamStore {
    /// Serializes every parameter as the JSON records array (the
    /// [`ParamStore::save_json`] file body).
    pub fn weights_to_json_string(&self) -> String {
        let mut out = String::from("[");
        for (i, id) in self.ids().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let v = self.value(id);
            write!(
                out,
                "{{\"name\":{},\"rows\":{},\"cols\":{},\"data\":[",
                json_escape(self.name(id)),
                v.rows(),
                v.cols()
            )
            .expect("string write");
            for (j, &x) in v.as_slice().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_f32_json(&mut out, x);
            }
            out.push_str("]}");
        }
        out.push(']');
        out
    }

    /// Saves every parameter to `path` as JSON.
    ///
    /// Note this is a plain (non-atomic) write, for inspectable
    /// weights-only exports; the crash-safe full training checkpoint
    /// lives in `desalign-core::checkpoint` and goes through
    /// `desalign_util::atomic_write`.
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.weights_to_json_string())
    }

    /// Loads a checkpoint saved with [`ParamStore::save_json`] into this
    /// store. See [`ParamStore::load_weights_json`] for the validation
    /// rules.
    pub fn load_json(&mut self, path: &Path) -> io::Result<()> {
        let text = fs::read_to_string(path)?;
        let doc = Json::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.load_weights_json(&doc)
    }

    /// Loads a parsed weights document (the array form written by
    /// [`ParamStore::weights_to_json_string`]) into this store. The store
    /// must already have the same layout (same number of parameters, same
    /// shapes, in the same order) — build the model first, then restore.
    /// The store is untouched on error.
    pub fn load_weights_json(&mut self, doc: &Json) -> io::Result<()> {
        let records: Vec<CheckpointRecord> =
            Vec::from_json(doc).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let ids: Vec<ParamId> = self.ids().collect();
        if records.len() != ids.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint has {} parameters, store has {}", records.len(), ids.len()),
            ));
        }
        // Validate everything before mutating anything.
        for (rec, &id) in records.iter().zip(&ids) {
            let v = self.value(id);
            if (rec.rows, rec.cols) != (v.rows(), v.cols()) || rec.data.len() != rec.rows * rec.cols {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "parameter '{}' shape mismatch: checkpoint {}x{} ({} values) vs store {}x{}",
                        rec.name,
                        rec.rows,
                        rec.cols,
                        rec.data.len(),
                        v.rows(),
                        v.cols()
                    ),
                ));
            }
        }
        for (rec, &id) in records.iter().zip(&ids) {
            *self.value_mut(id) = Matrix::from_vec(rec.rows, rec.cols, rec.data.clone());
        }
        Ok(())
    }
}

struct CheckpointRecord {
    name: String,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl FromJson for CheckpointRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CheckpointRecord {
            name: v.field("name")?,
            rows: v.field("rows")?,
            cols: v.field("cols")?,
            data: v.field("data")?,
        })
    }
}

fn json_escape(s: &str) -> String {
    Json::Str(s.to_string()).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_tensor::{normal_matrix, rng_from_seed};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("desalign-ckpt-tests");
        std::fs::create_dir_all(&dir).expect("tempdir");
        dir.join(name)
    }

    #[test]
    fn round_trip_preserves_all_weights() {
        let mut rng = rng_from_seed(1);
        let mut store = ParamStore::new();
        let a = store.add("layer.w", normal_matrix(&mut rng, 3, 4, 0.0, 1.0));
        let b = store.add("layer.b", normal_matrix(&mut rng, 1, 4, 0.0, 1.0));
        let path = tmp("roundtrip.json");
        store.save_json(&path).expect("save");

        let mut other = ParamStore::new();
        other.add("layer.w", Matrix::zeros(3, 4));
        other.add("layer.b", Matrix::zeros(1, 4));
        other.load_json(&path).expect("load");
        assert_eq!(other.value(ParamId::test_id(0)), store.value(a));
        assert_eq!(other.value(ParamId::test_id(1)), store.value(b));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::zeros(2, 2));
        let path = tmp("mismatch.json");
        store.save_json(&path).expect("save");
        let mut other = ParamStore::new();
        other.add("w", Matrix::zeros(3, 2));
        assert!(other.load_json(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_count_mismatch() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::zeros(1, 1));
        let path = tmp("count.json");
        store.save_json(&path).expect("save");
        let mut other = ParamStore::new();
        other.add("w", Matrix::zeros(1, 1));
        other.add("extra", Matrix::zeros(1, 1));
        assert!(other.load_json(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trip_handles_hostile_names_and_non_finite_floats() {
        // Names exercising every escaping path: quotes, backslashes,
        // control characters, and non-ASCII; data exercising the full f32
        // range including non-finite values (a diverged run's checkpoint
        // must reload bit-faithfully, not silently corrupt).
        let mut store = ParamStore::new();
        store.add("q\"uote", Matrix::full(1, 1, f32::NAN));
        store.add("back\\slash\\", Matrix::full(1, 2, f32::INFINITY));
        store.add("ctrl\n\t\r\u{0}\u{7}", Matrix::full(2, 1, f32::NEG_INFINITY));
        store.add("unicode é🦀", Matrix::from_vec(1, 4, vec![f32::MIN_POSITIVE, -0.0, f32::MAX, 1e-40]));
        let path = tmp("hostile.json");
        store.save_json(&path).expect("save");

        let mut other = ParamStore::new();
        other.add("a", Matrix::zeros(1, 1));
        other.add("b", Matrix::zeros(1, 2));
        other.add("c", Matrix::zeros(2, 1));
        other.add("d", Matrix::zeros(1, 4));
        other.load_json(&path).expect("load");
        assert!(other.value(ParamId::test_id(0))[(0, 0)].is_nan());
        assert_eq!(other.value(ParamId::test_id(1))[(0, 1)], f32::INFINITY);
        assert_eq!(other.value(ParamId::test_id(2))[(1, 0)], f32::NEG_INFINITY);
        let d = other.value(ParamId::test_id(3));
        assert_eq!(d.as_slice(), &[f32::MIN_POSITIVE, -0.0, f32::MAX, 1e-40]);
        assert_eq!(d[(0, 1)].to_bits(), (-0.0f32).to_bits(), "signed zero must survive");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_round_trip_is_bit_exact_over_the_f32_space() {
        // Random bit patterns across the whole f32 space, plus the edge
        // values. Every finite value must reload with the identical bit
        // pattern; NaNs must reload as NaN (canonical payload is allowed).
        let mut rng = rng_from_seed(0xF32B_1753);
        let mut values: Vec<f32> =
            (0..512).map(|_| f32::from_bits(rng.next_u64() as u32)).collect();
        values.extend([
            0.0,
            -0.0,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            f32::MAX,
            f32::MIN,
            1e-45, // smallest subnormal
            f32::EPSILON,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
        ]);
        let n = values.len();
        let mut store = ParamStore::new();
        store.add("sweep", Matrix::from_vec(1, n, values.clone()));
        let path = tmp("bitexact.json");
        store.save_json(&path).expect("save");
        let mut other = ParamStore::new();
        other.add("sweep", Matrix::zeros(1, n));
        other.load_json(&path).expect("load");
        let got = other.value(ParamId::test_id(0)).as_slice().to_vec();
        for (i, (&want, &back)) in values.iter().zip(&got).enumerate() {
            if want.is_nan() {
                assert!(back.is_nan(), "value {i}: NaN became {back}");
            } else {
                assert_eq!(
                    want.to_bits(),
                    back.to_bits(),
                    "value {i}: {want} ({:#010x}) reloaded as {back} ({:#010x})",
                    want.to_bits(),
                    back.to_bits()
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_json_helpers_round_trip() {
        let m = Matrix::from_vec(2, 3, vec![1.5, -0.0, f32::NAN, f32::INFINITY, 3.25e-12, -7.0]);
        let text = matrix_to_json_string(&m);
        let doc = Json::parse(&text).expect("parse");
        let back = matrix_from_json(&doc).expect("decode");
        assert_eq!((back.rows(), back.cols()), (2, 3));
        for (&a, &b) in m.as_slice().iter().zip(back.as_slice()) {
            if a.is_nan() {
                assert!(b.is_nan());
            } else {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Length mismatch is rejected.
        let bad = Json::parse("{\"rows\":2,\"cols\":3,\"data\":[1,2]}").expect("parse");
        assert!(matrix_from_json(&bad).is_err());
    }

    #[test]
    fn names_with_quotes_are_escaped() {
        let mut store = ParamStore::new();
        store.add("weird \"name\"", Matrix::full(1, 1, 2.5));
        let path = tmp("escape.json");
        store.save_json(&path).expect("save");
        let mut other = ParamStore::new();
        other.add("anything", Matrix::zeros(1, 1));
        other.load_json(&path).expect("load");
        assert_eq!(other.value(ParamId::test_id(0))[(0, 0)], 2.5);
        std::fs::remove_file(&path).ok();
    }
}
