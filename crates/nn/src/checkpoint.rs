//! Parameter-store checkpointing: save/load all weights as JSON.
//!
//! The format is deliberately simple and self-describing — one record per
//! parameter with name, shape, and row-major data — so checkpoints stay
//! inspectable and diff-able. Loading validates that the store layout
//! (count, order, shapes) matches; names are informative only.

use crate::{ParamId, ParamStore};
use desalign_tensor::Matrix;
use desalign_util::{FromJson, Json, JsonError};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

impl ParamStore {
    /// Saves every parameter to `path` as JSON.
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        let mut out = String::from("[");
        for (i, id) in self.ids().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let v = self.value(id);
            write!(
                out,
                "{{\"name\":{},\"rows\":{},\"cols\":{},\"data\":[",
                json_escape(self.name(id)),
                v.rows(),
                v.cols()
            )
            .expect("string write");
            for (j, &x) in v.as_slice().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                if x.is_finite() {
                    write!(out, "{x}").expect("string write");
                } else if x.is_nan() {
                    out.push_str("NaN");
                } else if x > 0.0 {
                    out.push_str("Infinity");
                } else {
                    out.push_str("-Infinity");
                }
            }
            out.push_str("]}");
        }
        out.push(']');
        fs::write(path, out)
    }

    /// Loads a checkpoint saved with [`ParamStore::save_json`] into this
    /// store. The store must already have the same layout (same number of
    /// parameters, same shapes, in the same order) — build the model first,
    /// then restore.
    pub fn load_json(&mut self, path: &Path) -> io::Result<()> {
        let text = fs::read_to_string(path)?;
        let doc = Json::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let records: Vec<CheckpointRecord> =
            Vec::from_json(&doc).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let ids: Vec<ParamId> = self.ids().collect();
        if records.len() != ids.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint has {} parameters, store has {}", records.len(), ids.len()),
            ));
        }
        // Validate everything before mutating anything.
        for (rec, &id) in records.iter().zip(&ids) {
            let v = self.value(id);
            if (rec.rows, rec.cols) != (v.rows(), v.cols()) || rec.data.len() != rec.rows * rec.cols {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "parameter '{}' shape mismatch: checkpoint {}x{} ({} values) vs store {}x{}",
                        rec.name,
                        rec.rows,
                        rec.cols,
                        rec.data.len(),
                        v.rows(),
                        v.cols()
                    ),
                ));
            }
        }
        for (rec, &id) in records.iter().zip(&ids) {
            *self.value_mut(id) = Matrix::from_vec(rec.rows, rec.cols, rec.data.clone());
        }
        Ok(())
    }
}

struct CheckpointRecord {
    name: String,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl FromJson for CheckpointRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CheckpointRecord {
            name: v.field("name")?,
            rows: v.field("rows")?,
            cols: v.field("cols")?,
            data: v.field("data")?,
        })
    }
}

fn json_escape(s: &str) -> String {
    Json::Str(s.to_string()).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_tensor::{normal_matrix, rng_from_seed};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("desalign-ckpt-tests");
        std::fs::create_dir_all(&dir).expect("tempdir");
        dir.join(name)
    }

    #[test]
    fn round_trip_preserves_all_weights() {
        let mut rng = rng_from_seed(1);
        let mut store = ParamStore::new();
        let a = store.add("layer.w", normal_matrix(&mut rng, 3, 4, 0.0, 1.0));
        let b = store.add("layer.b", normal_matrix(&mut rng, 1, 4, 0.0, 1.0));
        let path = tmp("roundtrip.json");
        store.save_json(&path).expect("save");

        let mut other = ParamStore::new();
        other.add("layer.w", Matrix::zeros(3, 4));
        other.add("layer.b", Matrix::zeros(1, 4));
        other.load_json(&path).expect("load");
        assert_eq!(other.value(ParamId::test_id(0)), store.value(a));
        assert_eq!(other.value(ParamId::test_id(1)), store.value(b));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::zeros(2, 2));
        let path = tmp("mismatch.json");
        store.save_json(&path).expect("save");
        let mut other = ParamStore::new();
        other.add("w", Matrix::zeros(3, 2));
        assert!(other.load_json(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_count_mismatch() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::zeros(1, 1));
        let path = tmp("count.json");
        store.save_json(&path).expect("save");
        let mut other = ParamStore::new();
        other.add("w", Matrix::zeros(1, 1));
        other.add("extra", Matrix::zeros(1, 1));
        assert!(other.load_json(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trip_handles_hostile_names_and_non_finite_floats() {
        // Names exercising every escaping path: quotes, backslashes,
        // control characters, and non-ASCII; data exercising the full f32
        // range including non-finite values (a diverged run's checkpoint
        // must reload bit-faithfully, not silently corrupt).
        let mut store = ParamStore::new();
        store.add("q\"uote", Matrix::full(1, 1, f32::NAN));
        store.add("back\\slash\\", Matrix::full(1, 2, f32::INFINITY));
        store.add("ctrl\n\t\r\u{0}\u{7}", Matrix::full(2, 1, f32::NEG_INFINITY));
        store.add("unicode é🦀", Matrix::from_vec(1, 4, vec![f32::MIN_POSITIVE, -0.0, f32::MAX, 1e-40]));
        let path = tmp("hostile.json");
        store.save_json(&path).expect("save");

        let mut other = ParamStore::new();
        other.add("a", Matrix::zeros(1, 1));
        other.add("b", Matrix::zeros(1, 2));
        other.add("c", Matrix::zeros(2, 1));
        other.add("d", Matrix::zeros(1, 4));
        other.load_json(&path).expect("load");
        assert!(other.value(ParamId::test_id(0))[(0, 0)].is_nan());
        assert_eq!(other.value(ParamId::test_id(1))[(0, 1)], f32::INFINITY);
        assert_eq!(other.value(ParamId::test_id(2))[(1, 0)], f32::NEG_INFINITY);
        let d = other.value(ParamId::test_id(3));
        assert_eq!(d.as_slice(), &[f32::MIN_POSITIVE, -0.0, f32::MAX, 1e-40]);
        assert_eq!(d[(0, 1)].to_bits(), (-0.0f32).to_bits(), "signed zero must survive");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn names_with_quotes_are_escaped() {
        let mut store = ParamStore::new();
        store.add("weird \"name\"", Matrix::full(1, 1, 2.5));
        let path = tmp("escape.json");
        store.save_json(&path).expect("save");
        let mut other = ParamStore::new();
        other.add("anything", Matrix::zeros(1, 1));
        other.load_json(&path).expect("load");
        assert_eq!(other.value(ParamId::test_id(0))[(0, 0)], 2.5);
        std::fs::remove_file(&path).ok();
    }
}
