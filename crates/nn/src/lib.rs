//! Neural-network building blocks for DESAlign.
//!
//! Layers are thin structs holding [`ParamId`]s into a [`ParamStore`]; a
//! forward pass binds parameters onto a fresh autodiff [`Session`] each
//! step. This mirrors the PyTorch module/optimizer split the paper's
//! implementation relies on:
//!
//! - [`Linear`] / [`DiagonalLinear`] — the per-modality FC layers (Eq. 8)
//!   and the diagonal `W_g` of the structure branch (Eq. 7);
//! - [`GatLayer`] / [`GatEncoder`] — multi-head Graph Attention (Veličković
//!   et al.) with the two-layer, two-head configuration of §IV-A;
//! - [`CrossModalAttention`] — the Cross-modal Attention Weighted (CAW)
//!   block of Eq. 9–13, including the modal-level confidence weights `w̃^m`;
//! - [`AdamW`] — decoupled weight decay Adam (β₁ = 0.9, β₂ = 0.999), with
//!   global-norm gradient clipping;
//! - [`CosineWarmup`] — the 15 %-warmup cosine LR schedule of §V-A;
//! - checkpointing: [`ParamStore::save_json`] / [`ParamStore::load_json`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attention;
pub mod checkpoint;
mod gat;
mod linear;
mod module;
mod optim;
mod schedule;

pub use attention::{CawOutput, CrossModalAttention};
pub use checkpoint::{matrix_from_json, matrix_to_json_string, write_f32_json};
pub use gat::{GatEncoder, GatLayer, WeightKind};
pub use linear::{DiagonalLinear, Linear};
pub use desalign_autodiff::{shared_workspace, SharedWorkspace, Workspace, WorkspaceStats};
pub use module::{Gradients, ParamId, ParamStore, Session};
pub use optim::AdamW;
pub use schedule::CosineWarmup;
