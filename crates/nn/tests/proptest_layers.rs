//! Property tests for the NN layers: shape contracts, attention
//! distributions, optimizer behaviour over random inputs.

use desalign_graph::UndirectedGraph;
use desalign_nn::{AdamW, CosineWarmup, CrossModalAttention, GatLayer, Linear, ParamStore, Session, WeightKind};
use desalign_tensor::rng_from_seed;
use desalign_testkit::{check, ensure, ensure_eq, gen};
use std::rc::Rc;

const CASES: u64 = 24;

#[test]
fn linear_shape_contract() {
    check(
        "linear_shape_contract",
        CASES,
        |rng| (gen::matrix(rng, 5, 3, -2.0, 2.0), rng.gen_range(0..1000u64)),
        |(x, seed)| {
            let mut store = ParamStore::new();
            let mut rng = rng_from_seed(*seed);
            let layer = Linear::new(&mut store, &mut rng, "fc", 3, 7, true);
            let mut sess = Session::new(&store);
            let input = sess.input(x.clone());
            let y = layer.forward(&mut sess, input);
            ensure_eq!(sess.tape.value(y).shape(), (5, 7));
            ensure!(sess.tape.value(y).all_finite());
            Ok(())
        },
    );
}

#[test]
fn gat_attention_outputs_stay_in_convex_hull() {
    check(
        "gat_attention_outputs_stay_in_convex_hull",
        CASES,
        |rng| (gen::matrix(rng, 6, 1, -2.0, 2.0), rng.gen_range(0..1000u64)),
        |(x, seed)| {
            // With identity diagonal weights, every output coordinate is a
            // convex combination of input features.
            let g = UndirectedGraph::new(6, (0..6).map(|i| (i, (i + 1) % 6)));
            let (src, dst) = g.message_edges();
            let (src, dst) = (Rc::new(src), Rc::new(dst));
            let mut store = ParamStore::new();
            let mut rng = rng_from_seed(*seed);
            let layer = GatLayer::new(&mut store, &mut rng, "g", 1, 1, 1, WeightKind::Diagonal);
            // Force the diagonal to exactly 1.
            let diag_id = store.ids().next().expect("diag param");
            store.value_mut(diag_id).as_mut_slice()[0] = 1.0;
            let lo = x.as_slice().iter().copied().fold(f32::INFINITY, f32::min);
            let hi = x.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sess = Session::new(&store);
            let input = sess.input(x.clone());
            let y = layer.forward(&mut sess, input, &src, &dst);
            for i in 0..6 {
                let v = sess.tape.value(y)[(i, 0)];
                ensure!(v >= lo - 1e-4 && v <= hi + 1e-4, "row {i} = {v} outside [{lo}, {hi}]");
            }
            Ok(())
        },
    );
}

#[test]
fn caw_confidences_form_distributions() {
    check(
        "caw_confidences_form_distributions",
        CASES,
        |rng| (rng.gen_range(0..1000u64), rng.gen_range(2..6usize)),
        |&(seed, n)| {
            let mut store = ParamStore::new();
            let mut rng = rng_from_seed(seed);
            let caw = CrossModalAttention::new(&mut store, &mut rng, "caw", 3, 8, 2, 16);
            let mut sess = Session::new(&store);
            let inputs: Vec<_> = (0..3)
                .map(|k| {
                    let m = desalign_tensor::normal_matrix(&mut rng, n, 8, k as f32 * 0.1, 1.0);
                    sess.input(m)
                })
                .collect();
            let out = caw.forward(&mut sess, &inputs);
            for i in 0..n {
                let total: f32 = out.confidence.iter().map(|&c| sess.tape.value(c)[(i, 0)]).sum();
                ensure!((total - 1.0).abs() < 1e-4, "entity {i} confidences sum to {total}");
                for &c in &out.confidence {
                    let v = sess.tape.value(c)[(i, 0)];
                    ensure!((0.0..=1.0).contains(&v));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn adamw_step_is_bounded_by_lr() {
    check("adamw_step_is_bounded_by_lr", CASES, |rng| rng.gen_range(0..1000u64), |&seed| {
        // Adam's per-coordinate step magnitude is ≈ lr at the first step
        // (|m̂/√v̂| ≤ 1 for the first update, ignoring eps and decay).
        let mut rng = rng_from_seed(seed);
        let mut store = ParamStore::new();
        let init = desalign_tensor::normal_matrix(&mut rng, 2, 3, 0.0, 1.0);
        let id = store.add("w", init.clone());
        let mut opt = AdamW::new(0.0);
        let mut sess = Session::new(&store);
        let w = sess.param(id);
        let sq = sess.tape.square(w);
        let loss = sess.tape.sum_all(sq);
        let mut grads = sess.backward(loss);
        let lr = 0.01;
        opt.step(&mut store, &mut grads, lr);
        let delta = store.value(id).sub(&init);
        ensure!(delta.max_abs() <= lr * 1.01, "first-step delta {} exceeds lr", delta.max_abs());
        Ok(())
    });
}

#[test]
fn cosine_warmup_is_bounded_by_base_lr() {
    check(
        "cosine_warmup_is_bounded_by_base_lr",
        CASES,
        |rng| (rng.gen_range(0.001f32..1.0), rng.gen_range(10..200usize)),
        |&(base, total)| {
            let s = CosineWarmup::new(base, total, 0.15);
            for step in 0..total + 10 {
                let lr = s.lr(step);
                ensure!(lr >= 0.0 && lr <= base * 1.0001, "lr {lr} at step {step}");
            }
            Ok(())
        },
    );
}
