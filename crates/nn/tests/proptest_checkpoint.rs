//! Property test: a torn checkpoint write never corrupts training state.
//!
//! For a random `ParamStore` + `AdamW` pair (moments populated by real
//! optimizer steps), we save generation A atomically, then attempt to
//! overwrite it with generation B but kill the writer at a random byte
//! offset. The contract under test (docs/RELIABILITY.md):
//!
//! - the destination always verifies and parses — it holds either all of
//!   generation A or all of generation B, never a splice;
//! - restoring from whatever generation survived reproduces that
//!   generation's weights and optimizer trajectory bit-for-bit;
//! - a file damaged *at rest* (truncated under the reader) yields a clean
//!   `InvalidData` error — no panic;
//! - a malformed payload is rejected by `load_weights_json` without
//!   mutating the target store.

use desalign_nn::{AdamW, Gradients, ParamId, ParamStore, Session};
use desalign_testkit as testkit;
use desalign_testkit::fault::{kill_during_atomic_write, truncate_file};
use desalign_tensor::{rng_from_seed, Matrix, Rng64};
use desalign_util::{atomic_write, read_verified, temp_path, Json, FOOTER_LEN};

/// Builds a random store (1..=4 params of random small shapes) and runs a
/// random number of real AdamW steps so both moments are non-trivial.
fn random_state(rng: &mut Rng64) -> (ParamStore, AdamW, Vec<ParamId>) {
    let mut store = ParamStore::new();
    let n_params = rng.gen_range(1..5usize);
    let mut ids = Vec::new();
    for p in 0..n_params {
        let rows = rng.gen_range(1..4usize);
        let cols = rng.gen_range(1..5usize);
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = rng.gen_range(-2.0f32..2.0);
            }
        }
        ids.push(store.add(format!("p{p}"), m));
    }
    let mut opt = AdamW::new(0.01);
    for _ in 0..rng.gen_range(1..6usize) {
        let mut grads = sum_of_squares_grads(&store, &ids);
        opt.step(&mut store, &mut grads, 0.05);
    }
    (store, opt, ids)
}

/// loss = Σ over all params of Σ w² — touches every parameter.
fn sum_of_squares_grads(store: &ParamStore, ids: &[ParamId]) -> Gradients {
    let mut sess = Session::new(store);
    let mut total = None;
    for &id in ids {
        let w = sess.param(id);
        let sq = sess.tape.square(w);
        let s = sess.tape.sum_all(sq);
        total = Some(match total {
            None => s,
            Some(t) => sess.tape.add(t, s),
        });
    }
    sess.backward(total.expect("at least one param"))
}

/// One self-describing checkpoint payload: weights + optimizer state.
fn payload(store: &ParamStore, opt: &AdamW) -> Vec<u8> {
    format!("{{\"weights\":{},\"optimizer\":{}}}", store.weights_to_json_string(), opt.state_to_json_string()).into_bytes()
}

/// A store with the same parameter names and shapes but zeroed values —
/// the "fresh process" that a resume populates.
fn blank_architecture(arch: &ParamStore) -> ParamStore {
    let mut out = ParamStore::new();
    for id in arch.ids() {
        out.add(arch.name(id).to_string(), Matrix::zeros(arch.value(id).rows(), arch.value(id).cols()));
    }
    out
}

fn field<'a>(doc: &'a Json, key: &str) -> &'a Json {
    match doc {
        Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v).expect("field"),
        _ => panic!("checkpoint root is not an object"),
    }
}

/// Restores a (store, opt) pair from checkpoint bytes; `arch` supplies the
/// architecture (names/shapes), as the model constructor would on resume.
fn restore(bytes: &[u8], arch: &ParamStore) -> (ParamStore, AdamW) {
    let doc = Json::parse(std::str::from_utf8(bytes).expect("utf8")).expect("parse");
    let mut store = blank_architecture(arch);
    store.load_weights_json(field(&doc, "weights")).expect("weights restore");
    let mut opt = AdamW::new(0.0);
    opt.restore_state(field(&doc, "optimizer"), &store).expect("optimizer restore");
    (store, opt)
}

#[test]
fn torn_checkpoint_writes_never_corrupt_state() {
    let dir = std::env::temp_dir().join("desalign-nn-proptest");
    std::fs::create_dir_all(&dir).expect("tempdir");

    testkit::check(
        "torn_checkpoint_writes_never_corrupt_state",
        48,
        |rng| rng.next_u64(),
        |&word| {
            let mut rng = rng_from_seed(word);
            // Generation A, then extra steps on a rebuilt copy → generation B
            // of the same architecture.
            let (mut store, opt_a, ids) = random_state(&mut rng);
            let bytes_a = payload(&store, &opt_a);
            let mut opt_b = opt_a.clone();
            for _ in 0..rng.gen_range(1..4usize) {
                let mut grads = sum_of_squares_grads(&store, &ids);
                opt_b.step(&mut store, &mut grads, 0.05);
            }
            let bytes_b = payload(&store, &opt_b);

            let path = dir.join(format!("ckpt-{:04x}.json", word & 0xffff));
            std::fs::remove_file(&path).ok();
            std::fs::remove_file(temp_path(&path)).ok();
            atomic_write(&path, &bytes_a).expect("seed generation A");

            // Kill the replacement write at a random byte of the frame.
            let frame_len = bytes_b.len() + FOOTER_LEN;
            let kill_after = rng.gen_range(0..frame_len + 1);
            let completed = kill_during_atomic_write(&path, &bytes_b, kill_after).expect("simulated write");

            // 1. The destination always verifies — no splice, no tear.
            let on_disk = read_verified(&path).expect("destination must verify");
            let want_bytes = if completed { &bytes_b } else { &bytes_a };
            testkit::ensure_eq!(&on_disk, want_bytes);

            // 2. Restoring reproduces the surviving generation bit-for-bit
            //    (canonical serializations use the bit-exact f32 policy, so
            //    string equality is bit equality).
            let (restored_store, restored_opt) = restore(&on_disk, &store);
            testkit::ensure_eq!(payload(&restored_store, &restored_opt), *want_bytes);

            // 3. Damage at rest: any truncation below full length → clean
            //    InvalidData, never a panic or a half-parsed state.
            let full = std::fs::metadata(&path).expect("meta").len();
            let keep = rng.gen_range(0..full);
            truncate_file(&path, keep).expect("truncate");
            let err = read_verified(&path).expect_err("torn file must not verify");
            testkit::ensure_eq!(err.kind(), std::io::ErrorKind::InvalidData);

            std::fs::remove_file(&path).ok();
            std::fs::remove_file(temp_path(&path)).ok();
            Ok(())
        },
    );
}

/// Malformed-but-parseable payloads must fail *cleanly*: `load_weights_json`
/// returns an error without mutating the target store.
#[test]
fn malformed_payloads_fail_without_mutating() {
    let mut rng = rng_from_seed(testkit::case_seed("malformed_payloads_fail_without_mutating", 0));
    let (store, opt, _) = random_state(&mut rng);
    let good = payload(&store, &opt);
    let text = std::str::from_utf8(&good).expect("utf8");
    let weights_doc = Json::parse(text).expect("parse");
    let weights_text = field(&weights_doc, "weights").to_string();

    // Corruptions: truncations of the weights document plus a shape lie.
    let mut corrupt: Vec<String> = (1..weights_text.len()).step_by(11).map(|cut| weights_text[..cut].to_string()).collect();
    corrupt.push(weights_text.replace("\"rows\":", "\"rows\":9"));

    for (i, candidate) in corrupt.iter().enumerate() {
        let Ok(doc) = Json::parse(candidate) else { continue };
        let mut victim = blank_architecture(&store);
        let before = victim.weights_to_json_string();
        let outcome = victim.load_weights_json(&doc);
        assert!(outcome.is_err(), "corruption {i} was accepted");
        assert_eq!(victim.weights_to_json_string(), before, "corruption {i} mutated the store");
    }
}
