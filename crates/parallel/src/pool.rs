//! The persistent worker pool behind the `par_*` helpers.
//!
//! Workers are OS threads spawned **once** (lazily, on first parallel
//! region) and reused for the life of the process; the pool grows on demand
//! up to the requested thread count and never shrinks. Work arrives as
//! boxed closures on a shared FIFO guarded by a mutex + condvar — at the
//! granularity this workspace uses (whole-kernel row blocks, tens of
//! microseconds to milliseconds each) a lock-free deque would buy nothing.
//!
//! Two properties matter more than raw throughput here:
//!
//! 1. **Nested regions cannot deadlock.** A thread that waits for a batch
//!    to finish *helps*: it keeps draining the shared queue while it waits,
//!    so a parallel region launched from inside a worker task (e.g.
//!    `par_join` over two graphs whose propagation internally runs a
//!    parallel SpMM) always makes progress even when every worker is busy.
//! 2. **Panics propagate.** A panicking task is caught on the executing
//!    thread, the batch still completes, and the panic payload is re-thrown
//!    on the submitting thread — a failed assertion inside a parallelized
//!    kernel reports exactly as it would serially.
//!
//! # Safety
//!
//! This module contains the workspace's only `unsafe` code: the lifetime
//! erasure that lets persistent (`'static`) workers run closures borrowing
//! the caller's stack. The justification is the classic scoped-pool
//! argument, localized to [`Pool::submit`] / [`Batch::wait`]:
//!
//! - every submitted closure is tracked by a [`Batch`] latch whose counter
//!   is decremented only *after* the closure has returned (or unwound —
//!   the decrement happens on the executing thread after `catch_unwind`);
//! - [`Batch::wait`] does not return until the counter reaches zero, and
//!   the public entry points ([`Pool::execute`], `par_join`) always call
//!   `wait` before returning — including on the panic path;
//! - therefore no borrow captured by a task can be used after the stack
//!   frame that owns it is torn down, which is exactly the guarantee the
//!   `'static` bound would otherwise enforce.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use desalign_telemetry::Counter;

/// Pool-utilization counters, resolved once and cached so the hot paths
/// never take the telemetry registry lock. All updates are gated on
/// [`desalign_telemetry::enabled`], keeping the disabled cost at one
/// relaxed atomic load.
struct PoolCounters {
    /// Batches submitted to the shared queue.
    batches: Counter,
    /// Jobs enqueued through [`Pool::submit`].
    jobs: Counter,
    /// Jobs run inline on the caller (threads <= 1 or single-job batches).
    inline_jobs: Counter,
    /// Jobs a waiting thread stole while helping drain the queue.
    helped: Counter,
}

fn pool_counters() -> &'static PoolCounters {
    static COUNTERS: OnceLock<PoolCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| PoolCounters {
        batches: desalign_telemetry::counter("pool.batches"),
        jobs: desalign_telemetry::counter("pool.jobs"),
        inline_jobs: desalign_telemetry::counter("pool.inline_jobs"),
        helped: desalign_telemetry::counter("pool.helped"),
    })
}

/// A unit of work with the lifetime of the submitting stack frame.
pub(crate) type Job<'a> = Box<dyn FnOnce() + Send + 'a>;

type ErasedJob = Box<dyn FnOnce() + Send + 'static>;

/// Completion latch for one submitted batch of jobs.
pub(crate) struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    remaining: usize,
    /// First panic payload observed in this batch, if any.
    panic: Option<Box<dyn Any + Send>>,
}

impl Batch {
    fn new(remaining: usize) -> Arc<Self> {
        Arc::new(Batch { state: Mutex::new(BatchState { remaining, panic: None }), done: Condvar::new() })
    }

    /// Records one finished job (and its panic payload, if it unwound).
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().expect("batch lock");
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        } else {
            drop(panic); // keep the first payload; later ones are dropped
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Waits up to `timeout` for the batch to finish; true when done.
    fn wait_timeout(&self, timeout: Duration) -> bool {
        let st = self.state.lock().expect("batch lock");
        if st.remaining == 0 {
            return true;
        }
        let (st, _) = self.done.wait_timeout(st, timeout).expect("batch lock");
        st.remaining == 0
    }

    /// Blocks until every job in the batch has finished, helping the pool
    /// drain its queue in the meantime (this is what makes nested parallel
    /// regions deadlock-free), then re-throws the first captured panic.
    pub(crate) fn wait(self: &Arc<Self>, pool: &Pool) {
        loop {
            while let Some(task) = pool.try_pop() {
                if desalign_telemetry::enabled() {
                    pool_counters().helped.incr();
                }
                run_task(task);
            }
            // Short timed wait instead of a bare condvar wait: a nested
            // region may enqueue more work after we observed an empty
            // queue, and that work signals the *queue* condvar, not ours.
            if self.wait_timeout(Duration::from_micros(200)) {
                break;
            }
        }
        let payload = self.state.lock().expect("batch lock").panic.take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

struct Task {
    job: ErasedJob,
    batch: Arc<Batch>,
}

fn run_task(task: Task) {
    // AssertUnwindSafe: the job's captures are either `&`/`&mut` borrows of
    // the submitting frame (which `Batch::wait` keeps alive and re-throws
    // into) or owned values dropped with the job; no shared state survives
    // a broken invariant.
    let result = catch_unwind(AssertUnwindSafe(task.job));
    task.batch.complete(result.err());
}

/// The process-wide worker pool.
pub(crate) struct Pool {
    queue: Mutex<VecDeque<Task>>,
    ready: Condvar,
    /// Number of worker threads spawned so far (monotone).
    workers: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The lazily initialized global pool.
pub(crate) fn global() -> &'static Pool {
    POOL.get_or_init(|| Pool { queue: Mutex::new(VecDeque::new()), ready: Condvar::new(), workers: Mutex::new(0) })
}

impl Pool {
    fn try_pop(&self) -> Option<Task> {
        self.queue.lock().expect("pool queue lock").pop_front()
    }

    /// Grows the pool so that, counting the calling thread, `threads`
    /// threads can run concurrently. Workers are never torn down; across
    /// the whole process this spawns at most `max(threads) - 1` threads.
    fn ensure_workers(&self, threads: usize) {
        let want = threads.saturating_sub(1);
        let mut n = self.workers.lock().expect("pool worker lock");
        while *n < want {
            std::thread::Builder::new()
                .name(format!("desalign-par-{n}"))
                .spawn(move || worker_loop(global()))
                .expect("desalign-parallel: failed to spawn worker thread");
            *n += 1;
        }
        if desalign_telemetry::enabled() {
            desalign_telemetry::gauge("pool.workers").set(*n as f64);
        }
    }

    /// Enqueues a batch of jobs and returns its latch. The caller **must**
    /// call [`Batch::wait`] before any borrow captured by the jobs expires;
    /// the public wrappers in `lib.rs` uphold this unconditionally.
    pub(crate) fn submit<'a>(&self, jobs: Vec<Job<'a>>, threads: usize) -> Arc<Batch> {
        self.ensure_workers(threads);
        if desalign_telemetry::enabled() {
            let counters = pool_counters();
            counters.batches.incr();
            counters.jobs.add(jobs.len() as u64);
        }
        let batch = Batch::new(jobs.len());
        {
            let mut q = self.queue.lock().expect("pool queue lock");
            for job in jobs {
                // SAFETY: see the module-level comment. `Batch::wait` is
                // always reached before the submitting frame unwinds, and
                // it returns only after this job has run to completion, so
                // extending the closure's lifetime to 'static can never let
                // it observe a dead borrow.
                #[allow(unsafe_code)]
                let job: ErasedJob = unsafe { std::mem::transmute::<Job<'a>, ErasedJob>(job) };
                q.push_back(Task { job, batch: Arc::clone(&batch) });
            }
        }
        self.ready.notify_all();
        batch
    }

    /// Runs `jobs` to completion across up to `threads` threads (the caller
    /// participates). Panics from jobs are re-thrown here.
    pub(crate) fn execute<'a>(&self, jobs: Vec<Job<'a>>, threads: usize) {
        if threads <= 1 || jobs.len() <= 1 {
            if desalign_telemetry::enabled() {
                pool_counters().inline_jobs.add(jobs.len() as u64);
            }
            for job in jobs {
                job();
            }
            return;
        }
        let batch = self.submit(jobs, threads);
        batch.wait(self);
    }
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let task = {
            let mut q = pool.queue.lock().expect("pool queue lock");
            loop {
                if let Some(task) = q.pop_front() {
                    break task;
                }
                q = pool.ready.wait(q).expect("pool queue lock");
            }
        };
        run_task(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn execute_runs_every_job_and_blocks_until_done() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job> = (0..32)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Job
            })
            .collect();
        global().execute(jobs, 4);
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn single_thread_request_runs_inline() {
        // threads == 1 must never touch the queue: jobs run on the caller.
        let caller = std::thread::current().id();
        let mut ran_on = None;
        global().execute(vec![Box::new(|| ran_on = Some(std::thread::current().id()))], 1);
        assert_eq!(ran_on, Some(caller));
    }

    #[test]
    fn panic_in_job_propagates_with_payload() {
        let err = std::panic::catch_unwind(|| {
            let jobs: Vec<Job> = (0..4)
                .map(|i| {
                    Box::new(move || {
                        if i == 2 {
                            panic!("job {i} exploded");
                        }
                    }) as Job
                })
                .collect();
            global().execute(jobs, 3);
        })
        .expect_err("panic must propagate to the submitter");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("exploded"), "{msg}");
    }

    #[test]
    fn nested_submission_does_not_deadlock() {
        let total = AtomicUsize::new(0);
        let outer: Vec<Job> = (0..4)
            .map(|_| {
                Box::new(|| {
                    let inner: Vec<Job> = (0..4)
                        .map(|_| {
                            Box::new(|| {
                                total.fetch_add(1, Ordering::SeqCst);
                            }) as Job
                        })
                        .collect();
                    global().execute(inner, 3);
                }) as Job
            })
            .collect();
        global().execute(outer, 3);
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }
}
