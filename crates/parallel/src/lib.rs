//! Deterministic, zero-dependency parallelism for the DESAlign workspace.
//!
//! Every hot kernel in the workspace (dense matmul, SpMM, row-wise
//! normalization, ranking evaluation) is data-parallel over its **output
//! rows**: each output element is produced by one fully serial computation
//! that never mixes with another row's. This crate exploits that shape to
//! give parallel speedups with **bit-identical results at any thread
//! count** — the design centerpiece, relied on by the byte-reproducibility
//! guarantees the rest of the workspace makes:
//!
//! - [`par_rows`] partitions an output buffer into contiguous row blocks
//!   and runs a per-row closure on each. Because a row is computed by
//!   exactly one thread with its exact serial instruction sequence, the
//!   result cannot depend on the number of threads or the block layout.
//! - [`par_blocks`] handles reductions (dot products, `AᵀB` accumulated
//!   over the shared dimension): the caller fixes a block length that
//!   depends **only on the problem size** (see [`fixed_block_len`]), each
//!   block is reduced serially, and the per-block partials are merged in
//!   block order on one thread. The float summation tree is therefore a
//!   fixed function of the input shape — threads only decide *who* computes
//!   a node, never *what* the tree looks like.
//! - [`par_join`] runs two independent closures concurrently (e.g. source-
//!   and target-graph propagation).
//!
//! Thread count is `DESALIGN_THREADS` when set (`1` forces the serial
//! path), else the machine's available parallelism. [`with_threads`]
//! overrides it programmatically — the determinism property tests run every
//! kernel under 1, 2, and 7 threads and assert identical `f32` bit
//! patterns, which is safe to do from concurrently running tests precisely
//! because thread count can never change results.
//!
//! The worker pool is spawned once and reused; see `src/pool.rs` for the
//! deadlock-freedom and panic-propagation story, and for the one audited
//! `unsafe` block in the workspace (the scoped-lifetime erasure). When
//! telemetry is enabled (`DESALIGN_TELEMETRY=1`), the pool counts batches,
//! jobs, inline jobs, and help-while-wait steals, and each `par_*` helper
//! counts whether it took the serial or the parallel path — see
//! `docs/OBSERVABILITY.md`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod pool;

use pool::Job;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Region-level telemetry: how many `par_*` invocations took the serial
/// fast path vs dispatched to the pool. Cached handles so the gated hot
/// path pays one atomic load + one atomic add.
struct RegionCounters {
    serial: desalign_telemetry::Counter,
    parallel: desalign_telemetry::Counter,
}

fn region_counters() -> &'static RegionCounters {
    static COUNTERS: OnceLock<RegionCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| RegionCounters {
        serial: desalign_telemetry::counter("par.regions_serial"),
        parallel: desalign_telemetry::counter("par.regions_parallel"),
    })
}

fn count_region(parallel: bool) {
    if desalign_telemetry::enabled() {
        let c = region_counters();
        if parallel { c.parallel.incr() } else { c.serial.incr() }
    }
}

/// Upper bound on the number of fixed reduction blocks produced by
/// [`fixed_block_len`]. Bounding the block count bounds both the merge cost
/// and the memory held in per-block partials.
pub const MAX_REDUCTION_BLOCKS: usize = 64;

/// Minimum estimated scalar-op count before a helper bothers going
/// parallel; below this, dispatch overhead dominates and the serial path
/// (which produces the same bits) is used.
///
/// Retuned from the original 32 000 after `BENCH_kernels.json` showed
/// parallel dispatch *losing* to serial near the old threshold (matmul
/// n = 2000 ran 0.56× serial): boxing jobs, waking workers, and the
/// help-while-wait join cost tens of microseconds, while 32 000 scalar ops
/// of vectorized serial work finish in ~10 µs. Dispatch only pays once the
/// serial work dwarfs that fixed overhead, so the floor is now 400 000
/// estimated scalar ops (~100–400 µs serial). The kernel bench emits
/// `dispatch_calibration` rows straddling this value so the trade-off stays
/// a measured artifact; see `crates/bench/benches/kernels.rs`.
pub const PAR_MIN_COST: usize = 400_000;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static CONFIGURED: OnceLock<usize> = OnceLock::new();

/// The thread count configured for this process: `DESALIGN_THREADS` when
/// set to a positive integer, otherwise the machine's available
/// parallelism. Read once and cached.
pub fn configured_threads() -> usize {
    *CONFIGURED.get_or_init(|| {
        match std::env::var("DESALIGN_THREADS") {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => panic!("DESALIGN_THREADS must be a positive integer, got {s:?}"),
            },
            Err(_) => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        }
    })
}

/// The thread count the next parallel region will use: the active
/// [`set_thread_override`] value if any, else [`configured_threads`].
pub fn current_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => configured_threads(),
        n => n,
    }
}

/// Overrides the thread count process-wide (`None` restores the
/// environment-configured default). Intended for tests and benchmarks;
/// because results are thread-count independent, a racing override from a
/// concurrent test can affect timing but never values.
pub fn set_thread_override(threads: Option<usize>) {
    OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Runs `f` with the thread count overridden to `threads`, restoring the
/// previous override afterwards (also on panic).
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(OVERRIDE.swap(threads, Ordering::Relaxed));
    f()
}

/// The block length for a reduction over `n` items given a per-block
/// minimum: `max(min_block, ceil(n / MAX_REDUCTION_BLOCKS))`.
///
/// Depends only on the problem size — never on the thread count — which is
/// what keeps the float summation tree of [`par_blocks`]-based reductions
/// fixed across serial and parallel runs.
pub fn fixed_block_len(n: usize, min_block: usize) -> usize {
    min_block.max(n.div_ceil(MAX_REDUCTION_BLOCKS)).max(1)
}

/// Applies `f(row_index, row)` to every `row_width`-element row of `data`,
/// in parallel when `cost_hint` (estimated scalar ops for the whole call)
/// justifies it.
///
/// Each row is passed to `f` exactly once, as the same `&mut` slice it
/// would get in a serial loop — determinism by construction, since block
/// boundaries only decide scheduling.
///
/// # Panics
/// Panics if `row_width` is zero or does not divide `data.len()`.
pub fn par_rows<T, F>(data: &mut [T], row_width: usize, cost_hint: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_width > 0, "par_rows: row_width must be positive");
    assert_eq!(data.len() % row_width, 0, "par_rows: data length {} not a multiple of row width {row_width}", data.len());
    let rows = data.len() / row_width;
    let threads = current_threads().min(rows);
    if threads <= 1 || cost_hint < PAR_MIN_COST {
        count_region(false);
        for (i, row) in data.chunks_mut(row_width).enumerate() {
            f(i, row);
        }
        return;
    }
    count_region(true);
    // Over-partition 4× for load balance (CSR rows and ranking queries have
    // skewed per-row cost); the queue evens it out.
    let blocks = (threads * 4).min(rows);
    let rows_per_block = rows.div_ceil(blocks);
    let f = &f;
    let jobs: Vec<Job> = data
        .chunks_mut(rows_per_block * row_width)
        .enumerate()
        .map(|(b, chunk)| {
            let start = b * rows_per_block;
            Box::new(move || {
                for (r, row) in chunk.chunks_mut(row_width).enumerate() {
                    f(start + r, row);
                }
            }) as Job
        })
        .collect();
    pool::global().execute(jobs, threads);
}

/// Like [`par_rows`], but hands `f` **groups** of up to `rows_per_group`
/// consecutive rows at a time: `f(first_row, chunk)` where `chunk` holds
/// whole rows and every group except possibly the last has exactly
/// `rows_per_group` rows.
///
/// This is the register-tiling primitive: a matmul microkernel wants to
/// accumulate several output rows at once in registers, and the parallel
/// split must never cut through a group (a group is computed by exactly one
/// thread with its exact serial instruction sequence, so results stay
/// bit-identical at any thread count). The serial path produces the
/// identical group layout.
///
/// # Panics
/// Panics if `row_width` or `rows_per_group` is zero, or if `row_width`
/// does not divide `data.len()`.
pub fn par_row_groups<T, F>(data: &mut [T], row_width: usize, rows_per_group: usize, cost_hint: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_width > 0, "par_row_groups: row_width must be positive");
    assert!(rows_per_group > 0, "par_row_groups: rows_per_group must be positive");
    assert_eq!(
        data.len() % row_width,
        0,
        "par_row_groups: data length {} not a multiple of row width {row_width}",
        data.len()
    );
    let rows = data.len() / row_width;
    let groups = rows.div_ceil(rows_per_group.min(rows.max(1)));
    let group_len = rows_per_group * row_width;
    let threads = current_threads().min(groups);
    if threads <= 1 || cost_hint < PAR_MIN_COST {
        count_region(false);
        for (g, chunk) in data.chunks_mut(group_len).enumerate() {
            f(g * rows_per_group, chunk);
        }
        return;
    }
    count_region(true);
    // Jobs cover whole groups: the block size is a multiple of the group
    // stride, so group boundaries — and with them each group's serial
    // instruction sequence — are identical to the serial path.
    let blocks = (threads * 4).min(groups);
    let groups_per_block = groups.div_ceil(blocks);
    let f = &f;
    let jobs: Vec<Job> = data
        .chunks_mut(groups_per_block * group_len)
        .enumerate()
        .map(|(b, chunk)| {
            let start = b * groups_per_block * rows_per_group;
            Box::new(move || {
                for (g, group) in chunk.chunks_mut(group_len).enumerate() {
                    f(start + g * rows_per_group, group);
                }
            }) as Job
        })
        .collect();
    pool::global().execute(jobs, threads);
}

/// Splits `0..n` into consecutive blocks of `block_len` (the last may be
/// short) and maps `f(block_index, range)` over them, returning the results
/// **in block order**.
///
/// This is the reduction primitive: pass a [`fixed_block_len`] so the block
/// layout is thread-count independent, then merge the returned partials
/// serially in order. The serial path produces the identical block layout,
/// so bits match at any thread count.
///
/// # Panics
/// Panics if `block_len` is zero.
pub fn par_blocks<R, F>(n: usize, block_len: usize, cost_hint: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    assert!(block_len > 0, "par_blocks: block_len must be positive");
    let blocks = n.div_ceil(block_len);
    let range = |b: usize| b * block_len..((b + 1) * block_len).min(n);
    let threads = current_threads().min(blocks);
    if threads <= 1 || cost_hint < PAR_MIN_COST {
        count_region(false);
        return (0..blocks).map(|b| f(b, range(b))).collect();
    }
    count_region(true);
    let mut slots: Vec<Option<R>> = (0..blocks).map(|_| None).collect();
    {
        let f = &f;
        let jobs: Vec<Job> = slots
            .chunks_mut(1)
            .enumerate()
            .map(|(b, slot)| {
                Box::new(move || {
                    slot[0] = Some(f(b, range(b)));
                }) as Job
            })
            .collect();
        pool::global().execute(jobs, threads);
    }
    slots.into_iter().map(|s| s.expect("par_blocks: every block completes before execute returns")).collect()
}

/// Runs two independent closures, `b` on the pool and `a` on the calling
/// thread, and returns both results. Falls back to sequential `(a(), b())`
/// when only one thread is configured — same results either way, since the
/// closures are independent.
pub fn par_join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if current_threads() <= 1 {
        count_region(false);
        return (fa(), fb());
    }
    count_region(true);
    let mut rb: Option<B> = None;
    let pool = pool::global();
    let batch = {
        let rb = &mut rb;
        pool.submit(vec![Box::new(move || *rb = Some(fb())) as Job], 2)
    };
    // Run `a` here while `b` runs on a worker. If `a` panics we still must
    // wait out the batch before this frame (which `b` borrows) unwinds.
    let ra = std::panic::catch_unwind(std::panic::AssertUnwindSafe(fa));
    batch.wait(pool);
    let ra = match ra {
        Ok(ra) => ra,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    (ra, rb.expect("par_join: batch waited, so fb has completed"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_rows_matches_serial_loop() {
        let width = 8;
        let rows = 300;
        let mut parallel: Vec<f32> = vec![0.0; rows * width];
        let mut serial = parallel.clone();
        let fill = |i: usize, row: &mut [f32]| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 31 + j) as f32 * 0.5;
            }
        };
        for (i, row) in serial.chunks_mut(width).enumerate() {
            fill(i, row);
        }
        with_threads(5, || par_rows(&mut parallel, width, usize::MAX, fill));
        assert_eq!(parallel, serial);
    }

    #[test]
    fn par_rows_serial_when_cheap() {
        // Below the cost threshold nothing is dispatched; results identical.
        let mut data = vec![0u64; 16];
        with_threads(4, || par_rows(&mut data, 1, 10, |i, row| row[0] = i as u64));
        assert_eq!(data, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn par_row_groups_matches_serial_layout() {
        let width = 5;
        let rows = 103; // deliberately not a multiple of the group size
        let fill = |first: usize, chunk: &mut [u64]| {
            for (r, row) in chunk.chunks_mut(width).enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = ((first + r) * 1000 + j) as u64;
                }
            }
        };
        let mut serial = vec![0u64; rows * width];
        for (g, chunk) in serial.chunks_mut(4 * width).enumerate() {
            fill(g * 4, chunk);
        }
        for threads in [1, 2, 7] {
            let mut parallel = vec![0u64; rows * width];
            with_threads(threads, || par_row_groups(&mut parallel, width, 4, usize::MAX, fill));
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_row_groups_group_sizes() {
        // Every group except the last has exactly `rows_per_group` rows.
        let mut data = vec![0u8; 10];
        let seen = std::sync::Mutex::new(Vec::new());
        with_threads(1, || {
            par_row_groups(&mut data, 1, 4, 0, |first, chunk| {
                seen.lock().unwrap().push((first, chunk.len()));
            });
        });
        assert_eq!(*seen.lock().unwrap(), vec![(0, 4), (4, 4), (8, 2)]);
    }

    #[test]
    fn par_blocks_returns_results_in_block_order() {
        let got = with_threads(6, || par_blocks(103, 10, usize::MAX, |b, r| (b, r.start, r.end)));
        assert_eq!(got.len(), 11);
        for (b, (bb, s, e)) in got.iter().enumerate() {
            assert_eq!(*bb, b);
            assert_eq!(*s, b * 10);
            assert_eq!(*e, (b * 10 + 10).min(103));
        }
    }

    #[test]
    fn fixed_block_len_ignores_thread_count() {
        let before = fixed_block_len(100_000, 4096);
        let after = with_threads(7, || fixed_block_len(100_000, 4096));
        assert_eq!(before, after);
        // Block count stays bounded.
        assert!(100_000usize.div_ceil(fixed_block_len(100_000, 1)) <= MAX_REDUCTION_BLOCKS);
        assert_eq!(fixed_block_len(10, 4096), 4096);
    }

    #[test]
    fn par_join_returns_both_results() {
        let (a, b) = with_threads(4, || par_join(|| 2 + 2, || "done".to_string()));
        assert_eq!(a, 4);
        assert_eq!(b, "done");
    }

    #[test]
    fn par_join_nested_inside_par_rows() {
        let mut out = vec![0usize; 64];
        with_threads(4, || {
            par_rows(&mut out, 1, usize::MAX, |i, slot| {
                let (a, b) = par_join(|| i * 2, || i * 3);
                slot[0] = a + b;
            });
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 5);
        }
    }

    #[test]
    fn override_restores_on_exit_and_panic() {
        set_thread_override(None);
        let base = current_threads();
        with_threads(3, || assert_eq!(current_threads(), 3));
        assert_eq!(current_threads(), base);
        let _ = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert_eq!(current_threads(), base);
    }

    #[test]
    fn panic_inside_par_rows_propagates() {
        let err = std::panic::catch_unwind(|| {
            let mut data = vec![0f32; 1000];
            with_threads(4, || {
                par_rows(&mut data, 1, usize::MAX, |i, _| {
                    assert!(i != 777, "row 777 is cursed");
                })
            });
        })
        .expect_err("panic must reach the caller");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| err.downcast_ref::<String>().map(String::as_str))
            .expect("string payload");
        assert!(msg.contains("cursed"), "{msg}");
    }
}
