//! Telemetry counters under real pool concurrency: counter updates from
//! many worker threads must never lose increments, and the pool's own
//! utilization counters must observe submitted work.

use desalign_parallel::{par_rows, with_threads, PAR_MIN_COST};

#[test]
fn counter_is_atomic_under_pool_threads() {
    desalign_telemetry::set_enabled(Some(true));
    let c = desalign_telemetry::counter("test.par_increments");
    let before = c.get();
    let rows = 4096;
    let mut data = vec![0u8; rows];
    with_threads(8, || {
        // cost above PAR_MIN_COST so the region really dispatches to the
        // pool; every row adds exactly once from whichever thread runs it.
        par_rows(&mut data, 1, PAR_MIN_COST * 2, |_, _| {
            c.incr();
        });
    });
    assert_eq!(
        c.get() - before,
        rows as u64,
        "increments lost under concurrency — counter updates must be atomic"
    );
}

#[test]
fn pool_utilization_counters_observe_work() {
    desalign_telemetry::set_enabled(Some(true));
    let regions = desalign_telemetry::counter("par.regions_parallel");
    let jobs = desalign_telemetry::counter("pool.jobs");
    let batches = desalign_telemetry::counter("pool.batches");
    let (r0, j0, b0) = (regions.get(), jobs.get(), batches.get());
    let mut data = vec![0u8; 1024];
    with_threads(4, || {
        par_rows(&mut data, 1, PAR_MIN_COST * 2, |i, row| row[0] = (i % 251) as u8);
    });
    // `>=` not `==`: other tests in this binary (and their pool traffic) may
    // run concurrently and bump the shared counters too.
    assert!(regions.get() >= r0 + 1, "parallel region not counted");
    assert!(batches.get() >= b0 + 1, "batch not counted");
    assert!(jobs.get() >= j0 + 2, "jobs not counted (expected a multi-job batch)");
    assert_eq!(data[5], 5);
}

#[test]
fn serial_region_counter_ticks_on_cheap_work() {
    desalign_telemetry::set_enabled(Some(true));
    let serial = desalign_telemetry::counter("par.regions_serial");
    let before = serial.get();
    let mut data = vec![0u8; 8];
    // Cost below PAR_MIN_COST: must take the serial fast path.
    par_rows(&mut data, 1, 8, |i, row| row[0] = i as u8);
    assert!(serial.get() >= before + 1, "serial region not counted");
}
