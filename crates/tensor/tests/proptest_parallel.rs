//! Determinism-under-parallelism properties: every parallelized dense
//! kernel must produce **byte-identical** results at 1, 2, and 7 threads.
//!
//! Input sizes are chosen to exceed `desalign_parallel::PAR_MIN_COST`, so
//! the multi-thread runs genuinely take the parallel path (and, for the
//! blocked reductions, genuinely split into multiple blocks) rather than
//! falling back to the serial loop.

use desalign_parallel::with_threads;
use desalign_tensor::{par_dot, Matrix, Rng64};
use desalign_testkit::{check, ensure, gen};

const CASES: u64 = 8;
const THREADS: [usize; 3] = [1, 2, 7];

fn matrix(rng: &mut Rng64, rows: usize, cols: usize) -> Matrix {
    gen::matrix(rng, rows, cols, -10.0, 10.0)
}

/// Zeroes roughly half the entries so the sparsity-skip paths run too.
fn sparsified(m: &Matrix) -> Matrix {
    m.map(|v| if v.abs() < 5.0 { 0.0 } else { v })
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn identical_matrix_bits(name: &str, f: impl Fn() -> Matrix) -> Result<(), String> {
    let reference = with_threads(THREADS[0], &f);
    for &t in &THREADS[1..] {
        let got = with_threads(t, &f);
        ensure!(bits(&got) == bits(&reference), "{name}: {t}-thread bits diverge from serial");
    }
    Ok(())
}

fn identical_scalar_bits(name: &str, f: impl Fn() -> f32) -> Result<(), String> {
    let reference = with_threads(THREADS[0], &f).to_bits();
    for &t in &THREADS[1..] {
        let got = with_threads(t, &f).to_bits();
        ensure!(got == reference, "{name}: {t}-thread bits {got:#x} vs serial {reference:#x}");
    }
    Ok(())
}

#[test]
fn matmul_is_thread_count_invariant() {
    check("matmul_is_thread_count_invariant", CASES, |rng| (matrix(rng, 48, 36), matrix(rng, 36, 40)), |(a, b)| {
        identical_matrix_bits("matmul", || a.matmul(b))
    });
}

#[test]
fn matmul_tn_is_thread_count_invariant() {
    // k = 600 splits into 3 fixed blocks of 256, so the ordered partial
    // merge is exercised, on a half-sparse left operand.
    check("matmul_tn_is_thread_count_invariant", CASES, |rng| (sparsified(&matrix(rng, 600, 20)), matrix(rng, 600, 24)), |(a, b)| {
        identical_matrix_bits("matmul_tn", || a.matmul_tn(b))
    });
}

#[test]
fn matmul_nt_is_thread_count_invariant() {
    check("matmul_nt_is_thread_count_invariant", CASES, |rng| (matrix(rng, 48, 36), matrix(rng, 40, 36)), |(a, b)| {
        identical_matrix_bits("matmul_nt", || a.matmul_nt(b))
    });
}

#[test]
fn par_dot_is_thread_count_invariant() {
    // 20 000 elements → five 4096-blocks, merged in order.
    check("par_dot_is_thread_count_invariant", CASES, |rng| {
        (gen::f32_vec(rng, 20_000, -1.0, 1.0), gen::f32_vec(rng, 20_000, -1.0, 1.0))
    }, |(a, b)| {
        identical_scalar_bits("par_dot", || par_dot(a, b))
    });
}

#[test]
fn inner_is_thread_count_invariant() {
    check("inner_is_thread_count_invariant", CASES, |rng| (matrix(rng, 150, 150), matrix(rng, 150, 150)), |(a, b)| {
        identical_scalar_bits("inner", || a.inner(b))
    });
}

#[test]
fn softmax_rows_is_thread_count_invariant() {
    check("softmax_rows_is_thread_count_invariant", CASES, |rng| matrix(rng, 80, 40), |m| {
        identical_matrix_bits("softmax_rows", || m.softmax_rows())
    });
}

#[test]
fn l2_normalize_rows_is_thread_count_invariant() {
    check("l2_normalize_rows_is_thread_count_invariant", CASES, |rng| matrix(rng, 200, 50), |m| {
        identical_matrix_bits("l2_normalize_rows", || m.l2_normalize_rows(1e-9))
    });
}
