//! Bit-exactness suite for the register-tiled matmul kernels.
//!
//! Policy (see `docs/ARCHITECTURE.md`, "Kernel partitioning rule"): tiling
//! re-groups which output elements are computed together but never splits
//! or reorders a reduction, so every tiled kernel must match the naive
//! reference loop order **bit-for-bit** — no tolerance, no fingerprint
//! migration. The references below are verbatim re-implementations of the
//! pre-tile kernels (`ikj` matmul, block-partial `matmul_tn` including its
//! historical zero-skip, per-element `dot` for `matmul_nt`); comparisons
//! are on `f32::to_bits`, which `==` on floats would not give us (it
//! conflates `+0.0` with `-0.0`).
//!
//! Shapes deliberately cover empty, 1×1, exact-multiple-of-tile, and
//! non-multiple-of-tile sizes, and each product is checked under 1, 2, and
//! 7 threads (`with_threads`), including one shape large enough to clear
//! `PAR_MIN_COST` so the parallel path genuinely dispatches.

use desalign_parallel::{fixed_block_len, with_threads};
use desalign_tensor::{dot, Matrix, Rng64};
use desalign_testkit::{check, ensure, gen};

const CASES: u64 = 24;

/// Shapes as (n, k, m): includes empty, 1×1, tile-exact (MR=4, NR=8,
/// NT tile 2×4), non-multiples, and one above-dispatch-threshold case.
const SHAPES: &[(usize, usize, usize)] = &[
    (0, 3, 4),
    (3, 0, 4),
    (3, 4, 0),
    (1, 1, 1),
    (4, 8, 8),
    (5, 13, 9),
    (7, 1, 17),
    (2, 300, 3),
    (13, 7, 13),
    (80, 80, 80), // 512k scalar ops: exceeds PAR_MIN_COST, exercises dispatch
];

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// The pre-tile `ikj` kernel, serial.
fn naive_nn(a: &Matrix, b: &Matrix) -> Matrix {
    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(n, m);
    for i in 0..n {
        for p in 0..k {
            let a_ip = a.row(i)[p];
            for (o, &bv) in out.row_mut(i).iter_mut().zip(b.row(p)) {
                *o += a_ip * bv;
            }
        }
    }
    out
}

/// The pre-tile `matmul_tn`: block partials over `fixed_block_len(k, 256)`
/// merged in order, with the historical `a == 0.0` skip.
fn naive_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let (k, n, m) = (a.rows(), a.cols(), b.cols());
    let block = fixed_block_len(k, 256);
    let mut partials = Vec::new();
    let mut p0 = 0;
    while p0 < k {
        let p1 = (p0 + block).min(k);
        let mut part = Matrix::zeros(n, m);
        for p in p0..p1 {
            let a_row = a.row(p);
            let b_row = b.row(p);
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (o, &bv) in part.row_mut(i).iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        partials.push(part);
        p0 = p1;
    }
    let mut parts = partials.into_iter();
    let mut out = parts.next().unwrap_or_else(|| Matrix::zeros(n, m));
    for part in parts {
        for (o, &p) in out.as_mut_slice().iter_mut().zip(part.as_slice()) {
            *o += p;
        }
    }
    out
}

/// The pre-tile `matmul_nt`: one `dot` per output element.
fn naive_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let (n, m) = (a.rows(), b.rows());
    let mut out = Matrix::zeros(n, m);
    for i in 0..n {
        for j in 0..m {
            out[(i, j)] = dot(a.row(i), b.row(j));
        }
    }
    out
}

/// Random matrix with a controllable fraction of exact zeros, to exercise
/// the removed zero-skip equivalence in `matmul_tn`.
fn sparse_matrix(rng: &mut Rng64, rows: usize, cols: usize, zero_frac: f64) -> Matrix {
    let mut m = gen::matrix(rng, rows, cols, -5.0, 5.0);
    for v in m.as_mut_slice() {
        if rng.gen_bool(zero_frac) {
            *v = 0.0;
        }
    }
    m
}

#[test]
fn tiled_matmul_bit_matches_naive_reference() {
    for &(n, k, m) in SHAPES {
        check(&format!("tiled_nn_{n}x{k}x{m}"), CASES, |rng| (gen::matrix(rng, n, k, -5.0, 5.0), gen::matrix(rng, k, m, -5.0, 5.0)), |(a, b)| {
            let want = bits(&naive_nn(a, b));
            for threads in [1usize, 2, 7] {
                let got = with_threads(threads, || a.matmul(b));
                ensure!(bits(&got) == want, "matmul {n}x{k}x{m} diverged from naive ikj at {threads} threads");
            }
            Ok(())
        });
    }
}

#[test]
fn tiled_matmul_tn_bit_matches_naive_reference() {
    for &(n, k, m) in SHAPES {
        // a is k×n here (the kernel computes aᵀ·b); half the entries are
        // exact zeros so the historical zero-skip path is genuinely hit.
        check(&format!("tiled_tn_{n}x{k}x{m}"), CASES, |rng| (sparse_matrix(rng, k, n, 0.5), gen::matrix(rng, k, m, -5.0, 5.0)), |(a, b)| {
            let want = bits(&naive_tn(a, b));
            for threads in [1usize, 2, 7] {
                let got = with_threads(threads, || a.matmul_tn(b));
                ensure!(bits(&got) == want, "matmul_tn {n}x{k}x{m} diverged from block reference at {threads} threads");
            }
            Ok(())
        });
    }
}

#[test]
fn tiled_matmul_nt_bit_matches_dot_reference() {
    for &(n, k, m) in SHAPES {
        check(&format!("tiled_nt_{n}x{k}x{m}"), CASES, |rng| (gen::matrix(rng, n, k, -5.0, 5.0), gen::matrix(rng, m, k, -5.0, 5.0)), |(a, b)| {
            let want = bits(&naive_nt(a, b));
            for threads in [1usize, 2, 7] {
                let got = with_threads(threads, || a.matmul_nt(b));
                ensure!(bits(&got) == want, "matmul_nt {n}x{k}x{m} diverged from dot reference at {threads} threads");
            }
            Ok(())
        });
    }
}

#[test]
fn signed_zero_is_preserved_exactly() {
    // -0.0 inputs are where bitwise and `==` comparison differ: a product
    // row of all -0.0 must come out +0.0 (accumulators start at +0.0), in
    // both the tiled kernels and the references.
    let a = Matrix::from_rows(&[&[-0.0, -0.0], &[1.0, -1.0]]);
    let b = Matrix::from_rows(&[&[-0.0, 2.0], &[-0.0, 2.0]]);
    for (got, want) in [
        (a.matmul(&b), naive_nn(&a, &b)),
        (a.matmul_tn(&b), naive_tn(&a, &b)),
        (a.matmul_nt(&b), naive_nt(&a, &b)),
    ] {
        assert_eq!(bits(&got), bits(&want));
    }
    assert_eq!(a.matmul(&b)[(0, 0)].to_bits(), 0.0f32.to_bits());
}
