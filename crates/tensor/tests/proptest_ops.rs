//! Property tests for the dense kernels: algebraic identities that must
//! hold for arbitrary (finite, bounded) matrices.

use desalign_tensor::{Matrix, Rng64};
use desalign_testkit::{check, ensure, ensure_eq, gen};

const CASES: u64 = 64;

fn matrix(rng: &mut Rng64, rows: usize, cols: usize) -> Matrix {
    gen::matrix(rng, rows, cols, -10.0, 10.0)
}

#[test]
fn addition_commutes() {
    check("addition_commutes", CASES, |rng| (matrix(rng, 3, 5), matrix(rng, 3, 5)), |(a, b)| {
        ensure_eq!(a.add(b), b.add(a));
        Ok(())
    });
}

#[test]
fn hadamard_commutes() {
    check("hadamard_commutes", CASES, |rng| (matrix(rng, 4, 3), matrix(rng, 4, 3)), |(a, b)| {
        ensure_eq!(a.hadamard(b), b.hadamard(a));
        Ok(())
    });
}

#[test]
fn sub_then_add_round_trips() {
    check("sub_then_add_round_trips", CASES, |rng| (matrix(rng, 3, 3), matrix(rng, 3, 3)), |(a, b)| {
        let restored = a.sub(b).add(b);
        ensure!(restored.sub(a).max_abs() < 1e-3);
        Ok(())
    });
}

#[test]
fn matmul_associates_with_identity() {
    check("matmul_associates_with_identity", CASES, |rng| matrix(rng, 3, 4), |a| {
        ensure_eq!(a.matmul(&Matrix::eye(4)), a.clone());
        ensure_eq!(Matrix::eye(3).matmul(a), a.clone());
        Ok(())
    });
}

#[test]
fn transpose_reverses_matmul() {
    check("transpose_reverses_matmul", CASES, |rng| (matrix(rng, 3, 4), matrix(rng, 4, 2)), |(a, b)| {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        ensure!(lhs.sub(&rhs).max_abs() < 1e-2);
        Ok(())
    });
}

#[test]
fn fused_transposed_products_match_explicit() {
    check(
        "fused_transposed_products_match_explicit",
        CASES,
        |rng| (matrix(rng, 4, 3), matrix(rng, 4, 2), matrix(rng, 5, 3)),
        |(a, b, c)| {
            ensure!(a.matmul_tn(b).sub(&a.transpose().matmul(b)).max_abs() < 1e-2);
            ensure!(a.matmul_nt(c).sub(&a.matmul(&c.transpose())).max_abs() < 1e-2);
            Ok(())
        },
    );
}

#[test]
fn trace_is_similarity_invariant_under_transpose() {
    check("trace_is_similarity_invariant_under_transpose", CASES, |rng| matrix(rng, 4, 4), |a| {
        ensure!((a.trace() - a.transpose().trace()).abs() < 1e-3);
        Ok(())
    });
}

#[test]
fn inner_product_symmetry() {
    check("inner_product_symmetry", CASES, |rng| (matrix(rng, 3, 4), matrix(rng, 3, 4)), |(a, b)| {
        ensure!((a.inner(b) - b.inner(a)).abs() < 1e-2);
        Ok(())
    });
}

#[test]
fn frobenius_norm_from_inner() {
    check("frobenius_norm_from_inner", CASES, |rng| matrix(rng, 3, 4), |a| {
        let via_inner = a.inner(a).max(0.0).sqrt();
        ensure!((via_inner - a.frobenius_norm()).abs() < 1e-2);
        Ok(())
    });
}

#[test]
fn softmax_rows_are_distributions() {
    check("softmax_rows_are_distributions", CASES, |rng| matrix(rng, 4, 6), |a| {
        let s = a.softmax_rows();
        ensure!(s.all_finite());
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            ensure!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
            ensure!(s.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        Ok(())
    });
}

#[test]
fn l2_normalized_rows_have_unit_or_zero_norm() {
    check("l2_normalized_rows_have_unit_or_zero_norm", CASES, |rng| matrix(rng, 4, 3), |a| {
        let n = a.l2_normalize_rows(1e-6);
        for i in 0..n.rows() {
            let norm: f32 = n.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            ensure!(norm < 1e-5 || (norm - 1.0).abs() < 1e-3, "row {i} norm {norm}");
        }
        Ok(())
    });
}

#[test]
fn gather_scatter_adjoint_identity() {
    check("gather_scatter_adjoint_identity", CASES, |rng| matrix(rng, 5, 3), |a| {
        // scatter_add(gather(x, idx), idx) sums duplicates; with unique
        // indices it is a permutation-restricted identity.
        let idx = vec![4usize, 2, 0];
        let g = a.gather_rows(&idx);
        let s = g.scatter_add_rows(&idx, 5);
        for (pos, &i) in idx.iter().enumerate() {
            ensure_eq!(s.row(i), g.row(pos));
        }
        ensure_eq!(s.row(1).iter().copied().sum::<f32>(), 0.0);
        Ok(())
    });
}

#[test]
fn hcat_slice_round_trip() {
    check("hcat_slice_round_trip", CASES, |rng| (matrix(rng, 3, 4), matrix(rng, 3, 2)), |(a, b)| {
        let cat = a.hcat(b);
        ensure_eq!(cat.slice_cols(0, 4), a.clone());
        ensure_eq!(cat.slice_cols(4, 6), b.clone());
        Ok(())
    });
}

#[test]
fn layernorm_output_is_centered() {
    check("layernorm_output_is_centered", CASES, |rng| matrix(rng, 3, 8), |a| {
        let n = a.layernorm_rows(1e-5);
        for i in 0..n.rows() {
            let mean: f32 = n.row(i).iter().sum::<f32>() / 8.0;
            ensure!(mean.abs() < 1e-3);
        }
        Ok(())
    });
}
