//! Property tests for the dense kernels: algebraic identities that must
//! hold for arbitrary (finite, bounded) matrices.

use desalign_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols).prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn square(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_commutes(a in matrix(3, 5), b in matrix(3, 5)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn hadamard_commutes(a in matrix(4, 3), b in matrix(4, 3)) {
        prop_assert_eq!(a.hadamard(&b), b.hadamard(&a));
    }

    #[test]
    fn sub_then_add_round_trips(a in matrix(3, 3), b in matrix(3, 3)) {
        let restored = a.sub(&b).add(&b);
        prop_assert!(restored.sub(&a).max_abs() < 1e-3);
    }

    #[test]
    fn matmul_associates_with_identity(a in matrix(3, 4)) {
        prop_assert_eq!(a.matmul(&Matrix::eye(4)), a.clone());
        prop_assert_eq!(Matrix::eye(3).matmul(&a), a);
    }

    #[test]
    fn transpose_reverses_matmul(a in matrix(3, 4), b in matrix(4, 2)) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.sub(&rhs).max_abs() < 1e-2);
    }

    #[test]
    fn fused_transposed_products_match_explicit(a in matrix(4, 3), b in matrix(4, 2), c in matrix(5, 3)) {
        prop_assert!(a.matmul_tn(&b).sub(&a.transpose().matmul(&b)).max_abs() < 1e-2);
        prop_assert!(a.matmul_nt(&c).sub(&a.matmul(&c.transpose())).max_abs() < 1e-2);
    }

    #[test]
    fn trace_is_similarity_invariant_under_transpose(a in square(4)) {
        prop_assert!((a.trace() - a.transpose().trace()).abs() < 1e-3);
    }

    #[test]
    fn inner_product_symmetry(a in matrix(3, 4), b in matrix(3, 4)) {
        prop_assert!((a.inner(&b) - b.inner(&a)).abs() < 1e-2);
    }

    #[test]
    fn frobenius_norm_from_inner(a in matrix(3, 4)) {
        let via_inner = a.inner(&a).max(0.0).sqrt();
        prop_assert!((via_inner - a.frobenius_norm()).abs() < 1e-2);
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(4, 6)) {
        let s = a.softmax_rows();
        prop_assert!(s.all_finite());
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {} sums to {}", i, sum);
            prop_assert!(s.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn l2_normalized_rows_have_unit_or_zero_norm(a in matrix(4, 3)) {
        let n = a.l2_normalize_rows(1e-6);
        for i in 0..n.rows() {
            let norm: f32 = n.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            prop_assert!(norm < 1e-5 || (norm - 1.0).abs() < 1e-3, "row {} norm {}", i, norm);
        }
    }

    #[test]
    fn gather_scatter_adjoint_identity(a in matrix(5, 3)) {
        // scatter_add(gather(x, idx), idx) sums duplicates; with unique
        // indices it is a permutation-restricted identity.
        let idx = vec![4usize, 2, 0];
        let g = a.gather_rows(&idx);
        let s = g.scatter_add_rows(&idx, 5);
        for (pos, &i) in idx.iter().enumerate() {
            prop_assert_eq!(s.row(i), g.row(pos));
        }
        prop_assert_eq!(s.row(1).iter().copied().sum::<f32>(), 0.0);
    }

    #[test]
    fn hcat_slice_round_trip(a in matrix(3, 4), b in matrix(3, 2)) {
        let cat = a.hcat(&b);
        prop_assert_eq!(cat.slice_cols(0, 4), a);
        prop_assert_eq!(cat.slice_cols(4, 6), b);
    }

    #[test]
    fn layernorm_output_is_centered(a in matrix(3, 8)) {
        let n = a.layernorm_rows(1e-5);
        for i in 0..n.rows() {
            let mean: f32 = n.row(i).iter().sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-3);
        }
    }
}
