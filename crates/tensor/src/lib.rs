//! Dense numeric kernels for DESAlign.
//!
//! This crate provides the dense linear-algebra substrate the rest of the
//! workspace builds on: a row-major `f32` [`Matrix`], element-wise and
//! matrix-product kernels, row-wise normalizations used by attention layers,
//! and seedable random initializers (Glorot et al.).
//!
//! The design goals, in order:
//!
//! 1. **Correctness** — every kernel has a small-case unit test and the
//!    gradient-bearing ones are finite-difference checked from the
//!    `desalign-autodiff` crate.
//! 2. **Predictable performance** — row-major storage, blocked `ikj` matmul,
//!    no hidden allocation in hot loops, and output-row parallelism via
//!    `desalign-parallel` (results are bit-identical at any thread count; see
//!    that crate's docs for the determinism argument). At the scales this
//!    reproduction targets (≤ a few thousand rows, feature dims ≤ a few
//!    hundred) this is within a small factor of BLAS without the dependency.
//! 3. **No `unsafe`** — this crate forbids unsafe code; the one audited
//!    `unsafe` block in the workspace is the scoped-lifetime erasure in
//!    `desalign-parallel`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod ops;
pub mod random;
mod rowwise;
mod tile;

pub use matrix::Matrix;
pub use ops::{dot, par_dot};
pub use random::{glorot_uniform, normal_matrix, rng_from_seed, uniform_matrix, Rng64, SampleRange, SliceRandom};
pub use rowwise::softmax_slice;
