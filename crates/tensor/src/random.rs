//! Seedable random matrix initializers and the workspace RNG.
//!
//! Every stochastic component in the workspace draws from an explicitly
//! seeded [`Rng64`] so that datasets, weight initializations, and therefore
//! whole experiments are reproducible byte-for-byte.
//!
//! # Zero-dependency RNG
//!
//! [`Rng64`] is an in-repo xoshiro256++ generator seeded through SplitMix64.
//! The update function, the `u64 → [0, n)` bounded-sampling scheme (widening
//! multiply with rejection), the `[1, 2)`-mantissa float sampling, and the
//! Fisher–Yates [`SliceRandom::shuffle`] all replicate the exact algorithms
//! the workspace previously obtained from the `rand` crate's `SmallRng`
//! (rand 0.8 on a 64-bit target), so every seeded stream — synthetic
//! datasets, Glorot initializations, negative sampling, batch shuffles — is
//! byte-identical to what the crates.io-backed build produced. The
//! regression tests at the bottom of this file pin the reference streams.

use crate::Matrix;

/// Golden-ratio increment of the SplitMix64 seeding sequence.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The workspace-wide RNG: xoshiro256++, a fast, seedable,
/// non-cryptographic generator with 256 bits of state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

/// Creates an [`Rng64`] from a `u64` seed.
pub fn rng_from_seed(seed: u64) -> Rng64 {
    Rng64::seed_from_u64(seed)
}

impl Rng64 {
    /// Expands a 64-bit seed into the full 256-bit state with SplitMix64,
    /// guaranteeing a well-mixed, non-zero initial state.
    pub fn seed_from_u64(mut state: u64) -> Self {
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(GOLDEN_GAMMA);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *word = z ^ (z >> 31);
        }
        Rng64 { s }
    }

    /// Exports the full 256-bit generator state, for checkpointing.
    ///
    /// Together with [`Rng64::from_state`] this makes the RNG resumable:
    /// a training run killed and restarted from a checkpoint continues the
    /// *exact* random stream it would have produced uninterrupted — the
    /// keystone of the bit-identical-resume contract
    /// (`docs/RELIABILITY.md`).
    ///
    /// ```
    /// use desalign_tensor::{rng_from_seed, Rng64};
    ///
    /// let mut rng = rng_from_seed(7);
    /// rng.next_u64(); // advance somewhere mid-stream
    /// let saved = rng.state();
    /// let a: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    /// let mut resumed = Rng64::from_state(saved);
    /// let b: Vec<u64> = (0..4).map(|_| resumed.next_u64()).collect();
    /// assert_eq!(a, b);
    /// ```
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state exported with [`Rng64::state`].
    ///
    /// # Panics
    /// Panics on the all-zero state, which is the single fixed point of
    /// the xoshiro256++ update (it would emit zeros forever). No state
    /// reachable from [`Rng64::seed_from_u64`] is all-zero, so hitting
    /// this indicates a corrupt checkpoint.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "Rng64::from_state: the all-zero state is invalid (xoshiro fixed point)");
        Rng64 { s }
    }

    /// The raw xoshiro256++ output: uniform over all of `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u32` taken from the upper half of [`Self::next_u64`] (the
    /// low bits of xoshiro++ have weak linear structure).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from a half-open or inclusive range, e.g.
    /// `rng.gen_range(0..n)` or `rng.gen_range(-1.0f32..1.0)`.
    ///
    /// Panics when the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`. `p = 1.0` consumes no randomness and
    /// is always `true`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        // Compare against p scaled to the full 64-bit range (2^64).
        let p_int = (p * 1.844_674_407_370_955_2e19) as u64;
        self.next_u64() < p_int
    }
}

/// Ranges an [`Rng64`] can sample a single uniform value from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single(self, rng: &mut Rng64) -> T;
}

/// Bounded sampling of `v ∈ [0, range)` by widening multiplication with
/// rejection of the biased low-product zone (unbiased, usually one draw).
#[inline]
fn bounded_u64(rng: &mut Rng64, range: u64) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let wide = (v as u128) * (range as u128);
        let (hi, lo) = ((wide >> 64) as u64, wide as u64);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            #[inline]
            fn sample_single(self, rng: &mut Rng64) -> $ty {
                assert!(self.start < self.end, "gen_range: empty integer range");
                (self.start..=self.end - 1).sample_single(rng)
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            #[inline]
            fn sample_single(self, rng: &mut Rng64) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "gen_range: empty integer range");
                let range = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if range == 0 {
                    // The range spans every representable value.
                    return rng.next_u64() as $ty;
                }
                low.wrapping_add(bounded_u64(rng, range) as $ty)
            }
        }
    )+};
}

impl_sample_range_int!(usize, u64);

macro_rules! impl_sample_range_float {
    ($ty:ty, $uty:ty, $next:ident, $bits_to_discard:expr, $exponent_bits:expr) => {
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            #[inline]
            fn sample_single(self, rng: &mut Rng64) -> $ty {
                assert!(self.start < self.end, "gen_range: empty float range");
                let scale = self.end - self.start;
                // Fill the mantissa to get a uniform value in [1, 2), then
                // shift down to [0, 1); multiply-add keeps one rounding.
                let mantissa = rng.$next() >> $bits_to_discard;
                let value1_2 = <$ty>::from_bits($exponent_bits | mantissa);
                let value0_1 = value1_2 - 1.0;
                value0_1 * scale + self.start
            }
        }
    };
}

impl_sample_range_float!(f32, u32, next_u32, 32 - 23, 127u32 << 23);
impl_sample_range_float!(f64, u64, next_u64, 64 - 52, 1023u64 << 52);

/// Random operations on slices: the in-repo replacement for
/// `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut Rng64);

    /// Uniformly chosen element, `None` when empty.
    fn choose(&self, rng: &mut Rng64) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut Rng64) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn choose(&self, rng: &mut Rng64) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// Matrix with elements drawn uniformly from `[lo, hi)`.
pub fn uniform_matrix(rng: &mut Rng64, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Matrix with elements drawn from a normal distribution `N(mean, std²)`,
/// generated with the Box–Muller transform.
pub fn normal_matrix(rng: &mut Rng64, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Matrix::from_vec(rows, cols, data)
}

/// Glorot (Xavier) uniform initialization for a `fan_in × fan_out` weight:
/// `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// This is the initialization the paper assumes in its Proposition 2
/// discussion ("Based on the common Glorot initialization…").
pub fn glorot_uniform(rng: &mut Rng64, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_matrix(rng, fan_in, fan_out, -a, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference outputs of xoshiro256++ from the published C
        // implementation, state = [1, 2, 3, 4].
        let mut rng = Rng64 { s: [1, 2, 3, 4] };
        let expected: [u64; 10] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
            14_011_001_112_246_962_877,
            12_406_186_145_184_390_807,
            15_849_039_046_786_891_736,
            10_450_023_813_501_588_000,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_seeding_matches_reference() {
        // SplitMix64(0): the canonical first three outputs.
        let rng = Rng64::seed_from_u64(0);
        assert_eq!(rng.s[0], 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.s[1], 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(rng.s[2], 0x06c4_5d18_8009_454f);
        assert_eq!(rng.s[3], 0xf88b_b8a8_724c_81ec);
    }

    #[test]
    fn stream_is_pinned_against_drift() {
        // Byte-for-byte regression pin of the composite stream: any change
        // to seeding, the update function, bounded integer sampling, or
        // float mantissa-fill breaks the reproducibility promise of every
        // experiment in the workspace. Values were cross-checked against
        // rand 0.8's `SmallRng` on x86-64.
        let mut rng = rng_from_seed(17);
        let ints: Vec<usize> = (0..4).map(|_| rng.gen_range(0..1000usize)).collect();
        assert_eq!(ints, vec![866, 876, 31, 613]);
        let float_bits: Vec<u32> = (0..4).map(|_| rng.gen_range(-1.0f32..1.0).to_bits()).collect();
        assert_eq!(float_bits, vec![3_179_298_528, 1_057_960_784, 3_188_216_384, 3_206_503_016]);
    }

    #[test]
    fn state_round_trip_resumes_every_sampling_mode() {
        // Checkpoint/resume contract: restoring a mid-stream state must
        // continue the exact stream across raw output, bounded ints,
        // floats, bools, and shuffles.
        let mut rng = rng_from_seed(42);
        for _ in 0..100 {
            rng.next_u64();
        }
        let saved = rng.state();
        let drive = |r: &mut Rng64| {
            let mut v: Vec<usize> = (0..20).collect();
            v.shuffle(r);
            (r.next_u64(), r.gen_range(0..1_000_000usize), r.gen_range(-1.0f32..1.0).to_bits(), r.gen_bool(0.5), v)
        };
        let a = drive(&mut rng);
        let mut resumed = Rng64::from_state(saved);
        assert_eq!(resumed.state(), saved);
        let b = drive(&mut resumed);
        assert_eq!(a, b);
        // And the two generators stay in lockstep afterwards.
        assert_eq!(rng.state(), resumed.state());
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn all_zero_state_is_rejected() {
        let _ = Rng64::from_state([0; 4]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rng_from_seed(5);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "p=0.25 hit rate {hits}");
    }

    #[test]
    fn gen_range_int_is_unbiased_over_small_range() {
        let mut rng = rng_from_seed(9);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 50_000.0 - 0.2).abs() < 0.01, "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rng_from_seed(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100-element shuffle left the identity in place");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = rng_from_seed(4);
        let v = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(v.choose(&mut rng).copied().unwrap() - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = uniform_matrix(&mut rng_from_seed(7), 4, 4, -1.0, 1.0);
        let b = uniform_matrix(&mut rng_from_seed(7), 4, 4, -1.0, 1.0);
        assert_eq!(a, b);
        let c = uniform_matrix(&mut rng_from_seed(8), 4, 4, -1.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = uniform_matrix(&mut rng_from_seed(1), 50, 50, -0.5, 0.5);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let m = normal_matrix(&mut rng_from_seed(2), 100, 100, 1.0, 2.0);
        let mean = m.mean();
        let var = m.as_slice().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / m.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
        assert!(m.all_finite());
    }

    #[test]
    fn glorot_bound_matches_formula() {
        let m = glorot_uniform(&mut rng_from_seed(3), 30, 70);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(m.max_abs() <= a);
        assert_eq!(m.shape(), (30, 70));
    }

    #[test]
    fn normal_handles_odd_count() {
        let m = normal_matrix(&mut rng_from_seed(4), 3, 3, 0.0, 1.0);
        assert_eq!(m.len(), 9);
        assert!(m.all_finite());
    }
}
