//! Seedable random matrix initializers.
//!
//! Every stochastic component in the workspace draws from an explicitly
//! seeded [`Rng64`] so that datasets, weight initializations, and therefore
//! whole experiments are reproducible byte-for-byte.

use crate::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The workspace-wide RNG: a fast, seedable, non-cryptographic generator.
pub type Rng64 = SmallRng;

/// Creates an [`Rng64`] from a `u64` seed.
pub fn rng_from_seed(seed: u64) -> Rng64 {
    SmallRng::seed_from_u64(seed)
}

/// Matrix with elements drawn uniformly from `[lo, hi)`.
pub fn uniform_matrix(rng: &mut Rng64, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Matrix with elements drawn from a normal distribution `N(mean, std²)`,
/// generated with the Box–Muller transform (avoids the `rand_distr`
/// dependency).
pub fn normal_matrix(rng: &mut Rng64, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Matrix::from_vec(rows, cols, data)
}

/// Glorot (Xavier) uniform initialization for a `fan_in × fan_out` weight:
/// `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// This is the initialization the paper assumes in its Proposition 2
/// discussion ("Based on the common Glorot initialization…").
pub fn glorot_uniform(rng: &mut Rng64, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_matrix(rng, fan_in, fan_out, -a, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = uniform_matrix(&mut rng_from_seed(7), 4, 4, -1.0, 1.0);
        let b = uniform_matrix(&mut rng_from_seed(7), 4, 4, -1.0, 1.0);
        assert_eq!(a, b);
        let c = uniform_matrix(&mut rng_from_seed(8), 4, 4, -1.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = uniform_matrix(&mut rng_from_seed(1), 50, 50, -0.5, 0.5);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let m = normal_matrix(&mut rng_from_seed(2), 100, 100, 1.0, 2.0);
        let mean = m.mean();
        let var = m.as_slice().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / m.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
        assert!(m.all_finite());
    }

    #[test]
    fn glorot_bound_matches_formula() {
        let m = glorot_uniform(&mut rng_from_seed(3), 30, 70);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(m.max_abs() <= a);
        assert_eq!(m.shape(), (30, 70));
    }

    #[test]
    fn normal_handles_odd_count() {
        let m = normal_matrix(&mut rng_from_seed(4), 3, 3, 0.0, 1.0);
        assert_eq!(m.len(), 9);
        assert!(m.all_finite());
    }
}
