//! The [`Matrix`] type: a dense, row-major `f32` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32` values.
///
/// `Matrix` is the single dense container used throughout the workspace.
/// Vectors are represented as `n × 1` or `1 × n` matrices. All shape
/// mismatches panic with a descriptive message; shapes are part of every
/// kernel's contract and a mismatch is always a programming error, never a
/// data error.
///
/// ```
/// use desalign_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_fn(2, 2, |i, j| if i == j { 1.0 } else { 0.0 });
/// assert_eq!(a.matmul(&b), a);           // right-multiply by identity
/// assert_eq!(a.shape(), (2, 2));
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    ///
    /// # Panics
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("Matrix::zeros: rows * cols overflows usize");
        Self { rows, cols, data: vec![0.0; len] }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices. Intended for tests and
    /// examples.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "Matrix::from_rows: row {i} has length {} but row 0 has length {c}", row.len());
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a single-column matrix from a vector.
    pub fn column(data: Vec<f32>) -> Self {
        let rows = data.len();
        Self { rows, cols: 1, data }
    }

    /// Creates a single-row matrix from a vector.
    pub fn row_vec(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self { rows: 1, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major data slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "Matrix::row: index {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "Matrix::row_mut: index {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns a copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "Matrix::col: index {j} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Asserts that `self` has the given shape, with a caller-supplied
    /// context string for the panic message.
    #[track_caller]
    pub fn expect_shape(&self, rows: usize, cols: usize, ctx: &str) {
        assert_eq!(
            (self.rows, self.cols),
            (rows, cols),
            "{ctx}: expected shape {rows}x{cols}, got {}x{}",
            self.rows,
            self.cols
        );
    }

    /// True if every element is finite (no NaN / ±inf).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds for {}x{}", self.rows, self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds for {}x{}", self.rows, self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>9.4}", self[(i, j)])?;
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_shape_and_zero_data() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn eye_is_identity() {
        let m = Matrix::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn index_mut_writes() {
        let mut m = Matrix::zeros(2, 2);
        m[(1, 1)] = 5.0;
        assert_eq!(m[(1, 1)], 5.0);
    }

    #[test]
    fn from_fn_evaluates_positions() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.all_finite());
        m[(0, 0)] = f32::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn column_and_row_vec_shapes() {
        assert_eq!(Matrix::column(vec![1.0, 2.0]).shape(), (2, 1));
        assert_eq!(Matrix::row_vec(vec![1.0, 2.0]).shape(), (1, 2));
    }
}
