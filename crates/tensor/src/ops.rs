//! Element-wise and matrix-product kernels on [`Matrix`].
//!
//! All binary kernels require exact shape agreement and panic otherwise;
//! broadcasting is deliberately not supported (every call site in the
//! workspace knows its shapes statically, and silent broadcasting is a
//! classic source of numeric bugs).

use crate::{tile, Matrix};

impl Matrix {
    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, "Matrix::add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, "Matrix::sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product `self ⊙ other`.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, "Matrix::hadamard", |a, b| a * b)
    }

    /// Adds `alpha * other` into `self` in place.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        other.expect_shape(self.rows(), self.cols(), "Matrix::axpy");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Element-wise scaling `self * alpha`.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.as_slice().iter().map(|&v| f(v)).collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    fn zip_with(&self, other: &Matrix, ctx: &str, f: impl Fn(f32, f32) -> f32) -> Matrix {
        other.expect_shape(self.rows(), self.cols(), ctx);
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Matrix product `self × other`.
    ///
    /// Register-tiled: `other` is packed into `NR`-wide column panels and a
    /// microkernel accumulates `MR × NR` output tiles entirely in registers,
    /// touching each output element exactly once (the old `ikj` kernel
    /// round-tripped every output row through memory once per inner step).
    /// The reduction over the shared dimension is never split or reordered
    /// — each output element receives the same ascending multiply-add
    /// sequence as the naive kernel, so results are **bit-identical** to the
    /// pre-tile implementation and thread-count independent (tile groups are
    /// handed whole to one thread; see `tile.rs` for the full argument).
    ///
    /// ```
    /// use desalign_tensor::Matrix;
    /// let a = Matrix::from_rows(&[&[1.0, 2.0]]);          // 1×2
    /// let b = Matrix::from_rows(&[&[10.0], &[100.0]]);    // 2×1
    /// assert_eq!(a.matmul(&b), Matrix::from_rows(&[&[210.0]]));
    /// ```
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "Matrix::matmul: inner dims differ ({}x{} × {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let _span = desalign_telemetry::span("matmul");
        let (n, k, m) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(n, m);
        if out.is_empty() || k == 0 {
            return out;
        }
        let b_panels = tile::pack_cols(other, tile::NR);
        let a = self.as_slice();
        let cost = n.saturating_mul(k).saturating_mul(m);
        desalign_parallel::par_row_groups(out.as_mut_slice(), m, tile::MR, cost, |i0, chunk| {
            tile::gemm_nn_block(a, k, m, i0, chunk, &b_panels);
        });
        out
    }

    /// `selfᵀ × other` without materializing the transpose.
    ///
    /// The reduction runs over the shared row dimension, so it cannot be
    /// partitioned by output row. Instead the rows are split into blocks of
    /// a [`fixed_block_len`](desalign_parallel::fixed_block_len) — a pure
    /// function of the problem size, never of the thread count — each block
    /// is accumulated serially into its own partial, and the partials are
    /// merged in block order. The float summation tree is therefore fixed,
    /// and results are bit-identical at any thread count.
    ///
    /// Within a block the kernel is register-tiled like [`Matrix::matmul`]:
    /// both operands are packed once (panels index by the shared row, so one
    /// packing serves every block) and an `MR × NR` tile is accumulated in
    /// registers over the block's row range, ascending. The historical
    /// zero-skip on the left operand is gone: starting from `+0.0` an
    /// accumulator can never become `-0.0`, so the skipped `±0.0` products
    /// could never change a bit for finite operands — the branch only cost
    /// vectorization (see `tile.rs`).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols(), other.cols());
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_tn`] writing into a caller-provided output — same
    /// kernel, same bits. `out`'s prior contents are ignored (every element
    /// is written), which lets gradient code reuse pooled buffers.
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows(),
            other.rows(),
            "Matrix::matmul_tn: row counts differ ({}x{} vs {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let _span = desalign_telemetry::span("matmul_tn");
        let (k, n, m) = (self.rows(), self.cols(), other.cols());
        out.expect_shape(n, m, "Matrix::matmul_tn_into: out");
        if k == 0 || n == 0 || m == 0 {
            out.as_mut_slice().fill(0.0);
            return;
        }
        let a_panels = tile::pack_cols(self, tile::MR);
        let b_panels = tile::pack_cols(other, tile::NR);
        let block = desalign_parallel::fixed_block_len(k, 256);
        let cost = k.saturating_mul(n).saturating_mul(m);
        let partials = desalign_parallel::par_blocks(k, block, cost, |_b, range| {
            let mut part = Matrix::zeros(n, m);
            tile::gemm_tn_block(&a_panels, &b_panels, range, k, n, m, &mut part);
            part
        });
        let mut parts = partials.into_iter();
        match parts.next() {
            Some(first) => out.as_mut_slice().copy_from_slice(first.as_slice()),
            None => out.as_mut_slice().fill(0.0),
        }
        for part in parts {
            for (o, &p) in out.as_mut_slice().iter_mut().zip(part.as_slice()) {
                *o += p;
            }
        }
    }

    /// `self × otherᵀ` without materializing the transpose.
    ///
    /// Register-tiled over `NT_MR × NT_NR` output tiles so each left-operand
    /// row chunk is loaded once per several outputs; every element keeps
    /// [`dot`]'s exact 4-lane accumulation tree (lane merge order and
    /// sequential tail included), so results are bit-identical to the
    /// per-element `dot` kernel at any thread count.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), other.rows());
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] writing into a caller-provided output — same
    /// kernel, same bits. `out`'s prior contents are ignored (every element
    /// is written, including `+0.0` when the shared dimension is empty).
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols(),
            other.cols(),
            "Matrix::matmul_nt: col counts differ ({}x{} vs {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let _span = desalign_telemetry::span("matmul_nt");
        let (n, m) = (self.rows(), other.rows());
        let k = self.cols();
        out.expect_shape(n, m, "Matrix::matmul_nt_into: out");
        if out.is_empty() {
            return;
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let cost = n.saturating_mul(k).saturating_mul(m);
        desalign_parallel::par_row_groups(out.as_mut_slice(), m, tile::NT_MR, cost, |i0, chunk| {
            tile::gemm_nt_block(a, b, k, m, i0, chunk);
        });
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols(), self.rows());
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a caller-provided output (every element is written).
    ///
    /// # Panics
    /// Panics if `out` is not `self.cols() × self.rows()`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        let (n, m) = self.shape();
        out.expect_shape(m, n, "Matrix::transpose_into: out");
        for i in 0..n {
            for j in 0..m {
                out[(j, i)] = self[(i, j)];
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.as_slice().iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f32 {
        assert_eq!(self.rows(), self.cols(), "Matrix::trace: matrix is {}x{}, not square", self.rows(), self.cols());
        (0..self.rows()).map(|i| self[(i, i)]).sum()
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "Matrix::hcat: row counts differ ({} vs {})",
            self.rows(),
            other.rows()
        );
        let mut out = Matrix::zeros(self.rows(), self.cols() + other.cols());
        for i in 0..self.rows() {
            let row = out.row_mut(i);
            row[..self.cols()].copy_from_slice(self.row(i));
            row[self.cols()..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Horizontal concatenation of several matrices.
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts differ.
    pub fn hcat_all(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "Matrix::hcat_all: no parts");
        let rows = parts[0].rows();
        let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut out = Matrix::zeros(rows, total_cols);
        for i in 0..rows {
            let row = out.row_mut(i);
            let mut off = 0;
            for p in parts {
                assert_eq!(p.rows(), rows, "Matrix::hcat_all: row counts differ");
                row[off..off + p.cols()].copy_from_slice(p.row(i));
                off += p.cols();
            }
        }
        out
    }

    /// Vertical concatenation (stacks `other` below `self`).
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "Matrix::vcat: col counts differ ({} vs {})",
            self.cols(),
            other.cols()
        );
        let mut data = Vec::with_capacity(self.len() + other.len());
        data.extend_from_slice(self.as_slice());
        data.extend_from_slice(other.as_slice());
        Matrix::from_vec(self.rows() + other.rows(), self.cols(), data)
    }

    /// Gathers rows by index: `out[i] = self[idx[i]]`.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols());
        for (i, &r) in idx.iter().enumerate() {
            assert!(r < self.rows(), "Matrix::gather_rows: index {r} out of bounds ({} rows)", self.rows());
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Scatter-add of rows: `out[idx[i]] += self[i]` where `out` has
    /// `n_out` rows. Duplicate indices accumulate.
    pub fn scatter_add_rows(&self, idx: &[usize], n_out: usize) -> Matrix {
        assert_eq!(idx.len(), self.rows(), "Matrix::scatter_add_rows: {} indices for {} rows", idx.len(), self.rows());
        let mut out = Matrix::zeros(n_out, self.cols());
        for (i, &r) in idx.iter().enumerate() {
            assert!(r < n_out, "Matrix::scatter_add_rows: index {r} out of bounds ({n_out} rows)");
            let src = self.row(i);
            for (o, &s) in out.row_mut(r).iter_mut().zip(src) {
                *o += s;
            }
        }
        out
    }

    /// Slices rows `[start, end)` into a new matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows(), "Matrix::slice_rows: range {start}..{end} out of bounds ({} rows)", self.rows());
        let data = self.as_slice()[start * self.cols()..end * self.cols()].to_vec();
        Matrix::from_vec(end - start, self.cols(), data)
    }

    /// Slices columns `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols(), "Matrix::slice_cols: range {start}..{end} out of bounds ({} cols)", self.cols());
        let mut out = Matrix::zeros(self.rows(), end - start);
        for i in 0..self.rows() {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..end]);
        }
        out
    }

    /// Dot product treating both matrices as flat vectors:
    /// `⟨self, other⟩ = Σᵢⱼ selfᵢⱼ · otherᵢⱼ`.
    ///
    /// This is the Frobenius inner product used by Proposition 1 of the
    /// paper (`⟨ΔX, X̂ − X⟩`).
    pub fn inner(&self, other: &Matrix) -> f32 {
        other.expect_shape(self.rows(), self.cols(), "Matrix::inner");
        par_dot(self.as_slice(), other.as_slice())
    }
}

/// Dense dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four accumulators let LLVM vectorize despite float non-associativity.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Parallel dense dot product.
///
/// Splits the vectors into blocks of a
/// [`fixed_block_len`](desalign_parallel::fixed_block_len) (a function of
/// the length only), reduces each block with [`dot`], and sums the block
/// partials in order — so the summation tree, and hence every output bit,
/// is independent of the thread count. Short inputs take the plain [`dot`]
/// path, which is bit-identical to a single block.
pub fn par_dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "par_dot: length mismatch ({} vs {})", a.len(), b.len());
    let n = a.len();
    let block = desalign_parallel::fixed_block_len(n, 4096);
    if n <= block {
        return dot(a, b);
    }
    desalign_parallel::par_blocks(n, block, 2 * n, |_i, r| dot(&a[r.clone()], &b[r]))
        .into_iter()
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (Matrix, Matrix) {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        (a, b)
    }

    #[test]
    fn add_sub_hadamard() {
        let (a, b) = abc();
        assert_eq!(a.add(&b).as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[5.0, 12.0, 21.0, 32.0]);
    }

    #[test]
    fn matmul_known_case() {
        let (a, b) = abc();
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let (a, _) = abc();
        assert_eq!(a.matmul(&Matrix::eye(2)), a);
        assert_eq!(Matrix::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0, 9.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn reductions() {
        let (a, _) = abc();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.trace(), 5.0);
        assert!((a.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn concatenation() {
        let (a, b) = abc();
        let h = a.hcat(&b);
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 5.0, 6.0]);
        let v = a.vcat(&b);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
        let h3 = Matrix::hcat_all(&[&a, &b, &a]);
        assert_eq!(h3.shape(), (2, 6));
        assert_eq!(h3.row(1), &[3.0, 4.0, 7.0, 8.0, 3.0, 4.0]);
    }

    #[test]
    fn gather_and_scatter() {
        let (a, _) = abc();
        let g = a.gather_rows(&[1, 1, 0]);
        assert_eq!(g.shape(), (3, 2));
        assert_eq!(g.row(0), &[3.0, 4.0]);
        assert_eq!(g.row(2), &[1.0, 2.0]);
        let s = g.scatter_add_rows(&[0, 0, 1], 2);
        assert_eq!(s.row(0), &[6.0, 8.0]); // two copies of row 1 of a
        assert_eq!(s.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn slicing() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        assert_eq!(a.slice_rows(1, 3).row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(a.slice_cols(1, 2).col(0), vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn inner_product_is_frobenius() {
        let (a, b) = abc();
        assert_eq!(a.inner(&b), 5.0 + 12.0 + 21.0 + 32.0);
    }

    #[test]
    fn axpy_accumulates() {
        let (mut a, b) = abc();
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[11.0, 14.0, 17.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_bad_shapes() {
        let (a, _) = abc();
        let bad = Matrix::zeros(3, 3);
        let _ = a.matmul(&bad);
    }
}
