//! Row-wise normalizations: softmax, ℓ2-normalization, layer-norm statistics.
//!
//! These are the numeric primitives behind the attention and fusion layers.
//! They live here (rather than in `desalign-nn`) so both forward kernels and
//! autodiff backward passes can share one implementation.

use crate::Matrix;

impl Matrix {
    /// Numerically stable row-wise softmax.
    ///
    /// Each row is shifted by its maximum before exponentiation, so the
    /// result is finite for any finite input. Rows sum to exactly 1 up to
    /// rounding. Rows are independent, so they run in parallel with
    /// bit-identical results at any thread count.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        let cols = self.cols();
        if out.is_empty() {
            return out;
        }
        // exp dominates: weight the per-element cost accordingly.
        let cost = out.len().saturating_mul(16);
        desalign_parallel::par_rows(out.as_mut_slice(), cols, cost, |_i, row| softmax_slice(row));
        out
    }

    /// Row-wise ℓ2 normalization. Rows with norm below `eps` are left
    /// untouched (returned as-is) to avoid division blow-ups on missing /
    /// zeroed features. Rows are independent, so they run in parallel with
    /// bit-identical results at any thread count.
    pub fn l2_normalize_rows(&self, eps: f32) -> Matrix {
        let mut out = self.clone();
        let cols = self.cols();
        if out.is_empty() {
            return out;
        }
        let cost = out.len().saturating_mul(4);
        desalign_parallel::par_rows(out.as_mut_slice(), cols, cost, |_i, row| {
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > eps {
                for v in row {
                    *v /= norm;
                }
            }
        });
        out
    }

    /// Per-row mean vector (`rows × 1`).
    pub fn row_means(&self) -> Matrix {
        let c = self.cols().max(1) as f32;
        Matrix::column((0..self.rows()).map(|i| self.row(i).iter().sum::<f32>() / c).collect())
    }

    /// Per-row (population) variance vector (`rows × 1`).
    pub fn row_vars(&self) -> Matrix {
        let c = self.cols().max(1) as f32;
        Matrix::column(
            (0..self.rows())
                .map(|i| {
                    let row = self.row(i);
                    let mean = row.iter().sum::<f32>() / c;
                    row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / c
                })
                .collect(),
        )
    }

    /// Layer normalization over each row: `(x − mean) / sqrt(var + eps)`.
    ///
    /// Affine scale/shift, when needed, is applied by the caller (the
    /// autodiff layer keeps γ/β as separate parameters).
    pub fn layernorm_rows(&self, eps: f32) -> Matrix {
        let mut out = self.clone();
        let c = out.cols().max(1) as f32;
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            let mean = row.iter().sum::<f32>() / c;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / c;
            let inv = 1.0 / (var + eps).sqrt();
            for v in row {
                *v = (*v - mean) * inv;
            }
        }
        out
    }

    /// Per-row ℓ2 norms as a `rows × 1` matrix.
    pub fn row_norms(&self) -> Matrix {
        Matrix::column(
            (0..self.rows())
                .map(|i| self.row(i).iter().map(|v| v * v).sum::<f32>().sqrt())
                .collect(),
        )
    }
}

/// In-place numerically stable softmax of one slice.
pub fn softmax_slice(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let s = m.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {i} sums to {sum}");
        }
        // Monotone in logits.
        assert!(s[(0, 2)] > s[(0, 1)] && s[(0, 1)] > s[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let m = Matrix::from_rows(&[&[1000.0, 1001.0]]);
        let s = m.softmax_rows();
        assert!(s.all_finite());
        let t = Matrix::from_rows(&[&[0.0, 1.0]]).softmax_rows();
        assert!((s[(0, 0)] - t[(0, 0)]).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_unit_rows() {
        let m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        let n = m.l2_normalize_rows(1e-12);
        assert!((n.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((n.row(0)[1] - 0.8).abs() < 1e-6);
        // Zero row left intact, not NaN.
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn layernorm_rows_zero_mean_unit_var() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let n = m.layernorm_rows(1e-5);
        let mean: f32 = n.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = n.row(0).iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-2);
    }

    #[test]
    fn row_stats() {
        let m = Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 2.0]]);
        assert_eq!(m.row_means().as_slice(), &[2.0, 2.0]);
        assert_eq!(m.row_vars().as_slice(), &[1.0, 0.0]);
        assert!((m.row_norms().as_slice()[0] - 10.0f32.sqrt()).abs() < 1e-6);
    }
}
