//! Register-tiled dense matmul microkernels with packed operand panels.
//!
//! The three product kernels (`matmul`, `matmul_tn`, `matmul_nt`) share one
//! design: the right operand is packed into `NR`-wide column panels so the
//! inner loop streams contiguous memory, and a microkernel accumulates an
//! `MR × NR` output tile entirely in registers before touching the output
//! matrix once. The old kernels round-tripped every output row through
//! memory once per shared-dimension step; the tile versions do it once per
//! tile, which is where the single-core win comes from.
//!
//! **Bit-exactness invariant.** Tiling here only re-groups *which* output
//! elements are computed together — it never splits or reorders the
//! reduction over the shared dimension. Every accumulator starts at `+0.0`
//! and receives exactly the same multiply-adds, in exactly the same
//! (ascending) order, as the pre-tile kernels:
//!
//! - `matmul` / `matmul_tn` accumulated one scalar per output element over
//!   the shared index ascending; the `MR × NR` register tile keeps one
//!   scalar accumulator per element with the same ascending loop.
//! - `matmul_nt` computed each element with [`dot`](crate::dot)'s fixed
//!   4-lane tree; the `NT` tile keeps all four lanes per element and merges
//!   them with the identical `(l0 + l1) + l2) + l3` expression and the same
//!   sequential tail.
//! - `matmul_tn`'s old zero-skip (`if a == 0.0 { continue }`) is dropped:
//!   starting from `+0.0` an accumulator can never become `-0.0`
//!   (`x + (-x)` rounds to `+0.0`, and `+0.0 + -0.0 = +0.0`), so adding the
//!   `±0.0` products the skip avoided cannot change any bit for finite
//!   operands — and skipping the branch is what lets the loop vectorize.
//!
//! Panel zero-padding is equally inert: padded lanes are computed but never
//! stored. The property suite (`tests/proptest_tiled.rs`) pins all of this
//! by comparing against the naive loop orders bit-for-bit across shapes,
//! including empty, 1×1, and non-multiple-of-tile sizes.
//!
//! Tile sizes are pure compile-time constants — never a function of the
//! thread count — and the parallel split ([`par_row_groups`]
//! (desalign_parallel::par_row_groups), `par_blocks`) hands whole tiles to
//! one thread, so results are bit-identical at any thread count.

use crate::Matrix;
use std::ops::Range;

/// Output-tile height (rows accumulated per microkernel invocation).
/// With [`NR`] = 16 this is 64 `f32` accumulators — 8 AVX2 `ymm` registers
/// (the workspace builds with `target-cpu=native`; see `.cargo/config.toml`)
/// — leaving room for the operand loads.
pub(crate) const MR: usize = 4;

/// Output-tile width. A multiple of every SIMD width we care about; two
/// 256-bit vectors per tile row keeps eight independent accumulator chains
/// per microkernel, enough to hide FP-add latency.
pub(crate) const NR: usize = 16;

/// Output-tile height for the `NT` (dot-tree) microkernel, which needs four
/// accumulator lanes per element to replicate [`dot`](crate::dot) exactly.
pub(crate) const NT_MR: usize = 2;

/// Output-tile width for the `NT` microkernel.
pub(crate) const NT_NR: usize = 4;

/// Packs `src` into `width`-wide column panels.
///
/// Panel `q` covers columns `q*width .. (q+1)*width`, stored row-major and
/// zero-padded to `width` on the right edge: element `(p, jj)` of panel `q`
/// lives at `q*rows*width + p*width + jj`. The packed layout makes the
/// microkernel's B-loads contiguous regardless of the source stride, and a
/// reduction over any row range `p0..p1` indexes the same panels — so one
/// packing is shared by all `par_blocks` partials.
pub(crate) fn pack_cols(src: &Matrix, width: usize) -> Vec<f32> {
    let (rows, cols) = src.shape();
    let panels = cols.div_ceil(width).max(1);
    let mut out = vec![0.0f32; panels * rows * width];
    for q in 0..panels {
        let j0 = q * width;
        let w = width.min(cols.saturating_sub(j0));
        let base = q * rows * width;
        for p in 0..rows {
            let row = src.row(p);
            out[base + p * width..base + p * width + w].copy_from_slice(&row[j0..j0 + w]);
        }
    }
    out
}

/// `matmul` (NN) on one group of up to [`MR`] output rows.
///
/// `a` is the full row-major left operand (`? × k`), `out_chunk` holds the
/// group's rows of the `? × m` output, `b_panels` is [`pack_cols`]`(b, NR)`.
pub(crate) fn gemm_nn_block(a: &[f32], k: usize, m: usize, i0: usize, out_chunk: &mut [f32], b_panels: &[f32]) {
    debug_assert!(m > 0 && k > 0);
    match out_chunk.len() / m {
        1 => nn_rows::<1>(a, k, m, i0, out_chunk, b_panels),
        2 => nn_rows::<2>(a, k, m, i0, out_chunk, b_panels),
        3 => nn_rows::<3>(a, k, m, i0, out_chunk, b_panels),
        _ => nn_rows::<4>(a, k, m, i0, out_chunk, b_panels),
    }
}

fn nn_rows<const M: usize>(a: &[f32], k: usize, m: usize, i0: usize, out_chunk: &mut [f32], b_panels: &[f32]) {
    let arows: [&[f32]; M] = std::array::from_fn(|mi| &a[(i0 + mi) * k..(i0 + mi + 1) * k]);
    for q in 0..m.div_ceil(NR) {
        let j0 = q * NR;
        let width = NR.min(m - j0);
        let panel = &b_panels[q * k * NR..(q + 1) * k * NR];
        let mut acc = [[0.0f32; NR]; M];
        for p in 0..k {
            let bp = &panel[p * NR..p * NR + NR];
            for mi in 0..M {
                let av = arows[mi][p];
                for jj in 0..NR {
                    acc[mi][jj] += av * bp[jj];
                }
            }
        }
        for mi in 0..M {
            out_chunk[mi * m + j0..mi * m + j0 + width].copy_from_slice(&acc[mi][..width]);
        }
    }
}

/// `matmul_tn` on one `par_blocks` row range: accumulates
/// `aᵀ[·, range] × b[range, ·]` into `part` (which arrives zeroed).
///
/// `a_panels` is [`pack_cols`]`(a, MR)` (panels over the `n` output rows),
/// `b_panels` is [`pack_cols`]`(b, NR)`; both are packed once for the whole
/// `k` and shared read-only across blocks.
pub(crate) fn gemm_tn_block(
    a_panels: &[f32],
    b_panels: &[f32],
    range: Range<usize>,
    k: usize,
    n: usize,
    m: usize,
    part: &mut Matrix,
) {
    if n == 0 || m == 0 {
        return;
    }
    for ip in 0..n.div_ceil(MR) {
        let i0 = ip * MR;
        let ap = &a_panels[ip * k * MR..(ip + 1) * k * MR];
        match MR.min(n - i0) {
            1 => tn_rows::<1>(ap, b_panels, range.clone(), k, m, i0, part),
            2 => tn_rows::<2>(ap, b_panels, range.clone(), k, m, i0, part),
            3 => tn_rows::<3>(ap, b_panels, range.clone(), k, m, i0, part),
            _ => tn_rows::<4>(ap, b_panels, range.clone(), k, m, i0, part),
        }
    }
}

fn tn_rows<const M: usize>(ap: &[f32], b_panels: &[f32], range: Range<usize>, k: usize, m: usize, i0: usize, part: &mut Matrix) {
    for q in 0..m.div_ceil(NR) {
        let j0 = q * NR;
        let width = NR.min(m - j0);
        let panel = &b_panels[q * k * NR..(q + 1) * k * NR];
        let mut acc = [[0.0f32; NR]; M];
        for p in range.clone() {
            let av = &ap[p * MR..p * MR + MR];
            let bp = &panel[p * NR..p * NR + NR];
            for mi in 0..M {
                let a = av[mi];
                for jj in 0..NR {
                    acc[mi][jj] += a * bp[jj];
                }
            }
        }
        for mi in 0..M {
            part.row_mut(i0 + mi)[j0..j0 + width].copy_from_slice(&acc[mi][..width]);
        }
    }
}

/// `matmul_nt` on one group of up to [`NT_MR`] output rows.
///
/// `a` (`? × k`) and `b` (`m × k`) are both row-major; no packing is needed
/// because the dot-product reduction already streams both operands'
/// contiguous rows.
pub(crate) fn gemm_nt_block(a: &[f32], b: &[f32], k: usize, m: usize, i0: usize, out_chunk: &mut [f32]) {
    debug_assert!(m > 0);
    match out_chunk.len() / m {
        1 => nt_rows::<1>(a, b, k, m, i0, out_chunk),
        _ => nt_rows::<2>(a, b, k, m, i0, out_chunk),
    }
}

fn nt_rows<const M: usize>(a: &[f32], b: &[f32], k: usize, m: usize, i0: usize, out_chunk: &mut [f32]) {
    let quads = m / NT_NR;
    for q in 0..quads {
        nt_tile::<M, { NT_NR }>(a, b, k, m, i0, q * NT_NR, out_chunk);
    }
    match m - quads * NT_NR {
        1 => nt_tile::<M, 1>(a, b, k, m, i0, quads * NT_NR, out_chunk),
        2 => nt_tile::<M, 2>(a, b, k, m, i0, quads * NT_NR, out_chunk),
        3 => nt_tile::<M, 3>(a, b, k, m, i0, quads * NT_NR, out_chunk),
        _ => {}
    }
}

/// One `M × N` tile of `a × bᵀ`, each element replicating
/// [`dot`](crate::dot)'s exact 4-lane accumulation tree.
fn nt_tile<const M: usize, const N: usize>(a: &[f32], b: &[f32], k: usize, m: usize, i0: usize, j0: usize, out_chunk: &mut [f32]) {
    let arows: [&[f32]; M] = std::array::from_fn(|mi| &a[(i0 + mi) * k..(i0 + mi + 1) * k]);
    let brows: [&[f32]; N] = std::array::from_fn(|nj| &b[(j0 + nj) * k..(j0 + nj + 1) * k]);
    let chunks = k / 4;
    let mut acc = [[[0.0f32; 4]; N]; M];
    for c in 0..chunks {
        let i = c * 4;
        for mi in 0..M {
            for nj in 0..N {
                for l in 0..4 {
                    acc[mi][nj][l] += arows[mi][i + l] * brows[nj][i + l];
                }
            }
        }
    }
    for mi in 0..M {
        for nj in 0..N {
            let lanes = acc[mi][nj];
            let mut s = lanes[0] + lanes[1] + lanes[2] + lanes[3];
            for i in chunks * 4..k {
                s += arows[mi][i] * brows[nj][i];
            }
            out_chunk[mi * m + j0 + nj] = s;
        }
    }
}
