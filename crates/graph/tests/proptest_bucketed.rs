//! Bit-exactness suite for the nnz-bucketed sparse kernels.
//!
//! Same policy as the dense tile suite (`desalign-tensor`,
//! `tests/proptest_tiled.rs`): bucketing and register-chunking re-group
//! work but never re-associate a reduction, so every kernel must match a
//! simple reference **bit-for-bit** (compared on `f32::to_bits`) across
//! row-nnz buckets (0, 1, 2, many), feature widths around the register
//! chunk, and 1/2/7 threads. The fused forms (`dirichlet_energy`,
//! `spmm_skip_into`) are additionally pinned against their unfused
//! compositions.
//!
//! SpMM's numeric contract (see `Csr::spmm_row_into`): each output element
//! folds the row's products in stored order via **fused multiply-add** —
//! one rounding per `v·x + acc`. The reference below therefore uses
//! `f32::mul_add`; the plain mul-then-add fold is the pre-migration
//! contract and differs in the last bit.

use desalign_graph::{dirichlet_energy, Csr, UndirectedGraph};
use desalign_parallel::with_threads;
use desalign_tensor::{Matrix, Rng64};
use desalign_testkit::{check, ensure, gen};

const CASES: u64 = 24;

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Random sparse matrix whose row lengths deliberately hit every nnz
/// bucket: empty rows, singletons, pairs, and long rows.
fn random_csr(rng: &mut Rng64, rows: usize, cols: usize) -> Csr {
    let mut triplets = Vec::new();
    for r in 0..rows {
        let nnz = match rng.gen_range(0..5usize) {
            0 => 0,
            1 => 1,
            2 => 2,
            _ => rng.gen_range(3..cols.max(4)).min(cols),
        };
        let mut cols_seen = gen::usize_vec(rng, nnz, cols);
        cols_seen.sort_unstable();
        cols_seen.dedup();
        for c in cols_seen {
            triplets.push((r, c, gen::f32_vec(rng, 1, -3.0, 3.0)[0]));
        }
    }
    Csr::from_coo(rows, cols, triplets)
}

/// The canonical spmm fold: zeroed output, `out_row = fma(v, x_row,
/// out_row)` per nonzero in stored order, serial, no chunking.
fn naive_spmm(m: &Csr, x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), x.cols());
    for i in 0..m.rows() {
        for (j, v) in m.row(i) {
            for (o, &xv) in out.row_mut(i).iter_mut().zip(x.row(j)) {
                *o = v.mul_add(xv, *o);
            }
        }
    }
    out
}

/// The pre-unroll spmv: sequential `sum()` fold per row.
fn naive_spmv(m: &Csr, x: &[f32]) -> Vec<f32> {
    (0..m.rows()).map(|i| m.row(i).map(|(j, v)| v * x[j]).sum()).collect()
}

#[test]
fn bucketed_spmm_bit_matches_naive_reference() {
    // Widths straddle the 16-wide register chunk: below, at, above, and
    // non-multiple; plus empty operands.
    for &(rows, cols, d) in &[(7usize, 5usize, 1usize), (9, 9, 15), (8, 8, 16), (11, 6, 37), (5, 4, 0), (0, 3, 4), (1, 1, 1)] {
        check(&format!("bucketed_spmm_{rows}x{cols}x{d}"), CASES, |rng| (random_csr(rng, rows, cols), gen::matrix(rng, cols, d, -4.0, 4.0)), |(m, x)| {
            let want = bits(&naive_spmm(m, x));
            for threads in [1usize, 2, 7] {
                let got = with_threads(threads, || m.spmm(x));
                ensure!(bits(&got) == want, "spmm {rows}x{cols}x{d} diverged at {threads} threads");
            }
            Ok(())
        });
    }
}

#[test]
fn spmm_t_serial_scatter_bit_matches_transposed_spmm() {
    // `spmm_t` picks between a serial scatter and `transpose().spmm(x)` by
    // cost and thread count — the two must agree bit for bit (both fold
    // output elements as stored-order fused multiply-adds over ascending
    // source rows), or results would depend on the dispatch decision.
    check("spmm_t_branches", CASES, |rng| (random_csr(rng, 12, 9), gen::matrix(rng, 12, 17, -4.0, 4.0)), |(m, x)| {
        let want = bits(&m.transpose().spmm(x));
        for threads in [1usize, 2, 7] {
            let got = with_threads(threads, || m.spmm_t(x));
            ensure!(bits(&got) == want, "spmm_t diverged from transposed spmm at {threads} threads");
        }
        Ok(())
    });
}

#[test]
fn unrolled_spmv_bit_matches_sequential_fold() {
    check("unrolled_spmv", CASES, |rng| (random_csr(rng, 23, 17), gen::f32_vec(rng, 17, -4.0, 4.0)), |(m, x)| {
        let want: Vec<u32> = naive_spmv(m, x).iter().map(|v| v.to_bits()).collect();
        for threads in [1usize, 2, 7] {
            let got: Vec<u32> = with_threads(threads, || m.spmv(x)).iter().map(|v| v.to_bits()).collect();
            ensure!(got == want, "spmv diverged at {threads} threads");
        }
        Ok(())
    });
}

#[test]
fn fused_dirichlet_energy_bit_matches_unfused() {
    // Sizes on both sides of the par_dot single-block threshold (4096
    // flattened elements) so both the inline and the block-merge reduction
    // paths are exercised.
    for &(n, d) in &[(12usize, 3usize), (200, 32), (96, 64)] {
        check(&format!("fused_dirichlet_{n}x{d}"), 12, |rng| {
            let g = UndirectedGraph::new(n, (0..n).map(|i| (i, (i + 1) % n)));
            (g.laplacian(), gen::matrix(rng, n, d, -2.0, 2.0))
        }, |(lap, x)| {
            let want = lap.spmm(x).inner(x).to_bits();
            for threads in [1usize, 2, 7] {
                let got = with_threads(threads, || dirichlet_energy(lap, x)).to_bits();
                ensure!(got == want, "fused energy {n}x{d} diverged at {threads} threads");
            }
            Ok(())
        });
    }
}

#[test]
fn spmm_skip_into_matches_spmm_then_reset() {
    check("spmm_skip_into", CASES, |rng| {
        let m = random_csr(rng, 10, 10);
        let x = gen::matrix(rng, 10, 19, -4.0, 4.0);
        let x0 = gen::matrix(rng, 10, 19, -4.0, 4.0);
        let skip = gen::bool_vec(rng, 10);
        (m, x, x0, skip)
    }, |(m, x, x0, skip)| {
        let mut want = m.spmm(x);
        for (i, &k) in skip.iter().enumerate() {
            if k {
                want.row_mut(i).copy_from_slice(x0.row(i));
            }
        }
        for threads in [1usize, 2, 7] {
            let mut got = Matrix::zeros(10, 19);
            with_threads(threads, || m.spmm_skip_into(x, skip, x0, &mut got));
            ensure!(bits(&got) == bits(&want), "spmm_skip_into diverged at {threads} threads");
        }
        Ok(())
    });
}
