//! Determinism-under-parallelism properties for the sparse kernels: SpMM,
//! its transpose, SpMV, the Dirichlet energy, and power iteration must all
//! produce **byte-identical** results at 1, 2, and 7 threads.
//!
//! Graph sizes are chosen so `nnz · d` exceeds
//! `desalign_parallel::PAR_MIN_COST` and the multi-thread runs genuinely
//! take the parallel paths (including `spmm_t`'s switch to the transposed
//! row-parallel form).

use desalign_graph::{dirichlet_energy, lambda_max, Csr, UndirectedGraph};
use desalign_parallel::with_threads;
use desalign_tensor::{Matrix, Rng64};
use desalign_testkit::{check, ensure, gen};

const CASES: u64 = 8;
const THREADS: [usize; 3] = [1, 2, 7];

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn random_graph(rng: &mut Rng64, n: usize, edges: usize) -> UndirectedGraph {
    let ends: Vec<(usize, usize)> = (0..edges).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect();
    UndirectedGraph::new(n, ends.into_iter().filter(|&(a, b)| a != b))
}

fn random_rect_csr(rng: &mut Rng64, rows: usize, cols: usize, nnz: usize) -> Csr {
    let triplets: Vec<(usize, usize, f32)> =
        (0..nnz).map(|_| (rng.gen_range(0..rows), rng.gen_range(0..cols), rng.gen_range(-2.0f32..2.0))).collect();
    Csr::from_coo(rows, cols, triplets)
}

fn identical_matrix_bits(name: &str, f: impl Fn() -> Matrix) -> Result<(), String> {
    let reference = with_threads(THREADS[0], &f);
    for &t in &THREADS[1..] {
        let got = with_threads(t, &f);
        ensure!(bits(&got) == bits(&reference), "{name}: {t}-thread bits diverge from serial");
    }
    Ok(())
}

fn identical_scalar_bits(name: &str, f: impl Fn() -> f32) -> Result<(), String> {
    let reference = with_threads(THREADS[0], &f).to_bits();
    for &t in &THREADS[1..] {
        let got = with_threads(t, &f).to_bits();
        ensure!(got == reference, "{name}: {t}-thread bits {got:#x} vs serial {reference:#x}");
    }
    Ok(())
}

#[test]
fn spmm_is_thread_count_invariant() {
    check("spmm_is_thread_count_invariant", CASES, |rng| {
        let adj = random_graph(rng, 150, 600).normalized_adjacency(true);
        let x = gen::matrix(rng, 150, 32, -5.0, 5.0);
        (adj, x)
    }, |(adj, x)| {
        identical_matrix_bits("spmm", || adj.spmm(x))
    });
}

#[test]
fn spmm_t_is_thread_count_invariant() {
    // Rectangular, so the transposed row-parallel form is genuinely
    // different from the forward kernel.
    check("spmm_t_is_thread_count_invariant", CASES, |rng| {
        let m = random_rect_csr(rng, 120, 80, 2000);
        let x = gen::matrix(rng, 120, 32, -5.0, 5.0);
        (m, x)
    }, |(m, x)| {
        identical_matrix_bits("spmm_t", || m.spmm_t(x))
    });
}

#[test]
fn spmv_is_thread_count_invariant() {
    check("spmv_is_thread_count_invariant", CASES, |rng| {
        let m = random_rect_csr(rng, 200, 200, 20_000);
        let x = gen::f32_vec(rng, 200, -5.0, 5.0);
        (m, x)
    }, |(m, x)| {
        let as_bits = |v: &[f32]| v.iter().map(|y| y.to_bits()).collect::<Vec<_>>();
        let reference = as_bits(&with_threads(THREADS[0], || m.spmv(x)));
        for &t in &THREADS[1..] {
            let got = as_bits(&with_threads(t, || m.spmv(x)));
            ensure!(got == reference, "spmv: {t}-thread bits diverge from serial");
        }
        Ok(())
    });
}

#[test]
fn dirichlet_energy_is_thread_count_invariant() {
    check("dirichlet_energy_is_thread_count_invariant", CASES, |rng| {
        let lap = random_graph(rng, 150, 600).laplacian();
        let x = gen::matrix(rng, 150, 32, -5.0, 5.0);
        (lap, x)
    }, |(lap, x)| {
        identical_scalar_bits("dirichlet_energy", || dirichlet_energy(lap, x))
    });
}

#[test]
fn lambda_max_is_thread_count_invariant() {
    check("lambda_max_is_thread_count_invariant", CASES, |rng| random_graph(rng, 200, 1200).laplacian(), |lap| {
        identical_scalar_bits("lambda_max", || lambda_max(lap, 50, 1e-12))
    });
}
