//! Property tests for the paper's spectral claims (Propositions 1–2,
//! Corollary 1) and the propagation machinery, over random graphs and
//! features.

use desalign_graph::{
    dirichlet_energy, energy_gap_bounds, interpolation_lower_bound, lambda_max, propagate_features,
    singular_value_range, Csr, PropagationConfig, SemanticPartition, UndirectedGraph,
};
use desalign_tensor::Matrix;
use desalign_testkit::{check, ensure, ensure_eq, gen, Rng64};

const CASES: u64 = 48;

/// Random connected-ish graph: a ring plus random chords.
fn graph(rng: &mut Rng64, n: usize) -> UndirectedGraph {
    let num_chords = rng.gen_range(0..2 * n);
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    edges.extend((0..num_chords).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))));
    UndirectedGraph::new(n, edges)
}

fn features(rng: &mut Rng64, n: usize, d: usize) -> Matrix {
    gen::matrix(rng, n, d, -5.0, 5.0)
}

#[test]
fn dirichlet_energy_is_nonnegative() {
    check("dirichlet_energy_is_nonnegative", CASES, |rng| (graph(rng, 10), features(rng, 10, 3)), |(g, x)| {
        let e = dirichlet_energy(&g.laplacian(), x);
        ensure!(e >= -1e-2, "PSD violated: {e}");
        Ok(())
    });
}

#[test]
fn laplacian_eigenvalues_bounded_by_two() {
    check("laplacian_eigenvalues_bounded_by_two", CASES, |rng| graph(rng, 12), |g| {
        let lmax = lambda_max(&g.laplacian(), 400, 1e-7);
        ensure!((0.0..2.0 + 1e-3).contains(&lmax), "λ_max = {lmax}");
        Ok(())
    });
}

#[test]
fn proposition1_first_order_bound() {
    check(
        "proposition1_first_order_bound",
        CASES,
        |rng| (graph(rng, 8), features(rng, 8, 2), features(rng, 8, 2)),
        |(g, x, x_hat)| {
            let lap = g.laplacian();
            let (lhs, rhs) = interpolation_lower_bound(&lap, x, x_hat);
            ensure!(lhs >= rhs - 1e-2, "Prop. 1 violated: {lhs} < {rhs}");
            Ok(())
        },
    );
}

#[test]
fn corollary1_lower_bound_on_distance() {
    check(
        "corollary1_lower_bound_on_distance",
        CASES,
        |rng| (graph(rng, 8), features(rng, 8, 2), features(rng, 8, 2)),
        |(g, x, x_hat)| {
            let lap = g.laplacian();
            let lmax = lambda_max(&lap, 400, 1e-7).max(1e-3);
            let (lower, _upper) = energy_gap_bounds(&lap, lmax, x, x_hat);
            let dist = x_hat.sub(x).frobenius_norm();
            ensure!(dist >= lower - 1e-2, "distance {dist} below Cor. 1 lower bound {lower}");
            Ok(())
        },
    );
}

#[test]
fn proposition2_bounds_hold() {
    check(
        "proposition2_bounds_hold",
        CASES,
        |rng| (graph(rng, 9), features(rng, 9, 4), features(rng, 4, 4)),
        |(g, x, w)| {
            let lap = g.laplacian();
            let e_prev = dirichlet_energy(&lap, x);
            let e_next = dirichlet_energy(&lap, &x.matmul(w));
            let (smin, smax) = singular_value_range(w, 600, 1e-7);
            let tol = 1e-2 * (1.0 + e_prev.abs());
            ensure!(e_next >= smin * smin * e_prev - tol, "lower: {} < {}", e_next, smin * smin * e_prev);
            ensure!(e_next <= smax * smax * e_prev + tol, "upper: {} > {}", e_next, smax * smax * e_prev);
            Ok(())
        },
    );
}

#[test]
fn propagation_never_increases_energy_without_boundary() {
    check(
        "propagation_never_increases_energy_without_boundary",
        CASES,
        |rng| (graph(rng, 10), features(rng, 10, 3)),
        |(g, x)| {
            let adj = g.normalized_adjacency(true);
            let lap = g.laplacian();
            let states =
                propagate_features(&adj, x, &[false; 10], &PropagationConfig { iterations: 4, step: 1.0, reset_known: false });
            let energies: Vec<f32> = states.iter().map(|s| dirichlet_energy(&lap, s)).collect();
            for w in energies.windows(2) {
                ensure!(w[1] <= w[0] + 1e-2 * (1.0 + w[0].abs()), "energy rose: {energies:?}");
            }
            Ok(())
        },
    );
}

#[test]
fn propagation_preserves_boundary_rows() {
    check(
        "propagation_preserves_boundary_rows",
        CASES,
        |rng| (graph(rng, 10), features(rng, 10, 3), gen::bool_vec(rng, 10)),
        |(g, x, mask)| {
            let adj = g.normalized_adjacency(true);
            let states = propagate_features(&adj, x, mask, &PropagationConfig { iterations: 3, step: 1.0, reset_known: true });
            for s in &states {
                for (i, &known) in mask.iter().enumerate() {
                    if known {
                        ensure_eq!(s.row(i), x.row(i));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn spmm_matches_dense_reference() {
    check("spmm_matches_dense_reference", CASES, |rng| (graph(rng, 8), features(rng, 8, 3)), |(g, x)| {
        let a = g.normalized_adjacency(true);
        let sparse = a.spmm(x);
        let dense = a.to_dense().matmul(x);
        ensure!(sparse.sub(&dense).max_abs() < 1e-3);
        Ok(())
    });
}

#[test]
fn csr_transpose_round_trip() {
    check("csr_transpose_round_trip", CASES, |rng| graph(rng, 7), |g| {
        let a = g.adjacency();
        ensure_eq!(a.transpose().transpose(), a);
        Ok(())
    });
}

#[test]
fn partition_permutation_is_bijective() {
    check("partition_permutation_is_bijective", CASES, |rng| gen::usize_vec(rng, 12, 3), |mask| {
        let has: Vec<bool> = mask.iter().map(|&m| m != 2).collect();
        let full: Vec<bool> = mask.iter().map(|&m| m == 0).collect();
        let p = SemanticPartition::from_flags(&has, &full);
        ensure!(p.is_valid_cover(12));
        let mut perm = p.permutation();
        perm.sort_unstable();
        ensure_eq!(perm, (0..12).collect::<Vec<_>>());
        Ok(())
    });
}

#[test]
fn submatrix_of_symmetric_diagonal_blocks_is_symmetric() {
    check("submatrix_of_symmetric_diagonal_blocks_is_symmetric", CASES, |rng| graph(rng, 10), |g| {
        let lap = g.laplacian();
        let idx: Vec<usize> = (0..10).step_by(2).collect();
        let sub = lap.submatrix(&idx, &idx);
        ensure!(sub.is_symmetric(1e-5));
        Ok(())
    });
}

#[test]
fn csr_from_coo_merges_duplicates_additively() {
    check(
        "csr_from_coo_merges_duplicates_additively",
        CASES,
        |rng| {
            let len = rng.gen_range(0..20usize);
            (0..len)
                .map(|_| (rng.gen_range(0..4usize), rng.gen_range(0..4usize), rng.gen_range(-3.0f32..3.0)))
                .collect::<Vec<_>>()
        },
        |entries| {
            let m = Csr::from_coo(4, 4, entries.clone());
            let mut dense = Matrix::zeros(4, 4);
            for &(r, c, v) in entries {
                dense[(r, c)] += v;
            }
            ensure!(m.to_dense().sub(&dense).max_abs() < 1e-4);
            Ok(())
        },
    );
}
