//! Property tests for the paper's spectral claims (Propositions 1–2,
//! Corollary 1) and the propagation machinery, over random graphs and
//! features.

use desalign_graph::{
    dirichlet_energy, energy_gap_bounds, interpolation_lower_bound, lambda_max, propagate_features,
    singular_value_range, Csr, PropagationConfig, SemanticPartition, UndirectedGraph,
};
use desalign_tensor::Matrix;
use proptest::prelude::*;

/// Random connected-ish graph: a ring plus random chords.
fn graph(n: usize) -> impl Strategy<Value = UndirectedGraph> {
    proptest::collection::vec((0..n, 0..n), 0..2 * n).prop_map(move |chords| {
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.extend(chords);
        UndirectedGraph::new(n, edges)
    })
}

fn features(n: usize, d: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f32..5.0, n * d).prop_map(move |v| Matrix::from_vec(n, d, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dirichlet_energy_is_nonnegative(g in graph(10), x in features(10, 3)) {
        let e = dirichlet_energy(&g.laplacian(), &x);
        prop_assert!(e >= -1e-2, "PSD violated: {}", e);
    }

    #[test]
    fn laplacian_eigenvalues_bounded_by_two(g in graph(12)) {
        let lmax = lambda_max(&g.laplacian(), 400, 1e-7);
        prop_assert!((0.0..2.0 + 1e-3).contains(&lmax), "λ_max = {}", lmax);
    }

    #[test]
    fn proposition1_first_order_bound(g in graph(8), x in features(8, 2), x_hat in features(8, 2)) {
        let lap = g.laplacian();
        let (lhs, rhs) = interpolation_lower_bound(&lap, &x, &x_hat);
        prop_assert!(lhs >= rhs - 1e-2, "Prop. 1 violated: {} < {}", lhs, rhs);
    }

    #[test]
    fn corollary1_lower_bound_on_distance(g in graph(8), x in features(8, 2), x_hat in features(8, 2)) {
        let lap = g.laplacian();
        let lmax = lambda_max(&lap, 400, 1e-7).max(1e-3);
        let (lower, _upper) = energy_gap_bounds(&lap, lmax, &x, &x_hat);
        let dist = x_hat.sub(&x).frobenius_norm();
        prop_assert!(dist >= lower - 1e-2, "distance {} below Cor. 1 lower bound {}", dist, lower);
    }

    #[test]
    fn proposition2_bounds_hold(g in graph(9), x in features(9, 4), w in features(4, 4)) {
        let lap = g.laplacian();
        let e_prev = dirichlet_energy(&lap, &x);
        let e_next = dirichlet_energy(&lap, &x.matmul(&w));
        let (smin, smax) = singular_value_range(&w, 600, 1e-7);
        let tol = 1e-2 * (1.0 + e_prev.abs());
        prop_assert!(e_next >= smin * smin * e_prev - tol, "lower: {} < {}", e_next, smin * smin * e_prev);
        prop_assert!(e_next <= smax * smax * e_prev + tol, "upper: {} > {}", e_next, smax * smax * e_prev);
    }

    #[test]
    fn propagation_never_increases_energy_without_boundary(g in graph(10), x in features(10, 3)) {
        let adj = g.normalized_adjacency(true);
        let lap = g.laplacian();
        let states = propagate_features(&adj, &x, &[false; 10], &PropagationConfig { iterations: 4, step: 1.0, reset_known: false });
        let energies: Vec<f32> = states.iter().map(|s| dirichlet_energy(&lap, s)).collect();
        for w in energies.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-2 * (1.0 + w[0].abs()), "energy rose: {:?}", energies);
        }
    }

    #[test]
    fn propagation_preserves_boundary_rows(g in graph(10), x in features(10, 3), mask in proptest::collection::vec(any::<bool>(), 10)) {
        let adj = g.normalized_adjacency(true);
        let states = propagate_features(&adj, &x, &mask, &PropagationConfig { iterations: 3, step: 1.0, reset_known: true });
        for s in &states {
            for (i, &known) in mask.iter().enumerate() {
                if known {
                    prop_assert_eq!(s.row(i), x.row(i));
                }
            }
        }
    }

    #[test]
    fn spmm_matches_dense_reference(g in graph(8), x in features(8, 3)) {
        let a = g.normalized_adjacency(true);
        let sparse = a.spmm(&x);
        let dense = a.to_dense().matmul(&x);
        prop_assert!(sparse.sub(&dense).max_abs() < 1e-3);
    }

    #[test]
    fn csr_transpose_round_trip(g in graph(7)) {
        let a = g.adjacency();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn partition_permutation_is_bijective(mask in proptest::collection::vec(0u8..3, 12)) {
        let has: Vec<bool> = mask.iter().map(|&m| m != 2).collect();
        let full: Vec<bool> = mask.iter().map(|&m| m == 0).collect();
        let p = SemanticPartition::from_flags(&has, &full);
        prop_assert!(p.is_valid_cover(12));
        let mut perm = p.permutation();
        perm.sort_unstable();
        prop_assert_eq!(perm, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn submatrix_of_symmetric_diagonal_blocks_is_symmetric(g in graph(10)) {
        let lap = g.laplacian();
        let idx: Vec<usize> = (0..10).step_by(2).collect();
        let sub = lap.submatrix(&idx, &idx);
        prop_assert!(sub.is_symmetric(1e-5));
    }

    #[test]
    fn csr_from_coo_merges_duplicates_additively(entries in proptest::collection::vec((0usize..4, 0usize..4, -3.0f32..3.0), 0..20)) {
        let m = Csr::from_coo(4, 4, entries.clone());
        let mut dense = Matrix::zeros(4, 4);
        for (r, c, v) in entries {
            dense[(r, c)] += v;
        }
        prop_assert!(m.to_dense().sub(&dense).max_abs() < 1e-4);
    }
}
