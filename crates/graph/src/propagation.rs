//! Feature propagation — Section IV-C of the paper.
//!
//! Two interchangeable solvers for the interpolation problem "reconstruct
//! missing modal features from existing ones":
//!
//! 1. [`propagate_features`] — the explicit Euler scheme of Eq. 20–22:
//!    repeat `x ← Ã x`, then reset the known (boundary) rows to their true
//!    values. `O(nnz · d)` per iteration, the paper's scalable choice
//!    (Algorithm 1, lines 11–14).
//! 2. [`closed_form_interpolation`] — the exact minimizer of Eq. 19,
//!    `x_o2 = −Δ_o2o2^{-1}(Δ_o2c x_c + Δ_o2o1 x_o1)`, solved by conjugate
//!    gradient on the (SPD) sub-Laplacian. `O(|ε_o|³)`-ish and only for
//!    small graphs — used in tests as the oracle the Euler scheme converges
//!    to, exactly as the paper positions it.

use crate::{Csr, SemanticPartition};
use desalign_tensor::Matrix;

/// Configuration for the explicit-Euler propagation scheme.
#[derive(Clone, Copy, Debug)]
pub struct PropagationConfig {
    /// Number of propagation rounds `n_p` (Figure 4 sweeps this).
    pub iterations: usize,
    /// Euler step size `h`; `1.0` reduces Eq. 20 to the `x ← Ãx` form of
    /// Eq. 21–22.
    pub step: f32,
    /// If true, rows of known entities are reset to their original values
    /// after every round (the boundary condition `x_c(t) = x_c`). The paper
    /// notes that *in practice* they let consistent features join the
    /// propagation to "simplify the application" (§V-F) — set `false` to
    /// reproduce that variant.
    pub reset_known: bool,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        Self { iterations: 1, step: 1.0, reset_known: true }
    }
}

/// Runs Semantic Propagation and returns the feature matrix after **each**
/// round (index 0 = the input), so callers can average pairwise similarities
/// over all rounds as Algorithm 1 does.
///
/// `adj_norm` must be the symmetrically normalized adjacency `Ã` (with
/// self-loops) and `known[i]` marks boundary entities whose features are
/// trusted.
///
/// ```
/// use desalign_graph::{propagate_features, PropagationConfig, UndirectedGraph};
/// use desalign_tensor::Matrix;
///
/// let g = UndirectedGraph::new(3, vec![(0, 1), (1, 2)]);
/// let adj = g.normalized_adjacency(true);
/// // Entity 1's feature is missing (zero); its neighbours are known.
/// let x0 = Matrix::from_rows(&[&[1.0], &[0.0], &[1.0]]);
/// let known = [true, false, true];
/// let states = propagate_features(&adj, &x0, &known, &PropagationConfig {
///     iterations: 4, step: 1.0, reset_known: true,
/// });
/// assert_eq!(states.len(), 5);                  // input + one state per round
/// assert!(states.last().unwrap()[(1, 0)] > 0.5); // reconstructed from neighbours
/// ```
///
/// # Panics
/// Panics if shapes disagree.
pub fn propagate_features(
    adj_norm: &Csr,
    x0: &Matrix,
    known: &[bool],
    cfg: &PropagationConfig,
) -> Vec<Matrix> {
    assert_eq!(adj_norm.rows(), x0.rows(), "propagate_features: Ã is {}x{}, features have {} rows", adj_norm.rows(), adj_norm.cols(), x0.rows());
    assert_eq!(known.len(), x0.rows(), "propagate_features: known mask length mismatch");
    let _span = desalign_telemetry::span("propagate_features");
    let full_step = (cfg.step - 1.0).abs() < f32::EPSILON;
    if desalign_telemetry::enabled() {
        desalign_telemetry::counter("sp.iterations").add(cfg.iterations as u64);
        if full_step && cfg.reset_known {
            let skipped = known.iter().filter(|&&k| k).count();
            desalign_telemetry::counter("sp.rows_skipped").add((skipped * cfg.iterations) as u64);
        }
    }
    let mut states = Vec::with_capacity(cfg.iterations + 1);
    states.push(x0.clone());
    // Every round is returned, so each state is produced directly into its
    // own `states` slot (alloc-and-move). A ping-pong scratch would not
    // save the allocation here — it would *add* a full-matrix clone per
    // round on top of it, which at bench scale costs more than the SpMM
    // itself (fresh pages fault once either way; the clone pays a second
    // copy). Callers that never keep intermediate states (the per-block
    // loop in `desalign-core`) do ping-pong, because there the scratch is
    // genuinely reused.
    for _ in 0..cfg.iterations {
        let prev = states.last().expect("states starts non-empty");
        let mut next = Matrix::zeros(x0.rows(), x0.cols());
        if full_step && cfg.reset_known {
            // Fused gather→propagate→reset: boundary rows are about to be
            // overwritten with x0, so their SpMM work is skipped entirely
            // (bit-identical — see `Csr::spmm_skip_into`).
            adj_norm.spmm_skip_into(prev, known, x0, &mut next);
        } else {
            adj_norm.spmm_into(prev, &mut next);
            if !full_step {
                // x ← x − h·Δx = (1−h)·x + h·Ãx, fused with the exact
                // `scale`-then-`axpy` operation order of the original.
                let h = cfg.step;
                for (nv, &pv) in next.as_mut_slice().iter_mut().zip(prev.as_slice()) {
                    *nv = pv * (1.0 - h) + h * *nv;
                }
            }
            if cfg.reset_known {
                for (i, &k) in known.iter().enumerate() {
                    if k {
                        next.row_mut(i).copy_from_slice(x0.row(i));
                    }
                }
            }
        }
        states.push(next);
    }
    states
}

/// Exact interpolation of missing features: the closed-form solution of
/// Eq. 19, computed with conjugate gradient on the sub-Laplacian `Δ_oo`
/// (SPD for a connected graph with a non-empty boundary).
///
/// Returns a full feature matrix: known rows keep their input values,
/// unknown rows (`partial ∪ missing` of the partition, i.e. every entity not
/// in `consistent`) receive the energy-minimizing interpolation.
///
/// # Panics
/// Panics if shapes disagree or the partition does not cover the graph.
pub fn closed_form_interpolation(
    laplacian: &Csr,
    x0: &Matrix,
    partition: &SemanticPartition,
    cg_iters: usize,
    cg_tol: f32,
) -> Matrix {
    let n = x0.rows();
    assert!(partition.is_valid_cover(n), "closed_form_interpolation: partition does not cover 0..{n}");
    // Treat everything outside `consistent` as unknown.
    let unknown: Vec<usize> = partition.partial.iter().chain(&partition.missing).copied().collect();
    if unknown.is_empty() {
        return x0.clone();
    }
    let boundary = &partition.consistent;
    let l_uu = laplacian.submatrix(&unknown, &unknown);
    let l_ub = laplacian.submatrix(&unknown, boundary);
    let x_b = x0.gather_rows(boundary);
    // Solve Δ_uu · x_u = −Δ_ub · x_b, one CG per feature column batched as
    // a matrix (CG over block RHS, each column independently).
    let rhs = l_ub.spmm(&x_b).scale(-1.0);
    let x_u = cg_solve(&l_uu, &rhs, cg_iters, cg_tol);
    let mut out = x0.clone();
    for (row_u, &orig) in unknown.iter().enumerate() {
        out.row_mut(orig).copy_from_slice(x_u.row(row_u));
    }
    out
}

/// Conjugate gradient on an SPD sparse system with matrix RHS (each column
/// solved simultaneously with shared sparsity work).
fn cg_solve(a: &Csr, b: &Matrix, max_iters: usize, tol: f32) -> Matrix {
    let mut x = Matrix::zeros(b.rows(), b.cols());
    let mut r = b.clone(); // r = b − A·0
    let mut p = r.clone();
    let mut rs_old = r.inner(&r);
    if rs_old.sqrt() < tol {
        return x;
    }
    for _ in 0..max_iters {
        let ap = a.spmm(&p);
        let p_ap = p.inner(&ap);
        if p_ap.abs() < 1e-20 {
            break;
        }
        let alpha = rs_old / p_ap;
        x.axpy(alpha, &p);
        r.axpy(-alpha, &ap);
        let rs_new = r.inner(&r);
        if rs_new.sqrt() < tol {
            break;
        }
        let beta = rs_new / rs_old;
        p = r.add(&p.scale(beta));
        rs_old = rs_new;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dirichlet_energy, UndirectedGraph};

    fn ring(n: usize) -> UndirectedGraph {
        UndirectedGraph::new(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn propagation_preserves_known_rows() {
        let g = ring(6);
        let a = g.normalized_adjacency(true);
        let x0 = Matrix::from_fn(6, 2, |i, j| (i * 2 + j) as f32);
        let known = [true, false, true, false, true, false];
        let states = propagate_features(&a, &x0, &known, &PropagationConfig { iterations: 5, ..Default::default() });
        for s in &states {
            for (i, &k) in known.iter().enumerate() {
                if k {
                    assert_eq!(s.row(i), x0.row(i), "known row {i} changed");
                }
            }
        }
        assert_eq!(states.len(), 6);
    }

    #[test]
    fn propagation_fills_missing_rows_from_neighbours() {
        let g = ring(4);
        let a = g.normalized_adjacency(true);
        let mut x0 = Matrix::full(4, 1, 1.0);
        x0.row_mut(2)[0] = 0.0; // missing
        let known = [true, true, false, true];
        let states = propagate_features(&a, &x0, &known, &PropagationConfig { iterations: 10, ..Default::default() });
        let last = states.last().expect("states never empty");
        assert!(last[(2, 0)] > 0.5, "missing row should pull towards neighbours, got {}", last[(2, 0)]);
    }

    #[test]
    fn euler_scheme_decreases_dirichlet_energy_without_reset() {
        // Pure Euler steps (no boundary reset) are gradient descent on the
        // Dirichlet energy — monotone non-increasing (the paper's reading of
        // Eq. 21 as successive low-pass filtering).
        let g = ring(8);
        let a = g.normalized_adjacency(true);
        let lap = g.laplacian();
        let mut rng = desalign_tensor::rng_from_seed(11);
        let x0 = desalign_tensor::normal_matrix(&mut rng, 8, 3, 0.0, 1.0);
        let cfg = PropagationConfig { iterations: 6, step: 1.0, reset_known: false };
        let states = propagate_features(&a, &x0, &[false; 8], &cfg);
        let energies: Vec<f32> = states.iter().map(|s| dirichlet_energy(&lap, s)).collect();
        for w in energies.windows(2) {
            assert!(w[1] <= w[0] + 1e-4, "energy increased: {energies:?}");
        }
    }

    #[test]
    fn euler_converges_to_closed_form_solution() {
        // On a small connected graph the iterative scheme approaches the
        // exact minimizer of Eq. 19.
        let g = UndirectedGraph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let a = g.normalized_adjacency(true);
        let lap = g.laplacian();
        let mut rng = desalign_tensor::rng_from_seed(13);
        let x0 = desalign_tensor::normal_matrix(&mut rng, 5, 2, 0.0, 1.0);
        let known = [true, true, false, false, true];
        let partition = SemanticPartition::known_missing(&known);
        let exact = closed_form_interpolation(&lap, &x0, &partition, 500, 1e-9);
        let cfg = PropagationConfig { iterations: 400, step: 1.0, reset_known: true };
        let iterated = propagate_features(&a, &x0, &known, &cfg);
        let last = iterated.last().expect("non-empty");
        let err = last.sub(&exact).max_abs();
        assert!(err < 1e-3, "Euler did not converge to closed form (err {err})");
    }

    #[test]
    fn closed_form_keeps_boundary_and_minimizes_energy() {
        let g = UndirectedGraph::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let lap = g.laplacian();
        let mut rng = desalign_tensor::rng_from_seed(17);
        let x0 = desalign_tensor::normal_matrix(&mut rng, 6, 2, 0.0, 1.0);
        let known = [true, false, true, false, true, false];
        let partition = SemanticPartition::known_missing(&known);
        let exact = closed_form_interpolation(&lap, &x0, &partition, 500, 1e-9);
        for (i, &k) in known.iter().enumerate() {
            if k {
                assert_eq!(exact.row(i), x0.row(i));
            }
        }
        // Perturbing any unknown row must not lower the energy (first-order
        // optimality of the minimizer).
        let base = dirichlet_energy(&lap, &exact);
        for &i in &partition.missing {
            for sign in [-1.0f32, 1.0] {
                let mut pert = exact.clone();
                pert.row_mut(i)[0] += sign * 0.05;
                assert!(dirichlet_energy(&lap, &pert) >= base - 1e-4);
            }
        }
    }

    #[test]
    fn no_unknowns_is_identity() {
        let g = ring(4);
        let lap = g.laplacian();
        let x0 = Matrix::from_fn(4, 2, |i, j| (i + j) as f32);
        let p = SemanticPartition::known_missing(&[true; 4]);
        assert_eq!(closed_form_interpolation(&lap, &x0, &p, 100, 1e-8), x0);
    }

    #[test]
    fn fractional_step_interpolates_between_states() {
        let g = ring(4);
        let a = g.normalized_adjacency(true);
        let x0 = Matrix::from_fn(4, 1, |i, _| i as f32);
        let full = propagate_features(&a, &x0, &[false; 4], &PropagationConfig { iterations: 1, step: 1.0, reset_known: false });
        let half = propagate_features(&a, &x0, &[false; 4], &PropagationConfig { iterations: 1, step: 0.5, reset_known: false });
        let expect = x0.scale(0.5).add(&full[1].scale(0.5));
        assert!(half[1].sub(&expect).max_abs() < 1e-6);
    }
}
