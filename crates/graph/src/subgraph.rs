//! Seeded neighborhood sampling for out-of-core mini-batch training.
//!
//! The streaming data plane (see `docs/DATA_FORMAT.md`) partitions each
//! knowledge graph into contiguous entity blocks. Training on one block
//! still needs structural context from outside it — a GAT layer pulls
//! messages from every neighbor — so [`sample_neighborhood`] extends a
//! *core* node set with a bounded, deterministically sampled **halo** of
//! cross-block neighbors and relabels the induced edges to local indices.
//!
//! The sample is a function of `(graph, core, halo_per_node, seed)` only:
//! the same inputs always produce the same subgraph, which is what keeps
//! the sampled training path reproducible across runs and thread counts.

use crate::adjacency::UndirectedGraph;
use desalign_tensor::{rng_from_seed, SliceRandom};

/// An induced subgraph over `core ∪ halo`, relabeled to local indices.
///
/// Local index `i` corresponds to global node `nodes[i]`. The first
/// `core_len` entries of `nodes` are the core in the order given to
/// [`sample_neighborhood`]; the remainder is the halo in ascending global
/// order. Loss terms should only ever anchor on local indices `< core_len`
/// — halo nodes exist to give the core correct message-passing context,
/// not to be scored themselves.
#[derive(Clone, Debug)]
pub struct SampledSubgraph {
    /// Global node id for each local index (core first, then sorted halo).
    pub nodes: Vec<usize>,
    /// Number of leading entries of `nodes` that are core nodes.
    pub core_len: usize,
    /// Induced edges among `nodes`, as local index pairs with `u < v`,
    /// sorted ascending. Every edge of the parent graph with both
    /// endpoints in `nodes` is present exactly once.
    pub edges: Vec<(usize, usize)>,
}

impl SampledSubgraph {
    /// Number of nodes (core + halo) in the subgraph.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The local index of a global node, if it is in the subgraph.
    ///
    /// Core lookups scan the (small) core prefix; halo lookups binary
    /// search the sorted suffix.
    pub fn local_of(&self, global: usize) -> Option<usize> {
        if let Some(i) = self.nodes[..self.core_len].iter().position(|&g| g == global) {
            return Some(i);
        }
        self.nodes[self.core_len..].binary_search(&global).ok().map(|i| self.core_len + i)
    }
}

/// Samples a neighborhood subgraph: the `core` nodes plus up to
/// `halo_per_node` of each core node's outside-core neighbors, chosen by
/// a seeded shuffle so the draw is deterministic.
///
/// Neighbors are considered in ascending global order; when a core node
/// has more than `halo_per_node` outside-core neighbors, a Fisher–Yates
/// shuffle seeded from `seed` picks which survive. Duplicate halo
/// candidates (shared neighbors of several core nodes) are deduplicated.
/// The induced edge set contains **every** parent edge with both endpoints
/// kept — including halo–halo edges, which improves the degree estimates
/// the GAT's attention softmax sees at the halo fringe.
///
/// # Panics
///
/// Panics if any core node is out of range for `g`, or if `core` contains
/// duplicates.
pub fn sample_neighborhood(g: &UndirectedGraph, core: &[usize], halo_per_node: usize, seed: u64) -> SampledSubgraph {
    let n = g.num_nodes();
    let mut in_core = vec![false; n];
    for &c in core {
        assert!(c < n, "sample_neighborhood: core node {c} out of range for a {n}-node graph");
        assert!(!in_core[c], "sample_neighborhood: duplicate core node {c}");
        in_core[c] = true;
    }

    // Adjacency lists (ascending neighbor order falls out of the sorted,
    // deduplicated edge list kept by `UndirectedGraph`).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in g.edges() {
        adj[u].push(v);
        adj[v].push(u);
    }
    for nbrs in adj.iter_mut() {
        nbrs.sort_unstable();
    }

    // Halo draw: per core node, keep at most `halo_per_node` outside-core
    // neighbors. The RNG stream is consumed in core order, so the sample
    // depends only on (core order, seed) — never on thread count.
    let mut rng = rng_from_seed(seed ^ 0xd1b5_4a32_d192_ed03);
    let mut in_halo = vec![false; n];
    let mut scratch: Vec<usize> = Vec::new();
    for &c in core {
        scratch.clear();
        scratch.extend(adj[c].iter().copied().filter(|&v| !in_core[v]));
        if scratch.len() > halo_per_node {
            scratch.shuffle(&mut rng);
            scratch.truncate(halo_per_node);
        }
        for &v in &scratch {
            in_halo[v] = true;
        }
    }

    let mut nodes: Vec<usize> = core.to_vec();
    let halo: Vec<usize> = (0..n).filter(|&v| in_halo[v]).collect();
    nodes.extend_from_slice(&halo);

    // Local relabeling and the induced edge set.
    let mut local = vec![usize::MAX; n];
    for (i, &gid) in nodes.iter().enumerate() {
        local[gid] = i;
    }
    let mut edges: Vec<(usize, usize)> = g
        .edges()
        .iter()
        .filter_map(|&(u, v)| {
            let (lu, lv) = (local[u], local[v]);
            if lu == usize::MAX || lv == usize::MAX {
                None
            } else {
                Some((lu.min(lv), lu.max(lv)))
            }
        })
        .collect();
    edges.sort_unstable();

    SampledSubgraph { nodes, core_len: core.len(), edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> UndirectedGraph {
        UndirectedGraph::new(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn core_prefix_and_halo_suffix() {
        let g = path_graph(10);
        let sub = sample_neighborhood(&g, &[4, 5], 4, 0);
        assert_eq!(&sub.nodes[..2], &[4, 5]);
        assert_eq!(sub.core_len, 2);
        // Halo: node 3 (neighbor of 4) and node 6 (neighbor of 5), sorted.
        assert_eq!(&sub.nodes[2..], &[3, 6]);
        // Induced edges in local indices: (4,5)→(0,1), (3,4)→(0,2), (5,6)→(1,3).
        assert_eq!(sub.edges, vec![(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn halo_budget_is_respected_and_deterministic() {
        // Star graph: center 0 with 20 leaves.
        let g = UndirectedGraph::new(21, (1..21).map(|v| (0, v)));
        let a = sample_neighborhood(&g, &[0], 5, 42);
        assert_eq!(a.core_len, 1);
        assert_eq!(a.num_nodes(), 6, "center + 5 sampled leaves");
        let b = sample_neighborhood(&g, &[0], 5, 42);
        assert_eq!(a.nodes, b.nodes, "same seed → same sample");
        assert_eq!(a.edges, b.edges);
        let c = sample_neighborhood(&g, &[0], 5, 43);
        assert_eq!(c.num_nodes(), 6);
        // (Different seeds may coincide, but with C(20,5) draws they
        // almost never do — and determinism per seed is what matters.)
        assert_ne!(a.nodes, c.nodes, "different seed → different leaves");
    }

    #[test]
    fn halo_halo_edges_are_induced() {
        // Triangle 1-2-3 hanging off core node 0.
        let g = UndirectedGraph::new(4, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let sub = sample_neighborhood(&g, &[0], 4, 7);
        // Halo = {1, 2} (neighbors of 0); node 3 is two hops out.
        assert_eq!(sub.nodes, vec![0, 1, 2]);
        // The halo–halo edge (1,2) must be included.
        assert!(sub.edges.contains(&(1, 2)));
        assert_eq!(sub.edges.len(), 3);
    }

    #[test]
    fn local_of_resolves_core_and_halo() {
        let g = path_graph(8);
        let sub = sample_neighborhood(&g, &[3, 2], 2, 9);
        assert_eq!(sub.local_of(3), Some(0));
        assert_eq!(sub.local_of(2), Some(1));
        for (i, &gid) in sub.nodes.iter().enumerate() {
            assert_eq!(sub.local_of(gid), Some(i));
        }
        assert_eq!(sub.local_of(7), None);
    }

    #[test]
    fn zero_halo_is_the_induced_core_subgraph() {
        let g = path_graph(6);
        let sub = sample_neighborhood(&g, &[1, 2, 3], 0, 0);
        assert_eq!(sub.nodes, vec![1, 2, 3]);
        assert_eq!(sub.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        let g = path_graph(3);
        sample_neighborhood(&g, &[5], 1, 0);
    }
}
