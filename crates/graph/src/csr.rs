//! Compressed sparse row matrices.

use desalign_tensor::Matrix;
use desalign_util::{DefectClass, DesalignError};

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (maintained by every constructor):
/// - `indptr.len() == rows + 1`, `indptr[0] == 0`,
///   `indptr[rows] == indices.len() == values.len()`;
/// - column indices within each row are strictly increasing and `< cols`;
/// - no explicit zeros are stored by [`Csr::from_coo`] (duplicates are
///   summed, exact-zero results kept — they are harmless).
///
/// ```
/// use desalign_graph::Csr;
/// use desalign_tensor::Matrix;
///
/// // [[0, 2], [3, 0]] from COO triplets (duplicates are summed).
/// let m = Csr::from_coo(2, 2, vec![(0, 1, 2.0), (1, 0, 1.0), (1, 0, 2.0)]);
/// assert_eq!(m.nnz(), 2);
/// let x = Matrix::from_rows(&[&[1.0], &[10.0]]);
/// assert_eq!(m.spmm(&x), Matrix::from_rows(&[&[20.0], &[3.0]]));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from COO triplets `(row, col, value)`.
    /// Duplicate coordinates are summed.
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_coo(rows: usize, cols: usize, mut triplets: Vec<(usize, usize, f32)>) -> Self {
        for &(r, c, _) in &triplets {
            assert!(r < rows && c < cols, "Csr::from_coo: entry ({r},{c}) out of bounds for {rows}x{cols}");
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in triplets {
            if last == Some((r, c)) {
                *values.last_mut().expect("duplicate follows an entry") += v;
            } else {
                indices.push(c);
                values.push(v);
                indptr[r + 1] = indices.len();
                last = Some((r, c));
            }
        }
        // Make indptr cumulative (rows with no entries inherit predecessor).
        for r in 0..rows {
            if indptr[r + 1] < indptr[r] {
                indptr[r + 1] = indptr[r];
            }
        }
        Self { rows, cols, indptr, indices, values }
    }

    /// Builds a CSR matrix from raw parts, checking every structural
    /// invariant and reporting the first violation as a typed
    /// [`DesalignError`] instead of panicking.
    ///
    /// This is the untrusted-input counterpart of [`Csr::from_coo`]: use it
    /// when the parts come from outside the process (a loader, a network
    /// peer, a fuzzer) rather than from workspace code. The checks are:
    ///
    /// - `indptr` has `rows + 1` entries, starts at `0`, is monotonically
    ///   non-decreasing, and ends at `indices.len()`;
    /// - `indices.len() == values.len()`;
    /// - within each row, column indices are strictly increasing and
    ///   `< cols`;
    /// - every stored value is finite.
    ///
    /// ```
    /// use desalign_graph::Csr;
    ///
    /// let ok = Csr::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![2.0, 3.0]);
    /// assert!(ok.is_ok());
    /// let bad = Csr::try_new(2, 2, vec![0, 1, 2], vec![5, 0], vec![2.0, 3.0]);
    /// assert!(bad.is_err());
    /// ```
    pub fn try_new(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f32>,
    ) -> Result<Self, DesalignError> {
        if indptr.len() != rows + 1 {
            return Err(DesalignError::new(
                DefectClass::Schema,
                "csr.indptr",
                format!("expected {} entries for {rows} rows, got {}", rows + 1, indptr.len()),
            ));
        }
        if indptr[0] != 0 {
            return Err(DesalignError::new(DefectClass::Schema, "csr.indptr[0]", format!("must be 0, got {}", indptr[0])));
        }
        if indices.len() != values.len() {
            return Err(DesalignError::new(
                DefectClass::Schema,
                "csr.values",
                format!("{} values for {} column indices", values.len(), indices.len()),
            ));
        }
        if indptr[rows] != indices.len() {
            return Err(DesalignError::new(
                DefectClass::Schema,
                format!("csr.indptr[{rows}]"),
                format!("must equal nnz {}, got {}", indices.len(), indptr[rows]),
            ));
        }
        for r in 0..rows {
            let (s, e) = (indptr[r], indptr[r + 1]);
            if e < s {
                return Err(DesalignError::new(
                    DefectClass::Schema,
                    format!("csr.indptr[{}]", r + 1),
                    format!("decreases from {s} to {e}"),
                ));
            }
            let mut prev: Option<usize> = None;
            for k in s..e {
                let c = indices[k];
                if c >= cols {
                    return Err(DesalignError::new(
                        DefectClass::DanglingEndpoint,
                        format!("csr.indices[{k}]"),
                        format!("column {c} out of bounds for {cols} columns (row {r})"),
                    ));
                }
                if prev.is_some_and(|p| c <= p) {
                    return Err(DesalignError::new(
                        DefectClass::Schema,
                        format!("csr.indices[{k}]"),
                        format!("column {c} not strictly increasing within row {r}"),
                    ));
                }
                prev = Some(c);
            }
        }
        if let Some(k) = values.iter().position(|v| !v.is_finite()) {
            return Err(DesalignError::new(
                DefectClass::NonFiniteFeature,
                format!("csr.values[{k}]"),
                format!("stored value {} is not finite", values[k]),
            ));
        }
        Ok(Self { rows, cols, indptr, indices, values })
    }

    /// Fallible counterpart of [`Csr::from_coo`]: reports out-of-bounds
    /// coordinates and non-finite values as typed errors instead of
    /// panicking. Duplicate coordinates are summed, as in `from_coo`.
    pub fn try_from_coo(rows: usize, cols: usize, triplets: Vec<(usize, usize, f32)>) -> Result<Self, DesalignError> {
        for (k, &(r, c, v)) in triplets.iter().enumerate() {
            if r >= rows || c >= cols {
                return Err(DesalignError::new(
                    DefectClass::DanglingEndpoint,
                    format!("coo[{k}]"),
                    format!("entry ({r},{c}) out of bounds for {rows}x{cols}"),
                ));
            }
            if !v.is_finite() {
                return Err(DesalignError::new(
                    DefectClass::NonFiniteFeature,
                    format!("coo[{k}]"),
                    format!("value {v} at ({r},{c}) is not finite"),
                ));
            }
        }
        Ok(Self::from_coo(rows, cols, triplets))
    }

    /// Sparse identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the stored `(col, value)` pairs of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let (s, e) = (self.indptr[i], self.indptr[i + 1]);
        self.indices[s..e].iter().copied().zip(self.values[s..e].iter().copied())
    }

    /// Iterates over all stored `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Computes row `i` of `self × x` into `out_row`, overwriting it.
    ///
    /// This is the single-row microkernel behind [`Csr::spmm`] and the
    /// fused [`dirichlet_energy`](crate::dirichlet_energy): rows are
    /// bucketed by nnz (empty / one / two / many), and the many-entry path
    /// holds a register-wide output chunk across **all** of the row's
    /// nonzeros — the old kernel round-tripped the whole output row
    /// through memory once per nonzero.
    ///
    /// **Numeric contract** (pinned by `tests/proptest_bucketed.rs`):
    /// each output element is `fma(vₜ, xₜ, ·)` folded over the row's
    /// nonzeros in stored (ascending-column) order from a `+0.0`
    /// accumulator — one rounding per product-add via [`f32::mul_add`],
    /// identical at every nnz bucket, chunk width, and thread count. The
    /// fused form halves the ALU work (the spmm ≥2× line in
    /// `BENCH_kernels.json` depends on it) and is the one deliberate
    /// fingerprint migration of the kernel-speed PR: results differ from
    /// the historical mul-then-add fold in the last bit, and the pinned
    /// regression metrics were regenerated once to match. Requires
    /// hardware FMA (`-C target-cpu=native`, `.cargo/config.toml`) to be
    /// fast — without it `mul_add` is a libm call.
    pub(crate) fn spmm_row_into(&self, i: usize, x: &Matrix, out_row: &mut [f32]) {
        let (s, e) = (self.indptr[i], self.indptr[i + 1]);
        let idx = &self.indices[s..e];
        let val = &self.values[s..e];
        let d = x.cols();
        let xs = x.as_slice();
        debug_assert!(
            idx.iter().all(|&j| j < x.rows()),
            "Csr::spmm: row {i} stores a column index past the dense operand's {} rows — the CSR invariant (indices < cols) is broken",
            x.rows()
        );
        match idx.len() {
            0 => out_row.fill(0.0),
            1 => {
                let (v, xr) = (val[0], &xs[idx[0] * d..idx[0] * d + d]);
                for (o, &xv) in out_row.iter_mut().zip(xr) {
                    *o = v.mul_add(xv, 0.0); // the +0.0 addend matches the
                                             // zeroed-accumulator bits
                                             // (-0.0 product → +0.0)
                }
            }
            2 => {
                let (v0, x0) = (val[0], &xs[idx[0] * d..idx[0] * d + d]);
                let (v1, x1) = (val[1], &xs[idx[1] * d..idx[1] * d + d]);
                for ((o, &a), &b) in out_row.iter_mut().zip(x0).zip(x1) {
                    *o = v1.mul_add(b, v0.mul_add(a, 0.0));
                }
            }
            nnz => {
                // Register-chunked: a wide slice of the output row stays in
                // registers while every nonzero streams past. The chunk is
                // 64 floats — 8 independent 8-lane FMA dependency chains,
                // enough to hide the fused multiply-add latency (a 16-float
                // chunk leaves the FMA ports idle 4× over). Chunk width
                // never affects bits: each output element still folds the
                // row's products in stored order. Full chunks use the
                // compile-time width so the loops lower to straight vector
                // code with no bounds checks; only the tail (d not a
                // multiple of 16) pays a runtime width.
                const DC: usize = 64;
                const DC_SMALL: usize = 16;
                let mut j0 = 0;
                while j0 + DC <= d {
                    let mut acc = [0.0f32; DC];
                    for t in 0..nnz {
                        let a = idx[t] * d + j0;
                        let (xr, v) = (&xs[a..a + DC], val[t]);
                        for jj in 0..DC {
                            acc[jj] = v.mul_add(xr[jj], acc[jj]);
                        }
                    }
                    out_row[j0..j0 + DC].copy_from_slice(&acc);
                    j0 += DC;
                }
                while j0 + DC_SMALL <= d {
                    let mut acc = [0.0f32; DC_SMALL];
                    for t in 0..nnz {
                        let a = idx[t] * d + j0;
                        let (xr, v) = (&xs[a..a + DC_SMALL], val[t]);
                        for jj in 0..DC_SMALL {
                            acc[jj] = v.mul_add(xr[jj], acc[jj]);
                        }
                    }
                    out_row[j0..j0 + DC_SMALL].copy_from_slice(&acc);
                    j0 += DC_SMALL;
                }
                if j0 < d {
                    let w = d - j0;
                    let mut acc = [0.0f32; DC_SMALL];
                    for t in 0..nnz {
                        let xr = &xs[idx[t] * d + j0..idx[t] * d + j0 + w];
                        let v = val[t];
                        for jj in 0..w {
                            acc[jj] = v.mul_add(xr[jj], acc[jj]);
                        }
                    }
                    out_row[j0..j0 + w].copy_from_slice(&acc[..w]);
                }
            }
        }
    }

    /// Sparse × dense product `self × x`.
    ///
    /// This is the kernel Semantic Propagation runs once per iteration; its
    /// cost is `O(nnz · d)`, linear in the number of edges, matching the
    /// paper's `O(|E| d)` complexity claim (§V-E). Output rows are computed
    /// in parallel via the nnz-bucketed `spmm_row_into` microkernel;
    /// each row keeps its exact serial accumulation order, so results are
    /// bit-identical at any thread count.
    ///
    /// # Panics
    /// Panics if `x.rows() != self.cols()`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.spmm_into(x, &mut out);
        out
    }

    /// [`Csr::spmm`] into a caller-provided buffer, overwriting it — the
    /// allocation-free variant the propagation loop ping-pongs between two
    /// buffers.
    ///
    /// # Panics
    /// Panics if `x.rows() != self.cols()` or `out` has the wrong shape.
    pub fn spmm_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(
            x.rows(),
            self.cols,
            "Csr::spmm: dense operand has {} rows, sparse has {} cols",
            x.rows(),
            self.cols
        );
        out.expect_shape(self.rows, x.cols(), "Csr::spmm_into");
        let _span = desalign_telemetry::span("spmm");
        let d = x.cols();
        if out.is_empty() {
            return;
        }
        let cost = self.nnz().saturating_mul(d);
        desalign_parallel::par_rows(out.as_mut_slice(), d, cost, |i, out_row| {
            self.spmm_row_into(i, x, out_row);
        });
    }

    /// Fused propagation step: `out[i] = x0[i]` where `skip[i]`, else
    /// `out[i] = (self × x)[i]`.
    ///
    /// With the boundary reset of Semantic Propagation (`x_c(t) = x_c`),
    /// a known row's SpMM output is overwritten immediately — so this
    /// kernel never computes it. On the datasets this repo benches, two
    /// thirds of the rows are known: that SpMM work simply disappears.
    /// Bit-identical to `spmm` followed by the reset, since skipped rows
    /// receive an exact copy and the rest run the same row microkernel.
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn spmm_skip_into(&self, x: &Matrix, skip: &[bool], x0: &Matrix, out: &mut Matrix) {
        assert_eq!(
            x.rows(),
            self.cols,
            "Csr::spmm_skip_into: dense operand has {} rows, sparse has {} cols",
            x.rows(),
            self.cols
        );
        assert_eq!(skip.len(), self.rows, "Csr::spmm_skip_into: skip mask length mismatch");
        x0.expect_shape(self.rows, x.cols(), "Csr::spmm_skip_into (x0)");
        out.expect_shape(self.rows, x.cols(), "Csr::spmm_skip_into (out)");
        let _span = desalign_telemetry::span("spmm");
        let d = x.cols();
        if out.is_empty() {
            return;
        }
        let cost = self.nnz().saturating_mul(d);
        desalign_parallel::par_rows(out.as_mut_slice(), d, cost, |i, out_row| {
            if skip[i] {
                out_row.copy_from_slice(x0.row(i));
            } else {
                self.spmm_row_into(i, x, out_row);
            }
        });
    }

    /// `selfᵀ × x` without materializing the transpose.
    ///
    /// The serial loop scatters row `i` of `x` into output rows — a write
    /// pattern that cannot be row-partitioned. When parallelism is on and
    /// the product is large enough to benefit, the kernel switches to
    /// `self.transpose().spmm(x)`, which IS row-partitionable and
    /// **bit-identical** to the serial loop: both accumulate output row `j`
    /// as stored-order fused multiply-adds over ascending `i` (the serial
    /// loop visits `i` in order; the transposed row `j` stores its entries
    /// sorted by `i`), so every output element sees the same fma chain.
    pub fn spmm_t(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, x.cols());
        self.spmm_t_into(x, &mut out);
        out
    }

    /// [`Csr::spmm_t`] accumulating into a caller-provided **zeroed**
    /// output — same kernel, same bits. Unlike the `_into` variants that
    /// overwrite, the scatter accumulation reads `out`, so the caller must
    /// hand in zeros (gradient code reuses pooled buffers via
    /// `Workspace::zeros`).
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn spmm_t_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(
            x.rows(),
            self.rows,
            "Csr::spmm_t: dense operand has {} rows, sparse has {} rows",
            x.rows(),
            self.rows
        );
        let _span = desalign_telemetry::span("spmm_t");
        out.expect_shape(self.cols, x.cols(), "Csr::spmm_t_into: out");
        let cost = self.nnz().saturating_mul(x.cols());
        if desalign_parallel::current_threads() > 1 && cost >= desalign_parallel::PAR_MIN_COST {
            self.transpose().spmm_into(x, out);
            return;
        }
        for i in 0..self.rows {
            let x_row = x.row(i);
            for (j, v) in self.row(i) {
                // Scatter rows cannot be register-chunked like spmm (each
                // nonzero targets a different output row), but the inner
                // loop over the feature dim vectorizes as-is. Must use the
                // same fused multiply-add as `spmm_row_into`: the parallel
                // branch above routes through that microkernel, and the two
                // branches have to agree bit for bit.
                let out_row = out.row_mut(j);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o = v.mul_add(xv, *o);
                }
            }
        }
    }

    /// Sparse × dense-vector product for a flat slice (`cols()`-length).
    ///
    /// Each output element is a single sequential fold over the row's
    /// nonzeros — that fold order is load-bearing (it is what the committed
    /// training fingerprints were produced with), so the 4-way unroll below
    /// keeps one accumulator and the exact stored-order adds; it only
    /// removes iterator/branch overhead, never re-associates.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "Csr::spmv: vector length {} vs {} cols", x.len(), self.cols);
        let _span = desalign_telemetry::span("spmv");
        let mut out = vec![0.0; self.rows];
        let cost = self.nnz().saturating_mul(2);
        desalign_parallel::par_rows(&mut out, 1, cost, |i, o| {
            let (s, e) = (self.indptr[i], self.indptr[i + 1]);
            let idx = &self.indices[s..e];
            let val = &self.values[s..e];
            debug_assert!(
                idx.iter().all(|&j| j < x.len()),
                "Csr::spmv: row {i} stores a column index past the vector's {} elements — the CSR invariant (indices < cols) is broken",
                x.len()
            );
            // -0.0 is the additive identity `Iterator::sum` folds from
            // (`-0.0 + x` preserves every bit of `x`, including `x = -0.0`,
            // which `+0.0 + x` would not) — the old `.sum()` kernel's bits,
            // e.g. -0.0 for an empty row, depend on it.
            let mut acc = -0.0f32;
            let mut t = 0;
            while t + 4 <= idx.len() {
                acc += val[t] * x[idx[t]];
                acc += val[t + 1] * x[idx[t + 1]];
                acc += val[t + 2] * x[idx[t + 2]];
                acc += val[t + 3] * x[idx[t + 3]];
                t += 4;
            }
            while t < idx.len() {
                acc += val[t] * x[idx[t]];
                t += 1;
            }
            o[0] = acc;
        });
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Csr {
        let triplets = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        Csr::from_coo(self.cols, self.rows, triplets)
    }

    /// Dense copy. Intended for tests and small matrices only.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            m[(r, c)] += v;
        }
        m
    }

    /// Scales every stored value by `alpha`.
    pub fn scale(&self, alpha: f32) -> Csr {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= alpha;
        }
        out
    }

    /// Sparse sum `self + other` (union of patterns).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Csr) -> Csr {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "Csr::add: shape mismatch");
        let mut triplets: Vec<(usize, usize, f32)> = self.iter().collect();
        triplets.extend(other.iter());
        Csr::from_coo(self.rows, self.cols, triplets)
    }

    /// Extracts the sub-matrix with the given row and column index sets
    /// (in the given order). Used for the Laplacian block views of Eq. 18.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Csr {
        let mut col_pos = vec![usize::MAX; self.cols];
        for (new, &old) in col_idx.iter().enumerate() {
            assert!(old < self.cols, "Csr::submatrix: col index {old} out of bounds");
            col_pos[old] = new;
        }
        let mut triplets = Vec::new();
        for (new_r, &old_r) in row_idx.iter().enumerate() {
            assert!(old_r < self.rows, "Csr::submatrix: row index {old_r} out of bounds");
            for (c, v) in self.row(old_r) {
                if col_pos[c] != usize::MAX {
                    triplets.push((new_r, col_pos[c], v));
                }
            }
        }
        Csr::from_coo(row_idx.len(), col_idx.len(), triplets)
    }

    /// True if the matrix equals its transpose (up to `tol`).
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr || t.indices != self.indices {
            // Patterns can still match numerically if explicit zeros differ;
            // fall back to dense comparison only for small matrices.
            if self.rows <= 512 {
                let (a, b) = (self.to_dense(), t.to_dense());
                return a.sub(&b).max_abs() <= tol;
            }
            return false;
        }
        self.values.iter().zip(&t.values).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Sparse × sparse product `self × other` as CSR — used to build
    /// multi-hop propagation operators (e.g. `Ã²` for MuGCN / AliNet-style
    /// aggregation). Row-merge algorithm, `O(Σ_i nnz(row_i) · avg_nnz)`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul_sparse(&self, other: &Csr) -> Csr {
        assert_eq!(
            self.cols, other.rows,
            "Csr::matmul_sparse: inner dims differ ({}x{} × {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
        let mut acc: Vec<f32> = vec![0.0; other.cols];
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..self.rows {
            for (k, v) in self.row(i) {
                for (j, w) in other.row(k) {
                    if acc[j] == 0.0 && !touched.contains(&j) {
                        touched.push(j);
                    }
                    acc[j] += v * w;
                }
            }
            for &j in &touched {
                if acc[j] != 0.0 {
                    triplets.push((i, j, acc[j]));
                }
                acc[j] = 0.0;
            }
            touched.clear();
        }
        Csr::from_coo(self.rows, other.cols, triplets)
    }

    /// Row sums (useful as weighted degrees).
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows).map(|i| self.row(i).map(|(_, v)| v).sum()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        Csr::from_coo(3, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
    }

    #[test]
    fn from_coo_builds_expected_structure() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(0, 3.0), (1, 4.0)]);
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let m = Csr::from_coo(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense()[(0, 0)], 3.5);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let sparse = m.spmm(&x);
        let dense = m.to_dense().matmul(&x);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn spmm_t_matches_dense_transpose() {
        let m = sample();
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(m.spmm_t(&x), m.to_dense().transpose().matmul(&x));
    }

    #[test]
    fn spmv_matches_spmm() {
        let m = sample();
        let v = vec![1.0, -1.0, 2.0];
        let via_mm = m.spmm(&Matrix::column(v.clone()));
        assert_eq!(m.spmv(&v), via_mm.into_vec());
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn identity_spmm_is_noop() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(Csr::identity(2).spmm(&x), x);
    }

    #[test]
    fn add_unions_patterns() {
        let a = Csr::from_coo(2, 2, vec![(0, 0, 1.0)]);
        let b = Csr::from_coo(2, 2, vec![(0, 0, 2.0), (1, 1, 3.0)]);
        let s = a.add(&b).to_dense();
        assert_eq!(s[(0, 0)], 3.0);
        assert_eq!(s[(1, 1)], 3.0);
    }

    #[test]
    fn submatrix_extracts_blocks() {
        let m = sample();
        let sub = m.submatrix(&[2, 0], &[0, 1]);
        let d = sub.to_dense();
        // Rows reordered: row 0 of sub is old row 2 -> [3, 4]; row 1 is old row 0 -> [1, 0].
        assert_eq!(d.row(0), &[3.0, 4.0]);
        assert_eq!(d.row(1), &[1.0, 0.0]);
    }

    #[test]
    fn symmetry_detection() {
        let sym = Csr::from_coo(2, 2, vec![(0, 1, 2.0), (1, 0, 2.0), (0, 0, 1.0)]);
        assert!(sym.is_symmetric(1e-9));
        assert!(!sample().is_symmetric(1e-9));
    }

    #[test]
    fn row_sums_are_degrees() {
        assert_eq!(sample().row_sums(), vec![3.0, 0.0, 7.0]);
    }

    #[test]
    fn sparse_sparse_product_matches_dense() {
        let a = sample();
        let b = Csr::from_coo(3, 2, vec![(0, 0, 1.0), (1, 1, -2.0), (2, 0, 0.5)]);
        let sparse = a.matmul_sparse(&b);
        let dense = a.to_dense().matmul(&b.to_dense());
        assert!(sparse.to_dense().sub(&dense).max_abs() < 1e-6);
    }

    #[test]
    fn two_hop_operator_is_symmetric_for_symmetric_input() {
        let sym = Csr::from_coo(3, 3, vec![(0, 1, 1.0), (1, 0, 1.0), (1, 2, 2.0), (2, 1, 2.0)]);
        let two_hop = sym.matmul_sparse(&sym);
        assert!(two_hop.is_symmetric(1e-6));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_coo_rejects_out_of_bounds() {
        let _ = Csr::from_coo(2, 2, vec![(2, 0, 1.0)]);
    }

    /// A structurally valid-looking CSR whose second row stores column 5 in
    /// a 2-column matrix — the kind of corruption [`Csr::from_coo`] rejects
    /// but a hand-built struct can smuggle in.
    #[cfg(debug_assertions)]
    fn corrupt_csr() -> Csr {
        Csr { rows: 2, cols: 2, indptr: vec![0, 1, 2], indices: vec![0, 5], values: vec![1.0, 1.0] }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "CSR invariant (indices < cols) is broken")]
    fn spmm_catches_out_of_range_column_index() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let _ = corrupt_csr().spmm(&x);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "CSR invariant (indices < cols) is broken")]
    fn spmv_catches_out_of_range_column_index() {
        let _ = corrupt_csr().spmv(&[1.0, 2.0]);
    }

    #[test]
    fn try_new_accepts_what_from_coo_builds() {
        let m = Csr::from_coo(3, 4, vec![(0, 1, 2.0), (1, 0, 1.0), (2, 3, -0.5), (0, 3, 4.0)]);
        let rebuilt =
            Csr::try_new(3, 4, m.indptr.clone(), m.indices.clone(), m.values.clone()).expect("round-trip is valid");
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn try_new_reports_each_invariant_violation() {
        use desalign_util::DefectClass;
        // Wrong indptr length.
        let e = Csr::try_new(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(e.class, DefectClass::Schema);
        // indptr not starting at zero.
        let e = Csr::try_new(2, 2, vec![1, 1, 2], vec![0, 1], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(e.class, DefectClass::Schema);
        // indices/values length mismatch.
        let e = Csr::try_new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0]).unwrap_err();
        assert_eq!(e.class, DefectClass::Schema);
        // Decreasing indptr.
        let e = Csr::try_new(2, 2, vec![0, 2, 2], vec![0, 1], vec![1.0, 1.0]);
        assert!(e.is_ok(), "monotone indptr is fine");
        let e = Csr::try_new(3, 2, vec![0, 2, 1, 2], vec![0, 1], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(e.class, DefectClass::Schema);
        // Column out of range.
        let e = Csr::try_new(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(e.class, DefectClass::DanglingEndpoint);
        assert!(e.to_string().contains("column 5"), "{e}");
        // Columns not strictly increasing within a row.
        let e = Csr::try_new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(e.class, DefectClass::Schema);
        // Non-finite stored value.
        let e = Csr::try_new(1, 2, vec![0, 1], vec![0], vec![f32::NAN]).unwrap_err();
        assert_eq!(e.class, DefectClass::NonFiniteFeature);
    }

    #[test]
    fn try_from_coo_reports_typed_errors() {
        use desalign_util::DefectClass;
        let e = Csr::try_from_coo(2, 2, vec![(2, 0, 1.0)]).unwrap_err();
        assert_eq!(e.class, DefectClass::DanglingEndpoint);
        let e = Csr::try_from_coo(2, 2, vec![(0, 0, f32::INFINITY)]).unwrap_err();
        assert_eq!(e.class, DefectClass::NonFiniteFeature);
        let m = Csr::try_from_coo(2, 2, vec![(0, 1, 2.0), (1, 0, 3.0)]).expect("clean triplets");
        assert_eq!(m, Csr::from_coo(2, 2, vec![(0, 1, 2.0), (1, 0, 3.0)]));
    }
}
