//! Sparse graphs and spectral machinery for DESAlign.
//!
//! This crate implements everything Section II–III of the paper relies on:
//!
//! - [`Csr`] — compressed sparse row matrices with sparse-dense products
//!   (the `SpMM` kernel that dominates Semantic Propagation's cost, §V-E);
//! - [`UndirectedGraph`] — adjacency construction, degrees, and the
//!   symmetric normalization `Ã = D^{-1/2} A D^{-1/2}`;
//! - Laplacian `Δ = I − Ã` and **Dirichlet energy**
//!   `ℒ(X) = tr(XᵀΔX)` (Definition 3), in both the trace and edge-sum forms;
//! - spectral utilities: `λ_max(Δ)` by power iteration, extreme singular
//!   values of dense weights (for the Proposition 2 bounds);
//! - the `(c, o1, o2)` **semantic partition** of Section II-B and block
//!   views of the Laplacian;
//! - **feature propagation** (Section IV-C): the explicit Euler scheme of
//!   Eq. 20–22 and the closed-form solution of Eq. 19 (via conjugate
//!   gradient on the sub-Laplacian) used as its oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
mod csr;
mod energy;
mod partition;
mod propagation;
mod spectral;
mod subgraph;

pub use adjacency::UndirectedGraph;
pub use csr::Csr;
pub use energy::{dirichlet_energy, dirichlet_energy_edgesum, energy_gap_bounds, interpolation_lower_bound};
pub use partition::{BlockLaplacian, SemanticPartition};
pub use propagation::{closed_form_interpolation, propagate_features, PropagationConfig};
pub use spectral::{lambda_max, power_iteration_sym, singular_value_range};
pub use subgraph::{sample_neighborhood, SampledSubgraph};
