//! The semantic partition of Section II-B: consistent (`c`), attribute-count
//! disparity (`o1`), and missing-modality (`o2`) entities, plus block views
//! of the Laplacian used by Eq. 18–19.

use crate::Csr;

/// Partition of entity indices into the three sets of Section II-B.
///
/// - `consistent` (ε_c): entities whose modal features are complete and
///   comparable — the boundary nodes whose features are held fixed during
///   Semantic Propagation;
/// - `partial` (ε_o1): entities with differing attribute counts — features
///   present but lower-quality; they evolve during propagation;
/// - `missing` (ε_o2): entities missing the modality entirely — features
///   unknown, reconstructed by propagation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemanticPartition {
    /// ε_c — semantically consistent entities.
    pub consistent: Vec<usize>,
    /// ε_o1 — entities with attribute-count disparities.
    pub partial: Vec<usize>,
    /// ε_o2 — entities with the modality absent.
    pub missing: Vec<usize>,
}

impl SemanticPartition {
    /// Builds a partition from per-entity flags.
    ///
    /// `has_feature[i]` — the entity has at least one attribute of the
    /// modality; `full_count[i]` — the entity's attribute count matches its
    /// counterpart (no disparity). Entities with a feature and full count go
    /// to `consistent`; with a feature but disparity to `partial`; without a
    /// feature to `missing`.
    pub fn from_flags(has_feature: &[bool], full_count: &[bool]) -> Self {
        assert_eq!(has_feature.len(), full_count.len(), "SemanticPartition::from_flags: length mismatch");
        let mut p = SemanticPartition { consistent: Vec::new(), partial: Vec::new(), missing: Vec::new() };
        for i in 0..has_feature.len() {
            if !has_feature[i] {
                p.missing.push(i);
            } else if full_count[i] {
                p.consistent.push(i);
            } else {
                p.partial.push(i);
            }
        }
        p
    }

    /// Builds the simplest partition: known vs missing (no `o1` set).
    pub fn known_missing(has_feature: &[bool]) -> Self {
        Self::from_flags(has_feature, &vec![true; has_feature.len()])
    }

    /// Total number of entities.
    pub fn len(&self) -> usize {
        self.consistent.len() + self.partial.len() + self.missing.len()
    }

    /// Whether the partition covers no entities.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The permutation `[c | o1 | o2]` (new position → old index) that sorts
    /// entities into the block order of Eq. 2.
    pub fn permutation(&self) -> Vec<usize> {
        let mut perm = Vec::with_capacity(self.len());
        perm.extend_from_slice(&self.consistent);
        perm.extend_from_slice(&self.partial);
        perm.extend_from_slice(&self.missing);
        perm
    }

    /// Validates that the partition is a disjoint cover of `0..n`.
    pub fn is_valid_cover(&self, n: usize) -> bool {
        if self.len() != n {
            return false;
        }
        let mut seen = vec![false; n];
        for &i in self.consistent.iter().chain(&self.partial).chain(&self.missing) {
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
        }
        true
    }
}

/// The 3×3 block view of a Laplacian under a [`SemanticPartition`]
/// (the matrix of Eq. 2 / Eq. 18).
#[derive(Clone, Debug)]
pub struct BlockLaplacian {
    /// Δ_cc
    pub cc: Csr,
    /// Δ_co1
    pub co1: Csr,
    /// Δ_co2
    pub co2: Csr,
    /// Δ_o1c
    pub o1c: Csr,
    /// Δ_o1o1
    pub o1o1: Csr,
    /// Δ_o1o2
    pub o1o2: Csr,
    /// Δ_o2c
    pub o2c: Csr,
    /// Δ_o2o1
    pub o2o1: Csr,
    /// Δ_o2o2
    pub o2o2: Csr,
}

impl BlockLaplacian {
    /// Splits a Laplacian into the nine blocks induced by the partition.
    pub fn split(laplacian: &Csr, p: &SemanticPartition) -> Self {
        let (c, o1, o2) = (&p.consistent, &p.partial, &p.missing);
        BlockLaplacian {
            cc: laplacian.submatrix(c, c),
            co1: laplacian.submatrix(c, o1),
            co2: laplacian.submatrix(c, o2),
            o1c: laplacian.submatrix(o1, c),
            o1o1: laplacian.submatrix(o1, o1),
            o1o2: laplacian.submatrix(o1, o2),
            o2c: laplacian.submatrix(o2, c),
            o2o1: laplacian.submatrix(o2, o1),
            o2o2: laplacian.submatrix(o2, o2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UndirectedGraph;

    #[test]
    fn from_flags_routes_entities() {
        let has = [true, true, false, true];
        let full = [true, false, true, true];
        let p = SemanticPartition::from_flags(&has, &full);
        assert_eq!(p.consistent, vec![0, 3]);
        assert_eq!(p.partial, vec![1]);
        assert_eq!(p.missing, vec![2]);
        assert!(p.is_valid_cover(4));
    }

    #[test]
    fn known_missing_has_empty_partial() {
        let p = SemanticPartition::known_missing(&[true, false, true]);
        assert!(p.partial.is_empty());
        assert_eq!(p.missing, vec![1]);
    }

    #[test]
    fn permutation_orders_blocks() {
        let p = SemanticPartition { consistent: vec![2], partial: vec![0], missing: vec![1] };
        assert_eq!(p.permutation(), vec![2, 0, 1]);
    }

    #[test]
    fn invalid_covers_detected() {
        let dup = SemanticPartition { consistent: vec![0, 1], partial: vec![1], missing: vec![] };
        assert!(!dup.is_valid_cover(3));
        let short = SemanticPartition { consistent: vec![0], partial: vec![], missing: vec![] };
        assert!(!short.is_valid_cover(2));
    }

    #[test]
    fn block_split_reassembles_to_original() {
        let g = UndirectedGraph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let lap = g.laplacian();
        let p = SemanticPartition { consistent: vec![0, 2], partial: vec![4], missing: vec![1, 3] };
        let b = BlockLaplacian::split(&lap, &p);
        // Reassemble the permuted dense Laplacian from blocks and compare.
        let perm = p.permutation();
        let full = lap.to_dense();
        let mut permuted = desalign_tensor::Matrix::zeros(5, 5);
        for (ni, &oi) in perm.iter().enumerate() {
            for (nj, &oj) in perm.iter().enumerate() {
                permuted[(ni, nj)] = full[(oi, oj)];
            }
        }
        let top = b.cc.to_dense().hcat(&b.co1.to_dense()).hcat(&b.co2.to_dense());
        let mid = b.o1c.to_dense().hcat(&b.o1o1.to_dense()).hcat(&b.o1o2.to_dense());
        let bot = b.o2c.to_dense().hcat(&b.o2o1.to_dense()).hcat(&b.o2o2.to_dense());
        let stacked = top.vcat(&mid).vcat(&bot);
        assert!(stacked.sub(&permuted).max_abs() < 1e-6);
    }

    #[test]
    fn symmetry_of_off_diagonal_blocks() {
        // A_co1ᵀ = A_o1c etc. (stated under Eq. 2).
        let g = UndirectedGraph::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let lap = g.laplacian();
        let p = SemanticPartition { consistent: vec![0, 1], partial: vec![2, 3], missing: vec![4, 5] };
        let b = BlockLaplacian::split(&lap, &p);
        assert!(b.co1.to_dense().transpose().sub(&b.o1c.to_dense()).max_abs() < 1e-6);
        assert!(b.co2.to_dense().transpose().sub(&b.o2c.to_dense()).max_abs() < 1e-6);
        assert!(b.o1o2.to_dense().transpose().sub(&b.o2o1.to_dense()).max_abs() < 1e-6);
    }
}
