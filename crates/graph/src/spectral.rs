//! Spectral utilities: extreme eigenvalues of sparse symmetric matrices and
//! extreme singular values of dense weights (for the Proposition 2 bounds).

use crate::Csr;
use desalign_tensor::{par_dot, Matrix};

/// Largest eigenvalue (in absolute value; for PSD matrices, the largest) of
/// a symmetric sparse matrix, by power iteration.
///
/// For a normalized graph Laplacian the result lies in `[0, 2)`
/// (Chung, *Spectral Graph Theory*), which the paper notes after
/// Proposition 1.
pub fn lambda_max(m: &Csr, max_iters: usize, tol: f32) -> f32 {
    assert_eq!(m.rows(), m.cols(), "lambda_max: matrix is {}x{}, not square", m.rows(), m.cols());
    let n = m.rows();
    if n == 0 {
        return 0.0;
    }
    // Deterministic pseudo-random start to avoid orthogonality accidents.
    let mut v: Vec<f32> = (0..n).map(|i| ((i * 2654435761usize) % 1000) as f32 / 1000.0 + 0.1).collect();
    normalize(&mut v);
    let mut lambda = 0.0f32;
    for _ in 0..max_iters {
        let mut w = m.spmv(&v);
        let new_lambda = par_dot(&v, &w);
        normalize(&mut w);
        let delta = (new_lambda - lambda).abs();
        lambda = new_lambda;
        v = w;
        if delta < tol {
            break;
        }
    }
    lambda
}

/// Power iteration on a dense symmetric matrix; returns `(eigenvalue,
/// eigenvector)` for the dominant (largest-magnitude) eigenpair.
pub fn power_iteration_sym(m: &Matrix, max_iters: usize, tol: f32) -> (f32, Vec<f32>) {
    assert_eq!(m.rows(), m.cols(), "power_iteration_sym: matrix not square");
    let n = m.rows();
    let mut v: Vec<f32> = (0..n).map(|i| ((i * 2246822519usize) % 997) as f32 / 997.0 + 0.05).collect();
    normalize(&mut v);
    let mut lambda = 0.0f32;
    for _ in 0..max_iters {
        let w_mat = m.matmul(&Matrix::column(v.clone()));
        let mut w = w_mat.into_vec();
        let new_lambda = par_dot(&v, &w);
        normalize(&mut w);
        let delta = (new_lambda - lambda).abs();
        lambda = new_lambda;
        v = w;
        if delta < tol {
            break;
        }
    }
    (lambda, v)
}

/// Estimates the extreme singular values `(σ_min, σ_max)` of a dense matrix
/// `W`.
///
/// `σ_max² = λ_max(WᵀW)` by power iteration; `σ_min²` via power iteration on
/// the spectrally shifted `σ_max² I − WᵀW` (whose dominant eigenvalue is
/// `σ_max² − λ_min`). These are exactly the `p_max^{(k)}`, `p_min^{(k)}` of
/// **Proposition 2**, i.e. the squares of the extreme singular values of the
/// layer weight `W^{(k)}`.
pub fn singular_value_range(w: &Matrix, max_iters: usize, tol: f32) -> (f32, f32) {
    let gram = w.matmul_tn(w); // WᵀW, symmetric PSD, size cols×cols
    let (lmax, _) = power_iteration_sym(&gram, max_iters, tol);
    let lmax = lmax.max(0.0);
    // Shifted matrix: σ_max² I − WᵀW.
    let n = gram.rows();
    let mut shifted = gram.scale(-1.0);
    for i in 0..n {
        shifted[(i, i)] += lmax;
    }
    let (shifted_max, _) = power_iteration_sym(&shifted, max_iters, tol);
    let lmin = (lmax - shifted_max.max(0.0)).max(0.0);
    (lmin.sqrt(), lmax.sqrt())
}

fn normalize(v: &mut [f32]) {
    let norm = par_dot(v, v).max(0.0).sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UndirectedGraph;

    #[test]
    fn lambda_max_of_identity_is_one() {
        let i = Csr::identity(5);
        assert!((lambda_max(&i, 100, 1e-8) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn laplacian_spectrum_in_zero_two() {
        // Bipartite path graph: λ_max close to but below 2 after self-loop
        // renormalization.
        let g = UndirectedGraph::new(6, (0..5).map(|i| (i, i + 1)));
        let l = g.laplacian();
        let lmax = lambda_max(&l, 500, 1e-9);
        assert!(lmax > 0.0 && lmax < 2.0, "λ_max = {lmax}");
    }

    #[test]
    fn power_iteration_diagonal_matrix() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let (lambda, v) = power_iteration_sym(&m, 200, 1e-9);
        assert!((lambda - 3.0).abs() < 1e-4);
        assert!(v[0].abs() > 0.99);
    }

    #[test]
    fn singular_values_of_diagonal() {
        let w = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[0.0, 0.5, 0.0], &[0.0, 0.0, 1.0]]);
        let (smin, smax) = singular_value_range(&w, 500, 1e-9);
        assert!((smax - 2.0).abs() < 1e-3, "σ_max {smax}");
        assert!((smin - 0.5).abs() < 1e-3, "σ_min {smin}");
    }

    #[test]
    fn singular_values_of_orthogonal_rotation_are_one() {
        let t = 0.7f32;
        let w = Matrix::from_rows(&[&[t.cos(), -t.sin()], &[t.sin(), t.cos()]]);
        let (smin, smax) = singular_value_range(&w, 500, 1e-9);
        assert!((smax - 1.0).abs() < 1e-3);
        assert!((smin - 1.0).abs() < 1e-3);
    }

    #[test]
    fn singular_range_of_rank_deficient_matrix_hits_zero() {
        let w = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let (smin, _) = singular_value_range(&w, 500, 1e-9);
        assert!(smin < 1e-2, "σ_min {smin} should be ~0");
    }
}
