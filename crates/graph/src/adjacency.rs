//! Undirected graph construction and normalized adjacency matrices.

use crate::Csr;

/// An undirected graph over `n` nodes, stored as a deduplicated edge list.
///
/// This is the structural view of one MMKG: nodes are entities, edges come
/// from relation triples with relation types erased (as in the paper's GNN
/// encoders, which operate on the plain adjacency `A`).
#[derive(Clone, Debug)]
pub struct UndirectedGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl UndirectedGraph {
    /// Builds a graph from an edge list. Self-loops and duplicate edges
    /// (in either orientation) are dropped.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn new(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut canonical: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|&(u, v)| u != v)
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        for &(u, v) in &canonical {
            assert!(u < n && v < n, "UndirectedGraph::new: edge ({u},{v}) out of bounds for {n} nodes");
        }
        canonical.sort_unstable();
        canonical.dedup();
        Self { n, edges: canonical }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The canonical `(u, v)` edge list with `u < v`.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Node degrees (self-loops excluded — they were dropped at build time).
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            d[u] += 1;
            d[v] += 1;
        }
        d
    }

    /// Binary adjacency matrix `A` as CSR (symmetric, zero diagonal).
    pub fn adjacency(&self) -> Csr {
        let mut triplets = Vec::with_capacity(self.edges.len() * 2);
        for &(u, v) in &self.edges {
            triplets.push((u, v, 1.0));
            triplets.push((v, u, 1.0));
        }
        Csr::from_coo(self.n, self.n, triplets)
    }

    /// Symmetrically normalized adjacency `Ã = D̂^{-1/2} Â D̂^{-1/2}`.
    ///
    /// With `self_loops = true` this is the GCN-style renormalization
    /// `Â = A + I`, `D̂ = D + I` — the form behind the paper's Definition 3
    /// denominator `√(D_ii + 1)` and the propagation operator of Eq. 21–22.
    /// With `self_loops = false`, plain `D^{-1/2} A D^{-1/2}` (isolated
    /// nodes get zero rows).
    pub fn normalized_adjacency(&self, self_loops: bool) -> Csr {
        let deg = self.degrees();
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| {
                let dd = d as f32 + if self_loops { 1.0 } else { 0.0 };
                if dd > 0.0 {
                    1.0 / dd.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        let mut triplets = Vec::with_capacity(self.edges.len() * 2 + if self_loops { self.n } else { 0 });
        for &(u, v) in &self.edges {
            let w = inv_sqrt[u] * inv_sqrt[v];
            triplets.push((u, v, w));
            triplets.push((v, u, w));
        }
        if self_loops {
            for (i, &w) in inv_sqrt.iter().enumerate() {
                triplets.push((i, i, w * w));
            }
        }
        Csr::from_coo(self.n, self.n, triplets)
    }

    /// Graph Laplacian `Δ = I − Ã` as CSR (using the self-loop-normalized
    /// `Ã`, matching the paper's Definition 3).
    pub fn laplacian(&self) -> Csr {
        let a = self.normalized_adjacency(true);
        let mut triplets: Vec<(usize, usize, f32)> = a.iter().map(|(r, c, v)| (r, c, -v)).collect();
        for i in 0..self.n {
            triplets.push((i, i, 1.0));
        }
        Csr::from_coo(self.n, self.n, triplets)
    }

    /// Directed edge arrays `(src, dst)` including both orientations of each
    /// undirected edge *and* self-loops — the message-passing index used by
    /// the GAT layer (each node attends to its neighbours and itself).
    pub fn message_edges(&self) -> (Vec<usize>, Vec<usize>) {
        let mut src = Vec::with_capacity(self.edges.len() * 2 + self.n);
        let mut dst = Vec::with_capacity(src.capacity());
        for &(u, v) in &self.edges {
            src.push(u);
            dst.push(v);
            src.push(v);
            dst.push(u);
        }
        for i in 0..self.n {
            src.push(i);
            dst.push(i);
        }
        (src, dst)
    }

    /// Connected components, as a component id per node.
    pub fn components(&self) -> Vec<usize> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut comp = vec![usize::MAX; self.n];
        let mut next = 0;
        let mut stack = Vec::new();
        for s in 0..self.n {
            if comp[s] != usize::MAX {
                continue;
            }
            comp[s] = next;
            stack.push(s);
            while let Some(u) = stack.pop() {
                for &v in &adj[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// True if the graph is connected (and non-empty).
    pub fn is_connected(&self) -> bool {
        self.n > 0 && self.components().iter().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> UndirectedGraph {
        UndirectedGraph::new(3, vec![(0, 1), (1, 2)])
    }

    #[test]
    fn dedup_and_canonicalization() {
        let g = UndirectedGraph::new(3, vec![(0, 1), (1, 0), (2, 1), (1, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn degrees_of_path() {
        assert_eq!(path3().degrees(), vec![1, 2, 1]);
    }

    #[test]
    fn adjacency_is_symmetric_binary() {
        let a = path3().adjacency();
        assert!(a.is_symmetric(0.0));
        let d = a.to_dense();
        assert_eq!(d[(0, 1)], 1.0);
        assert_eq!(d[(1, 2)], 1.0);
        assert_eq!(d[(0, 2)], 0.0);
        assert_eq!(d[(0, 0)], 0.0);
    }

    #[test]
    fn normalized_adjacency_rows_of_regular_graph() {
        // 3-cycle: every node degree 2; without self-loops Ã entries are 1/2.
        let g = UndirectedGraph::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        let a = g.normalized_adjacency(false).to_dense();
        assert!((a[(0, 1)] - 0.5).abs() < 1e-6);
        assert_eq!(a[(0, 0)], 0.0);
        // With self-loops: D̂ = 3, entries 1/3.
        let al = g.normalized_adjacency(true).to_dense();
        assert!((al[(0, 0)] - 1.0 / 3.0).abs() < 1e-6);
        assert!((al[(0, 1)] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn normalized_adjacency_with_self_loops_is_row_stochastic_for_regular() {
        let g = UndirectedGraph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let a = g.normalized_adjacency(true);
        for s in a.row_sums() {
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn laplacian_is_identity_minus_normalized() {
        let g = path3();
        let lap = g.laplacian().to_dense();
        let expect = desalign_tensor::Matrix::eye(3).sub(&g.normalized_adjacency(true).to_dense());
        assert!(lap.sub(&expect).max_abs() < 1e-6);
        assert!(g.laplacian().is_symmetric(1e-6));
    }

    #[test]
    fn message_edges_include_self_loops() {
        let (src, dst) = path3().message_edges();
        assert_eq!(src.len(), 2 * 2 + 3);
        // Self loops at the tail.
        assert_eq!(&src[src.len() - 3..], &[0, 1, 2]);
        assert_eq!(&dst[dst.len() - 3..], &[0, 1, 2]);
    }

    #[test]
    fn components_and_connectivity() {
        let g = UndirectedGraph::new(5, vec![(0, 1), (2, 3)]);
        let comp = g.components();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        assert!(!g.is_connected());
        assert!(path3().is_connected());
    }

    #[test]
    fn isolated_node_rows_are_zero_without_self_loops() {
        let g = UndirectedGraph::new(3, vec![(0, 1)]);
        let a = g.normalized_adjacency(false);
        assert_eq!(a.row(2).count(), 0);
        assert!(a.to_dense().all_finite());
    }
}
