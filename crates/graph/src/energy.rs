//! Dirichlet energy (Definition 3) and the interpolation-quality bounds of
//! Proposition 1 / Corollary 1.

use crate::Csr;
use desalign_tensor::Matrix;

/// Dirichlet energy `ℒ(X) = tr(Xᵀ Δ X)` (Definition 3, trace form).
///
/// `laplacian` must be the (symmetric, PSD) graph Laplacian. The trace is
/// evaluated without materializing `XᵀΔX`: it equals `⟨X, ΔX⟩`, one SpMM and
/// one inner product.
///
/// ```
/// use desalign_graph::{dirichlet_energy, UndirectedGraph};
/// use desalign_tensor::Matrix;
///
/// // A 4-ring is regular, so constant features sit in the null space of
/// // the self-loop-renormalized Laplacian: zero energy.
/// let g = UndirectedGraph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
/// let lap = g.laplacian();
/// let smooth = Matrix::full(4, 2, 1.0);
/// assert!(dirichlet_energy(&lap, &smooth).abs() < 1e-5);
/// // Alternating features are rough: strictly positive energy.
/// let rough = Matrix::from_fn(4, 2, |i, _| if i % 2 == 0 { 1.0 } else { -1.0 });
/// assert!(dirichlet_energy(&lap, &rough) > 0.1);
/// ```
pub fn dirichlet_energy(laplacian: &Csr, x: &Matrix) -> f32 {
    assert_eq!(laplacian.rows(), x.rows(), "dirichlet_energy: Laplacian is {}x{}, features have {} rows", laplacian.rows(), laplacian.cols(), x.rows());
    let _span = desalign_telemetry::span("dirichlet_energy");
    // Fused ⟨ΔX, X⟩: the naive form `laplacian.spmm(x).inner(x)`
    // materializes the full n×d product only to reduce it immediately. This
    // version replicates the inner product's reduction tree exactly —
    // `par_dot` splits the flattened n·d elements into
    // `fixed_block_len(n·d, 4096)` blocks, reduces each with `dot`, and
    // sums partials in block order — but materializes only one block of ΔX
    // at a time (cache-resident instead of O(n·d)). Each ΔX row is produced
    // by the same `spmm` row microkernel, so every input bit to the
    // reduction, and hence the result, is identical to the unfused form.
    let (n, d) = x.shape();
    let total = n * d;
    if total == 0 {
        return 0.0;
    }
    let xs = x.as_slice();
    let block = desalign_parallel::fixed_block_len(total, 4096);
    let energy_block = |range: std::ops::Range<usize>| -> f32 {
        let (s, e) = (range.start, range.end);
        let mut buf = vec![0.0f32; e - s];
        let mut row_buf = vec![0.0f32; d];
        for i in s / d..=(e - 1) / d {
            let row_start = i * d;
            let (rs, re) = (row_start.max(s), (row_start + d).min(e));
            if rs == row_start && re == row_start + d {
                laplacian.spmm_row_into(i, x, &mut buf[rs - s..re - s]);
            } else {
                // Row straddles the block boundary: compute it whole, copy
                // the overlap. At most two rows per block take this path.
                laplacian.spmm_row_into(i, x, &mut row_buf);
                buf[rs - s..re - s].copy_from_slice(&row_buf[rs - row_start..re - row_start]);
            }
        }
        desalign_tensor::dot(&buf, &xs[s..e])
    };
    if total <= block {
        return energy_block(0..total);
    }
    let cost = laplacian.nnz().saturating_mul(d).saturating_add(2 * total);
    desalign_parallel::par_blocks(total, block, cost, |_b, range| energy_block(range)).into_iter().sum()
}

/// Dirichlet energy in the explicit edge-sum form of Definition 3:
///
/// `½ Σᵢⱼ aᵢⱼ ‖ Xᵢ/√(Dᵢᵢ+1) − Xⱼ/√(Dⱼⱼ+1) ‖²`
///
/// where `A` is the *unnormalized* binary adjacency and `D` its degree
/// matrix. With the GCN-style self-loop renormalization used by
/// [`crate::UndirectedGraph::laplacian`], this edge sum differs from the
/// trace form only by the `(1 − Σⱼ ãᵢⱼ)‖X̂ᵢ‖²` diagonal slack on non-regular
/// graphs; on regular graphs the two agree exactly. Both forms are exposed
/// so tests can pin down the relationship (see the property tests).
pub fn dirichlet_energy_edgesum(adjacency: &Csr, degrees: &[usize], x: &Matrix) -> f32 {
    assert_eq!(adjacency.rows(), x.rows(), "dirichlet_energy_edgesum: shape mismatch");
    assert_eq!(degrees.len(), x.rows(), "dirichlet_energy_edgesum: degree vector length mismatch");
    let inv_sqrt: Vec<f32> = degrees.iter().map(|&d| 1.0 / ((d as f32) + 1.0).sqrt()).collect();
    let mut total = 0.0f64;
    for (i, j, a) in adjacency.iter() {
        let (xi, xj) = (x.row(i), x.row(j));
        let mut dist = 0.0f32;
        for (&a_v, &b_v) in xi.iter().zip(xj) {
            let d = a_v * inv_sqrt[i] - b_v * inv_sqrt[j];
            dist += d * d;
        }
        total += 0.5 * (a * dist) as f64;
    }
    total as f32
}

/// The first-order lower bound of **Proposition 1**:
///
/// `ℒ(X̂) − ℒ(X) ≥ 2 ⟨ΔX, X̂ − X⟩`.
///
/// Returns `(lhs, rhs)` so callers/tests can check `lhs ≥ rhs` and use the
/// gap as an interpolation-quality signal.
pub fn interpolation_lower_bound(laplacian: &Csr, x: &Matrix, x_hat: &Matrix) -> (f32, f32) {
    let lhs = dirichlet_energy(laplacian, x_hat) - dirichlet_energy(laplacian, x);
    let rhs = 2.0 * laplacian.spmm(x).inner(&x_hat.sub(x));
    (lhs, rhs)
}

/// The two-sided bound of **Corollary 1** on `‖X̂ − X‖₂` given the Dirichlet
/// energy gap:
///
/// `|ℒ(X̂) − ℒ(X)| / (2 λ_max M) ≤ ‖X̂ − X‖₂ ≤ |ℒ(X̂) − ℒ(X)| / (2 λ_max m)`
///
/// where `M`/`m` are the max/min of the two Frobenius norms. Returns
/// `(lower, upper)`; when `m` is zero the upper bound is `f32::INFINITY`.
pub fn energy_gap_bounds(laplacian: &Csr, lambda_max: f32, x: &Matrix, x_hat: &Matrix) -> (f32, f32) {
    let gap = (dirichlet_energy(laplacian, x_hat) - dirichlet_energy(laplacian, x)).abs();
    let (na, nb) = (x.frobenius_norm(), x_hat.frobenius_norm());
    let big = na.max(nb);
    let small = na.min(nb);
    let lower = if big > 0.0 { gap / (2.0 * lambda_max * big) } else { 0.0 };
    let upper = if small > 0.0 { gap / (2.0 * lambda_max * small) } else { f32::INFINITY };
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UndirectedGraph;

    fn cycle(n: usize) -> UndirectedGraph {
        UndirectedGraph::new(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn energy_of_constant_features_is_zero_on_regular_graph() {
        // On a d-regular graph with self-loop normalization, the constant
        // vector is an eigenvector of Ã with eigenvalue 1 ⇒ Δ·1 = 0.
        let g = cycle(6);
        let lap = g.laplacian();
        let x = Matrix::full(6, 3, 2.5);
        let e = dirichlet_energy(&lap, &x);
        assert!(e.abs() < 1e-4, "energy {e}");
    }

    #[test]
    fn energy_is_nonnegative() {
        let g = cycle(5);
        let lap = g.laplacian();
        let mut rng = desalign_tensor::rng_from_seed(1);
        for _ in 0..10 {
            let x = desalign_tensor::normal_matrix(&mut rng, 5, 4, 0.0, 1.0);
            assert!(dirichlet_energy(&lap, &x) >= -1e-5);
        }
    }

    #[test]
    fn energy_grows_with_disagreement() {
        let g = cycle(4);
        let lap = g.laplacian();
        let smooth = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0], &[1.0]]);
        let rough = Matrix::from_rows(&[&[1.0], &[-1.0], &[1.0], &[-1.0]]);
        assert!(dirichlet_energy(&lap, &rough) > dirichlet_energy(&lap, &smooth) + 0.1);
    }

    #[test]
    fn edgesum_matches_trace_on_regular_graph() {
        let g = cycle(8);
        let lap = g.laplacian();
        let adj = g.adjacency();
        let deg = g.degrees();
        let mut rng = desalign_tensor::rng_from_seed(3);
        let x = desalign_tensor::normal_matrix(&mut rng, 8, 5, 0.0, 1.0);
        let trace = dirichlet_energy(&lap, &x);
        let edges = dirichlet_energy_edgesum(&adj, &deg, &x);
        // Regular graph: Σⱼ ãᵢⱼ = d/(d+1) + 1/(d+1) = 1 per row, so the
        // diagonal slack vanishes and both forms agree.
        assert!((trace - edges).abs() < 1e-3, "trace {trace} vs edgesum {edges}");
    }

    #[test]
    fn proposition1_inequality_holds() {
        let g = cycle(7);
        let lap = g.laplacian();
        let mut rng = desalign_tensor::rng_from_seed(4);
        for _ in 0..20 {
            let x = desalign_tensor::normal_matrix(&mut rng, 7, 3, 0.0, 1.0);
            let x_hat = desalign_tensor::normal_matrix(&mut rng, 7, 3, 0.0, 1.0);
            let (lhs, rhs) = interpolation_lower_bound(&lap, &x, &x_hat);
            assert!(lhs >= rhs - 1e-4, "Prop. 1 violated: {lhs} < {rhs}");
        }
    }

    #[test]
    fn corollary1_bounds_bracket_the_distance() {
        let g = cycle(9);
        let lap = g.laplacian();
        let lmax = crate::lambda_max(&lap, 200, 1e-7);
        let mut rng = desalign_tensor::rng_from_seed(5);
        for _ in 0..10 {
            let x = desalign_tensor::normal_matrix(&mut rng, 9, 4, 0.0, 1.0);
            let x_hat = desalign_tensor::normal_matrix(&mut rng, 9, 4, 0.0, 1.0);
            let dist = x_hat.sub(&x).frobenius_norm();
            let (lower, _upper) = energy_gap_bounds(&lap, lmax, &x, &x_hat);
            // The lower bound from the Lipschitz argument always holds.
            assert!(dist >= lower - 1e-4, "distance {dist} below lower bound {lower}");
        }
    }
}
