//! Micro-benchmarks for the numeric kernels behind the paper's efficiency
//! claims (§V-E): Dirichlet energy evaluation, sparse-dense products, one
//! Semantic Propagation step, and a GAT forward pass.
//!
//! Run with `cargo bench --bench kernels`.

use desalign_bench::timing::{bench, DEFAULT_SAMPLES};
use desalign_graph::{dirichlet_energy, propagate_features, PropagationConfig};
use desalign_mmkg::{DatasetSpec, SynthConfig};
use desalign_nn::{GatEncoder, ParamStore, Session};
use desalign_tensor::{normal_matrix, rng_from_seed};
use std::hint::black_box;
use std::rc::Rc;

fn bench_dirichlet_energy() {
    for &n in &[500usize, 2000] {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(n).generate(1);
        let lap = ds.source.graph().laplacian();
        let x = normal_matrix(&mut rng_from_seed(2), ds.source.num_entities, 64, 0.0, 1.0);
        bench(&format!("dirichlet_energy/{n}"), DEFAULT_SAMPLES, || {
            black_box(dirichlet_energy(&lap, &x));
        });
    }
}

fn bench_spmm() {
    for &n in &[500usize, 2000] {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(n).generate(1);
        let a = ds.source.graph().normalized_adjacency(true);
        let x = normal_matrix(&mut rng_from_seed(3), ds.source.num_entities, 64, 0.0, 1.0);
        bench(&format!("spmm/{n}"), DEFAULT_SAMPLES, || {
            black_box(a.spmm(&x));
        });
    }
}

fn bench_semantic_propagation() {
    // One full SP pass: n_p = 3 rounds with boundary reset — the paper's
    // "7–9 seconds on DBP15K / FB-DB" step at laptop scale.
    for &n in &[500usize, 2000] {
        let ds = SynthConfig::preset(DatasetSpec::Dbp15kFrEn).scaled(n).generate(1);
        let a = ds.source.graph().normalized_adjacency(true);
        let nn = ds.source.num_entities;
        let x = normal_matrix(&mut rng_from_seed(4), nn, 64, 0.0, 1.0);
        let known: Vec<bool> = (0..nn).map(|i| i % 3 != 0).collect();
        let cfg = PropagationConfig { iterations: 3, step: 1.0, reset_known: true };
        bench(&format!("semantic_propagation/{n}"), DEFAULT_SAMPLES, || {
            black_box(propagate_features(&a, &x, &known, &cfg));
        });
    }
}

fn bench_gat_forward() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(500).generate(1);
    let g = ds.source.graph();
    let (src, dst) = g.message_edges();
    let (src, dst) = (Rc::new(src), Rc::new(dst));
    let mut rng = rng_from_seed(5);
    let mut store = ParamStore::new();
    let enc = GatEncoder::new(&mut store, &mut rng, "gat", 64, 2, 2);
    let x = normal_matrix(&mut rng, g.num_nodes(), 64, 0.0, 1.0);
    bench("gat_forward_500", DEFAULT_SAMPLES, || {
        let mut sess = Session::new(&store);
        let input = sess.input(x.clone());
        black_box(enc.forward(&mut sess, input, &src, &dst));
    });
}

fn main() {
    bench_dirichlet_energy();
    bench_spmm();
    bench_semantic_propagation();
    bench_gat_forward();
}
