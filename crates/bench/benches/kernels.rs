//! Micro-benchmarks for the numeric kernels behind the paper's efficiency
//! claims (§V-E): dense matmul, sparse-dense products, Dirichlet energy,
//! one Semantic Propagation step, and a GAT forward pass.
//!
//! Every kernel is timed three ways:
//!
//! 1. **naive** — the pre-optimization reference implementation, kept here
//!    in-bench (branch-free `ikj` matmul, plain CSR row-loop SpMM, unfused
//!    energy/propagation). `tiled_speedup` = naive / serial is the direct
//!    witness for the single-core tiling/bucketing/fusion work;
//! 2. **serial** — the shipped kernel pinned to one thread;
//! 3. **parallel** — the shipped kernel at the configured thread count.
//!    Results are bit-identical between the two legs; only wall-clock
//!    differs. `speedup` = serial / parallel calibrates the
//!    `PAR_MIN_COST` dispatch threshold: each row carries its `cost`
//!    hint and whether it crossed the threshold (`dispatched_parallel`),
//!    so a dispatch misconfiguration shows up as `speedup` well below 1
//!    on a row that should not have gone parallel.
//!
//! Before timing, the shipped matmul/spmm outputs are compared bit for bit
//! against their contract references — naive `ikj` for matmul (tiling is
//! bit-preserving) and a stored-order `f32::mul_add` fold for spmm (the
//! bucketed kernel's fused contract; the plain mul-then-add naive kernel is
//! the timing baseline only, its bits differ in the last ulp). Enforced at
//! bench scale on top of the property suites.
//!
//! The table is written to `BENCH_kernels.json` at the repository root.
//! Each row also carries the frozen serial median of the *seed's* kernels
//! (`seed_serial_median_ns`, from the artifact committed before tiling)
//! and `speedup_vs_seed`, the cross-commit improvement.
//!
//! Run with `cargo bench --bench kernels`. Knobs:
//! - `DESALIGN_BENCH_SAMPLES` — samples per benchmark (default 20);
//! - `DESALIGN_BENCH_MAX_N` — skip scales above this (default 8000; CI's
//!   smoke run caps it low to keep the harness from rotting unnoticed);
//! - `DESALIGN_BENCH_OUT` — where to write the JSON (default
//!   `BENCH_kernels.json` at the repo root; CI's smoke run redirects it so
//!   a committed full-scale table is never clobbered by a 2-sample run);
//! - `DESALIGN_KERNEL_GATE=1` — assertion mode for CI (mirrors
//!   `DESALIGN_RETRIEVAL_GATE`): every median must be non-zero, the tiled
//!   matmul/spmm must beat their naive baselines, and the dispatched leg
//!   must not fall far behind forced-serial.

use desalign_bench::timing::{bench, bench_stats, DEFAULT_SAMPLES};
use desalign_graph::{dirichlet_energy, propagate_features, Csr, PropagationConfig};
use desalign_mmkg::{DatasetSpec, SynthConfig};
use desalign_nn::{GatEncoder, ParamStore, Session};
use desalign_parallel::{configured_threads, with_threads, PAR_MIN_COST};
use desalign_tensor::{normal_matrix, rng_from_seed, Matrix};
use desalign_util::{json, Json};
use std::hint::black_box;
use std::rc::Rc;

/// The scales of the ISSUE's serial-vs-parallel comparison.
const SCALES: [usize; 3] = [500, 2000, 8000];

fn samples() -> usize {
    std::env::var("DESALIGN_BENCH_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_SAMPLES)
}

fn max_n() -> usize {
    std::env::var("DESALIGN_BENCH_MAX_N").ok().and_then(|v| v.parse().ok()).unwrap_or(8000)
}

fn scales() -> Vec<usize> {
    SCALES.iter().copied().filter(|&n| n <= max_n()).collect()
}

/// Whether `DESALIGN_KERNEL_GATE=1` turned the bench into a CI assertion.
fn gate_enabled() -> bool {
    std::env::var("DESALIGN_KERNEL_GATE").map(|v| v == "1").unwrap_or(false)
}

/// Serial medians of the seed's pre-tiling kernels, frozen from the
/// committed `BENCH_kernels.json` this table replaced (20 samples,
/// single-core host). Regenerated tables carry `speedup_vs_seed` against
/// these so the cross-commit improvement is visible without digging
/// through git history.
fn seed_serial_median_ns(kernel: &str, n: usize) -> Option<f64> {
    const SEED: &[(&str, usize, f64)] = &[
        ("matmul", 500, 301_082.0),
        ("matmul", 2000, 1_174_613.0),
        ("matmul", 8000, 4_879_029.0),
        ("spmm", 500, 58_530.0),
        ("spmm", 2000, 273_026.0),
        ("spmm", 8000, 1_850_774.0),
        ("dirichlet_energy", 500, 75_798.0),
        ("dirichlet_energy", 2000, 328_541.0),
        ("dirichlet_energy", 8000, 1_998_576.0),
        ("semantic_propagation", 500, 205_775.0),
        ("semantic_propagation", 2000, 1_008_414.0),
        ("semantic_propagation", 8000, 13_236_644.0),
    ];
    SEED.iter().find(|&&(k, m, _)| k == kernel && m == n).map(|&(_, _, ns)| ns)
}

/// CPU features relevant to the f32 kernels, as detected at runtime. The
/// workspace compiles with `-C target-cpu=native` (see
/// `.cargo/config.toml`), so this list records what the committed timings
/// were actually allowed to use.
fn cpu_features() -> Vec<Json> {
    let mut out: Vec<Json> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    for (name, on) in [
        ("sse2", std::arch::is_x86_feature_detected!("sse2")),
        ("sse4.2", std::arch::is_x86_feature_detected!("sse4.2")),
        ("avx", std::arch::is_x86_feature_detected!("avx")),
        ("avx2", std::arch::is_x86_feature_detected!("avx2")),
        ("fma", std::arch::is_x86_feature_detected!("fma")),
        ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
    ] {
        if on {
            out.push(Json::Str(name.to_string()));
        }
    }
    out
}

/// `rustc -V` of the toolchain that produced the timings, or `"unknown"`
/// when the compiler is not on PATH (the bench must not fail over it).
fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("-V")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One naive-vs-serial-vs-parallel row of the speedup table.
fn compare<F: FnMut(), B: FnMut()>(
    rows: &mut Vec<Json>,
    name: &str,
    n: usize,
    cost: usize,
    threads: usize,
    mut f: F,
    mut baseline: B,
) {
    let naive = with_threads(1, || bench_stats(&format!("{name}/{n} (naive, 1 thread)"), samples(), &mut baseline));
    let serial = with_threads(1, || bench_stats(&format!("{name}/{n} (1 thread)"), samples(), &mut f));
    let parallel = with_threads(threads, || bench_stats(&format!("{name}/{n} ({threads} threads)"), samples(), &mut f));

    let (b, s, p) = (naive.median.as_nanos() as f64, serial.median.as_nanos() as f64, parallel.median.as_nanos() as f64);
    let tiled_speedup = if s > 0.0 { b / s } else { 0.0 };
    let speedup = if p > 0.0 { s / p } else { 0.0 };
    if gate_enabled() {
        for (leg, ns) in [("naive", b), ("serial", s), ("parallel", p)] {
            assert!(ns > 0.0 && ns.is_finite(), "{name}/{n}: {leg} median {ns} ns is not a positive finite timing");
        }
        if matches!(name, "matmul" | "spmm") {
            assert!(tiled_speedup > 1.0, "{name}/{n}: shipped kernel ({s} ns) does not beat the naive baseline ({b} ns)");
        }
        // Dispatch calibration: the legs run bit-identical kernels, so a
        // parallel leg far behind forced-serial means PAR_MIN_COST let an
        // unprofitable product go parallel (the seed's matmul n=2000 row
        // sat at 0.56× for exactly that reason). On a single-thread host
        // both legs are the same code path and the ratio is pure timer
        // noise, so the assertion only applies when a real parallel leg
        // exists.
        if threads > 1 {
            assert!(speedup >= 0.5, "{name}/{n}: dispatched leg is {:.2}× slower than forced-serial — PAR_MIN_COST miscalibrated", 1.0 / speedup);
        }
    }

    let seed = seed_serial_median_ns(name, n);
    rows.push(json!({
        "kernel": name,
        "n": n,
        "cost": cost,
        "dispatched_parallel": threads > 1 && cost >= PAR_MIN_COST,
        "naive_median_ns": b,
        "serial_median_ns": s,
        "parallel_median_ns": p,
        "tiled_speedup": tiled_speedup,
        "speedup": speedup,
        "seed_serial_median_ns": seed.map_or(Json::Null, Json::Num),
        "speedup_vs_seed": seed.filter(|_| s > 0.0).map_or(Json::Null, |ns| Json::Num(ns / s)),
    }));
}

/// Asserts two matrices agree bit for bit — the tiled kernels' determinism
/// contract, spot-checked at bench scale before timing begins.
fn assert_bits_eq(reference: &Matrix, shipped: &Matrix, what: &str) {
    assert_eq!(reference.rows(), shipped.rows(), "{what}: row count differs");
    assert_eq!(reference.cols(), shipped.cols(), "{what}: col count differs");
    for (i, (r, t)) in reference.as_slice().iter().zip(shipped.as_slice()).enumerate() {
        assert!(r.to_bits() == t.to_bits(), "{what}: element {i} differs bitwise: {r} vs {t}");
    }
}

/// The seed's `matmul` inner loop: zero-skip branch intact. Kept here as
/// the baseline for the branch-removal satellite — on the dense inputs this
/// kernel sees, the branch defeats auto-vectorization.
fn matmul_branchy(a: &Matrix, b: &Matrix) -> Matrix {
    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(n, m);
    for i in 0..n {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (p, &a_ip) in a_row.iter().enumerate().take(k) {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * bv;
            }
        }
    }
    out
}

/// The pre-tiling dense matmul: branch-free `ikj` with a vectorizable
/// inner loop, no register tiling, no packed B panels. Each output element
/// accumulates over `p` in ascending order — the same per-element order
/// the tiled kernel keeps, so the two agree bit for bit.
fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(n, m);
    for i in 0..n {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for p in 0..k {
            let a_ip = a_row[p];
            for (o, &bv) in out_row.iter_mut().zip(b.row(p)) {
                *o += a_ip * bv;
            }
        }
    }
    out
}

/// The pre-bucketing SpMM: one plain scalar loop per nonzero, no nnz
/// bucketing, no register chunking, mul-then-add accumulation. This is the
/// *timing* baseline; the shipped kernel's FMA contract means its bits
/// differ in the last ulp (see [`spmm_fma_reference`]).
fn spmm_naive(a: &Csr, x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), x.cols());
    for i in 0..a.rows() {
        let out_row = out.row_mut(i);
        for (j, v) in a.row(i) {
            for (o, &xv) in out_row.iter_mut().zip(x.row(j)) {
                *o += v * xv;
            }
        }
    }
    out
}

/// The shipped SpMM's numeric contract, spelled out with zero cleverness:
/// per output element, fold the row's products in stored nonzero order via
/// `f32::mul_add`. The bucketed kernel must match this bit for bit at any
/// chunk width or thread count (the same reference `proptest_bucketed`
/// pins, re-checked here at bench scale).
fn spmm_fma_reference(a: &Csr, x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), x.cols());
    for i in 0..a.rows() {
        let out_row = out.row_mut(i);
        for (j, v) in a.row(i) {
            for (o, &xv) in out_row.iter_mut().zip(x.row(j)) {
                *o = v.mul_add(xv, *o);
            }
        }
    }
    out
}

/// The pre-fusion Dirichlet energy: materialize `L·X`, then fold
/// `X ∘ (LX)` — what `dirichlet_energy` computed before the fused
/// block-at-a-time kernel removed the `n×d` intermediate.
fn dirichlet_naive(lap: &Csr, x: &Matrix) -> f32 {
    let lx = spmm_naive(lap, x);
    let mut acc = 0.0f32;
    for (a, b) in x.as_slice().iter().zip(lx.as_slice()) {
        acc += a * b;
    }
    0.5 * acc
}

/// The pre-fusion Semantic Propagation loop: a full SpMM every round with
/// known rows overwritten afterwards — the work `spmm_skip_into` now
/// avoids. Like the shipped API it returns every round's state (Algorithm
/// 1 averages similarities over all rounds), so both sides pay the same
/// per-round state allocation and the ratio isolates the kernel work.
fn propagate_naive(a: &Csr, x: &Matrix, known: &[bool], cfg: &PropagationConfig) -> Vec<Matrix> {
    assert_eq!(cfg.step, 1.0, "naive baseline models the full-step path only");
    let mut states = vec![x.clone()];
    for _ in 0..cfg.iterations {
        let mut next = spmm_naive(a, states.last().expect("states non-empty"));
        if cfg.reset_known {
            for (i, &keep) in known.iter().enumerate() {
                if keep {
                    next.row_mut(i).copy_from_slice(x.row(i));
                }
            }
        }
        states.push(next);
    }
    states
}

fn bench_matmul(rows: &mut Vec<Json>, zero_skip_rows: &mut Vec<Json>, threads: usize) {
    for n in scales() {
        // The workload shape: entity embeddings (n × 64) times a layer
        // weight (64 × 64), dense on both sides.
        let a = normal_matrix(&mut rng_from_seed(1), n, 64, 0.0, 1.0);
        let b = normal_matrix(&mut rng_from_seed(2), 64, 64, 0.0, 1.0);
        assert_bits_eq(&matmul_naive(&a, &b), &a.matmul(&b), "matmul (tiled vs naive)");
        compare(
            rows,
            "matmul",
            n,
            n * 64 * 64,
            threads,
            || {
                black_box(a.matmul(&b));
            },
            || {
                black_box(matmul_naive(&a, &b));
            },
        );
        // Zero-skip satellite, isolated from tiling: the seed's branchy
        // loop vs the same loop with only the branch removed.
        let branchy = with_threads(1, || {
            bench_stats(&format!("matmul_seed/{n} (branchy, 1 thread)"), samples(), || {
                black_box(matmul_branchy(&a, &b));
            })
        });
        let branchless = with_threads(1, || {
            bench_stats(&format!("matmul_fixed/{n} (branch-free, 1 thread)"), samples(), || {
                black_box(matmul_naive(&a, &b));
            })
        });
        let (old, new) = (branchy.median.as_nanos() as f64, branchless.median.as_nanos() as f64);
        zero_skip_rows.push(json!({
            "n": n,
            "branchy_median_ns": old,
            "branchless_median_ns": new,
            "speedup": if new > 0.0 { old / new } else { 0.0 },
        }));
    }
}

fn bench_spmm(rows: &mut Vec<Json>, threads: usize) {
    for n in scales() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(n).generate(1);
        let a = ds.source.graph().normalized_adjacency(true);
        let x = normal_matrix(&mut rng_from_seed(3), ds.source.num_entities, 64, 0.0, 1.0);
        assert_bits_eq(&spmm_fma_reference(&a, &x), &a.spmm(&x), "spmm (bucketed vs stored-order fma fold)");
        compare(
            rows,
            "spmm",
            n,
            a.nnz() * 64,
            threads,
            || {
                black_box(a.spmm(&x));
            },
            || {
                black_box(spmm_naive(&a, &x));
            },
        );
    }
}

fn bench_dirichlet_energy(rows: &mut Vec<Json>, threads: usize) {
    for n in scales() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(n).generate(1);
        let lap = ds.source.graph().laplacian();
        let x = normal_matrix(&mut rng_from_seed(2), ds.source.num_entities, 64, 0.0, 1.0);
        compare(
            rows,
            "dirichlet_energy",
            n,
            lap.nnz() * 64,
            threads,
            || {
                black_box(dirichlet_energy(&lap, &x));
            },
            || {
                black_box(dirichlet_naive(&lap, &x));
            },
        );
    }
}

fn bench_semantic_propagation(rows: &mut Vec<Json>, threads: usize) {
    // One full SP pass: n_p = 3 rounds with boundary reset — the paper's
    // "7–9 seconds on DBP15K / FB-DB" step at laptop scale.
    for n in scales() {
        let ds = SynthConfig::preset(DatasetSpec::Dbp15kFrEn).scaled(n).generate(1);
        let a = ds.source.graph().normalized_adjacency(true);
        let nn = ds.source.num_entities;
        let x = normal_matrix(&mut rng_from_seed(4), nn, 64, 0.0, 1.0);
        let known: Vec<bool> = (0..nn).map(|i| i % 3 != 0).collect();
        let cfg = PropagationConfig { iterations: 3, step: 1.0, reset_known: true };
        compare(
            rows,
            "semantic_propagation",
            n,
            a.nnz() * 64,
            threads,
            || {
                black_box(propagate_features(&a, &x, &known, &cfg));
            },
            || {
                black_box(propagate_naive(&a, &x, &known, &cfg));
            },
        );
    }
}

fn bench_gat_forward() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(500).generate(1);
    let g = ds.source.graph();
    let (src, dst) = g.message_edges();
    let (src, dst) = (Rc::new(src), Rc::new(dst));
    let mut rng = rng_from_seed(5);
    let mut store = ParamStore::new();
    let enc = GatEncoder::new(&mut store, &mut rng, "gat", 64, 2, 2);
    let x = normal_matrix(&mut rng, g.num_nodes(), 64, 0.0, 1.0);
    bench("gat_forward_500", samples(), || {
        let mut sess = Session::new(&store);
        let input = sess.input(x.clone());
        black_box(enc.forward(&mut sess, input, &src, &dst));
    });
}

fn main() {
    let host = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let threads = configured_threads();
    println!("host parallelism: {host}, parallel leg runs {threads} thread(s)");
    if gate_enabled() {
        println!("DESALIGN_KERNEL_GATE=1: timing sanity / tiled-beats-naive / dispatch assertions on");
    }
    println!();

    let mut rows: Vec<Json> = Vec::new();
    let mut zero_skip_rows: Vec<Json> = Vec::new();
    bench_matmul(&mut rows, &mut zero_skip_rows, threads);
    bench_spmm(&mut rows, threads);
    bench_dirichlet_energy(&mut rows, threads);
    bench_semantic_propagation(&mut rows, threads);
    bench_gat_forward();

    let out = json!({
        "schema_version": 2,
        "host_threads": host,
        "parallel_threads": threads,
        "samples": samples(),
        "max_n": max_n(),
        "par_min_cost": PAR_MIN_COST,
        "rustc": rustc_version(),
        "cpu_features": Json::Array(cpu_features()),
        "kernels": Json::Array(rows),
        "matmul_zero_skip_fix": Json::Array(zero_skip_rows),
    });
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let path = std::env::var("DESALIGN_BENCH_OUT").unwrap_or_else(|_| default_path.to_string());
    match std::fs::write(&path, out.to_string()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
