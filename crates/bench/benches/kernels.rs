//! Micro-benchmarks for the numeric kernels behind the paper's efficiency
//! claims (§V-E): dense matmul, sparse-dense products, Dirichlet energy,
//! one Semantic Propagation step, and a GAT forward pass.
//!
//! Every parallelized kernel is timed twice — pinned to one thread and at
//! the configured thread count — and the speedup table is written to
//! `BENCH_kernels.json` at the repository root (results are bit-identical
//! between the two legs; only wall-clock differs). The zero-skip removal in
//! `Matrix::matmul` is tracked by re-timing the old branchy inner loop
//! against the shipped branch-free one.
//!
//! Run with `cargo bench --bench kernels`. Knobs:
//! - `DESALIGN_BENCH_SAMPLES` — samples per benchmark (default 20);
//! - `DESALIGN_BENCH_MAX_N` — skip scales above this (default 8000; CI's
//!   smoke run caps it low to keep the harness from rotting unnoticed);
//! - `DESALIGN_BENCH_OUT` — where to write the JSON (default
//!   `BENCH_kernels.json` at the repo root; CI's smoke run redirects it so
//!   a committed full-scale table is never clobbered by a 2-sample run).

use desalign_bench::timing::{bench, bench_stats, BenchStats, DEFAULT_SAMPLES};
use desalign_graph::{dirichlet_energy, propagate_features, PropagationConfig};
use desalign_mmkg::{DatasetSpec, SynthConfig};
use desalign_nn::{GatEncoder, ParamStore, Session};
use desalign_parallel::{configured_threads, with_threads};
use desalign_tensor::{normal_matrix, rng_from_seed, Matrix};
use desalign_util::{json, Json};
use std::hint::black_box;
use std::rc::Rc;

/// The scales of the ISSUE's serial-vs-parallel comparison.
const SCALES: [usize; 3] = [500, 2000, 8000];

fn samples() -> usize {
    std::env::var("DESALIGN_BENCH_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_SAMPLES)
}

fn max_n() -> usize {
    std::env::var("DESALIGN_BENCH_MAX_N").ok().and_then(|v| v.parse().ok()).unwrap_or(8000)
}

fn scales() -> Vec<usize> {
    SCALES.iter().copied().filter(|&n| n <= max_n()).collect()
}

/// One serial-vs-parallel row of the speedup table.
fn compare<F: FnMut()>(rows: &mut Vec<Json>, name: &str, n: usize, threads: usize, mut f: F) {
    let serial = with_threads(1, || bench_stats(&format!("{name}/{n} (1 thread)"), samples(), &mut f));
    let parallel = with_threads(threads, || bench_stats(&format!("{name}/{n} ({threads} threads)"), samples(), &mut f));
    rows.push(row_json(name, n, &serial, &parallel));
}

fn row_json(name: &str, n: usize, serial: &BenchStats, parallel: &BenchStats) -> Json {
    let (s, p) = (serial.median.as_nanos() as f64, parallel.median.as_nanos() as f64);
    json!({
        "kernel": name,
        "n": n,
        "serial_median_ns": s,
        "parallel_median_ns": p,
        "speedup": if p > 0.0 { s / p } else { 0.0 },
    })
}

/// The seed's `matmul` inner loop: zero-skip branch intact. Kept here as
/// the baseline for the branch-removal satellite — on the dense inputs this
/// kernel sees, the branch defeats auto-vectorization.
fn matmul_branchy(a: &Matrix, b: &Matrix) -> Matrix {
    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(n, m);
    for i in 0..n {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (p, &a_ip) in a_row.iter().enumerate().take(k) {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * bv;
            }
        }
    }
    out
}

fn bench_matmul(rows: &mut Vec<Json>, zero_skip_rows: &mut Vec<Json>, threads: usize) {
    for n in scales() {
        // The workload shape: entity embeddings (n × 64) times a layer
        // weight (64 × 64), dense on both sides.
        let a = normal_matrix(&mut rng_from_seed(1), n, 64, 0.0, 1.0);
        let b = normal_matrix(&mut rng_from_seed(2), 64, 64, 0.0, 1.0);
        compare(rows, "matmul", n, threads, || {
            black_box(a.matmul(&b));
        });
        let branchy = with_threads(1, || {
            bench_stats(&format!("matmul_seed/{n} (branchy, 1 thread)"), samples(), || {
                black_box(matmul_branchy(&a, &b));
            })
        });
        let branchless = with_threads(1, || {
            bench_stats(&format!("matmul_fixed/{n} (branch-free, 1 thread)"), samples(), || {
                black_box(a.matmul(&b));
            })
        });
        let (old, new) = (branchy.median.as_nanos() as f64, branchless.median.as_nanos() as f64);
        zero_skip_rows.push(json!({
            "n": n,
            "branchy_median_ns": old,
            "branchless_median_ns": new,
            "speedup": if new > 0.0 { old / new } else { 0.0 },
        }));
    }
}

fn bench_spmm(rows: &mut Vec<Json>, threads: usize) {
    for n in scales() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(n).generate(1);
        let a = ds.source.graph().normalized_adjacency(true);
        let x = normal_matrix(&mut rng_from_seed(3), ds.source.num_entities, 64, 0.0, 1.0);
        compare(rows, "spmm", n, threads, || {
            black_box(a.spmm(&x));
        });
    }
}

fn bench_dirichlet_energy(rows: &mut Vec<Json>, threads: usize) {
    for n in scales() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(n).generate(1);
        let lap = ds.source.graph().laplacian();
        let x = normal_matrix(&mut rng_from_seed(2), ds.source.num_entities, 64, 0.0, 1.0);
        compare(rows, "dirichlet_energy", n, threads, || {
            black_box(dirichlet_energy(&lap, &x));
        });
    }
}

fn bench_semantic_propagation(rows: &mut Vec<Json>, threads: usize) {
    // One full SP pass: n_p = 3 rounds with boundary reset — the paper's
    // "7–9 seconds on DBP15K / FB-DB" step at laptop scale.
    for n in scales() {
        let ds = SynthConfig::preset(DatasetSpec::Dbp15kFrEn).scaled(n).generate(1);
        let a = ds.source.graph().normalized_adjacency(true);
        let nn = ds.source.num_entities;
        let x = normal_matrix(&mut rng_from_seed(4), nn, 64, 0.0, 1.0);
        let known: Vec<bool> = (0..nn).map(|i| i % 3 != 0).collect();
        let cfg = PropagationConfig { iterations: 3, step: 1.0, reset_known: true };
        compare(rows, "semantic_propagation", n, threads, || {
            black_box(propagate_features(&a, &x, &known, &cfg));
        });
    }
}

fn bench_gat_forward() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(500).generate(1);
    let g = ds.source.graph();
    let (src, dst) = g.message_edges();
    let (src, dst) = (Rc::new(src), Rc::new(dst));
    let mut rng = rng_from_seed(5);
    let mut store = ParamStore::new();
    let enc = GatEncoder::new(&mut store, &mut rng, "gat", 64, 2, 2);
    let x = normal_matrix(&mut rng, g.num_nodes(), 64, 0.0, 1.0);
    bench("gat_forward_500", samples(), || {
        let mut sess = Session::new(&store);
        let input = sess.input(x.clone());
        black_box(enc.forward(&mut sess, input, &src, &dst));
    });
}

fn main() {
    let host = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let threads = configured_threads();
    println!("host parallelism: {host}, parallel leg runs {threads} thread(s)\n");

    let mut rows: Vec<Json> = Vec::new();
    let mut zero_skip_rows: Vec<Json> = Vec::new();
    bench_matmul(&mut rows, &mut zero_skip_rows, threads);
    bench_spmm(&mut rows, threads);
    bench_dirichlet_energy(&mut rows, threads);
    bench_semantic_propagation(&mut rows, threads);
    bench_gat_forward();

    let out = json!({
        "host_threads": host,
        "parallel_threads": threads,
        "samples": samples(),
        "max_n": max_n(),
        "kernels": Json::Array(rows),
        "matmul_zero_skip_fix": Json::Array(zero_skip_rows),
    });
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let path = std::env::var("DESALIGN_BENCH_OUT").unwrap_or_else(|_| default_path.to_string());
    match std::fs::write(&path, out.to_string()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
