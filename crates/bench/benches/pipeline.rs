//! Criterion benchmarks of the end-to-end pipeline stages: one training
//! epoch (forward + backward + AdamW step) and one full similarity
//! evaluation with Semantic Propagation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use desalign_core::{DesalignConfig, DesalignModel};
use desalign_mmkg::{DatasetSpec, FeatureDims, SynthConfig};

fn small_cfg(epochs: usize) -> DesalignConfig {
    let mut cfg = DesalignConfig::fast();
    cfg.hidden_dim = 32;
    cfg.feature_dims = FeatureDims { relation: 64, attribute: 64, visual: 64 };
    cfg.epochs = epochs;
    cfg.eval_every = 0;
    cfg
}

fn bench_train_epoch(c: &mut Criterion) {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(200).generate(1);
    c.bench_function("train_epoch_200", |b| {
        b.iter_batched(
            || DesalignModel::new(small_cfg(1), &ds, 7),
            |mut model| black_box(model.fit(&ds)),
            criterion::BatchSize::LargeInput,
        );
    });
}

fn bench_similarity_with_sp(c: &mut Criterion) {
    let ds = SynthConfig::preset(DatasetSpec::Dbp15kFrEn).scaled(200).generate(1);
    let mut model = DesalignModel::new(small_cfg(3), &ds, 7);
    model.fit(&ds);
    c.bench_function("similarity_sp_np3_200", |b| {
        b.iter(|| black_box(model.similarity_with_iterations(3)));
    });
    c.bench_function("similarity_plain_200", |b| {
        b.iter(|| black_box(model.similarity_with_iterations(0)));
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = bench_train_epoch, bench_similarity_with_sp
}
criterion_main!(pipeline);
