//! Benchmarks of the end-to-end pipeline stages: one training epoch
//! (forward + backward + AdamW step) and one full similarity evaluation
//! with Semantic Propagation.
//!
//! Run with `cargo bench --bench pipeline`.

use desalign_bench::timing::{bench, bench_with_setup};
use desalign_core::{DesalignConfig, DesalignModel};
use desalign_mmkg::{DatasetSpec, FeatureDims, SynthConfig};
use std::hint::black_box;

const SAMPLES: usize = 10;

fn small_cfg(epochs: usize) -> DesalignConfig {
    let mut cfg = DesalignConfig::fast();
    cfg.hidden_dim = 32;
    cfg.feature_dims = FeatureDims { relation: 64, attribute: 64, visual: 64 };
    cfg.epochs = epochs;
    cfg.eval_every = 0;
    cfg
}

fn bench_train_epoch() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(200).generate(1);
    bench_with_setup(
        "train_epoch_200",
        SAMPLES,
        || DesalignModel::new(small_cfg(1), &ds, 7),
        |mut model| {
            black_box(model.fit(&ds));
        },
    );
}

fn bench_similarity_with_sp() {
    let ds = SynthConfig::preset(DatasetSpec::Dbp15kFrEn).scaled(200).generate(1);
    let mut model = DesalignModel::new(small_cfg(3), &ds, 7);
    model.fit(&ds);
    bench("similarity_sp_np3_200", SAMPLES, || {
        black_box(model.similarity_with_iterations(3));
    });
    bench("similarity_plain_200", SAMPLES, || {
        black_box(model.similarity_with_iterations(0));
    });
}

fn main() {
    bench_train_epoch();
    bench_similarity_with_sp();
}
