//! Retrieval scaling benchmark: dense cosine vs blocked exact vs IVF.
//!
//! For each corpus size the harness builds a clustered synthetic MMKG
//! embedding table, perturbs item rows into queries, and times three
//! top-10 retrieval paths:
//!
//! - **dense** — materialize the full `queries × n` cosine matrix (the
//!   historical path) and rank per row;
//! - **exact** — the blocked `ExactRetriever` scan (bit-identical scores,
//!   never materializes the matrix);
//! - **ivf** — the seeded IVF index at the configured `nprobe`.
//!
//! Alongside queries/sec it reports IVF recall@1/@10 against the exact
//! top-k, the scanned-candidate fraction from the `retrieval.*` telemetry
//! counters, and a dense-vs-exact **bit-identity** verdict over ids and
//! score bits. The table is written to `BENCH_retrieval.json`.
//!
//! Knobs (all env vars):
//! - `DESALIGN_RETRIEVAL_SIZES` — comma-separated corpus sizes (default
//!   `1000,10000,100000`; pass `1000000` for the 1M-entity leg — the
//!   k-means build takes minutes there, so it is opt-in);
//! - `DESALIGN_RETRIEVAL_QUERIES` — queries per size (default 256);
//! - `DESALIGN_RETRIEVAL_DIM` — embedding width (default 64);
//! - `DESALIGN_RETRIEVAL_CLUSTERS` — synthetic cluster count (default 64);
//! - `DESALIGN_RETRIEVAL_NPROBE` — IVF cells probed per query (default 16);
//! - `DESALIGN_RETRIEVAL_SAMPLES` — timing samples per path (default 3);
//! - `DESALIGN_RETRIEVAL_MAX_DENSE` — skip the dense leg above this size
//!   (default 200000: the materialized matrix is `queries × n` floats);
//! - `DESALIGN_RETRIEVAL_OUT` — output path (default `BENCH_retrieval.json`);
//! - `DESALIGN_RETRIEVAL_GATE=1` — exit non-zero unless recall@10 ≥ 0.95,
//!   dense and exact agree bit-for-bit, and every QPS is finite.

use desalign_bench::timing::bench_stats;
use desalign_bench::{dump_json, or_die};
use desalign_eval::{
    batch_top_k, cosine_similarity, DenseRetriever, ExactRetriever, IvfIndex, IvfParams,
    IvfRetriever,
};
use desalign_tensor::{rng_from_seed, Matrix, Rng64};
use desalign_util::{json, Json};
use std::time::Instant;

const K: usize = 10;
const RECALL_FLOOR: f64 = 0.95;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn env_sizes() -> Vec<usize> {
    match std::env::var("DESALIGN_RETRIEVAL_SIZES") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).filter(|&n| n > 0).collect(),
        Err(_) => vec![1_000, 10_000, 100_000],
    }
}

/// Clustered embedding table: `n` rows scattered around `clusters` anchors
/// — the regime an IVF index is built for (uniform noise has no cell
/// structure and needs a far higher `nprobe` for the same recall).
fn synth_items(rng: &mut Rng64, n: usize, dim: usize, clusters: usize) -> Matrix {
    let anchors: Vec<f32> = (0..clusters * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n {
        let a = i % clusters;
        for j in 0..dim {
            data.push(anchors[a * dim + j] + 0.35 * rng.gen_range(-1.0f32..1.0));
        }
    }
    Matrix::from_vec(n, dim, data)
}

/// Queries perturb random item rows, mimicking the aligned-entity case.
fn synth_queries(rng: &mut Rng64, items: &Matrix, nq: usize) -> Matrix {
    let (n, dim) = (items.rows(), items.cols());
    let mut data = Vec::with_capacity(nq * dim);
    for _ in 0..nq {
        let src = rng.gen_range(0..n);
        for j in 0..dim {
            data.push(items[(src, j)] + 0.1 * rng.gen_range(-1.0f32..1.0));
        }
    }
    Matrix::from_vec(nq, dim, data)
}

fn ids_and_bits(lists: &[Vec<(usize, f32)>]) -> Vec<Vec<(usize, u32)>> {
    lists.iter().map(|l| l.iter().map(|&(i, s)| (i, s.to_bits())).collect()).collect()
}

fn mean_recall(approx: &[Vec<(usize, f32)>], exact: &[Vec<(usize, f32)>], k: usize) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (a, e) in approx.iter().zip(exact) {
        let truth: std::collections::HashSet<usize> = e.iter().take(k).map(|&(i, _)| i).collect();
        total += truth.len();
        hit += a.iter().take(k).filter(|&&(i, _)| truth.contains(&i)).count();
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

struct SizeReport {
    row: Json,
    recall_at_10: f64,
    bit_identical: bool,
    qps: Vec<f64>,
}

fn run_size(n: usize, nq: usize, dim: usize, clusters: usize, nprobe: usize, samples: usize, max_dense: usize) -> SizeReport {
    let mut rng = rng_from_seed(0xD15A ^ n as u64);
    let items = synth_items(&mut rng, n, dim, clusters.min(n));
    let queries = synth_queries(&mut rng, &items, nq.min(n.max(1)));
    let nq = queries.rows();

    // --- exact blocked scan ------------------------------------------------
    let exact = or_die("exact retriever", ExactRetriever::new(&queries, &items));
    let exact_lists = batch_top_k(&exact, K);
    let exact_stats = bench_stats(&format!("exact/{n}"), samples, || {
        std::hint::black_box(batch_top_k(&exact, K));
    });
    let qps_exact = nq as f64 / exact_stats.median.as_secs_f64();

    // --- dense materialized path (the historical baseline) -----------------
    let (qps_dense, bit_identical) = if n <= max_dense {
        let dense_lists = {
            let sim = cosine_similarity(&queries, &items);
            let dense = DenseRetriever::new(&sim, (0..nq).collect(), (0..n).collect());
            batch_top_k(&dense, K)
        };
        let dense_stats = bench_stats(&format!("dense/{n}"), samples, || {
            let sim = cosine_similarity(&queries, &items);
            let dense = DenseRetriever::new(&sim, (0..nq).collect(), (0..n).collect());
            std::hint::black_box(batch_top_k(&dense, K));
        });
        let identical = ids_and_bits(&dense_lists) == ids_and_bits(&exact_lists);
        (Some(nq as f64 / dense_stats.median.as_secs_f64()), identical)
    } else {
        println!("dense/{n}: skipped (> DESALIGN_RETRIEVAL_MAX_DENSE = {max_dense})");
        (None, true)
    };

    // --- IVF ---------------------------------------------------------------
    let params = IvfParams { nprobe, ..IvfParams::default() };
    let build_start = Instant::now();
    let index = or_die("ivf build", IvfIndex::build(&items, &params));
    let build_secs = build_start.elapsed().as_secs_f64();
    let num_cells = index.num_cells();
    let ivf = or_die("ivf retriever", IvfRetriever::new(&queries, index));

    desalign_telemetry::set_enabled(Some(true));
    desalign_telemetry::reset_metrics();
    let ivf_lists = batch_top_k(&ivf, K);
    let probes = desalign_telemetry::counter("retrieval.probes").get();
    let candidates = desalign_telemetry::counter("retrieval.candidates").get();
    desalign_telemetry::set_enabled(Some(false));

    let ivf_stats = bench_stats(&format!("ivf/{n}"), samples, || {
        std::hint::black_box(batch_top_k(&ivf, K));
    });
    let qps_ivf = nq as f64 / ivf_stats.median.as_secs_f64();

    let recall_at_1 = mean_recall(&ivf_lists, &exact_lists, 1);
    let recall_at_10 = mean_recall(&ivf_lists, &exact_lists, K);
    let scanned_fraction = candidates as f64 / (nq as f64 * n.max(1) as f64);

    println!(
        "n={n:<8} build {build_secs:>7.3}s cells {num_cells:<5} probes/q {:<5.1} scanned {:>5.1}%  recall@1 {recall_at_1:.3} recall@10 {recall_at_10:.3}  QPS exact {qps_exact:>10.0} ivf {qps_ivf:>10.0} dense {}",
        probes as f64 / nq.max(1) as f64,
        scanned_fraction * 100.0,
        qps_dense.map_or("—".into(), |q| format!("{q:.0}")),
    );

    let mut qps = vec![qps_exact, qps_ivf];
    if let Some(q) = qps_dense {
        qps.push(q);
    }
    let row = json!({
        "n": n,
        "queries": nq,
        "dim": dim,
        "nprobe": nprobe,
        "num_cells": num_cells,
        "ivf_build_secs": build_secs,
        "qps_dense": qps_dense,
        "qps_exact": qps_exact,
        "qps_ivf": qps_ivf,
        "recall_at_1": recall_at_1,
        "recall_at_10": recall_at_10,
        "scanned_fraction": scanned_fraction,
        "exact_bit_identical": bit_identical,
    });
    SizeReport { row, recall_at_10, bit_identical, qps }
}

fn main() {
    let sizes = env_sizes();
    let nq = env_usize("DESALIGN_RETRIEVAL_QUERIES", 256);
    let dim = env_usize("DESALIGN_RETRIEVAL_DIM", 64);
    let clusters = env_usize("DESALIGN_RETRIEVAL_CLUSTERS", 64);
    let nprobe = env_usize("DESALIGN_RETRIEVAL_NPROBE", 16);
    let samples = env_usize("DESALIGN_RETRIEVAL_SAMPLES", 3);
    let max_dense = env_usize("DESALIGN_RETRIEVAL_MAX_DENSE", 200_000);
    let gate = std::env::var("DESALIGN_RETRIEVAL_GATE").as_deref() == Ok("1");
    let out = std::env::var("DESALIGN_RETRIEVAL_OUT").unwrap_or_else(|_| "BENCH_retrieval.json".into());

    println!("retrieval bench: sizes {sizes:?}, {nq} queries, dim {dim}, nprobe {nprobe}");
    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for &n in &sizes {
        let report = run_size(n, nq, dim, clusters, nprobe, samples, max_dense);
        if report.recall_at_10 < RECALL_FLOOR {
            failures.push(format!("n={n}: recall@10 {:.3} < {RECALL_FLOOR}", report.recall_at_10));
        }
        if !report.bit_identical {
            failures.push(format!("n={n}: dense and exact top-{K} lists are not bit-identical"));
        }
        if report.qps.iter().any(|q| !q.is_finite() || *q <= 0.0) {
            failures.push(format!("n={n}: non-finite or zero QPS {:?}", report.qps));
        }
        rows.push(report.row);
    }

    dump_json(&out, &json!({
        "k": K,
        "recall_floor": RECALL_FLOOR,
        "queries": nq,
        "dim": dim,
        "nprobe": nprobe,
        "sizes": rows,
    }));

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("retrieval gate FAILED: {f}");
        }
        if gate {
            std::process::exit(1);
        }
        println!("(gate not enforced: set DESALIGN_RETRIEVAL_GATE=1 to fail on this)");
    } else {
        println!("retrieval gate OK: recall@10 ≥ {RECALL_FLOOR}, dense ≡ exact bit-for-bit");
    }
}
