//! **Design-choice ablations** (DESIGN.md §6) — the reproduction-specific
//! decisions that calibration surfaced, each swept on one monolingual and
//! one bilingual split:
//!
//! - confidence blend α (0 = uniform fusion, 1 = literal Eq. 14);
//! - Semantic Propagation mode (off / joint / joint+reset / per-modality);
//! - `ℒ_m^(k−1)` placement (branch vs penultimate CAW layer);
//! - φ rescaling on vs off;
//! - structure encoder (GAT vs GCN).

use desalign_bench::HarnessConfig;
use desalign_core::{DesalignConfig, DesalignModel, StructureEncoderKind};
use desalign_mmkg::{DatasetSpec, SynthConfig};

fn run(name: &str, cfg: DesalignConfig, ds: &desalign_mmkg::AlignmentDataset, seed: u64, json: &mut Vec<desalign_util::Json>) {
    let mut model = DesalignModel::new(cfg, ds, seed);
    model.fit(ds);
    let m = model.evaluate(ds);
    println!("  {:<34} H@1 {:>5.1}  H@10 {:>5.1}  MRR {:>5.1}", name, m.hits_at_1 * 100.0, m.hits_at_10 * 100.0, m.mrr * 100.0);
    json.push(desalign_util::json!({
        "dataset": ds.name, "variant": name, "metrics": desalign_bench::metrics_json(&m),
    }));
}

fn main() {
    let h = HarnessConfig::from_env();
    let mut json = Vec::new();
    for spec in [DatasetSpec::FbDb15k, DatasetSpec::Dbp15kFrEn] {
        let ds = SynthConfig::preset(spec).scaled(h.scale).generate(h.seed);
        println!("\n=== design ablations on {} ===", ds.name);
        let base = h.desalign_cfg();
        run("default", base.clone(), &ds, h.seed, &mut json);

        for alpha in [0.0f32, 0.5, 1.0] {
            let mut v = base.clone();
            v.confidence_blend = alpha;
            run(&format!("confidence blend α={alpha}"), v, &ds, h.seed, &mut json);
        }

        let mut v = base.clone();
        v.sp_iterations = 0;
        run("SP off", v, &ds, h.seed, &mut json);
        let mut v = base.clone();
        v.sp_per_modality = false;
        v.sp_reset_known = false;
        run("SP joint (Alg. 1 literal)", v, &ds, h.seed, &mut json);
        let mut v = base.clone();
        v.sp_per_modality = false;
        v.sp_reset_known = true;
        run("SP joint + boundary reset", v, &ds, h.seed, &mut json);

        let mut v = base.clone();
        v.modal_k1_on_branch = true;
        run("L_m^(k-1) on branch embeddings", v, &ds, h.seed, &mut json);

        let mut v = base.clone();
        v.phi_rescale = false;
        run("phi without |M| rescale", v, &ds, h.seed, &mut json);

        let mut v = base.clone();
        v.structure_encoder = StructureEncoderKind::Gcn;
        run("GCN structure encoder", v, &ds, h.seed, &mut json);

        let mut v = base.clone();
        v.fusion_normalize = true;
        run("per-block l2 fusion normalize", v, &ds, h.seed, &mut json);
    }
    desalign_bench::dump_json("results/ablation_design.json", &desalign_util::json!(json));
}
