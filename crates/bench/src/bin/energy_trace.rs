//! **Section III evidence** — Dirichlet-energy traces and the
//! over-smoothing mechanism.
//!
//! Two parts:
//!
//! 1. **Proposition 2 in action.** A deep feed-forward semantic encoder
//!    (the `X^{(k)} = W^{(k)} … W^{(1)} X` of §III-B) is trained with ℓ2
//!    regularization on a severely inconsistent split, exactly the setting
//!    where the paper observes weight matrices collapsing in higher layers.
//!    We track the *scale-normalized* Dirichlet energy (Rayleigh quotient
//!    `tr(XᵀΔX)/tr(XᵀX)`, invariant to feature magnitude) of the final
//!    layer, with and without the Proposition 3 lower bound as a hinge —
//!    reproducing both the collapse and its cure.
//!
//! 2. **Full-model traces.** Per-layer raw energies of DESAlign over
//!    training (with the production configuration), plus the Prop. 2
//!    singular-value ranges of the trained FC weights.

use desalign_bench::HarnessConfig;
use desalign_core::DesalignModel;
use desalign_graph::dirichlet_energy;
use desalign_mmkg::{fill_missing_with_noise, DatasetSpec, FeatureDims, ModalFeatures, SynthConfig};
use desalign_nn::{AdamW, ParamStore, Session};
use desalign_tensor::{glorot_uniform, rng_from_seed};
use std::rc::Rc;

fn main() {
    let h = HarnessConfig::from_env();
    let ds = SynthConfig::preset(DatasetSpec::Dbp15kFrEn)
        .scaled(h.scale)
        .with_image_ratio(0.1)
        .with_text_ratio(0.2)
        .generate(h.seed);
    println!("split: {} (severe semantic inconsistency)", ds.name);
    let mut all_json = Vec::new();

    // ---- Part 1: deep linear semantic encoder (§III-B setting) ----------
    // Joint noise-filled features of the inconsistent source KG.
    let dims = FeatureDims { relation: 16, attribute: 16, visual: 32 };
    let x0 = {
        let mut kg = ds.source.clone();
        // The bench dims are smaller than the generator's vision dim; trim.
        for img in kg.images.iter_mut().flatten() {
            img.truncate(dims.visual);
        }
        let f = ModalFeatures::build(&kg, &dims);
        let mut rng = rng_from_seed(h.seed ^ 0xa5);
        let r = fill_missing_with_noise(&f.relation, &f.has_relation, &mut rng);
        let a = fill_missing_with_noise(&f.attribute, &f.has_attribute, &mut rng);
        let v = fill_missing_with_noise(&f.visual, &f.has_visual, &mut rng);
        r.hcat(&a).hcat(&v)
    };
    let lap = Rc::new(ds.source.graph().laplacian());
    let depth = 5;
    let d = x0.cols();
    let epochs = 250;
    let e0 = dirichlet_energy(&lap, &x0);
    println!("\n=== Part 1 — deep linear encoder, depth {depth}, {epochs} epochs ===");
    println!("initial energy E(X^(0)) = {e0:.2}");
    println!("{:<28} {:>14} {:>10} {:>12}", "variant", "E(X^(k)) end", "Ek/E0", "min σ_min(W)");
    for (label, constrained) in [("plain + l2 (paper's §III)", false), ("with Prop. 3 energy floor", true)] {
        let mut rng = rng_from_seed(h.seed);
        let mut store = ParamStore::new();
        let ws: Vec<_> = (0..depth).map(|l| store.add(format!("w{l}"), glorot_uniform(&mut rng, d, d))).collect();
        // The paper's setting: Glorot init + l2 regularization. Decoupled
        // weight decay is the l2 pressure that drives "some weight matrices
        // ... to approximate zero in higher feedforward layers".
        let mut opt = AdamW::new(0.05);
        let mut final_energy = 0.0;
        for epoch in 0..epochs {
            let mut sess = Session::new(&store);
            let mut x = sess.input(x0.clone());
            for &w in &ws {
                let wv = sess.param(w);
                x = sess.tape.matmul(x, wv);
            }
            // Alignment-style task: keep connected entities similar. Small
            // weight, so the l2 decay dominates — the §III failure mode.
            let lx = sess.tape.spmm(Rc::clone(&lap), x);
            let ex = sess.tape.mul(x, lx);
            let task = sess.tape.sum_all(ex);
            let mut loss = sess.tape.scale(task, 0.2 / x0.len() as f32);
            if constrained {
                // The Prop. 3 proof chains the per-layer bound into a floor
                // relative to the initial energy: ℒ(X^(k)) ≥ c_min^k ℒ(X^(0)).
                let c_min = 0.8f32;
                let floor = c_min.powi(depth as i32) * e0;
                let ek = sess.tape.dirichlet_energy(Rc::clone(&lap), x);
                let neg = sess.tape.scale(ek, -1.0 / floor);
                let gap = sess.tape.add_const(neg, 1.0);
                let hinge = sess.tape.relu(gap);
                let pen = sess.tape.scale(hinge, 10.0);
                loss = sess.tape.add(loss, pen);
            }
            let mut grads = sess.backward(loss);
            if epoch + 1 == epochs {
                final_energy = dirichlet_energy(&lap, sess.tape.value(x));
            }
            drop(sess); // release the store borrow before the optimizer step
            opt.step(&mut store, &mut grads, 5e-3);
        }
        let min_sv = ws
            .iter()
            .map(|&w| desalign_graph::singular_value_range(store.value(w), 400, 1e-6).0)
            .fold(f32::INFINITY, f32::min);
        println!("{:<28} {:>14.3} {:>10.4} {:>12.4}", label, final_energy, final_energy / e0, min_sv);
        all_json.push(desalign_util::json!({
            "part": 1, "constrained": constrained, "e0": e0, "ek_final": final_energy,
            "ratio": final_energy / e0, "min_sigma_min": min_sv,
        }));
    }
    println!("(over-smoothing = Ek/E0 collapsing towards 0 as l2 decay shrinks the");
    println!(" weights' singular values — Prop. 2; the Prop. 3 floor resists it.)");

    // ---- Part 2: full-model per-layer traces -----------------------------
    println!("\n=== Part 2 — DESAlign per-layer energies over training ===");
    let mut cfg = h.desalign_cfg();
    cfg.eval_every = (h.epochs / 10).max(1);
    let mut model = DesalignModel::new(cfg, &ds, h.seed);
    let report = model.fit(&ds);
    println!("{:>6} {:>12} {:>12} {:>12}", "epoch", "E(X^(0))", "E(X^(k-1))", "E(X^(k))");
    for t in &report.energy_history {
        let e = t.source;
        println!("{:>6} {:>12.2} {:>12.2} {:>12.2}", t.epoch, e[0], e[1], e[2]);
        all_json.push(desalign_util::json!({
            "part": 2, "epoch": t.epoch, "e0": e[0], "ek1": e[1], "ek": e[2],
        }));
    }
    let diag = model.energy_diagnostics();
    println!("FC singular-value ranges (σ_min, σ_max) — Proposition 2:");
    for (letter, (smin, smax)) in &diag.fc_singular_values {
        println!("  W_{letter}: ({smin:.4}, {smax:.4})");
    }
    let m = model.evaluate(&ds);
    println!("final H@1 {:.1}  MRR {:.1}", m.hits_at_1 * 100.0, m.mrr * 100.0);
    desalign_bench::dump_json("results/energy_trace.json", &desalign_util::json!(all_json));
}
