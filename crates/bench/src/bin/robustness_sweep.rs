//! **Robustness sweep** — the degradation grids of Tables II–III plus one
//! run per injectable corruption class, in a single machine-readable
//! artifact.
//!
//! Three sections, all running DESAlign with `mask_missing_modalities`
//! enabled so absent modalities are renormalized out of fusion:
//!
//! - `r_img`: image coverage `R_img ∈ {5, 20, 40, 60} %`;
//! - `r_seed`: seed-alignment ratio `R_seed ∈ {10, 20, 30, 50} %`;
//! - `corruption`: every `desalign_testkit::CorruptionKind`, injected at
//!   severity 0.3, passed through a `Repair` audit, then trained and
//!   evaluated end to end.
//!
//! Each cell records `H@1 / H@10 / MRR` plus the final sampled Dirichlet
//! energies, so `ci.sh` can grep the artifact for `NaN` / `Infinity` — a
//! corruption class that destabilizes training shows up as a non-finite
//! literal in the JSON.
//!
//! Output path: `DESALIGN_ROBUSTNESS_OUT` (default
//! `results/BENCH_robustness.json`).

use desalign_bench::{dump_json, metrics_json, or_die, HarnessConfig};
use desalign_core::{DesalignConfig, DesalignModel, TrainReport};
use desalign_mmkg::{AlignmentDataset, AuditPolicy, DatasetSpec, SynthConfig};
use desalign_testkit::{corrupt_dataset, CorruptionKind};
use desalign_util::{json, Json, ToJson};

fn cfg_for(h: &HarnessConfig) -> DesalignConfig {
    let mut cfg = h.desalign_cfg();
    cfg.mask_missing_modalities = true;
    // Sample the energy trace every epoch so even smoke runs (2 epochs in
    // CI) record a final Dirichlet energy.
    cfg.eval_every = 1;
    cfg
}

/// Trains and evaluates one condition, returning its JSON cell.
fn run_cell(h: &HarnessConfig, ds: &AlignmentDataset) -> Json {
    let mut model = or_die(&format!("model setup for {}", ds.name), DesalignModel::try_new(cfg_for(h), ds, h.seed));
    let report: TrainReport = model.fit(ds);
    let metrics = model.evaluate(ds);
    let energy = report.energy_history.last();
    json!({
        "metrics": metrics_json(&metrics),
        "final_energy": energy.map_or(Json::Null, |t| json!({
            "epoch": t.epoch,
            "source": t.source.to_vec(),
            "target": t.target.to_vec(),
            "smoothing_ratio": t.smoothing_ratio(),
        })),
        "final_loss": report.final_loss.total,
        "epochs_run": report.epochs_run,
        "seconds": report.seconds,
    })
}

fn main() {
    let h = HarnessConfig::from_env();
    let spec = DatasetSpec::FbDb15k;

    // Grid 1: image coverage (Table III shape).
    let mut r_img_rows = Vec::new();
    for &r in &[0.05f32, 0.2, 0.4, 0.6] {
        let ds = SynthConfig::preset(spec).scaled(h.scale).with_image_ratio(r).generate(h.seed);
        let mut cell = run_cell(&h, &ds);
        if let Json::Object(fields) = &mut cell {
            fields.insert(0, ("r_img".to_string(), r.to_json()));
        }
        r_img_rows.push(cell);
        println!("r_img={r:.2} done");
    }

    // Grid 2: seed-alignment ratio (weak supervision, Fig. 3 shape).
    let mut r_seed_rows = Vec::new();
    for &r in &[0.1f32, 0.2, 0.3, 0.5] {
        let ds = SynthConfig::preset(spec).scaled(h.scale).with_seed_ratio(r).generate(h.seed);
        let mut cell = run_cell(&h, &ds);
        if let Json::Object(fields) = &mut cell {
            fields.insert(0, ("r_seed".to_string(), r.to_json()));
        }
        r_seed_rows.push(cell);
        println!("r_seed={r:.2} done");
    }

    // Grid 3: every corruption class, repaired then trained.
    let mut corruption_rows = Vec::new();
    for kind in CorruptionKind::ALL {
        let mut ds = SynthConfig::preset(spec).scaled(h.scale).generate(h.seed);
        let applied = corrupt_dataset(&mut ds, kind, 0.3, h.seed ^ 0xBAD);
        let report = or_die(&format!("repair audit for {}", kind.name()), ds.audit(AuditPolicy::Repair));
        let mut cell = run_cell(&h, &ds);
        if let Json::Object(fields) = &mut cell {
            fields.insert(0, ("kind".to_string(), Json::Str(kind.name().to_string())));
            fields.insert(1, ("injected".to_string(), Json::Num(applied as f64)));
            fields.insert(2, ("repaired_defects".to_string(), Json::Num(report.total_defects() as f64)));
        }
        corruption_rows.push(cell);
        println!("corruption={} done ({} injected, {} repaired)", kind.name(), applied, report.total_defects());
    }

    let out = std::env::var("DESALIGN_ROBUSTNESS_OUT").unwrap_or_else(|_| "results/BENCH_robustness.json".to_string());
    dump_json(
        &out,
        &json!({
            "kind": "robustness_sweep",
            "dataset": spec.name(),
            "config": json!({ "scale": h.scale, "epochs": h.epochs, "hidden_dim": h.hidden_dim, "seed": h.seed }),
            "r_img": Json::Array(r_img_rows),
            "r_seed": Json::Array(r_seed_rows),
            "corruption": Json::Array(corruption_rows),
        }),
    );
    println!("wrote {out}");
}
