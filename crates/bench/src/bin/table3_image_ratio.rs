//! **Table III** — robustness to missing images.
//!
//! Bilingual DBP15K (ZH/JA/FR–EN), image ratio
//! `R_img ∈ {5, 20, 30, 40, 50, 60} %`, prominent methods. Shape target:
//! DESAlign leads at every ratio with the largest margins at low `R_img`,
//! and its accuracy rises monotonically with the ratio.

use desalign_bench::{print_table, HarnessConfig, ResultRow, PROMINENT};
use desalign_mmkg::{DatasetSpec, SynthConfig};

fn main() {
    let h = HarnessConfig::from_env();
    let ratios = [0.05f32, 0.2, 0.3, 0.4, 0.5, 0.6];
    let mut all_json = Vec::new();
    for spec in DatasetSpec::BILINGUAL {
        let mut rows: Vec<ResultRow> = PROMINENT
            .iter()
            .map(|m| ResultRow { method: m.name(), cells: Vec::new(), seconds: Vec::new() })
            .collect();
        for &r in &ratios {
            let ds = SynthConfig::preset(spec).scaled(h.scale).with_image_ratio(r).generate(h.seed);
            for (mi, method) in PROMINENT.iter().enumerate() {
                let mut aligner = method.build(&h, &ds, h.seed);
                let secs = aligner.fit(&ds);
                let metrics = aligner.evaluate(&ds);
                rows[mi].cells.push(metrics);
                rows[mi].seconds.push(secs);
                all_json.push(desalign_util::json!({
                    "dataset": spec.name(), "r_img": r, "method": method.name(),
                    "metrics": desalign_bench::metrics_json(&metrics), "seconds": secs,
                }));
            }
        }
        let conditions: Vec<String> = ratios.iter().map(|r| format!("R_img={:.0}%", r * 100.0)).collect();
        print_table(&format!("Table III — {} (R_seed=0.3)", spec.name()), &conditions, &rows);
    }
    desalign_bench::dump_json("results/table3.json", &desalign_util::json!(all_json));
}
