//! **Figure 3 (left)** — ablation study.
//!
//! Strips one component at a time: each modality (g/r/t/v), each training
//! objective of Proposition 3, Semantic Propagation (`w/o PP`), the energy
//! constraint, and the confidence weighting. Shape targets: every ablation
//! hurts; text is the most damaging modality; removing SP costs about as
//! much as removing a whole modality.

use desalign_bench::HarnessConfig;
use desalign_core::{DesalignConfig, DesalignModel};
use desalign_mmkg::{DatasetSpec, SynthConfig};

fn variants(base: &DesalignConfig) -> Vec<(&'static str, DesalignConfig)> {
    let mut out: Vec<(&'static str, DesalignConfig)> = vec![("full", base.clone())];
    let mut push = |name: &'static str, f: &dyn Fn(&mut DesalignConfig)| {
        let mut cfg = base.clone();
        f(&mut cfg);
        out.push((name, cfg));
    };
    push("w/o g (structure)", &|c| c.ablation.use_structure = false);
    push("w/o r (relation)", &|c| c.ablation.use_relation = false);
    push("w/o t (text)", &|c| c.ablation.use_text = false);
    push("w/o v (visual)", &|c| c.ablation.use_visual = false);
    push("w/o L_task^(0)", &|c| c.ablation.use_loss_task0 = false);
    push("w/o L_task^(k)", &|c| c.ablation.use_loss_taskk = false);
    push("w/o L_m^(k-1)", &|c| c.ablation.use_loss_mk1 = false);
    push("w/o L_m^(k)", &|c| c.ablation.use_loss_mk = false);
    push("w/o PP (semantic prop.)", &|c| c.ablation.use_semantic_propagation = false);
    push("w/o energy constraint", &|c| c.ablation.use_energy_constraint = false);
    push("w/o phi (confidence)", &|c| c.ablation.use_confidence_weighting = false);
    out
}

fn main() {
    let h = HarnessConfig::from_env();
    let mut all_json = Vec::new();
    for spec in [DatasetSpec::FbDb15k, DatasetSpec::Dbp15kFrEn] {
        let ds = SynthConfig::preset(spec).scaled(h.scale).generate(h.seed);
        println!("\n=== Figure 3 (left) — ablations on {} ===", ds.name);
        println!("{:<26} {:>6} {:>6} {:>6}  {:>7}", "Variant", "H@1", "H@10", "MRR", "ΔH@1");
        let mut full_h1 = None;
        for (name, cfg) in variants(&h.desalign_cfg()) {
            let mut model = DesalignModel::new(cfg, &ds, h.seed);
            model.fit(&ds);
            let m = model.evaluate(&ds);
            let delta = full_h1.map(|f: f32| (m.hits_at_1 - f) * 100.0);
            if full_h1.is_none() {
                full_h1 = Some(m.hits_at_1);
            }
            println!(
                "{:<26} {:>6.1} {:>6.1} {:>6.1}  {:>7}",
                name,
                m.hits_at_1 * 100.0,
                m.hits_at_10 * 100.0,
                m.mrr * 100.0,
                delta.map_or("—".into(), |d| format!("{d:+.1}"))
            );
            all_json.push(desalign_util::json!({
                "dataset": spec.name(), "variant": name,
                "metrics": desalign_bench::metrics_json(&m),
            }));
        }
    }
    desalign_bench::dump_json("results/fig3_ablation.json", &desalign_util::json!(all_json));
}
