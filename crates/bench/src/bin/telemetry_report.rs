//! Observability smoke: trains DESAlign on a synthetic DBP15K-scale pair
//! with telemetry forced on, pretty-prints the resulting span tree, checks
//! that the `fit/epoch` total is covered by its child phases, and dumps
//! `results/TELEMETRY_report.json` (spans + counters + gauges) alongside a
//! per-epoch JSONL metrics stream.
//!
//! Environment knobs:
//! - the usual harness profile (`DESALIGN_SCALE`, `DESALIGN_EPOCHS`,
//!   `DESALIGN_DIM`, `DESALIGN_SEED`);
//! - `DESALIGN_TELEMETRY_OUT` — overrides the span-report JSON path
//!   (default `results/TELEMETRY_report.json`);
//! - `DESALIGN_METRICS_OUT` — overrides the JSONL metrics path (default
//!   `results/metrics_telemetry_report.jsonl`).

use desalign_bench::HarnessConfig;
use desalign_core::DesalignModel;
use desalign_mmkg::{DatasetSpec, SynthConfig};
use desalign_telemetry as telemetry;
use desalign_util::json;

/// Locates the `fit` root and its `epoch` child in the span forest.
fn find_epoch(roots: &[telemetry::SpanNode]) -> Option<(u64, u64)> {
    let fit = roots.iter().find(|n| n.name == "fit")?;
    let epoch = fit.children.iter().find(|n| n.name == "epoch")?;
    let child_total: u64 = epoch.children.iter().map(|c| c.total_ns).sum();
    Some((epoch.total_ns, child_total))
}

fn main() {
    telemetry::set_enabled(Some(true));
    telemetry::set_context(Some("telemetry_report".to_string()));
    let metrics_path = std::env::var("DESALIGN_METRICS_OUT")
        .unwrap_or_else(|_| "results/metrics_telemetry_report.jsonl".to_string());
    std::fs::create_dir_all(std::path::Path::new(&metrics_path).parent().unwrap_or_else(|| std::path::Path::new("."))).ok();
    match telemetry::MetricsSink::to_file(std::path::Path::new(&metrics_path)) {
        Ok(sink) => {
            telemetry::install_sink(sink);
        }
        Err(e) => eprintln!("warning: could not open {metrics_path}: {e}"),
    }

    let h = HarnessConfig::from_env();
    let ds = SynthConfig::preset(DatasetSpec::Dbp15kFrEn).scaled(h.scale).generate(h.seed);
    let mut model = DesalignModel::new(h.desalign_cfg(), &ds, h.seed);
    let report = model.fit(&ds);
    let metrics = model.evaluate(&ds);

    let roots = telemetry::span_report();
    println!("=== span tree ===");
    print!("{}", telemetry::render_span_tree(&roots));
    println!("=== counters/gauges ===");
    for (name, v) in telemetry::counters_snapshot() {
        println!("{name} = {v}");
    }
    for (name, v) in telemetry::gauges_snapshot() {
        println!("{name} = {v}");
    }

    // Coverage: the per-epoch phases (sample/forward/energy/backward/
    // optimizer/eval) should account for nearly all of the epoch wall-clock;
    // a large gap means an uninstrumented hot path crept in.
    match find_epoch(&roots) {
        Some((epoch_total, child_total)) => {
            let covered = child_total as f64 / epoch_total.max(1) as f64;
            println!(
                "epoch coverage: children {:.1}% of epoch total ({child_total} / {epoch_total} ns)",
                covered * 100.0
            );
        }
        None => println!("epoch coverage: fit/epoch span not found"),
    }

    println!(
        "trained {} epochs, H@1 {:.3} / H@10 {:.3} / MRR {:.3}",
        report.epochs_run, metrics.hits_at_1, metrics.hits_at_10, metrics.mrr
    );

    let out = json!({
        "spans": telemetry::spans_json(),
        "metrics": telemetry::metrics_json(),
        "eval": desalign_bench::metrics_json(&metrics),
        "epochs_run": report.epochs_run,
    });
    let report_path = std::env::var("DESALIGN_TELEMETRY_OUT")
        .unwrap_or_else(|_| "results/TELEMETRY_report.json".to_string());
    desalign_bench::dump_json(&report_path, &out);
    println!("wrote {report_path} and {metrics_path}");

    if let Some(mut sink) = telemetry::take_sink() {
        sink.flush();
    }
}
