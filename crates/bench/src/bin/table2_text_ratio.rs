//! **Table II** — robustness to missing text attributes.
//!
//! Monolingual datasets (FB15K–DB15K, FB15K–YAGO15K), text-attribute ratio
//! `R_tex ∈ {5, 20, 30, 40, 50, 60} %`, prominent methods (EVA, MCLEA,
//! MEAformer, DESAlign). Shape target: DESAlign stays flat and on top
//! across the sweep while the baselines oscillate or decline.

use desalign_bench::{print_table, HarnessConfig, ResultRow, PROMINENT};
use desalign_mmkg::{DatasetSpec, SynthConfig};

fn main() {
    let h = HarnessConfig::from_env();
    let ratios = [0.05f32, 0.2, 0.3, 0.4, 0.5, 0.6];
    let mut all_json = Vec::new();
    for spec in DatasetSpec::MONOLINGUAL {
        let mut rows: Vec<ResultRow> = PROMINENT
            .iter()
            .map(|m| ResultRow { method: m.name(), cells: Vec::new(), seconds: Vec::new() })
            .collect();
        for &r in &ratios {
            let ds = SynthConfig::preset(spec).scaled(h.scale).with_text_ratio(r).generate(h.seed);
            for (mi, method) in PROMINENT.iter().enumerate() {
                let mut aligner = method.build(&h, &ds, h.seed);
                let secs = aligner.fit(&ds);
                let metrics = aligner.evaluate(&ds);
                rows[mi].cells.push(metrics);
                rows[mi].seconds.push(secs);
                all_json.push(desalign_util::json!({
                    "dataset": spec.name(), "r_tex": r, "method": method.name(),
                    "metrics": desalign_bench::metrics_json(&metrics), "seconds": secs,
                }));
            }
        }
        let conditions: Vec<String> = ratios.iter().map(|r| format!("R_tex={:.0}%", r * 100.0)).collect();
        print_table(&format!("Table II — {} (R_seed=0.2)", spec.name()), &conditions, &rows);
    }
    desalign_bench::dump_json("results/table2.json", &desalign_util::json!(all_json));
}
