//! **Table V** — main results on bilingual DBP15K.
//!
//! All three language pairs at the standard `R_seed = 0.3`, non-iterative
//! roster plus iterative prominent methods. Shape target: DESAlign first in
//! both blocks; non-iterative DESAlign competitive with iterative baselines.

use desalign_bench::{print_table, HarnessConfig, ResultRow, ALL_WITH_OURS, PROMINENT};
use desalign_baselines::iterative_align;
use desalign_mmkg::{DatasetSpec, SynthConfig};

fn main() {
    let h = HarnessConfig::from_env();
    let mut all_json = Vec::new();
    let mut basic: Vec<ResultRow> =
        ALL_WITH_OURS.iter().map(|m| ResultRow { method: m.name(), cells: Vec::new(), seconds: Vec::new() }).collect();
    let mut iterative: Vec<ResultRow> =
        PROMINENT.iter().map(|m| ResultRow { method: m.name(), cells: Vec::new(), seconds: Vec::new() }).collect();
    for spec in DatasetSpec::BILINGUAL {
        let ds = SynthConfig::preset(spec).scaled(h.scale).generate(h.seed);
        for (mi, method) in ALL_WITH_OURS.iter().enumerate() {
            let mut aligner = method.build(&h, &ds, h.seed);
            let secs = aligner.fit(&ds);
            let metrics = aligner.evaluate(&ds);
            basic[mi].cells.push(metrics);
            basic[mi].seconds.push(secs);
            all_json.push(desalign_util::json!({
                "dataset": spec.name(), "method": method.name(), "strategy": "non-iterative",
                "metrics": desalign_bench::metrics_json(&metrics), "seconds": secs,
            }));
        }
        for (mi, method) in PROMINENT.iter().enumerate() {
            let mut aligner = method.build(&h, &ds, h.seed);
            let outcome = iterative_align(aligner.as_mut(), &ds, 2, 0.4);
            let metrics = outcome.final_metrics();
            iterative[mi].cells.push(metrics);
            iterative[mi].seconds.push(outcome.seconds);
            all_json.push(desalign_util::json!({
                "dataset": spec.name(), "method": method.name(), "strategy": "iterative",
                "metrics": desalign_bench::metrics_json(&metrics), "seconds": outcome.seconds,
            }));
        }
    }
    let conditions: Vec<String> = DatasetSpec::BILINGUAL.iter().map(|s| s.name().to_string()).collect();
    print_table("Table V — bilingual (non-iterative)", &conditions, &basic);
    print_table("Table V — bilingual (iterative)", &conditions, &iterative);
    desalign_bench::dump_json("results/table5.json", &desalign_util::json!(all_json));
}
