//! Prints a 64-bit fingerprint of a training run's final state — weights,
//! per-epoch loss trajectory, and evaluation metrics, all hashed at the
//! bit level. `ci.sh` runs it twice and diffs the output:
//!
//! - `DESALIGN_RESUME_MODE=straight` (default): one uninterrupted run of
//!   all epochs.
//! - `DESALIGN_RESUME_MODE=resume`: train a few epochs, write a
//!   checkpoint, train one epoch more, then *kill* the attempt to
//!   overwrite the checkpoint mid-frame (via the `desalign-testkit` fault
//!   harness) — the torn write must be invisible. A fresh model then
//!   resumes from the surviving checkpoint and finishes the run.
//!
//! Any fingerprint difference means the resume path is not bit-identical
//! to the straight run, which `docs/RELIABILITY.md` forbids.
//!
//! `DESALIGN_CHECKPOINT` overrides the checkpoint path (default: a file
//! under the system temp directory; it is removed on success).

use desalign_bench::or_die;
use desalign_core::{DesalignConfig, DesalignModel, TrainReport};
use desalign_mmkg::{DatasetSpec, FeatureDims, SynthConfig};
use desalign_testkit::fault::kill_during_atomic_write;
use desalign_util::read_verified;
use std::path::PathBuf;

const SEED: u64 = 29;
const EPOCHS: usize = 6;
const SPLIT: usize = 2;

/// FNV-1a over a little-endian byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn cfg() -> DesalignConfig {
    let mut cfg = DesalignConfig::fast();
    cfg.hidden_dim = 32;
    cfg.feature_dims = FeatureDims { relation: 64, attribute: 64, visual: 64 };
    cfg.epochs = EPOCHS;
    cfg.batch_size = 64;
    cfg
}

fn checkpoint_path() -> PathBuf {
    std::env::var("DESALIGN_CHECKPOINT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("desalign_resume_fingerprint.ckpt"))
}

fn main() {
    let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).with_image_ratio(0.6).generate(5);
    let mode = std::env::var("DESALIGN_RESUME_MODE").unwrap_or_else(|_| "straight".to_string());

    let (model, report) = match mode.as_str() {
        "straight" => {
            let mut model = DesalignModel::new(cfg(), &ds, SEED);
            let report = model.fit(&ds);
            (model, report)
        }
        "resume" => {
            let path = checkpoint_path();
            std::fs::remove_file(&path).ok();

            // Process 1: train SPLIT epochs, checkpoint, go one epoch
            // further, and die mid-way through overwriting the checkpoint.
            let mut first = DesalignModel::new(cfg(), &ds, SEED);
            let mut state = first.begin_training(&ds);
            first.train_epochs(&mut state, SPLIT);
            or_die(&format!("write checkpoint {}", path.display()), first.save_checkpoint(&state, &path));
            first.train_epochs(&mut state, 1);
            let newer = first.checkpoint_payload(&state).into_bytes();
            let killed = or_die("simulated mid-write kill", kill_during_atomic_write(&path, &newer, newer.len() / 2));
            assert!(!killed, "kill offset must land inside the frame");
            drop(first); // the crash

            // The torn overwrite must be invisible: the file still verifies
            // as the epoch-SPLIT generation.
            or_die("checkpoint must survive the torn overwrite", read_verified(&path));

            // Process 2: fresh model, resume, finish the run.
            let mut model = DesalignModel::new(cfg(), &ds, SEED);
            let mut state = or_die(&format!("resume from {}", path.display()), model.resume_training(&ds, &path));
            assert_eq!(state.next_epoch(), SPLIT, "resumed from the wrong generation");
            model.train_epochs(&mut state, usize::MAX);
            let report = model.end_training(state);
            std::fs::remove_file(&path).ok();
            std::fs::remove_file(desalign_util::temp_path(&path)).ok();
            (model, report)
        }
        other => {
            eprintln!("unknown DESALIGN_RESUME_MODE '{other}' (use 'straight' or 'resume')");
            std::process::exit(2);
        }
    };

    let metrics = model.evaluate(&ds);
    let mut h = Fnv::new();
    h.update(model.params().weights_to_json_string().as_bytes());
    // The resumed report only covers post-resume epochs, so hash the final
    // epoch's loss (identical in both modes) rather than the whole history.
    let report: &TrainReport = &report;
    if let Some(l) = report.loss_history.last() {
        h.update(&l.total.to_bits().to_le_bytes());
    }
    for v in [metrics.hits_at_1, metrics.hits_at_10, metrics.mrr] {
        h.update(&v.to_bits().to_le_bytes());
    }
    h.update(&(metrics.num_queries as u64).to_le_bytes());
    println!("{:016x}", h.0);
}
