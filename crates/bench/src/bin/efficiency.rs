//! **§V-E** — efficiency analysis.
//!
//! Wall-clock training time per method, the cost of the Semantic
//! Propagation step in isolation, and SP's scaling in the number of edges
//! (the paper claims `O(|E| d)` — linear — and that SP runs in seconds on
//! CPU even for graphs beyond GPU memory).

use desalign_bench::{HarnessConfig, ALL_WITH_OURS};
use desalign_core::DesalignModel;
use desalign_graph::{propagate_features, PropagationConfig};
use desalign_mmkg::{DatasetSpec, SynthConfig};
use desalign_tensor::{normal_matrix, rng_from_seed};
use std::time::Instant;

fn main() {
    let h = HarnessConfig::from_env();
    let mut all_json = Vec::new();

    println!("=== Training wall-clock per method (scale {}, {} epochs) ===", h.scale, h.epochs);
    for spec in [DatasetSpec::FbDb15k, DatasetSpec::Dbp15kFrEn] {
        let ds = SynthConfig::preset(spec).scaled(h.scale).generate(h.seed);
        println!("\n{}", ds.name);
        for method in ALL_WITH_OURS {
            let mut aligner = method.build(&h, &ds, h.seed);
            let secs = aligner.fit(&ds);
            let m = aligner.evaluate(&ds);
            println!("  {:<10} {:>7.2}s   (H@1 {:.1})", method.name(), secs, m.hits_at_1 * 100.0);
            all_json.push(desalign_util::json!({
                "dataset": spec.name(), "method": method.name(), "fit_seconds": secs,
                "h1": m.hits_at_1,
            }));
        }
        // SP in isolation, on the trained DESAlign embeddings.
        let mut model = DesalignModel::new(h.desalign_cfg(), &ds, h.seed);
        model.fit(&ds);
        let t0 = Instant::now();
        let _ = model.similarity();
        let sp_total = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = model.similarity_with_iterations(0);
        let cosine_only = t0.elapsed().as_secs_f64();
        println!("  semantic propagation (incl. similarity): {:.3}s; plain cosine: {:.3}s; SP overhead: {:.3}s",
            sp_total, cosine_only, (sp_total - cosine_only).max(0.0));
        all_json.push(desalign_util::json!({
            "dataset": spec.name(), "sp_seconds": sp_total - cosine_only,
        }));
    }

    println!("\n=== SP scaling in |E| (one x ← Ãx step, d = {}) ===", h.hidden_dim);
    println!("{:>8} {:>10} {:>12} {:>14}", "nodes", "edges", "step (ms)", "ms per 1k nnz");
    let mut rng = rng_from_seed(h.seed);
    for &n in &[500usize, 1000, 2000, 4000, 8000] {
        let cfg = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(n);
        let ds = cfg.generate(h.seed);
        let g = ds.source.graph();
        let a = g.normalized_adjacency(true);
        let x = normal_matrix(&mut rng, g.num_nodes(), h.hidden_dim, 0.0, 1.0);
        let known = vec![false; g.num_nodes()];
        let pcfg = PropagationConfig { iterations: 1, step: 1.0, reset_known: false };
        // Warm-up then timed repetitions.
        let _ = propagate_features(&a, &x, &known, &pcfg);
        let reps = 5;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = propagate_features(&a, &x, &known, &pcfg);
        }
        let ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        println!("{:>8} {:>10} {:>12.2} {:>14.4}", g.num_nodes(), a.nnz(), ms, ms / (a.nnz() as f64 / 1000.0));
        all_json.push(desalign_util::json!({
            "nodes": g.num_nodes(), "nnz": a.nnz(), "sp_step_ms": ms,
        }));
    }
    println!("(near-constant ms per 1k nonzeros ⇒ the O(|E|·d) claim holds)");
    desalign_bench::dump_json("results/efficiency.json", &desalign_util::json!(all_json));
}
