//! **Figure 3 (right)** — weakly supervised settings.
//!
//! `R_seed` swept from 1 % to 30 % on FB15K–DB15K (monolingual) and
//! DBP15K_FR-EN (bilingual), prominent methods. Shape target: a consistent
//! DESAlign-over-baselines gap at every ratio, widest in relative terms at
//! the low-seed end.

use desalign_bench::{print_table, HarnessConfig, ResultRow, PROMINENT};
use desalign_mmkg::{DatasetSpec, SynthConfig};

fn main() {
    let h = HarnessConfig::from_env();
    let ratios = [0.01f32, 0.05, 0.10, 0.20, 0.30];
    let mut all_json = Vec::new();
    for spec in [DatasetSpec::FbDb15k, DatasetSpec::Dbp15kFrEn] {
        let mut rows: Vec<ResultRow> =
            PROMINENT.iter().map(|m| ResultRow { method: m.name(), cells: Vec::new(), seconds: Vec::new() }).collect();
        for &r in &ratios {
            let ds = SynthConfig::preset(spec).scaled(h.scale).with_seed_ratio(r).generate(h.seed);
            for (mi, method) in PROMINENT.iter().enumerate() {
                let mut aligner = method.build(&h, &ds, h.seed);
                let secs = aligner.fit(&ds);
                let metrics = aligner.evaluate(&ds);
                rows[mi].cells.push(metrics);
                rows[mi].seconds.push(secs);
                all_json.push(desalign_util::json!({
                    "dataset": spec.name(), "r_seed": r, "method": method.name(),
                    "metrics": desalign_bench::metrics_json(&metrics), "seconds": secs,
                }));
            }
        }
        let conditions: Vec<String> = ratios.iter().map(|r| format!("R_seed={:.0}%", r * 100.0)).collect();
        print_table(&format!("Figure 3 (right) — weak supervision on {}", spec.name()), &conditions, &rows);
    }
    desalign_bench::dump_json("results/fig3_weak.json", &desalign_util::json!(all_json));
}
