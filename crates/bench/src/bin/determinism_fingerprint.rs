//! Prints a 64-bit fingerprint of a small end-to-end pipeline run: dataset
//! generation, two training epochs, Semantic Propagation decoding, and the
//! final metrics — everything hashed at the `f32` bit level.
//!
//! `ci.sh` runs this binary twice, once with `DESALIGN_THREADS=1` and once
//! with the environment default, and diffs the output: any divergence means
//! a kernel's result depends on the thread count, which the
//! `desalign-parallel` design forbids. Stdout carries exactly one line (the
//! fingerprint) so a plain `diff` is the whole check.
//!
//! `DESALIGN_AUDIT=repair` additionally runs the dataset through a
//! `Repair` audit before training. The generated data is clean, so the
//! audit must be a no-op and the fingerprint must match the default run —
//! `ci.sh` diffs the two to prove that wiring the auditor into a healthy
//! pipeline cannot perturb training.
//!
//! `DESALIGN_SAMPLED=1` trains through the neighborhood-sampled block
//! path instead of the full-graph trainer (a *different* trajectory, so a
//! different fingerprint). `ci.sh` runs that variant at two thread counts
//! and diffs: the sampled path must be as thread-count-independent as the
//! full-graph one.

use desalign_bench::or_die;
use desalign_core::{DesalignConfig, DesalignModel};
use desalign_mmkg::{AuditPolicy, DatasetSpec, FeatureDims, SynthConfig};

/// FNV-1a over a little-endian byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn update_f32s(&mut self, values: &[f32]) {
        for v in values {
            self.update(&v.to_bits().to_le_bytes());
        }
    }
}

fn main() {
    let mut ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).with_image_ratio(0.6).generate(5);
    match std::env::var("DESALIGN_AUDIT").as_deref() {
        Ok("repair") => {
            let report = or_die("repair audit", ds.audit(AuditPolicy::Repair));
            if !report.is_clean() {
                eprintln!("error: generated dataset had defects: {}", report.summary());
                std::process::exit(1);
            }
        }
        Ok("off") | Err(_) => {}
        Ok(other) => {
            eprintln!("unknown DESALIGN_AUDIT '{other}' (use 'repair' or 'off')");
            std::process::exit(2);
        }
    }
    let mut cfg = DesalignConfig::fast();
    cfg.hidden_dim = 32;
    cfg.feature_dims = FeatureDims { relation: 64, attribute: 64, visual: 64 };
    cfg.epochs = 2;
    cfg.batch_size = 64;
    if std::env::var("DESALIGN_SAMPLED").as_deref() == Ok("1") {
        cfg.sampled.enabled = true;
        cfg.sampled.block_entities = 32;
        cfg.sampled.halo_per_node = 4;
    }
    let mut model = DesalignModel::new(cfg, &ds, 31);
    model.fit(&ds);
    let sim = model.similarity_with_iterations(2);
    let metrics = model.evaluate(&ds);

    let mut h = Fnv::new();
    h.update_f32s(sim.scores().as_slice());
    h.update_f32s(&[metrics.hits_at_1, metrics.hits_at_10, metrics.mrr]);
    h.update(&(metrics.num_queries as u64).to_le_bytes());
    println!("{:016x}", h.0);
}
