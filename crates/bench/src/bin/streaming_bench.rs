//! Streaming data-plane benchmark: sharded generate/audit vs the JSON path.
//!
//! For each scale the harness runs both data planes over the same synthetic
//! MMKG pair and compares them on throughput and peak working set:
//!
//! - **sharded** — `SynthConfig::generate_sharded` streams the dataset to a
//!   shard directory (never materializing the full KG), then the
//!   `StreamingAuditor` re-reads it shard-by-shard under the Strict policy.
//!   The auditor's `peak_payload_bytes` is the plane's *logical* peak
//!   working set: the largest single shard payload held in memory at once.
//! - **json** — `SynthConfig::generate` builds the whole dataset in memory,
//!   `save_dataset_json`/`load_dataset_json` round-trip it through one
//!   monolithic file whose size (and hence load-time working set) grows
//!   linearly with the scale.
//!
//! Every scale also assembles the shards back with
//! `ShardManifest::to_dataset` and checks the fingerprint against the
//! in-memory dataset — the bench doubles as an end-to-end equivalence
//! harness. `VmHWM` from `/proc/self/status` is recorded per scale as a
//! best-effort informational column (process-wide high-water mark; null on
//! non-Linux hosts). The table is written to `BENCH_streaming.json`.
//!
//! Knobs (all env vars):
//! - `DESALIGN_STREAMING_SIZES` — comma-separated entity scales (default
//!   `2000,8000`);
//! - `DESALIGN_STREAMING_SHARD_ENTITIES` — entities per shard (default 500);
//! - `DESALIGN_STREAMING_SAMPLES` — timing samples for the read legs
//!   (default 3);
//! - `DESALIGN_STREAMING_SEED` — generator seed (default 17);
//! - `DESALIGN_STREAMING_OUT` — output path (default `BENCH_streaming.json`);
//! - `DESALIGN_STREAMING_GATE=1` — exit non-zero unless at every scale the
//!   streamed fingerprint matches the in-memory one, the audit's peak
//!   payload stays ≤ 2× the largest shard, and (across scales) the shard
//!   peak stays flat while the JSON file keeps growing.

use desalign_bench::timing::bench_stats;
use desalign_bench::{dump_json, or_die};
use desalign_mmkg::{
    dataset_fingerprint, load_dataset_json, read_manifest, save_dataset_json, AuditPolicy, DatasetSpec,
    StreamingAuditor, SynthConfig,
};
use desalign_util::{json, Json};
use std::path::PathBuf;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn env_sizes() -> Vec<usize> {
    match std::env::var("DESALIGN_STREAMING_SIZES") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).filter(|&n| n > 0).collect(),
        Err(_) => vec![2_000, 8_000],
    }
}

/// Process-wide peak RSS in bytes from `/proc/self/status`, if available.
/// Monotone over the run, so it is informational only — the deterministic
/// gate uses the auditor's logical `peak_payload_bytes` instead.
fn vm_hwm_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

struct ScaleReport {
    row: Json,
    fingerprints_match: bool,
    peak_payload_bytes: u64,
    max_shard_payload: u64,
    json_bytes: u64,
}

fn run_scale(n: usize, shard_entities: usize, samples: usize, seed: u64, scratch: &PathBuf) -> ScaleReport {
    let cfg = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(n);
    let shard_dir = scratch.join(format!("shards-{n}"));
    let json_path = scratch.join(format!("split-{n}.json"));

    // --- sharded plane: streamed generation + Strict streaming audit -------
    let t = Instant::now();
    let manifest =
        or_die("generate_sharded", cfg.generate_sharded(seed, &shard_dir, shard_entities));
    let gen_sharded_secs = t.elapsed().as_secs_f64();
    let num_shards = manifest.shards.len();
    let total_payload: u64 = manifest.shards.iter().map(|s| s.payload_len).sum();
    let max_shard_payload = manifest.shards.iter().map(|s| s.payload_len).max().unwrap_or(0);

    let auditor = StreamingAuditor::new(AuditPolicy::Strict);
    let report = or_die("streaming audit", auditor.audit_dir(&shard_dir));
    let audit_stats = bench_stats(&format!("audit/{n}"), samples, || {
        std::hint::black_box(or_die("streaming audit", auditor.audit_dir(&shard_dir)));
    });
    let audit_secs = audit_stats.median.as_secs_f64();
    let shards_per_sec = num_shards as f64 / audit_secs;
    let audit_mb_per_sec = total_payload as f64 / 1e6 / audit_secs;

    // --- json plane: in-memory generation + monolithic round-trip ----------
    let t = Instant::now();
    let ds = cfg.generate(seed);
    let gen_inmem_secs = t.elapsed().as_secs_f64();
    or_die("save json", save_dataset_json(&ds, &json_path));
    let json_bytes = or_die("stat json", std::fs::metadata(&json_path)).len();
    let load_stats = bench_stats(&format!("json-load/{n}"), samples, || {
        std::hint::black_box(or_die("load json", load_dataset_json(&json_path)));
    });
    let json_load_secs = load_stats.median.as_secs_f64();

    // --- equivalence: shards ⇄ in-memory -----------------------------------
    let t = Instant::now();
    let assembled = or_die("to_dataset", read_manifest(&shard_dir).and_then(|m| m.to_dataset(&shard_dir)));
    let assemble_secs = t.elapsed().as_secs_f64();
    let fp_inmem = dataset_fingerprint(&ds);
    let fingerprints_match =
        report.fingerprint == fp_inmem && dataset_fingerprint(&assembled) == fp_inmem;

    println!(
        "n={n:<6} shards {num_shards:<3} gen {gen_sharded_secs:>6.2}s (inmem {gen_inmem_secs:>6.2}s)  audit {:>7.1} shards/s {audit_mb_per_sec:>6.1} MB/s  peak {:>9} B (max shard {:>9} B)  json {:>10} B load {json_load_secs:>6.3}s  fp {}",
        shards_per_sec,
        report.peak_payload_bytes,
        max_shard_payload,
        json_bytes,
        if fingerprints_match { "OK" } else { "MISMATCH" },
    );

    let row = json!({
        "n": n,
        "shard_entities": shard_entities,
        "num_shards": num_shards,
        "gen_sharded_secs": gen_sharded_secs,
        "gen_inmem_secs": gen_inmem_secs,
        "audit_secs": audit_secs,
        "shards_per_sec": shards_per_sec,
        "audit_mb_per_sec": audit_mb_per_sec,
        "total_payload_bytes": total_payload,
        "max_shard_payload_bytes": max_shard_payload,
        "peak_payload_bytes": report.peak_payload_bytes,
        "json_bytes": json_bytes,
        "json_load_secs": json_load_secs,
        "assemble_secs": assemble_secs,
        "fingerprints_match": fingerprints_match,
        "vm_hwm_bytes": vm_hwm_bytes(),
    });
    ScaleReport {
        row,
        fingerprints_match,
        peak_payload_bytes: report.peak_payload_bytes,
        max_shard_payload,
        json_bytes,
    }
}

fn main() {
    let sizes = env_sizes();
    let shard_entities = env_usize("DESALIGN_STREAMING_SHARD_ENTITIES", 500).max(1);
    let samples = env_usize("DESALIGN_STREAMING_SAMPLES", 3);
    let seed = env_usize("DESALIGN_STREAMING_SEED", 17) as u64;
    let gate = std::env::var("DESALIGN_STREAMING_GATE").as_deref() == Ok("1");
    let out = std::env::var("DESALIGN_STREAMING_OUT").unwrap_or_else(|_| "BENCH_streaming.json".into());

    let scratch = std::env::temp_dir().join(format!("desalign-streaming-bench-{}", std::process::id()));
    or_die("scratch dir", std::fs::create_dir_all(&scratch));

    println!("streaming bench: sizes {sizes:?}, {shard_entities} entities/shard, seed {seed}");
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for &n in &sizes {
        let report = run_scale(n, shard_entities, samples, seed, &scratch);
        if !report.fingerprints_match {
            failures.push(format!("n={n}: streamed fingerprint diverges from the in-memory dataset"));
        }
        if report.peak_payload_bytes > 2 * report.max_shard_payload.max(1) {
            failures.push(format!(
                "n={n}: audit peak {} B exceeds 2× the largest shard ({} B)",
                report.peak_payload_bytes, report.max_shard_payload
            ));
        }
        rows.push(report.row.clone());
        reports.push(report);
    }
    // Scaling shape: the shard peak must stay (near) flat while the JSON
    // artifact keeps growing with n — the out-of-core claim in one check.
    if reports.len() >= 2 {
        let (first, last) = (&reports[0], &reports[reports.len() - 1]);
        if last.peak_payload_bytes > 2 * first.peak_payload_bytes.max(1) {
            failures.push(format!(
                "audit peak grew with scale: {} B → {} B",
                first.peak_payload_bytes, last.peak_payload_bytes
            ));
        }
        if last.json_bytes <= first.json_bytes {
            failures.push(format!(
                "json artifact did not grow with scale: {} B → {} B",
                first.json_bytes, last.json_bytes
            ));
        }
    }

    dump_json(&out, &json!({
        "shard_entities": shard_entities,
        "seed": seed,
        "samples": samples,
        "sizes": rows,
    }));

    let _ = std::fs::remove_dir_all(&scratch);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("streaming gate FAILED: {f}");
        }
        if gate {
            std::process::exit(1);
        }
        println!("(gate not enforced: set DESALIGN_STREAMING_GATE=1 to fail on this)");
    } else {
        println!("streaming gate OK: fingerprints match, audit peak bounded by the largest shard");
    }
}
