//! **Table IV** — main results on monolingual datasets.
//!
//! FB15K–DB15K and FB15K–YAGO15K at `R_seed ∈ {20, 50, 80} %`; the basic
//! roster plus the prominent methods under the iterative strategy. Shape
//! targets: DESAlign first on every split; iterative rows improve over
//! basic; gains shrink as `R_seed` rises.

use desalign_bench::{print_table, HarnessConfig, ResultRow, ALL_WITH_OURS, PROMINENT};
use desalign_baselines::iterative_align;
use desalign_mmkg::{DatasetSpec, SynthConfig};

fn main() {
    let h = HarnessConfig::from_env();
    let seeds = [0.2f32, 0.5, 0.8];
    let mut all_json = Vec::new();
    for spec in DatasetSpec::MONOLINGUAL {
        let mut basic: Vec<ResultRow> =
            ALL_WITH_OURS.iter().map(|m| ResultRow { method: m.name(), cells: Vec::new(), seconds: Vec::new() }).collect();
        let mut iterative: Vec<ResultRow> =
            PROMINENT.iter().map(|m| ResultRow { method: m.name(), cells: Vec::new(), seconds: Vec::new() }).collect();
        for &r in &seeds {
            let ds = SynthConfig::preset(spec).scaled(h.scale).with_seed_ratio(r).generate(h.seed);
            for (mi, method) in ALL_WITH_OURS.iter().enumerate() {
                let mut aligner = method.build(&h, &ds, h.seed);
                let secs = aligner.fit(&ds);
                let metrics = aligner.evaluate(&ds);
                basic[mi].cells.push(metrics);
                basic[mi].seconds.push(secs);
                all_json.push(desalign_util::json!({
                    "dataset": spec.name(), "r_seed": r, "method": method.name(), "strategy": "basic",
                    "metrics": desalign_bench::metrics_json(&metrics), "seconds": secs,
                }));
            }
            for (mi, method) in PROMINENT.iter().enumerate() {
                let mut aligner = method.build(&h, &ds, h.seed);
                let outcome = iterative_align(aligner.as_mut(), &ds, 2, 0.4);
                let metrics = outcome.final_metrics();
                iterative[mi].cells.push(metrics);
                iterative[mi].seconds.push(outcome.seconds);
                all_json.push(desalign_util::json!({
                    "dataset": spec.name(), "r_seed": r, "method": method.name(), "strategy": "iterative",
                    "metrics": desalign_bench::metrics_json(&metrics), "seconds": outcome.seconds,
                }));
            }
        }
        let conditions: Vec<String> = seeds.iter().map(|r| format!("R_seed={:.0}%", r * 100.0)).collect();
        print_table(&format!("Table IV — {} (basic)", spec.name()), &conditions, &basic);
        print_table(&format!("Table IV — {} (iterative)", spec.name()), &conditions, &iterative);
    }
    desalign_bench::dump_json("results/table4.json", &desalign_util::json!(all_json));
}
