//! Quick calibration run: one dataset, all methods, prints metrics and
//! wall-clock so the scale/epoch profile can be tuned before regenerating
//! the full table set. Not part of the paper's artifact list.

use desalign_bench::{HarnessConfig, MethodId, ALL_WITH_OURS};
use desalign_mmkg::{DatasetSpec, SynthConfig};

fn main() {
    let h = HarnessConfig::from_env();
    println!("profile: {h:?}");
    for spec in [DatasetSpec::FbDb15k, DatasetSpec::Dbp15kFrEn] {
        let cfg = SynthConfig::preset(spec).scaled(h.scale);
        let ds = cfg.generate(h.seed);
        println!(
            "\n{} — {} vs {} entities, {} train / {} test pairs",
            ds.name,
            ds.source.num_entities,
            ds.target.num_entities,
            ds.train_pairs.len(),
            ds.test_pairs.len()
        );
        for method in ALL_WITH_OURS {
            let t0 = std::time::Instant::now();
            let mut aligner = method.build(&h, &ds, h.seed);
            aligner.fit(&ds);
            let m = aligner.evaluate(&ds);
            println!(
                "  {:<10} H@1 {:5.1}  H@10 {:5.1}  MRR {:5.1}   ({:.1}s)",
                MethodId::name(&method),
                m.hits_at_1 * 100.0,
                m.hits_at_10 * 100.0,
                m.mrr * 100.0,
                t0.elapsed().as_secs_f64()
            );
        }
    }
}
