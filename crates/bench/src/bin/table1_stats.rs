//! **Table I** — dataset statistics.
//!
//! Prints the Table I analogue for the synthetic presets at the current
//! scale, next to the published full-scale numbers, so the ratio match is
//! auditable.

use desalign_bench::HarnessConfig;
use desalign_mmkg::{DatasetSpec, SynthConfig};

fn main() {
    let h = HarnessConfig::from_env();
    println!("Table I — dataset statistics (synthetic presets @ scale {})", h.scale);
    println!(
        "{:<16} {:>6} {:>6} {:>6} {:>10} {:>10} {:>7} {:>9}",
        "KG", "Ent.", "Rel.", "Att.", "R.Triples", "A.Triples", "Image", "EA pairs"
    );
    let mut rows = Vec::new();
    for spec in DatasetSpec::ALL {
        let ds = SynthConfig::preset(spec).scaled(h.scale).generate(h.seed);
        for (label, kg) in [("source", &ds.source), ("target", &ds.target)] {
            let s = kg.stats();
            println!(
                "{:<16} {:>6} {:>6} {:>6} {:>10} {:>10} {:>7} {:>9}",
                format!("{} {label}", spec.name()),
                s.entities,
                s.relations,
                s.attributes,
                s.rel_triples,
                s.attr_triples,
                s.images,
                if label == "source" { ds.num_pairs().to_string() } else { String::new() }
            );
            rows.push(desalign_util::json!({
                "dataset": spec.name(), "side": label,
                "entities": s.entities, "relations": s.relations,
                "attributes": s.attributes, "rel_triples": s.rel_triples,
                "attr_triples": s.attr_triples, "images": s.images,
                "ea_pairs": ds.num_pairs(),
            }));
        }
    }
    println!("\nPublished full-scale reference (paper Table I):");
    println!("  FB15K 14951 ents / 592213 R.triples / 13444 images; DB15K 12842/89197/12837; pairs 12846");
    println!("  YAGO15K 15404/122886/11194; pairs 11199; DBP15K sides ≈ 19.4–20k ents, 15000 pairs each");
    desalign_bench::dump_json("results/table1.json", &desalign_util::json!(rows));
}
