//! **Figure 4** — impact of the number of Semantic Propagation iterations.
//!
//! One DESAlign model per dataset; `n_p` swept at inference only (SP is a
//! post-processing step, so a single training per dataset suffices — this
//! is exactly the plug-in property §V-E advertises). Shape targets: an
//! early peak followed by degradation as propagation imports irrelevant
//! neighbour semantics; the peak location differs between monolingual and
//! bilingual families.

use desalign_bench::HarnessConfig;
use desalign_core::DesalignModel;
use desalign_mmkg::{DatasetSpec, SynthConfig};

fn main() {
    let h = HarnessConfig::from_env();
    let sweeps = [
        (DatasetSpec::FbDb15k, 0.2f32),
        (DatasetSpec::FbYg15k, 0.2),
        (DatasetSpec::Dbp15kFrEn, 0.3),
        (DatasetSpec::Dbp15kJaEn, 0.3),
    ];
    let iters: Vec<usize> = (0..=10).collect();
    let mut all_json = Vec::new();
    println!("Figure 4 — H@1 (%) vs semantic-propagation iterations n_p");
    print!("{:<22}", "Dataset");
    for n in &iters {
        print!(" {:>6}", format!("n_p={n}"));
    }
    println!();
    for (spec, r_seed) in sweeps {
        let ds = SynthConfig::preset(spec).scaled(h.scale).with_seed_ratio(r_seed).generate(h.seed);
        let mut model = DesalignModel::new(h.desalign_cfg(), &ds, h.seed);
        model.fit(&ds);
        print!("{:<22}", spec.name());
        for &n in &iters {
            let sim = model.similarity_with_iterations(n);
            let m = desalign_eval::evaluate_ranking(&sim, &ds.test_pairs);
            print!(" {:>6.1}", m.hits_at_1 * 100.0);
            all_json.push(desalign_util::json!({
                "dataset": spec.name(), "n_p": n,
                "metrics": desalign_bench::metrics_json(&m),
            }));
        }
        println!();
    }
    desalign_bench::dump_json("results/fig4.json", &desalign_util::json!(all_json));
}
