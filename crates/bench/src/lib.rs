//! Shared experiment harness for reproducing every table and figure of the
//! paper.
//!
//! Each binary in `src/bin/` regenerates one artifact (see DESIGN.md §4 for
//! the index). They share this module: a method registry, a scale profile
//! controlled by environment variables, and fixed-width table printing that
//! mirrors the paper's layout.
//!
//! Environment knobs (all optional):
//! - `DESALIGN_SCALE` — entities on the larger side of each synthetic pair
//!   (default 300; the paper's datasets are ~15–20 k);
//! - `DESALIGN_EPOCHS` — training epochs per fit (default 60; paper 500);
//! - `DESALIGN_SEED` — master RNG seed (default 17).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use desalign_baselines::{
    AckAligner, Aligner, AlinetAligner, AttrGnnAligner, DesalignAligner, EvaAligner, GcnAligner, HeaAligner,
    ImuseAligner, IpTransEAligner, McleaAligner, MeaformerAligner, MmeaAligner, MsneaAligner, MugcnAligner,
    PoeAligner, SeaAligner, TransEAligner,
};
use desalign_core::DesalignConfig;
use desalign_eval::AlignmentMetrics;
use desalign_mmkg::AlignmentDataset;

/// Scale and budget profile for one harness run.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Entities on the larger side of each generated pair.
    pub scale: usize,
    /// Training epochs per fit.
    pub epochs: usize,
    /// Unified hidden dimension.
    pub hidden_dim: usize,
    /// Master seed.
    pub seed: u64,
}

impl HarnessConfig {
    /// Reads the profile from the environment (see crate docs).
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d);
        Self {
            scale: get("DESALIGN_SCALE", 300),
            epochs: get("DESALIGN_EPOCHS", 60),
            hidden_dim: get("DESALIGN_DIM", 64),
            seed: get("DESALIGN_SEED", 17) as u64,
        }
    }

    /// The DESAlign configuration for this profile.
    pub fn desalign_cfg(&self) -> DesalignConfig {
        let mut cfg = DesalignConfig::fast();
        cfg.hidden_dim = self.hidden_dim;
        cfg.epochs = self.epochs;
        cfg
    }
}

/// The methods the robustness tables sweep (prominent methods of
/// Tables II–III).
pub const PROMINENT: [MethodId; 4] = [MethodId::Eva, MethodId::Mclea, MethodId::Meaformer, MethodId::Desalign];

/// The full method roster for the main-results tables (Table IV order:
/// translation family, GNN family, multi-modal family, ours).
pub const ALL_METHODS: [MethodId; 16] = [
    MethodId::TransE,
    MethodId::IpTransE,
    MethodId::Sea,
    MethodId::GcnAlign,
    MethodId::Mugcn,
    MethodId::Alinet,
    MethodId::AttrGnn,
    MethodId::Imuse,
    MethodId::Poe,
    MethodId::Ack,
    MethodId::Mmea,
    MethodId::Msnea,
    MethodId::Hea,
    MethodId::Eva,
    MethodId::Mclea,
    MethodId::Meaformer,
];

/// Every implemented method including DESAlign.
pub const ALL_WITH_OURS: [MethodId; 17] = [
    MethodId::TransE,
    MethodId::IpTransE,
    MethodId::Sea,
    MethodId::GcnAlign,
    MethodId::Mugcn,
    MethodId::Alinet,
    MethodId::AttrGnn,
    MethodId::Imuse,
    MethodId::Poe,
    MethodId::Ack,
    MethodId::Mmea,
    MethodId::Msnea,
    MethodId::Hea,
    MethodId::Eva,
    MethodId::Mclea,
    MethodId::Meaformer,
    MethodId::Desalign,
];

/// Identifier for one alignment method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodId {
    /// TransE baseline.
    TransE,
    /// IPTransE baseline.
    IpTransE,
    /// SEA baseline.
    Sea,
    /// GCN-align baseline.
    GcnAlign,
    /// MuGCN baseline.
    Mugcn,
    /// AliNet baseline.
    Alinet,
    /// AttrGNN baseline.
    AttrGnn,
    /// IMUSE baseline.
    Imuse,
    /// PoE baseline.
    Poe,
    /// ACK baseline.
    Ack,
    /// MMEA baseline.
    Mmea,
    /// MSNEA baseline.
    Msnea,
    /// HEA (hyperbolic) baseline.
    Hea,
    /// EVA baseline.
    Eva,
    /// MCLEA baseline.
    Mclea,
    /// MEAformer baseline.
    Meaformer,
    /// DESAlign (ours).
    Desalign,
}

impl MethodId {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MethodId::TransE => "TransE",
            MethodId::IpTransE => "IPTransE",
            MethodId::Sea => "SEA",
            MethodId::GcnAlign => "GCN-align",
            MethodId::Mugcn => "MUGCN",
            MethodId::Alinet => "ALiNet",
            MethodId::AttrGnn => "AttrGNN",
            MethodId::Imuse => "IMUSE",
            MethodId::Poe => "PoE",
            MethodId::Ack => "ACK",
            MethodId::Mmea => "MMEA",
            MethodId::Msnea => "MSNEA",
            MethodId::Hea => "HEA",
            MethodId::Eva => "EVA",
            MethodId::Mclea => "MCLEA",
            MethodId::Meaformer => "MEAformer",
            MethodId::Desalign => "DESAlign",
        }
    }

    /// Instantiates the method for a dataset under the given profile.
    pub fn build(&self, h: &HarnessConfig, dataset: &AlignmentDataset, seed: u64) -> Box<dyn Aligner> {
        match self {
            MethodId::TransE => {
                let cfg = desalign_baselines::TransEConfig {
                    dim: h.hidden_dim,
                    epochs: h.epochs,
                    ..Default::default()
                };
                Box::new(TransEAligner::with_config(cfg, dataset, seed))
            }
            MethodId::IpTransE => {
                let cfg = desalign_baselines::TransEConfig { dim: h.hidden_dim, epochs: h.epochs / 2, ..Default::default() };
                Box::new(IpTransEAligner::with_config(cfg, dataset, seed))
            }
            MethodId::Sea => Box::new(SeaAligner::with_profile(h.hidden_dim, h.epochs, dataset, seed)),
            MethodId::GcnAlign => Box::new(GcnAligner::with_profile(h.hidden_dim, h.epochs, dataset, seed)),
            MethodId::Mugcn => Box::new(MugcnAligner::with_profile(h.hidden_dim, h.epochs, dataset, seed)),
            MethodId::Alinet => Box::new(AlinetAligner::with_profile(h.hidden_dim, h.epochs, dataset, seed)),
            MethodId::AttrGnn => Box::new(AttrGnnAligner::with_profile(h.hidden_dim, h.epochs, dataset, seed)),
            MethodId::Imuse => Box::new(ImuseAligner::with_profile(h.hidden_dim, h.epochs, dataset, seed)),
            MethodId::Poe => Box::new(PoeAligner::with_profile(h.hidden_dim, h.epochs, dataset, seed)),
            MethodId::Ack => Box::new(AckAligner::with_profile(h.hidden_dim, h.epochs, dataset, seed)),
            MethodId::Mmea => Box::new(MmeaAligner::with_profile(h.hidden_dim, h.epochs, dataset, seed)),
            MethodId::Msnea => Box::new(MsneaAligner::with_profile(h.hidden_dim, h.epochs, dataset, seed)),
            MethodId::Hea => Box::new(HeaAligner::with_profile(h.hidden_dim.min(32), h.epochs, dataset, seed)),
            MethodId::Eva => Box::new(EvaAligner::with_profile(h.hidden_dim, h.epochs, dataset, seed)),
            MethodId::Mclea => Box::new(McleaAligner::with_profile(h.hidden_dim, h.epochs, dataset, seed)),
            MethodId::Meaformer => Box::new(MeaformerAligner::new(h.desalign_cfg(), dataset, seed)),
            MethodId::Desalign => Box::new(DesalignAligner::new(h.desalign_cfg(), dataset, seed)),
        }
    }
}

/// One `(method, metrics)` result cell.
#[derive(Clone, Debug)]
pub struct ResultRow {
    /// Method name.
    pub method: &'static str,
    /// Metrics per swept condition (e.g. per ratio).
    pub cells: Vec<AlignmentMetrics>,
    /// Wall-clock seconds per condition.
    pub seconds: Vec<f64>,
}

/// Prints a paper-style table: one row per method, `H@1 H@10 MRR` per
/// condition, plus an `Improv.` row comparing the last method (ours)
/// against the best baseline.
pub fn print_table(title: &str, conditions: &[String], rows: &[ResultRow]) {
    println!("\n=== {title} ===");
    print!("{:<12}", "Model");
    for c in conditions {
        print!(" | {c:^17}");
    }
    println!();
    print!("{:<12}", "");
    for _ in conditions {
        print!(" | {:>5} {:>5} {:>5}", "H@1", "H@10", "MRR");
    }
    println!();
    for row in rows {
        print!("{:<12}", row.method);
        for m in &row.cells {
            print!(" | {:>5.1} {:>5.1} {:>5.1}", m.hits_at_1 * 100.0, m.hits_at_10 * 100.0, m.mrr * 100.0);
        }
        println!();
    }
    if rows.len() >= 2 {
        let ours = &rows[rows.len() - 1];
        print!("{:<12}", "Improv.");
        for (i, m) in ours.cells.iter().enumerate() {
            let best = rows[..rows.len() - 1]
                .iter()
                .filter_map(|r| r.cells.get(i))
                .fold((f32::MIN, f32::MIN, f32::MIN), |acc, c| {
                    (acc.0.max(c.hits_at_1), acc.1.max(c.hits_at_10), acc.2.max(c.mrr))
                });
            print!(
                " | {:>+5.1} {:>+5.1} {:>+5.1}",
                (m.hits_at_1 - best.0) * 100.0,
                (m.hits_at_10 - best.1) * 100.0,
                (m.mrr - best.2) * 100.0
            );
        }
        println!();
    }
}

/// Unwraps a result in a bench `main`, or prints `error: <what>: <cause>`
/// to stderr and exits nonzero. The bench bins use this instead of
/// `unwrap`/`expect` on I/O so a full disk or missing directory produces a
/// readable one-line failure, not a panic with a backtrace.
pub fn or_die<T, E: std::fmt::Display>(what: &str, result: Result<T, E>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {what}: {e}");
        std::process::exit(1);
    })
}

/// Serializes results to JSON, creating the parent directory; the fallible
/// core of [`dump_json`].
pub fn try_dump_json(path: &str, value: &desalign_util::Json) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, value.to_string())
}

/// Serializes results to JSON next to stdout output so EXPERIMENTS.md can
/// reference machine-readable artifacts. Exits nonzero on I/O failure —
/// a bench run whose artifact did not land must not look green.
pub fn dump_json(path: &str, value: &desalign_util::Json) {
    or_die(&format!("write {path}"), try_dump_json(path, value));
}

/// Converts metrics to a JSON object.
pub fn metrics_json(m: &AlignmentMetrics) -> desalign_util::Json {
    desalign_util::json!({
        "h1": m.hits_at_1,
        "h10": m.hits_at_10,
        "mrr": m.mrr,
        "queries": m.num_queries,
    })
}
