//! Hand-rolled timing loop backing `benches/` — an in-repo replacement for
//! criterion, keeping the workspace dependency-free.
//!
//! Deliberately simple: a fixed warmup, a fixed sample count, and
//! min/median/mean wall-clock per sample printed in one line. That is
//! enough to compare kernels across commits and scales; it makes no
//! attempt at outlier rejection or statistical significance.

use std::time::{Duration, Instant};

/// Samples per benchmark (after warmup).
pub const DEFAULT_SAMPLES: usize = 20;

/// Summary statistics of one benchmark's samples.
#[derive(Clone, Copy, Debug)]
pub struct BenchStats {
    /// Fastest sample.
    pub min: Duration,
    /// Middle sample.
    pub median: Duration,
    /// Arithmetic mean over all samples.
    pub mean: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

/// Runs `f` under a warmup + sampling loop and prints one result line.
///
/// Each sample times exactly one call. Wrap inputs/outputs with
/// [`std::hint::black_box`] inside `f` to keep the optimizer honest.
pub fn bench<F: FnMut()>(name: &str, samples: usize, f: F) {
    let _ = bench_stats(name, samples, f);
}

/// Like [`bench()`], but also returns the sample statistics so callers can
/// build machine-readable speedup tables (e.g. `BENCH_kernels.json`).
pub fn bench_stats<F: FnMut()>(name: &str, samples: usize, mut f: F) -> BenchStats {
    assert!(samples > 0, "benchmark '{name}' needs at least one sample");
    // Warmup: enough iterations to fault in caches and reach steady state,
    // bounded so slow end-to-end benches don't pay twice.
    let warmup_deadline = Instant::now() + Duration::from_millis(300);
    let mut warmups = 0;
    while warmups < 3 || (Instant::now() < warmup_deadline && warmups < samples) {
        f();
        warmups += 1;
    }

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed());
    }
    times.sort_unstable();
    let stats = BenchStats {
        min: times[0],
        median: times[times.len() / 2],
        mean: times.iter().sum::<Duration>() / times.len() as u32,
        samples,
    };
    println!(
        "{name:<40} min {:>12} median {:>12} mean {:>12} ({samples} samples)",
        fmt(stats.min),
        fmt(stats.median),
        fmt(stats.mean)
    );
    stats
}

/// Like [`bench()`], but rebuilds fresh state before every timed call, so
/// benchmarks that consume or mutate their input (e.g. training a model)
/// measure only the work, not the setup.
pub fn bench_with_setup<T, S: FnMut() -> T, F: FnMut(T)>(name: &str, samples: usize, mut setup: S, mut f: F) {
    assert!(samples > 0, "benchmark '{name}' needs at least one sample");
    for _ in 0..2 {
        f(setup());
    }
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let state = setup();
        let start = Instant::now();
        f(state);
        times.push(start.elapsed());
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!("{name:<40} min {:>12} median {:>12} mean {:>12} ({samples} samples)", fmt(min), fmt(median), fmt(mean));
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut count = 0usize;
        bench("timing_smoke", 3, || count += 1);
        assert!(count >= 3 + 3, "warmup + samples should run the closure, got {count}");
    }

    #[test]
    fn bench_with_setup_rebuilds_state() {
        let mut setups = 0usize;
        bench_with_setup(
            "timing_setup_smoke",
            4,
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| {
                std::hint::black_box(v.len());
            },
        );
        assert!(setups >= 4, "setup should run per sample, got {setups}");
    }

    #[test]
    fn durations_format_across_scales() {
        assert_eq!(fmt(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt(Duration::from_millis(2500)), "2.500 s");
    }
}
