//! IPTransE (Zhu et al., IJCAI 2017): iterative TransE with soft alignment
//! sharing — translation embeddings refined by self-training on mined
//! pseudo pairs. Reproduced as TransE plus one internal bootstrap round
//! with a conservative mutual-NN threshold.

use crate::api::Aligner;
use crate::transe::{TransEAligner, TransEConfig};
use desalign_eval::{mutual_nearest_neighbours, SimilarityMatrix};
use desalign_mmkg::AlignmentDataset;

/// The IPTransE baseline.
pub struct IpTransEAligner {
    inner: TransEAligner,
    bootstrap_threshold: f32,
}

impl IpTransEAligner {
    /// Creates an IPTransE model.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_config(TransEConfig::default(), dataset, seed)
    }

    /// Creates an IPTransE model with explicit TransE hyperparameters.
    pub fn with_config(cfg: TransEConfig, dataset: &AlignmentDataset, seed: u64) -> Self {
        Self { inner: TransEAligner::with_config(cfg, dataset, seed), bootstrap_threshold: 0.6 }
    }
}

impl Aligner for IpTransEAligner {
    fn name(&self) -> &'static str {
        "IPTransE"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        // Stage 1: plain translation training on the gold seeds.
        let mut secs = self.inner.fit(dataset);
        // Stage 2: mine high-confidence soft alignments and retrain — the
        // "iterative entity alignment via joint knowledge embeddings" loop.
        let sim = self.inner.similarity();
        let seeded_s: std::collections::HashSet<usize> = dataset.train_pairs.iter().map(|&(s, _)| s).collect();
        let seeded_t: std::collections::HashSet<usize> = dataset.train_pairs.iter().map(|&(_, t)| t).collect();
        let cand_s: Vec<usize> = (0..dataset.source.num_entities).filter(|s| !seeded_s.contains(s)).collect();
        let cand_t: Vec<usize> = (0..dataset.target.num_entities).filter(|t| !seeded_t.contains(t)).collect();
        let mined = mutual_nearest_neighbours(&sim, &cand_s, &cand_t, self.bootstrap_threshold);
        self.inner.set_pseudo_pairs(mined.into_iter().map(|(s, t, _)| (s, t)).collect());
        secs += self.inner.fit(dataset);
        secs
    }

    fn similarity(&self) -> SimilarityMatrix {
        self.inner.similarity()
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.inner.set_pseudo_pairs(pairs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn iptranse_runs_both_stages() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(30);
        let cfg = TransEConfig { dim: 16, epochs: 10, triples_per_epoch: 128, ..Default::default() };
        let mut m = IpTransEAligner::with_config(cfg, &ds, 1);
        let secs = m.fit(&ds);
        assert!(secs > 0.0);
        assert_eq!(m.name(), "IPTransE");
        assert!(m.evaluate(&ds).num_queries > 0);
    }
}
