//! IMUSE (He et al., DASFAA 2019): (nearly) unsupervised alignment from
//! attribute and relation triples — high-confidence pairs are first mined
//! directly from raw attribute-feature similarity, then used as (extra)
//! seeds for an embedding model; the final decision blends the learned
//! similarity with the raw attribute similarity.

use crate::api::Aligner;
use crate::fusion::{SimpleConfig, SimpleModel};
use desalign_eval::{cosine_similarity, mutual_nearest_neighbours, SimilarityMatrix};
use desalign_mmkg::{AlignmentDataset, FeatureDims, ModalFeatures};
use std::rc::Rc;

/// The IMUSE baseline.
pub struct ImuseAligner {
    model: SimpleModel,
    raw_attr_sim: SimilarityMatrix,
    mined_seeds: Vec<(usize, usize)>,
}

impl ImuseAligner {
    /// Creates an IMUSE model.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_profile(64, 60, dataset, seed)
    }

    /// Creates an IMUSE model with an explicit dimension / epoch budget.
    pub fn with_profile(hidden_dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        let cfg = SimpleConfig { hidden_dim, epochs, ..Default::default() };
        let model = SimpleModel::new(cfg, dataset, seed);
        // Unsupervised stage: raw attribute-BoW similarity and its mutual
        // nearest neighbours above a confidence threshold.
        let dims = FeatureDims::default();
        let f_s = ModalFeatures::build(&dataset.source, &dims);
        let f_t = ModalFeatures::build(&dataset.target, &dims);
        let raw = cosine_similarity(&f_s.attribute, &f_t.attribute);
        let cand_s: Vec<usize> = (0..dataset.source.num_entities).collect();
        let cand_t: Vec<usize> = (0..dataset.target.num_entities).collect();
        let mined: Vec<(usize, usize)> =
            mutual_nearest_neighbours(&raw, &cand_s, &cand_t, 0.85).into_iter().map(|(s, t, _)| (s, t)).collect();
        Self { model, raw_attr_sim: raw, mined_seeds: mined }
    }

    /// Pairs mined without supervision (diagnostic).
    pub fn mined_seed_count(&self) -> usize {
        self.mined_seeds.len()
    }
}

impl Aligner for ImuseAligner {
    fn name(&self) -> &'static str {
        "IMUSE"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        // The unsupervised pairs supplement whatever seeds exist, but never
        // override iterative pseudo seeds already injected.
        let mut pseudo = std::mem::take(&mut self.model.pseudo);
        let seeded: std::collections::HashSet<usize> = dataset
            .train_pairs
            .iter()
            .map(|&(s, _)| s)
            .chain(pseudo.iter().map(|&(s, _)| s))
            .collect();
        pseudo.extend(self.mined_seeds.iter().copied().filter(|&(s, _)| !seeded.contains(&s)));
        self.model.pseudo = pseudo;
        self.model.fit_with(dataset, |sess, enc_s, enc_t, batch, tau| {
            let src: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(s, _)| s).collect());
            let tgt: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(_, t)| t).collect());
            let z1 = sess.tape.gather_rows(enc_s.fused, src);
            let z2 = sess.tape.gather_rows(enc_t.fused, tgt);
            sess.tape.info_nce_bidirectional(z1, z2, tau)
        })
    }

    fn similarity(&self) -> SimilarityMatrix {
        // Blend learned and raw attribute similarity (equal weights).
        let learned = self.model.similarity();
        let blended = learned.scores().add(self.raw_attr_sim.scores()).scale(0.5);
        SimilarityMatrix::new(blended)
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.model.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn imuse_trains_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(46);
        let mut m = ImuseAligner::with_profile(16, 8, &ds, 1);
        m.fit(&ds);
        assert!(m.evaluate(&ds).num_queries > 0);
        assert_eq!(m.name(), "IMUSE");
    }

    #[test]
    fn unsupervised_mining_respects_threshold() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(80).generate(47);
        let m = ImuseAligner::with_profile(8, 1, &ds, 2);
        // With a 0.85 cosine threshold the mined set is small but nonempty
        // on the attribute-dense monolingual preset.
        assert!(m.mined_seed_count() < ds.source.num_entities);
    }
}
