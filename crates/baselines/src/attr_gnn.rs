//! AttrGNN (Liu et al., EMNLP 2020): channel-wise attribute-aware GNN —
//! separate channels encode structure and attribute evidence, and the
//! final decision *ensembles the per-channel similarity matrices* instead
//! of fusing embeddings.

use crate::api::Aligner;
use crate::fusion::{SimpleConfig, SimpleModel};
use desalign_eval::{cosine_similarity, SimilarityMatrix};
use desalign_mmkg::AlignmentDataset;
use desalign_nn::Session;
use std::rc::Rc;

/// The AttrGNN baseline.
pub struct AttrGnnAligner {
    model: SimpleModel,
}

impl AttrGnnAligner {
    /// Creates an AttrGNN model.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_profile(64, 60, dataset, seed)
    }

    /// Creates an AttrGNN model with an explicit dimension / epoch budget.
    pub fn with_profile(hidden_dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        // Structure + text-attribute channels (no vision, no relation BoW
        // in AttrGNN).
        let cfg = SimpleConfig { hidden_dim, epochs, use_visual: false, use_relation: false, ..Default::default() };
        Self { model: SimpleModel::new(cfg, dataset, seed) }
    }
}

impl Aligner for AttrGnnAligner {
    fn name(&self) -> &'static str {
        "AttrGNN"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        self.model.fit_with(dataset, |sess, enc_s, enc_t, batch, tau| {
            let src: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(s, _)| s).collect());
            let tgt: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(_, t)| t).collect());
            // Channel-wise objectives only (no fused loss — channels stay
            // independent experts, the AttrGNN design).
            let mut loss = None;
            for (hs, ht) in enc_s.modal.iter().zip(&enc_t.modal) {
                let z1 = sess.tape.gather_rows(*hs, Rc::clone(&src));
                let z2 = sess.tape.gather_rows(*ht, Rc::clone(&tgt));
                let lm = sess.tape.info_nce_bidirectional(z1, z2, tau);
                loss = Some(match loss {
                    Some(acc) => sess.tape.add(acc, lm),
                    None => lm,
                });
            }
            loss.expect("at least one channel")
        })
    }

    fn similarity(&self) -> SimilarityMatrix {
        // Ensemble: mean of the per-channel similarity matrices.
        let mut sess = Session::new(&self.model.store);
        let enc_s = self.model.forward(&mut sess, 0);
        let enc_t = self.model.forward(&mut sess, 1);
        let sims: Vec<SimilarityMatrix> = enc_s
            .modal
            .iter()
            .zip(&enc_t.modal)
            .map(|(&hs, &ht)| cosine_similarity(sess.tape.value(hs), sess.tape.value(ht)))
            .collect();
        SimilarityMatrix::average(&sims)
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.model.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn attrgnn_trains_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(42);
        let mut m = AttrGnnAligner::with_profile(16, 8, &ds, 1);
        m.fit(&ds);
        assert!(m.evaluate(&ds).num_queries > 0);
        assert_eq!(m.name(), "AttrGNN");
    }

    #[test]
    fn ensemble_uses_two_channels() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(50).generate(43);
        let m = AttrGnnAligner::with_profile(8, 1, &ds, 2);
        assert_eq!(m.model.num_modalities(), 2);
        let sim = m.similarity();
        assert_eq!(sim.shape(), (ds.source.num_entities, ds.target.num_entities));
    }
}
