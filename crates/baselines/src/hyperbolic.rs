//! Poincaré-ball geometry for the HEA baseline.
//!
//! Provides both plain-matrix kernels (for similarity computation) and
//! tape-recorded composites (for differentiable training): Möbius
//! addition, the exponential map at the origin, hyperbolic distance, and
//! ball projection. Curvature is `−c` with `c > 0`.

use desalign_autodiff::Var;
use desalign_nn::Session;
use desalign_tensor::Matrix;

/// Numerical guard keeping points strictly inside the ball.
const BALL_EPS: f32 = 1e-4;

/// Projects every row of `x` into the open ball of radius `(1 − ε)/√c`.
pub fn project_to_ball(x: &mut Matrix, c: f32) {
    let max_norm = (1.0 - BALL_EPS) / c.sqrt();
    for i in 0..x.rows() {
        let row = x.row_mut(i);
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > max_norm {
            let f = max_norm / norm;
            for v in row {
                *v *= f;
            }
        }
    }
}

/// Möbius addition `x ⊕_c y` row-wise (plain matrices).
pub fn mobius_add(x: &Matrix, y: &Matrix, c: f32) -> Matrix {
    y.expect_shape(x.rows(), x.cols(), "mobius_add");
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for i in 0..x.rows() {
        let (xr, yr) = (x.row(i), y.row(i));
        let xy: f32 = xr.iter().zip(yr).map(|(a, b)| a * b).sum();
        let x2: f32 = xr.iter().map(|v| v * v).sum();
        let y2: f32 = yr.iter().map(|v| v * v).sum();
        let den = 1.0 + 2.0 * c * xy + c * c * x2 * y2;
        let ax = 1.0 + 2.0 * c * xy + c * y2;
        let ay = 1.0 - c * x2;
        for ((o, &xv), &yv) in out.row_mut(i).iter_mut().zip(xr).zip(yr) {
            *o = (ax * xv + ay * yv) / den.max(1e-9);
        }
    }
    out
}

/// Hyperbolic distance between corresponding rows:
/// `d_c(x, y) = (2/√c) artanh(√c ‖(−x) ⊕_c y‖)`.
pub fn poincare_distance_rows(x: &Matrix, y: &Matrix, c: f32) -> Vec<f32> {
    let neg = x.scale(-1.0);
    let m = mobius_add(&neg, y, c);
    let sc = c.sqrt();
    (0..m.rows())
        .map(|i| {
            let norm = m.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            let t = (sc * norm).clamp(0.0, 1.0 - BALL_EPS);
            (2.0 / sc) * (0.5 * ((1.0 + t) / (1.0 - t)).ln())
        })
        .collect()
}

/// Full pairwise hyperbolic distance matrix (`n_s × n_t`).
pub fn poincare_distance_matrix(xs: &Matrix, ys: &Matrix, c: f32) -> Matrix {
    assert_eq!(xs.cols(), ys.cols(), "poincare_distance_matrix: dims differ");
    let mut out = Matrix::zeros(xs.rows(), ys.rows());
    let sc = c.sqrt();
    for i in 0..xs.rows() {
        let xr = xs.row(i);
        let x2: f32 = xr.iter().map(|v| v * v).sum();
        for j in 0..ys.rows() {
            let yr = ys.row(j);
            let y2: f32 = yr.iter().map(|v| v * v).sum();
            let xy: f32 = xr.iter().zip(yr).map(|(a, b)| a * b).sum();
            // Evaluate ‖(−x) ⊕_c y‖ from the Möbius form directly.
            let mut m2 = 0.0f32;
            let ax = 1.0 - 2.0 * c * xy + c * y2;
            let ay = 1.0 - c * x2;
            let d = 1.0 - 2.0 * c * xy + c * c * x2 * y2;
            for (&xv, &yv) in xr.iter().zip(yr) {
                let v = (ax * (-xv) + ay * yv) / d.max(1e-9);
                m2 += v * v;
            }
            let t = (sc * m2.sqrt()).clamp(0.0, 1.0 - BALL_EPS);
            out[(i, j)] = (2.0 / sc) * (0.5 * ((1.0 + t) / (1.0 - t)).ln());
        }
    }
    out
}

/// Tape-recorded hyperbolic distance between corresponding rows of two
/// ball-interior variables (`n × 1` result) — differentiable through
/// Möbius addition and `artanh`.
pub fn poincare_distance_var(sess: &mut Session<'_>, x: Var, y: Var, c: f32) -> Var {
    let n = sess.tape.value(x).rows();
    let ones = sess.input(Matrix::full(n, 1, 1.0));
    // Row-wise scalars.
    let neg_x = sess.tape.scale(x, -1.0);
    let xy_prod = sess.tape.mul(neg_x, y);
    let xy = sess.tape.row_sum(xy_prod); // ⟨−x, y⟩
    let x_sq = sess.tape.square(neg_x);
    let x2 = sess.tape.row_sum(x_sq);
    let y_sq = sess.tape.square(y);
    let y2 = sess.tape.row_sum(y_sq);
    // Möbius addition (−x) ⊕ y.
    let two_c_xy = sess.tape.scale(xy, 2.0 * c);
    let c_y2 = sess.tape.scale(y2, c);
    let ax_partial = sess.tape.add(two_c_xy, c_y2);
    let ax = sess.tape.add_const(ax_partial, 1.0); // 1 + 2c⟨−x,y⟩ + c‖y‖²
    let c_x2 = sess.tape.scale(x2, -c);
    let ay = sess.tape.add_const(c_x2, 1.0); // 1 − c‖x‖²
    let x2y2 = sess.tape.mul(x2, y2);
    let c2_x2y2 = sess.tape.scale(x2y2, c * c);
    let den_partial = sess.tape.add(two_c_xy, c2_x2y2);
    let den = sess.tape.add_const(den_partial, 1.0);
    let term_x = sess.tape.mul_broadcast_col(neg_x, ax);
    let term_y = sess.tape.mul_broadcast_col(y, ay);
    let num = sess.tape.add(term_x, term_y);
    let inv_den = sess.tape.div(ones, den);
    let m = sess.tape.mul_broadcast_col(num, inv_den);
    // Norm and distance.
    let m_sq = sess.tape.square(m);
    let m2 = sess.tape.row_sum(m_sq);
    let m2_safe = sess.tape.add_const(m2, 1e-9);
    let norm = sess.tape.sqrt(m2_safe);
    let scaled = sess.tape.scale(norm, c.sqrt());
    let at = sess.tape.artanh(scaled);
    sess.tape.scale(at, 2.0 / c.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_nn::ParamStore;
    use desalign_tensor::{rng_from_seed, uniform_matrix};

    #[test]
    fn mobius_identity_element() {
        let y = Matrix::from_rows(&[&[0.1, 0.2], &[-0.3, 0.05]]);
        let zero = Matrix::zeros(2, 2);
        let out = mobius_add(&zero, &y, 1.0);
        assert!(out.sub(&y).max_abs() < 1e-6);
    }

    #[test]
    fn distance_to_self_is_zero_and_symmetric() {
        let mut rng = rng_from_seed(1);
        let mut x = uniform_matrix(&mut rng, 4, 3, -0.4, 0.4);
        let mut y = uniform_matrix(&mut rng, 4, 3, -0.4, 0.4);
        project_to_ball(&mut x, 1.0);
        project_to_ball(&mut y, 1.0);
        let d_self = poincare_distance_rows(&x, &x, 1.0);
        assert!(d_self.iter().all(|&d| d.abs() < 1e-4), "{d_self:?}");
        let d_xy = poincare_distance_rows(&x, &y, 1.0);
        let d_yx = poincare_distance_rows(&y, &x, 1.0);
        for (a, b) in d_xy.iter().zip(&d_yx) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn distance_matrix_matches_rowwise() {
        let mut rng = rng_from_seed(2);
        let mut x = uniform_matrix(&mut rng, 3, 4, -0.3, 0.3);
        let mut y = uniform_matrix(&mut rng, 3, 4, -0.3, 0.3);
        project_to_ball(&mut x, 1.0);
        project_to_ball(&mut y, 1.0);
        let matrix = poincare_distance_matrix(&x, &y, 1.0);
        let rows = poincare_distance_rows(&x, &y, 1.0);
        for (i, &d) in rows.iter().enumerate() {
            assert!((matrix[(i, i)] - d).abs() < 1e-4, "row {i}: {d} vs {}", matrix[(i, i)]);
        }
    }

    #[test]
    fn distance_grows_towards_the_boundary() {
        // Hyperbolic distances blow up near the boundary: d(0, r·e₁)
        // increases superlinearly in r.
        let origin = Matrix::zeros(1, 2);
        let mut prev = 0.0;
        let mut gaps = Vec::new();
        for r in [0.2f32, 0.5, 0.8, 0.95] {
            let p = Matrix::from_rows(&[&[r, 0.0]]);
            let d = poincare_distance_rows(&origin, &p, 1.0)[0];
            gaps.push(d - prev);
            prev = d;
        }
        assert!(gaps.windows(2).all(|w| w[1] > w[0] * 0.5), "growth pattern {gaps:?}");
        assert!(prev > 3.0, "near-boundary distance {prev}");
    }

    #[test]
    fn tape_distance_matches_plain_and_is_differentiable() {
        let mut rng = rng_from_seed(3);
        let mut x = uniform_matrix(&mut rng, 4, 3, -0.3, 0.3);
        let mut y = uniform_matrix(&mut rng, 4, 3, -0.3, 0.3);
        project_to_ball(&mut x, 1.0);
        project_to_ball(&mut y, 1.0);
        let plain = poincare_distance_rows(&x, &y, 1.0);
        let mut store = ParamStore::new();
        let xp = store.add("x", x);
        let mut sess = Session::new(&store);
        let xv = sess.param(xp);
        let yv = sess.input(y);
        let d = poincare_distance_var(&mut sess, xv, yv, 1.0);
        for (i, &p) in plain.iter().enumerate() {
            assert!((sess.tape.value(d)[(i, 0)] - p).abs() < 1e-3, "row {i}");
        }
        let loss = sess.tape.sum_all(d);
        let grads = sess.backward(loss);
        assert!(grads.get(xp).is_some());
        assert!(grads.get(xp).expect("grad").all_finite());
    }

    #[test]
    fn projection_clamps_norms() {
        let mut x = Matrix::from_rows(&[&[3.0, 4.0], &[0.1, 0.0]]);
        project_to_ball(&mut x, 1.0);
        let n0: f32 = x.row(0).iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(n0 < 1.0);
        assert!((x.row(1)[0] - 0.1).abs() < 1e-6, "interior point moved");
    }
}
