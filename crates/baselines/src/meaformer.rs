//! MEAformer (Chen et al., 2022): transformer-based meta-modality hybrid
//! fusion.
//!
//! DESAlign's encoder *is* a CAW/transformer fusion stack in the MEAformer
//! family (the paper says so explicitly in §IV-A, "Inspired by the
//! MEAformer"); what DESAlign adds is (a) the Dirichlet-energy-constrained
//! MMSL training and (b) Semantic Propagation. MEAformer is therefore
//! implemented faithfully as the same encoder with both additions switched
//! off — missing features keep their predefined-distribution noise fill,
//! exactly the behaviour the paper's robustness analysis attributes
//! MEAformer's missing-modality degradation to.

use crate::api::Aligner;
use desalign_core::{DesalignConfig, DesalignModel};
use desalign_eval::SimilarityMatrix;
use desalign_mmkg::AlignmentDataset;

/// The MEAformer baseline.
pub struct MeaformerAligner {
    model: DesalignModel,
}

impl MeaformerAligner {
    /// Creates a MEAformer model from a DESAlign configuration (the energy
    /// constraint and Semantic Propagation are forcibly disabled).
    pub fn new(mut cfg: DesalignConfig, dataset: &AlignmentDataset, seed: u64) -> Self {
        cfg.ablation.use_energy_constraint = false;
        cfg.ablation.use_semantic_propagation = false;
        Self { model: DesalignModel::new(cfg, dataset, seed) }
    }
}

impl Aligner for MeaformerAligner {
    fn name(&self) -> &'static str {
        "MEAformer"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        let report = self.model.fit(dataset);
        report.seconds
    }

    fn similarity(&self) -> SimilarityMatrix {
        self.model.similarity()
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.model.pseudo_pairs = pairs;
    }
}

/// DESAlign itself, wrapped in the [`Aligner`] trait so the harness can
/// drive all methods uniformly.
pub struct DesalignAligner {
    model: DesalignModel,
}

impl DesalignAligner {
    /// Creates a DESAlign model.
    pub fn new(cfg: DesalignConfig, dataset: &AlignmentDataset, seed: u64) -> Self {
        Self { model: DesalignModel::new(cfg, dataset, seed) }
    }

    /// Access to the underlying model (for diagnostics).
    pub fn model(&self) -> &DesalignModel {
        &self.model
    }
}

impl Aligner for DesalignAligner {
    fn name(&self) -> &'static str {
        "DESAlign"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        self.model.fit(dataset).seconds
    }

    fn similarity(&self) -> SimilarityMatrix {
        self.model.similarity()
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.model.pseudo_pairs = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, FeatureDims, SynthConfig};

    fn tiny_cfg() -> DesalignConfig {
        let mut cfg = DesalignConfig::fast();
        cfg.hidden_dim = 16;
        cfg.feature_dims = FeatureDims { relation: 32, attribute: 32, visual: 64 };
        cfg.epochs = 6;
        cfg.batch_size = 32;
        cfg
    }

    #[test]
    fn meaformer_disables_desalign_extras() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(9);
        let mut m = MeaformerAligner::new(tiny_cfg(), &ds, 1);
        assert!(!m.model.config().ablation.use_energy_constraint);
        assert!(!m.model.config().ablation.use_semantic_propagation);
        m.fit(&ds);
        assert!(m.evaluate(&ds).num_queries > 0);
    }

    #[test]
    fn desalign_wrapper_round_trip() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(10);
        let mut d = DesalignAligner::new(tiny_cfg(), &ds, 1);
        let secs = d.fit(&ds);
        assert!(secs > 0.0);
        assert_eq!(d.name(), "DESAlign");
        assert!(d.model().config().ablation.use_semantic_propagation);
    }
}
