//! MSNEA (Chen et al., KDD 2022): multi-modal siamese network — vision
//! features *enhance* the structural embedding (`e' = e + W v`), the
//! enhanced embeddings are trained with a translation objective and a
//! siamese contrastive objective on the seeds.

use crate::api::Aligner;
use desalign_eval::{cosine_similarity, SimilarityMatrix};
use desalign_mmkg::{AlignmentDataset, FeatureDims, ModalFeatures};
use desalign_nn::{AdamW, CosineWarmup, Linear, ParamId, ParamStore, Session};
use desalign_tensor::{rng_from_seed, uniform_matrix, Matrix, Rng64};
use desalign_autodiff::Var;
use std::rc::Rc;
use std::time::Instant;

/// The MSNEA baseline.
pub struct MsneaAligner {
    epochs: usize,
    store: ParamStore,
    ent: [ParamId; 2],
    rel: [ParamId; 2],
    proj_v: Linear,
    visual: [Matrix; 2],
    rng: Rng64,
    pseudo: Vec<(usize, usize)>,
}

impl MsneaAligner {
    /// Creates an MSNEA model.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_profile(64, 80, dataset, seed)
    }

    /// Creates an MSNEA model with an explicit dimension / epoch budget.
    pub fn with_profile(dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let mut store = ParamStore::new();
        let dims = FeatureDims::default();
        let b = 6.0f32.sqrt() / (dim as f32).sqrt();
        let ent = [
            store.add("ent.s", uniform_matrix(&mut rng, dataset.source.num_entities, dim, -b, b)),
            store.add("ent.t", uniform_matrix(&mut rng, dataset.target.num_entities, dim, -b, b)),
        ];
        let rel = [
            store.add("rel.s", uniform_matrix(&mut rng, dataset.source.num_relations.max(1), dim, -b, b)),
            store.add("rel.t", uniform_matrix(&mut rng, dataset.target.num_relations.max(1), dim, -b, b)),
        ];
        let proj_v = Linear::new(&mut store, &mut rng, "proj_v", dims.visual, dim, true);
        let f_s = ModalFeatures::build(&dataset.source, &dims);
        let f_t = ModalFeatures::build(&dataset.target, &dims);
        Self { epochs, store, ent, rel, proj_v, visual: [f_s.visual, f_t.visual], rng, pseudo: Vec::new() }
    }

    /// Vision-enhanced embedding `e + W v` for one side, on a session.
    fn enhanced(&self, sess: &mut Session<'_>, side: usize) -> Var {
        let e = sess.param(self.ent[side]);
        let v_in = sess.input(self.visual[side].clone());
        let v = self.proj_v.forward(sess, v_in);
        sess.tape.add(e, v)
    }
}

impl Aligner for MsneaAligner {
    fn name(&self) -> &'static str {
        "MSNEA"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        let t0 = Instant::now();
        let mut pool = dataset.train_pairs.clone();
        pool.extend(self.pseudo.iter().copied());
        let schedule = CosineWarmup::new(8e-3, self.epochs, 0.1);
        let mut opt = AdamW::new(1e-5);
        let sides = [&dataset.source, &dataset.target];
        for epoch in 0..self.epochs {
            let mut sess = Session::new(&self.store);
            let enh = [self.enhanced(&mut sess, 0), self.enhanced(&mut sess, 1)];
            let mut terms = Vec::new();
            for side in 0..2 {
                let kg = sides[side];
                if kg.rel_triples.is_empty() {
                    continue;
                }
                let k = 512.min(kg.rel_triples.len());
                let mut heads = Vec::with_capacity(k);
                let mut rels = Vec::with_capacity(k);
                let mut tails = Vec::with_capacity(k);
                let mut corrupt = Vec::with_capacity(k);
                for _ in 0..k {
                    let (h, r, t) = kg.rel_triples[self.rng.gen_range(0..kg.rel_triples.len())];
                    heads.push(h);
                    rels.push(r);
                    tails.push(t);
                    corrupt.push(self.rng.gen_range(0..kg.num_entities));
                }
                let rel = sess.param(self.rel[side]);
                let h = sess.tape.gather_rows(enh[side], Rc::new(heads));
                let r = sess.tape.gather_rows(rel, Rc::new(rels));
                let t = sess.tape.gather_rows(enh[side], Rc::new(tails));
                let t_neg = sess.tape.gather_rows(enh[side], Rc::new(corrupt));
                let pred = sess.tape.add(h, r);
                let dp = sess.tape.sub(pred, t);
                let dp = sess.tape.square(dp);
                let pos = sess.tape.row_sum(dp);
                let dn = sess.tape.sub(pred, t_neg);
                let dn = sess.tape.square(dn);
                let neg = sess.tape.row_sum(dn);
                let gap = sess.tape.sub(pos, neg);
                let shifted = sess.tape.add_const(gap, 1.0);
                let hinge = sess.tape.relu(shifted);
                terms.push(sess.tape.mean_all(hinge));
            }
            if !pool.is_empty() {
                // Siamese contrastive objective on the enhanced embeddings.
                let src: Rc<Vec<usize>> = Rc::new(pool.iter().map(|&(s, _)| s).collect());
                let tgt: Rc<Vec<usize>> = Rc::new(pool.iter().map(|&(_, t)| t).collect());
                let zs = sess.tape.gather_rows(enh[0], src);
                let zt = sess.tape.gather_rows(enh[1], tgt);
                terms.push(sess.tape.info_nce_bidirectional(zs, zt, 0.1));
            }
            if terms.is_empty() {
                break;
            }
            let mut loss = terms[0];
            for &t in &terms[1..] {
                loss = sess.tape.add(loss, t);
            }
            let mut grads = sess.backward(loss);
            opt.step(&mut self.store, &mut grads, schedule.lr(epoch));
        }
        t0.elapsed().as_secs_f64()
    }

    fn similarity(&self) -> SimilarityMatrix {
        let mut sess = Session::new(&self.store);
        let s = self.enhanced(&mut sess, 0);
        let t = self.enhanced(&mut sess, 1);
        cosine_similarity(sess.tape.value(s), sess.tape.value(t))
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn msnea_trains_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::Dbp15kFrEn).scaled(60).generate(35);
        let mut m = MsneaAligner::with_profile(16, 12, &ds, 1);
        m.fit(&ds);
        assert!(m.evaluate(&ds).num_queries > 0);
        assert_eq!(m.name(), "MSNEA");
    }
}
