//! TransE (Bordes et al., NeurIPS 2013) adapted for entity alignment:
//! translation embeddings `h + r ≈ t` trained per KG with margin ranking,
//! plus a seed-alignment term pulling aligned entity embeddings together
//! (the classic MTransE-style adaptation used as the weakest baseline in
//! Table IV).

use crate::api::Aligner;
use desalign_eval::{cosine_similarity, SimilarityMatrix};
use desalign_mmkg::AlignmentDataset;
use desalign_nn::{AdamW, CosineWarmup, ParamId, ParamStore, Session};
use desalign_tensor::{rng_from_seed, uniform_matrix, Rng64};
use std::rc::Rc;
use std::time::Instant;

/// TransE hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TransEConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Margin of the ranking loss.
    pub margin: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Triples sampled per epoch per KG.
    pub triples_per_epoch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Weight of the seed-alignment pull term.
    pub align_weight: f32,
}

impl Default for TransEConfig {
    fn default() -> Self {
        Self { dim: 64, margin: 1.0, epochs: 80, triples_per_epoch: 1024, lr: 1e-2, align_weight: 2.0 }
    }
}

/// The TransE baseline.
pub struct TransEAligner {
    cfg: TransEConfig,
    store: ParamStore,
    ent: [ParamId; 2],
    rel: [ParamId; 2],
    rng: Rng64,
    pseudo: Vec<(usize, usize)>,
}

impl TransEAligner {
    /// Creates a TransE model.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_config(TransEConfig::default(), dataset, seed)
    }

    /// Creates a TransE model with explicit hyperparameters.
    pub fn with_config(cfg: TransEConfig, dataset: &AlignmentDataset, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let mut store = ParamStore::new();
        let b = 6.0f32.sqrt() / (cfg.dim as f32).sqrt();
        let ent = [
            store.add("ent.s", uniform_matrix(&mut rng, dataset.source.num_entities, cfg.dim, -b, b)),
            store.add("ent.t", uniform_matrix(&mut rng, dataset.target.num_entities, cfg.dim, -b, b)),
        ];
        let rel = [
            store.add("rel.s", uniform_matrix(&mut rng, dataset.source.num_relations.max(1), cfg.dim, -b, b)),
            store.add("rel.t", uniform_matrix(&mut rng, dataset.target.num_relations.max(1), cfg.dim, -b, b)),
        ];
        Self { cfg, store, ent, rel, rng, pseudo: Vec::new() }
    }
}

impl Aligner for TransEAligner {
    fn name(&self) -> &'static str {
        "TransE"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        let t0 = Instant::now();
        let mut pool = dataset.train_pairs.clone();
        pool.extend(self.pseudo.iter().copied());
        let schedule = CosineWarmup::new(self.cfg.lr, self.cfg.epochs, 0.1);
        let mut opt = AdamW::new(1e-5);
        let sides = [&dataset.source, &dataset.target];
        #[allow(clippy::needless_range_loop)] // `side` indexes several parallel arrays
        for epoch in 0..self.cfg.epochs {
            let mut sess = Session::new(&self.store);
            let mut loss_terms = Vec::new();
            for side in 0..2 {
                let kg = sides[side];
                if kg.rel_triples.is_empty() {
                    continue;
                }
                let k = self.cfg.triples_per_epoch.min(kg.rel_triples.len());
                let mut heads = Vec::with_capacity(k);
                let mut rels = Vec::with_capacity(k);
                let mut tails = Vec::with_capacity(k);
                let mut corrupt = Vec::with_capacity(k);
                for _ in 0..k {
                    let (h, r, t) = kg.rel_triples[self.rng.gen_range(0..kg.rel_triples.len())];
                    heads.push(h);
                    rels.push(r);
                    tails.push(t);
                    corrupt.push(self.rng.gen_range(0..kg.num_entities));
                }
                let ent = sess.param(self.ent[side]);
                let rel = sess.param(self.rel[side]);
                let h = sess.tape.gather_rows(ent, Rc::new(heads));
                let r = sess.tape.gather_rows(rel, Rc::new(rels));
                let t = sess.tape.gather_rows(ent, Rc::new(tails));
                let t_neg = sess.tape.gather_rows(ent, Rc::new(corrupt));
                // Margin ranking on squared L2 translation error.
                let pred = sess.tape.add(h, r);
                let pos_diff = sess.tape.sub(pred, t);
                let pos_sq = sess.tape.square(pos_diff);
                let pos = sess.tape.row_sum(pos_sq);
                let neg_diff = sess.tape.sub(pred, t_neg);
                let neg_sq = sess.tape.square(neg_diff);
                let neg = sess.tape.row_sum(neg_sq);
                let gap = sess.tape.sub(pos, neg);
                let shifted = sess.tape.add_const(gap, self.cfg.margin);
                let hinge = sess.tape.relu(shifted);
                loss_terms.push(sess.tape.mean_all(hinge));
            }
            // Seed-alignment pull: ‖e_s − e_t‖² → 0.
            if !pool.is_empty() {
                let src: Vec<usize> = pool.iter().map(|&(s, _)| s).collect();
                let tgt: Vec<usize> = pool.iter().map(|&(_, t)| t).collect();
                let ent_s = sess.param(self.ent[0]);
                let ent_t = sess.param(self.ent[1]);
                let zs = sess.tape.gather_rows(ent_s, Rc::new(src));
                let zt = sess.tape.gather_rows(ent_t, Rc::new(tgt));
                let d = sess.tape.sub(zs, zt);
                let sq = sess.tape.square(d);
                let pull = sess.tape.mean_all(sq);
                loss_terms.push(sess.tape.scale(pull, self.cfg.align_weight));
            }
            if loss_terms.is_empty() {
                break;
            }
            let mut loss = loss_terms[0];
            for &t in &loss_terms[1..] {
                loss = sess.tape.add(loss, t);
            }
            let mut grads = sess.backward(loss);
            opt.step(&mut self.store, &mut grads, schedule.lr(epoch));
        }
        t0.elapsed().as_secs_f64()
    }

    fn similarity(&self) -> SimilarityMatrix {
        cosine_similarity(self.store.value(self.ent[0]), self.store.value(self.ent[1]))
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn transe_learns_seed_alignment() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(7);
        let cfg = TransEConfig { dim: 16, epochs: 30, triples_per_epoch: 256, ..Default::default() };
        let mut model = TransEAligner::with_config(cfg, &ds, 1);
        let before = model.evaluate(&ds);
        model.fit(&ds);
        let after = model.evaluate(&ds);
        assert!(after.mrr >= before.mrr, "training should not hurt: {} vs {}", after.mrr, before.mrr);
        assert_eq!(model.name(), "TransE");
    }

    #[test]
    fn seed_pairs_become_similar() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(8);
        let cfg = TransEConfig { dim: 16, epochs: 40, triples_per_epoch: 256, ..Default::default() };
        let mut model = TransEAligner::with_config(cfg, &ds, 2);
        model.fit(&ds);
        let sim = model.similarity();
        // Training pairs should score much higher than random pairs.
        let mut seed_score = 0.0f32;
        for &(s, t) in &ds.train_pairs {
            seed_score += sim.scores()[(s, t)];
        }
        seed_score /= ds.train_pairs.len() as f32;
        let mean = sim.scores().mean();
        assert!(seed_score > mean + 0.1, "seed {seed_score} vs mean {mean}");
    }
}
