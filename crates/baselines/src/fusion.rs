//! Shared machinery for the GNN-based baselines (GCN-align, EVA, MCLEA):
//! a two-layer GCN structure branch, per-modality FC branches, global
//! (entity-independent) modality weights, and a common training loop.
//!
//! The deliberate differences from the DESAlign encoder are the point of
//! the comparison: mean-pooled GCN instead of GAT, *global* softmax
//! modality weights instead of per-entity cross-modal attention, no
//! Dirichlet-energy constraint, and noise-filled missing features with no
//! Semantic Propagation at inference.

use desalign_autodiff::Var;
use desalign_eval::{cosine_similarity, SimilarityMatrix};
use desalign_graph::Csr;
use desalign_mmkg::{fill_missing_with_noise, AlignmentDataset, FeatureDims, ModalFeatures};
use desalign_nn::{AdamW, CosineWarmup, Linear, ParamId, ParamStore, Session};
use desalign_tensor::{glorot_uniform, rng_from_seed, uniform_matrix, Matrix, Rng64};
use desalign_tensor::SliceRandom;
use std::rc::Rc;
use std::time::Instant;

/// Hyperparameters shared by the simple baselines.
#[derive(Clone, Debug)]
pub(crate) struct SimpleConfig {
    pub hidden_dim: usize,
    pub feature_dims: FeatureDims,
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub weight_decay: f32,
    pub tau: f32,
    pub use_relation: bool,
    pub use_text: bool,
    pub use_visual: bool,
}

impl Default for SimpleConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 64,
            feature_dims: FeatureDims::default(),
            epochs: 60,
            batch_size: 512,
            lr: 5e-3,
            weight_decay: 1e-4,
            tau: 0.1,
            use_relation: true,
            use_text: true,
            use_visual: true,
        }
    }
}

pub(crate) struct SideInputs {
    pub adj: Rc<Csr>,
    pub relation: Matrix,
    pub attribute: Matrix,
    pub visual: Matrix,
}

/// Encoder outputs for one side.
pub(crate) struct SimpleEncoded {
    /// Per-modality embeddings, ordered [structure, relation?, text?, visual?].
    pub modal: Vec<Var>,
    /// Weighted concatenation of the modal embeddings.
    pub fused: Var,
}

/// The shared baseline model.
pub(crate) struct SimpleModel {
    pub cfg: SimpleConfig,
    pub store: ParamStore,
    x_g: [ParamId; 2],
    gcn_w1: ParamId,
    gcn_w2: ParamId,
    fc_r: Option<Linear>,
    fc_t: Option<Linear>,
    fc_v: Option<Linear>,
    modality_logits: ParamId,
    pub inputs: [SideInputs; 2],
    pub rng: Rng64,
    pub pseudo: Vec<(usize, usize)>,
}

impl SimpleModel {
    pub fn new(cfg: SimpleConfig, dataset: &AlignmentDataset, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let mut store = ParamStore::new();
        let d = cfg.hidden_dim;
        let bound = 3.0f32.sqrt() / (d as f32).sqrt();
        let x_g = [
            store.add("xg.s", uniform_matrix(&mut rng, dataset.source.num_entities, d, -bound, bound)),
            store.add("xg.t", uniform_matrix(&mut rng, dataset.target.num_entities, d, -bound, bound)),
        ];
        let gcn_w1 = store.add("gcn.w1", glorot_uniform(&mut rng, d, d));
        let gcn_w2 = store.add("gcn.w2", glorot_uniform(&mut rng, d, d));
        let fc_r = cfg.use_relation.then(|| Linear::new(&mut store, &mut rng, "fc_r", cfg.feature_dims.relation, d, true));
        let fc_t = cfg.use_text.then(|| Linear::new(&mut store, &mut rng, "fc_t", cfg.feature_dims.attribute, d, true));
        let fc_v = cfg.use_visual.then(|| Linear::new(&mut store, &mut rng, "fc_v", cfg.feature_dims.visual, d, true));
        let n_mod = 1 + fc_r.is_some() as usize + fc_t.is_some() as usize + fc_v.is_some() as usize;
        let modality_logits = store.add("modality.logits", Matrix::zeros(1, n_mod));

        let prepare = |kg: &desalign_mmkg::Mmkg, rng: &mut Rng64| {
            let f = ModalFeatures::build(kg, &cfg.feature_dims);
            SideInputs {
                adj: Rc::new(kg.graph().normalized_adjacency(true)),
                relation: fill_missing_with_noise(&f.relation, &f.has_relation, rng),
                attribute: fill_missing_with_noise(&f.attribute, &f.has_attribute, rng),
                visual: fill_missing_with_noise(&f.visual, &f.has_visual, rng),
            }
        };
        let inputs = [prepare(&dataset.source, &mut rng), prepare(&dataset.target, &mut rng)];
        Self { cfg, store, x_g, gcn_w1, gcn_w2, fc_r, fc_t, fc_v, modality_logits, inputs, rng, pseudo: Vec::new() }
    }

    /// Number of active modalities (structure + enabled branches).
    #[allow(dead_code)] // exercised by unit tests and diagnostics
    pub fn num_modalities(&self) -> usize {
        1 + self.fc_r.is_some() as usize + self.fc_t.is_some() as usize + self.fc_v.is_some() as usize
    }

    /// Encodes one side.
    pub fn forward(&self, sess: &mut Session<'_>, side: usize) -> SimpleEncoded {
        let inp = &self.inputs[side];
        // Two-layer GCN: h = Ã·relu(Ã·(X W₁))·W₂.
        let x = sess.param(self.x_g[side]);
        let w1 = sess.param(self.gcn_w1);
        let w2 = sess.param(self.gcn_w2);
        let h = sess.tape.matmul(x, w1);
        let h = sess.tape.spmm(Rc::clone(&inp.adj), h);
        let h = sess.tape.relu(h);
        let h = sess.tape.matmul(h, w2);
        let h_g = sess.tape.spmm(Rc::clone(&inp.adj), h);

        let mut modal = vec![h_g];
        if let Some(fc) = &self.fc_r {
            let x = sess.input(inp.relation.clone());
            modal.push(fc.forward(sess, x));
        }
        if let Some(fc) = &self.fc_t {
            let x = sess.input(inp.attribute.clone());
            modal.push(fc.forward(sess, x));
        }
        if let Some(fc) = &self.fc_v {
            let x = sess.input(inp.visual.clone());
            modal.push(fc.forward(sess, x));
        }

        // Global modality weights: softmax over a (1 × M) logit vector,
        // broadcast to every entity (EVA's fusion scheme).
        let logits = sess.param(self.modality_logits);
        let weights = sess.tape.softmax_rows(logits);
        let n = sess.tape.value(modal[0]).rows();
        let ones = sess.input(Matrix::full(n, 1, 1.0));
        let weighted: Vec<Var> = modal
            .iter()
            .enumerate()
            .map(|(m, &h)| {
                let w_m = sess.tape.slice_cols(weights, m, m + 1); // 1×1
                let col = sess.tape.matmul(ones, w_m); // n×1 of w_m
                sess.tape.mul_broadcast_col(h, col)
            })
            .collect();
        let fused = sess.tape.concat_cols(&weighted);
        SimpleEncoded { modal, fused }
    }

    /// Shared training loop; `loss_fn` builds the per-batch loss from both
    /// sides' encodings. Returns wall-clock seconds.
    pub fn fit_with(
        &mut self,
        dataset: &AlignmentDataset,
        mut loss_fn: impl FnMut(&mut Session<'_>, &SimpleEncoded, &SimpleEncoded, &[(usize, usize)], f32) -> Var,
    ) -> f64 {
        let t0 = Instant::now();
        let mut pool = dataset.train_pairs.clone();
        pool.extend(self.pseudo.iter().copied());
        if pool.is_empty() {
            return t0.elapsed().as_secs_f64();
        }
        let schedule = CosineWarmup::new(self.cfg.lr, self.cfg.epochs, 0.15);
        let mut opt = AdamW::new(self.cfg.weight_decay);
        let tau = self.cfg.tau;
        for epoch in 0..self.cfg.epochs {
            let batch: Vec<(usize, usize)> = if pool.len() <= self.cfg.batch_size {
                pool.clone()
            } else {
                let mut idx: Vec<usize> = (0..pool.len()).collect();
                idx.shuffle(&mut self.rng);
                idx[..self.cfg.batch_size].iter().map(|&i| pool[i]).collect()
            };
            let mut sess = Session::new(&self.store);
            let enc_s = self.forward(&mut sess, 0);
            let enc_t = self.forward(&mut sess, 1);
            let loss = loss_fn(&mut sess, &enc_s, &enc_t, &batch, tau);
            let mut grads = sess.backward(loss);
            opt.step(&mut self.store, &mut grads, schedule.lr(epoch));
        }
        t0.elapsed().as_secs_f64()
    }

    /// Cosine similarity between the fused embeddings (no propagation).
    pub fn similarity(&self) -> SimilarityMatrix {
        let mut sess = Session::new(&self.store);
        let enc_s = self.forward(&mut sess, 0);
        let enc_t = self.forward(&mut sess, 1);
        cosine_similarity(sess.tape.value(enc_s.fused), sess.tape.value(enc_t.fused))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};
    use std::rc::Rc;

    fn tiny() -> (AlignmentDataset, SimpleConfig) {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(1);
        let cfg = SimpleConfig { hidden_dim: 16, epochs: 5, batch_size: 32, ..Default::default() };
        (ds, cfg)
    }

    #[test]
    fn forward_shapes() {
        let (ds, cfg) = tiny();
        let model = SimpleModel::new(cfg, &ds, 1);
        let mut sess = Session::new(&model.store);
        let enc = model.forward(&mut sess, 0);
        assert_eq!(enc.modal.len(), 4);
        assert_eq!(sess.tape.value(enc.fused).shape(), (ds.source.num_entities, 4 * 16));
    }

    #[test]
    fn disabled_modalities_shrink_fusion() {
        let (ds, mut cfg) = tiny();
        cfg.use_visual = false;
        cfg.use_relation = false;
        let model = SimpleModel::new(cfg, &ds, 2);
        assert_eq!(model.num_modalities(), 2);
        let mut sess = Session::new(&model.store);
        let enc = model.forward(&mut sess, 0);
        assert_eq!(sess.tape.value(enc.fused).cols(), 2 * 16);
    }

    #[test]
    fn training_reduces_contrastive_loss() {
        let (ds, cfg) = tiny();
        let mut model = SimpleModel::new(cfg, &ds, 3);
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        model.fit_with(&ds, |sess, enc_s, enc_t, batch, tau| {
            let src: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(s, _)| s).collect());
            let tgt: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(_, t)| t).collect());
            let z1 = sess.tape.gather_rows(enc_s.fused, src);
            let z2 = sess.tape.gather_rows(enc_t.fused, tgt);
            let loss = sess.tape.info_nce_bidirectional(z1, z2, tau);
            let v = sess.tape.value(loss)[(0, 0)];
            if first.is_nan() {
                first = v;
            }
            last = v;
            loss
        });
        assert!(last < first, "loss should fall: {first} → {last}");
    }
}
