//! ACK (Li et al., WWW 2023): attribute-consistent knowledge graph
//! representation — entities are unified over the attribute vocabulary
//! *common to both graphs* before encoding, trading semantic richness for
//! consistency (the paper notes it "may lose valuable semantic
//! information", which the R_tex sweeps make visible).

use crate::api::Aligner;
use crate::fusion::{SimpleConfig, SimpleModel};
use desalign_eval::SimilarityMatrix;
use desalign_mmkg::AlignmentDataset;
use std::rc::Rc;

/// The ACK baseline.
pub struct AckAligner {
    model: SimpleModel,
}

impl AckAligner {
    /// Creates an ACK model.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_profile(64, 60, dataset, seed)
    }

    /// Creates an ACK model with an explicit dimension / epoch budget.
    pub fn with_profile(hidden_dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        let cfg = SimpleConfig { hidden_dim, epochs, ..Default::default() };
        let mut model = SimpleModel::new(cfg, dataset, seed);
        // Attribute consistency: zero every BoW column that is not active
        // (non-zero somewhere) on *both* sides — the common-attribute mask.
        let d_a = model.inputs[0].attribute.cols();
        let active = |m: &desalign_tensor::Matrix, j: usize| (0..m.rows()).any(|i| m[(i, j)] != 0.0);
        let common: Vec<bool> = (0..d_a)
            .map(|j| active(&model.inputs[0].attribute, j) && active(&model.inputs[1].attribute, j))
            .collect();
        for side in 0..2 {
            let attr = &mut model.inputs[side].attribute;
            for i in 0..attr.rows() {
                for (j, v) in attr.row_mut(i).iter_mut().enumerate() {
                    if !common[j] {
                        *v = 0.0;
                    }
                }
            }
            *attr = attr.l2_normalize_rows(1e-9);
        }
        Self { model }
    }
}

impl Aligner for AckAligner {
    fn name(&self) -> &'static str {
        "ACK"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        self.model.fit_with(dataset, |sess, enc_s, enc_t, batch, tau| {
            let src: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(s, _)| s).collect());
            let tgt: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(_, t)| t).collect());
            let z1 = sess.tape.gather_rows(enc_s.fused, Rc::clone(&src));
            let z2 = sess.tape.gather_rows(enc_t.fused, Rc::clone(&tgt));
            let mut loss = sess.tape.info_nce_bidirectional(z1, z2, tau);
            // Attribute-channel consistency objective on the masked BoW.
            for (hs, ht) in enc_s.modal.iter().zip(&enc_t.modal) {
                let z1 = sess.tape.gather_rows(*hs, Rc::clone(&src));
                let z2 = sess.tape.gather_rows(*ht, Rc::clone(&tgt));
                let lm = sess.tape.info_nce_bidirectional(z1, z2, tau);
                let scaled = sess.tape.scale(lm, 0.5);
                loss = sess.tape.add(loss, scaled);
            }
            loss
        })
    }

    fn similarity(&self) -> SimilarityMatrix {
        self.model.similarity()
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.model.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn ack_trains_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(40);
        let mut m = AckAligner::with_profile(16, 8, &ds, 1);
        m.fit(&ds);
        assert!(m.evaluate(&ds).num_queries > 0);
        assert_eq!(m.name(), "ACK");
    }

    #[test]
    fn masked_attributes_share_support() {
        let ds = SynthConfig::preset(DatasetSpec::FbYg15k).scaled(80).generate(41);
        let m = AckAligner::with_profile(8, 1, &ds, 2);
        // Every active column on the source must also be active on target.
        let (a_s, a_t) = (&m.model.inputs[0].attribute, &m.model.inputs[1].attribute);
        for j in 0..a_s.cols() {
            let s_active = (0..a_s.rows()).any(|i| a_s[(i, j)] != 0.0);
            let t_active = (0..a_t.rows()).any(|i| a_t[(i, j)] != 0.0);
            assert!(!(s_active ^ t_active), "column {j} active on one side only");
        }
    }
}
