//! MuGCN (Cao et al., ACL 2019): multi-channel graph convolution —
//! structure-only alignment aggregating over complementary propagation
//! channels. Reproduced with two channels: the 1-hop normalized adjacency
//! `Ã` and the 2-hop operator `Ã²` (self-attention channel ≈ smoothing at
//! a different radius), whose outputs are concatenated.

use crate::api::Aligner;
use desalign_eval::{cosine_similarity, SimilarityMatrix};
use desalign_graph::Csr;
use desalign_mmkg::AlignmentDataset;
use desalign_nn::{AdamW, CosineWarmup, ParamId, ParamStore, Session};
use desalign_tensor::{glorot_uniform, rng_from_seed, uniform_matrix, Rng64};
use desalign_tensor::SliceRandom;
use std::rc::Rc;
use std::time::Instant;

/// The MuGCN baseline (structure-only, multi-channel).
pub struct MugcnAligner {
    epochs: usize,
    store: ParamStore,
    x: [ParamId; 2],
    w1: ParamId,
    w2: ParamId,
    hop1: [Rc<Csr>; 2],
    hop2: [Rc<Csr>; 2],
    rng: Rng64,
    pseudo: Vec<(usize, usize)>,
}

impl MugcnAligner {
    /// Creates a MuGCN model.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_profile(64, 80, dataset, seed)
    }

    /// Creates a MuGCN model with an explicit dimension / epoch budget.
    pub fn with_profile(dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let mut store = ParamStore::new();
        let b = 3.0f32.sqrt() / (dim as f32).sqrt();
        let x = [
            store.add("x.s", uniform_matrix(&mut rng, dataset.source.num_entities, dim, -b, b)),
            store.add("x.t", uniform_matrix(&mut rng, dataset.target.num_entities, dim, -b, b)),
        ];
        let w1 = store.add("w1", glorot_uniform(&mut rng, dim, dim));
        let w2 = store.add("w2", glorot_uniform(&mut rng, dim, dim));
        let prep = |kg: &desalign_mmkg::Mmkg| {
            let a = kg.graph().normalized_adjacency(true);
            let a2 = a.matmul_sparse(&a);
            (Rc::new(a), Rc::new(a2))
        };
        let (a1_s, a2_s) = prep(&dataset.source);
        let (a1_t, a2_t) = prep(&dataset.target);
        Self { epochs, store, x, w1, w2, hop1: [a1_s, a1_t], hop2: [a2_s, a2_t], rng, pseudo: Vec::new() }
    }

    fn encode(&self, sess: &mut Session<'_>, side: usize) -> desalign_autodiff::Var {
        let x = sess.param(self.x[side]);
        let w1 = sess.param(self.w1);
        let w2 = sess.param(self.w2);
        // Channel 1: Ã · relu(Ã (x W₁)); channel 2: Ã² (x W₂).
        let h1 = sess.tape.matmul(x, w1);
        let h1 = sess.tape.spmm(Rc::clone(&self.hop1[side]), h1);
        let h1 = sess.tape.relu(h1);
        let h1 = sess.tape.spmm(Rc::clone(&self.hop1[side]), h1);
        let h2 = sess.tape.matmul(x, w2);
        let h2 = sess.tape.spmm(Rc::clone(&self.hop2[side]), h2);
        let n1 = sess.tape.l2_normalize_rows(h1, 1e-6);
        let n2 = sess.tape.l2_normalize_rows(h2, 1e-6);
        sess.tape.concat_cols(&[n1, n2])
    }
}

impl Aligner for MugcnAligner {
    fn name(&self) -> &'static str {
        "MUGCN"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        let t0 = Instant::now();
        let mut pool = dataset.train_pairs.clone();
        pool.extend(self.pseudo.iter().copied());
        if pool.is_empty() {
            return t0.elapsed().as_secs_f64();
        }
        let schedule = CosineWarmup::new(5e-3, self.epochs, 0.15);
        let mut opt = AdamW::new(1e-4);
        for epoch in 0..self.epochs {
            let batch: Vec<(usize, usize)> = if pool.len() <= 512 {
                pool.clone()
            } else {
                let mut p = pool.clone();
                p.shuffle(&mut self.rng);
                p.truncate(512);
                p
            };
            let mut sess = Session::new(&self.store);
            let hs = self.encode(&mut sess, 0);
            let ht = self.encode(&mut sess, 1);
            let src: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(s, _)| s).collect());
            let tgt: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(_, t)| t).collect());
            let zs = sess.tape.gather_rows(hs, src);
            let zt = sess.tape.gather_rows(ht, tgt);
            let loss = sess.tape.info_nce_bidirectional(zs, zt, 0.1);
            let mut grads = sess.backward(loss);
            opt.step(&mut self.store, &mut grads, schedule.lr(epoch));
        }
        t0.elapsed().as_secs_f64()
    }

    fn similarity(&self) -> SimilarityMatrix {
        let mut sess = Session::new(&self.store);
        let hs = self.encode(&mut sess, 0);
        let ht = self.encode(&mut sess, 1);
        cosine_similarity(sess.tape.value(hs), sess.tape.value(ht))
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn mugcn_trains_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::Dbp15kZhEn).scaled(60).generate(36);
        let mut m = MugcnAligner::with_profile(16, 12, &ds, 1);
        m.fit(&ds);
        assert!(m.evaluate(&ds).num_queries > 0);
        assert_eq!(m.name(), "MUGCN");
    }

    #[test]
    fn two_hop_channel_differs_from_one_hop() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(50).generate(37);
        let m = MugcnAligner::with_profile(8, 1, &ds, 2);
        assert!(m.hop2[0].nnz() >= m.hop1[0].nnz(), "Ã² should be denser than Ã");
    }
}
