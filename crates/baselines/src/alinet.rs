//! AliNet (Sun et al., AAAI 2020): alignment network with **gated
//! multi-hop neighbourhood aggregation** — a learnable per-dimension gate
//! mixes the 1-hop and 2-hop aggregations, letting the model pull in
//! distant neighbourhood evidence only where it helps.

use crate::api::Aligner;
use desalign_eval::{cosine_similarity, SimilarityMatrix};
use desalign_graph::Csr;
use desalign_mmkg::AlignmentDataset;
use desalign_nn::{AdamW, CosineWarmup, ParamId, ParamStore, Session};
use desalign_tensor::{glorot_uniform, rng_from_seed, uniform_matrix, Matrix, Rng64};
use desalign_tensor::SliceRandom;
use std::rc::Rc;
use std::time::Instant;

/// The AliNet baseline (structure-only, gated multi-hop).
pub struct AlinetAligner {
    epochs: usize,
    store: ParamStore,
    x: [ParamId; 2],
    w1: ParamId,
    w2: ParamId,
    gate: ParamId, // 1×d pre-sigmoid gate logits
    hop1: [Rc<Csr>; 2],
    hop2: [Rc<Csr>; 2],
    rng: Rng64,
    pseudo: Vec<(usize, usize)>,
}

impl AlinetAligner {
    /// Creates an AliNet model.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_profile(64, 80, dataset, seed)
    }

    /// Creates an AliNet model with an explicit dimension / epoch budget.
    pub fn with_profile(dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let mut store = ParamStore::new();
        let b = 3.0f32.sqrt() / (dim as f32).sqrt();
        let x = [
            store.add("x.s", uniform_matrix(&mut rng, dataset.source.num_entities, dim, -b, b)),
            store.add("x.t", uniform_matrix(&mut rng, dataset.target.num_entities, dim, -b, b)),
        ];
        let w1 = store.add("w1", glorot_uniform(&mut rng, dim, dim));
        let w2 = store.add("w2", glorot_uniform(&mut rng, dim, dim));
        let gate = store.add("gate", Matrix::zeros(1, dim)); // sigmoid(0) = 0.5
        let prep = |kg: &desalign_mmkg::Mmkg| {
            let a = kg.graph().normalized_adjacency(true);
            let a2 = a.matmul_sparse(&a);
            (Rc::new(a), Rc::new(a2))
        };
        let (a1_s, a2_s) = prep(&dataset.source);
        let (a1_t, a2_t) = prep(&dataset.target);
        Self { epochs, store, x, w1, w2, gate, hop1: [a1_s, a1_t], hop2: [a2_s, a2_t], rng, pseudo: Vec::new() }
    }

    fn encode(&self, sess: &mut Session<'_>, side: usize) -> desalign_autodiff::Var {
        let x = sess.param(self.x[side]);
        let w1 = sess.param(self.w1);
        let w2 = sess.param(self.w2);
        let h1 = sess.tape.matmul(x, w1);
        let h1 = sess.tape.spmm(Rc::clone(&self.hop1[side]), h1);
        let h2 = sess.tape.matmul(x, w2);
        let h2 = sess.tape.spmm(Rc::clone(&self.hop2[side]), h2);
        // Gate g ∈ (0,1)^d via sigmoid(logits) = 1 / (1 + e^{-l}).
        let logits = sess.param(self.gate);
        let neg = sess.tape.scale(logits, -1.0);
        let e = sess.tape.exp(neg);
        let denom = sess.tape.add_const(e, 1.0);
        let ones = sess.input(Matrix::full(1, sess.tape.value(denom).cols(), 1.0));
        let g = sess.tape.div(ones, denom); // 1×d
        let gated1 = sess.tape.mul_broadcast_row(h1, g);
        let g_neg = sess.tape.scale(g, -1.0);
        let one_minus = sess.tape.add_const(g_neg, 1.0);
        let gated2 = sess.tape.mul_broadcast_row(h2, one_minus);
        sess.tape.add(gated1, gated2)
    }
}

impl Aligner for AlinetAligner {
    fn name(&self) -> &'static str {
        "ALiNet"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        let t0 = Instant::now();
        let mut pool = dataset.train_pairs.clone();
        pool.extend(self.pseudo.iter().copied());
        if pool.is_empty() {
            return t0.elapsed().as_secs_f64();
        }
        let schedule = CosineWarmup::new(5e-3, self.epochs, 0.15);
        let mut opt = AdamW::new(1e-4);
        for epoch in 0..self.epochs {
            let batch: Vec<(usize, usize)> = if pool.len() <= 512 {
                pool.clone()
            } else {
                let mut p = pool.clone();
                p.shuffle(&mut self.rng);
                p.truncate(512);
                p
            };
            let mut sess = Session::new(&self.store);
            let hs = self.encode(&mut sess, 0);
            let ht = self.encode(&mut sess, 1);
            let src: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(s, _)| s).collect());
            let tgt: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(_, t)| t).collect());
            let zs = sess.tape.gather_rows(hs, src);
            let zt = sess.tape.gather_rows(ht, tgt);
            let loss = sess.tape.info_nce_bidirectional(zs, zt, 0.1);
            let mut grads = sess.backward(loss);
            opt.step(&mut self.store, &mut grads, schedule.lr(epoch));
        }
        t0.elapsed().as_secs_f64()
    }

    fn similarity(&self) -> SimilarityMatrix {
        let mut sess = Session::new(&self.store);
        let hs = self.encode(&mut sess, 0);
        let ht = self.encode(&mut sess, 1);
        cosine_similarity(sess.tape.value(hs), sess.tape.value(ht))
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn alinet_trains_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::Dbp15kJaEn).scaled(60).generate(38);
        let mut m = AlinetAligner::with_profile(16, 12, &ds, 1);
        m.fit(&ds);
        assert!(m.evaluate(&ds).num_queries > 0);
        assert_eq!(m.name(), "ALiNet");
    }

    #[test]
    fn gate_receives_gradient() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(50).generate(39);
        let mut m = AlinetAligner::with_profile(8, 2, &ds, 2);
        let before = m.store.value(m.gate).clone();
        m.fit(&ds);
        let after = m.store.value(m.gate);
        assert!(before.sub(after).max_abs() > 0.0, "gate never updated");
    }
}
