//! Baseline MMEA methods re-implemented on the DESAlign substrate.
//!
//! The paper compares against 18 baselines; this crate re-implements the
//! representative span the evaluation tables actually analyse:
//!
//! | Baseline | Family | Key difference from DESAlign |
//! |---|---|---|
//! | [`TransEAligner`] | translation embedding | structure only, margin loss |
//! | [`IpTransEAligner`] | translation + self-training | TransE with an internal bootstrap round |
//! | [`SeaAligner`] | semi-supervised translation | unlabeled smoothing + degree-bucket debiasing |
//! | [`GcnAligner`] | GCN-align | structure + attributes, mean-pooled GCN |
//! | [`MugcnAligner`] | multi-channel GCN | 1-hop + 2-hop channels, structure only |
//! | [`AlinetAligner`] | gated multi-hop GNN | learnable gate mixing 1-hop / 2-hop aggregation |
//! | [`AttrGnnAligner`] | channel ensemble | per-channel similarity matrices averaged |
//! | [`ImuseAligner`] | unsupervised mining | raw-attribute mutual-NN pseudo seeds + blend decoding |
//! | [`PoeAligner`] | product of experts | per-modality experts multiplied at decision time |
//! | [`AckAligner`] | attribute-consistent | BoW restricted to the common attribute vocabulary |
//! | [`MmeaAligner`] | multi-modal translation | TransE + cross-modal consistency projections |
//! | [`MsneaAligner`] | siamese multi-modal | vision-enhanced translation embeddings |
//! | [`HeaAligner`] | hyperbolic | Poincaré-ball embeddings, hyperbolic-distance decisions |
//! | [`EvaAligner`] | fixed multi-modal fusion | *global* learned modality weights, no cross-modal attention |
//! | [`McleaAligner`] | contrastive multi-modal | per-modality + joint InfoNCE, random-distribution fill for missing features |
//! | [`MeaformerAligner`] | transformer fusion | DESAlign's encoder *without* the MMSL energy constraint and *without* Semantic Propagation |
//!
//! All baselines fill missing modal features with noise drawn from the
//! observed feature distribution — the predefined-distribution
//! interpolation the paper identifies as the source of modality noise.
//! Every method implements the [`Aligner`] trait so the benchmark harness
//! and the [`iterative_align`] bootstrapping wrapper treat them uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ack;
mod alinet;
mod api;
mod attr_gnn;
mod eva;
mod fusion;
mod gcn_align;
mod hea;
mod hyperbolic;
mod imuse;
mod ip_transe;
mod iterative;
mod mclea;
mod meaformer;
mod mmea;
mod msnea;
mod mugcn;
mod poe;
mod sea;
mod transe;

pub use ack::AckAligner;
pub use alinet::AlinetAligner;
pub use api::Aligner;
pub use attr_gnn::AttrGnnAligner;
pub use eva::EvaAligner;
pub use gcn_align::GcnAligner;
pub use hea::HeaAligner;
pub use hyperbolic::{mobius_add, poincare_distance_matrix, poincare_distance_rows, poincare_distance_var, project_to_ball};
pub use imuse::ImuseAligner;
pub use ip_transe::IpTransEAligner;
pub use iterative::{iterative_align, IterativeOutcome};
pub use mclea::McleaAligner;
pub use meaformer::{DesalignAligner, MeaformerAligner};
pub use mmea::MmeaAligner;
pub use msnea::MsneaAligner;
pub use mugcn::MugcnAligner;
pub use poe::PoeAligner;
pub use sea::SeaAligner;
pub use transe::{TransEAligner, TransEConfig};
