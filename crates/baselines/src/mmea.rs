//! MMEA (Chen et al., KSEM 2020): multi-modal entity alignment with
//! translation-based knowledge embeddings fused with modal features.
//! Structure is trained with a TransE objective; visual and attribute
//! features are projected into the same space with a cross-modal
//! consistency term `‖e_i − W x_i‖²`; the final representation averages
//! the available views.

use crate::api::Aligner;
use desalign_eval::{cosine_similarity, SimilarityMatrix};
use desalign_mmkg::{AlignmentDataset, FeatureDims, ModalFeatures};
use desalign_nn::{AdamW, CosineWarmup, Linear, ParamId, ParamStore, Session};
use desalign_tensor::{rng_from_seed, uniform_matrix, Matrix, Rng64};
use std::rc::Rc;
use std::time::Instant;

/// The MMEA baseline.
pub struct MmeaAligner {
    dim: usize,
    epochs: usize,
    store: ParamStore,
    ent: [ParamId; 2],
    rel: [ParamId; 2],
    proj_v: Linear,
    proj_a: Linear,
    visual: [Matrix; 2],
    attrs: [Matrix; 2],
    rng: Rng64,
    pseudo: Vec<(usize, usize)>,
}

impl MmeaAligner {
    /// Creates an MMEA model.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_profile(64, 80, dataset, seed)
    }

    /// Creates an MMEA model with explicit dimension / epoch budget.
    pub fn with_profile(dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let mut store = ParamStore::new();
        let dims = FeatureDims::default();
        let b = 6.0f32.sqrt() / (dim as f32).sqrt();
        let ent = [
            store.add("ent.s", uniform_matrix(&mut rng, dataset.source.num_entities, dim, -b, b)),
            store.add("ent.t", uniform_matrix(&mut rng, dataset.target.num_entities, dim, -b, b)),
        ];
        let rel = [
            store.add("rel.s", uniform_matrix(&mut rng, dataset.source.num_relations.max(1), dim, -b, b)),
            store.add("rel.t", uniform_matrix(&mut rng, dataset.target.num_relations.max(1), dim, -b, b)),
        ];
        let proj_v = Linear::new(&mut store, &mut rng, "proj_v", dims.visual, dim, true);
        let proj_a = Linear::new(&mut store, &mut rng, "proj_a", dims.attribute, dim, true);
        let feats = |kg: &desalign_mmkg::Mmkg| ModalFeatures::build(kg, &dims);
        let f_s = feats(&dataset.source);
        let f_t = feats(&dataset.target);
        Self {
            dim,
            epochs,
            store,
            ent,
            rel,
            proj_v,
            proj_a,
            visual: [f_s.visual.clone(), f_t.visual.clone()],
            attrs: [f_s.attribute, f_t.attribute],
            rng,
            pseudo: Vec::new(),
        }
    }

    fn fused_embeddings(&self) -> (Matrix, Matrix) {
        let mut out = Vec::with_capacity(2);
        for side in 0..2 {
            let mut sess = Session::new(&self.store);
            let e = sess.param(self.ent[side]);
            let v_in = sess.input(self.visual[side].clone());
            let a_in = sess.input(self.attrs[side].clone());
            let v = self.proj_v.forward(&mut sess, v_in);
            let a = self.proj_a.forward(&mut sess, a_in);
            let en = sess.tape.l2_normalize_rows(e, 1e-6);
            let vn = sess.tape.l2_normalize_rows(v, 1e-6);
            let an = sess.tape.l2_normalize_rows(a, 1e-6);
            let cat = sess.tape.concat_cols(&[en, vn, an]);
            out.push(sess.tape.value(cat).clone());
        }
        let t = out.pop().expect("two sides");
        let s = out.pop().expect("two sides");
        (s, t)
    }
}

impl Aligner for MmeaAligner {
    fn name(&self) -> &'static str {
        "MMEA"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        let t0 = Instant::now();
        let mut pool = dataset.train_pairs.clone();
        pool.extend(self.pseudo.iter().copied());
        let schedule = CosineWarmup::new(8e-3, self.epochs, 0.1);
        let mut opt = AdamW::new(1e-5);
        let sides = [&dataset.source, &dataset.target];
        #[allow(clippy::needless_range_loop)] // `side` indexes several parallel arrays
        for epoch in 0..self.epochs {
            let mut sess = Session::new(&self.store);
            let mut terms = Vec::new();
            for side in 0..2 {
                let kg = sides[side];
                if !kg.rel_triples.is_empty() {
                    let k = 512.min(kg.rel_triples.len());
                    let mut heads = Vec::with_capacity(k);
                    let mut rels = Vec::with_capacity(k);
                    let mut tails = Vec::with_capacity(k);
                    let mut corrupt = Vec::with_capacity(k);
                    for _ in 0..k {
                        let (h, r, t) = kg.rel_triples[self.rng.gen_range(0..kg.rel_triples.len())];
                        heads.push(h);
                        rels.push(r);
                        tails.push(t);
                        corrupt.push(self.rng.gen_range(0..kg.num_entities));
                    }
                    let ent = sess.param(self.ent[side]);
                    let rel = sess.param(self.rel[side]);
                    let h = sess.tape.gather_rows(ent, Rc::new(heads));
                    let r = sess.tape.gather_rows(rel, Rc::new(rels));
                    let t = sess.tape.gather_rows(ent, Rc::new(tails));
                    let t_neg = sess.tape.gather_rows(ent, Rc::new(corrupt));
                    let pred = sess.tape.add(h, r);
                    let dp = sess.tape.sub(pred, t);
                    let dp = sess.tape.square(dp);
                    let pos = sess.tape.row_sum(dp);
                    let dn = sess.tape.sub(pred, t_neg);
                    let dn = sess.tape.square(dn);
                    let neg = sess.tape.row_sum(dn);
                    let gap = sess.tape.sub(pos, neg);
                    let shifted = sess.tape.add_const(gap, 1.0);
                    let hinge = sess.tape.relu(shifted);
                    terms.push(sess.tape.mean_all(hinge));
                }
                // Cross-modal consistency: projected modal features should
                // land near the structural embedding.
                let ent = sess.param(self.ent[side]);
                let v_in = sess.input(self.visual[side].clone());
                let a_in = sess.input(self.attrs[side].clone());
                let v = self.proj_v.forward(&mut sess, v_in);
                let a = self.proj_a.forward(&mut sess, a_in);
                for m in [v, a] {
                    let diff = sess.tape.sub(ent, m);
                    let sq = sess.tape.square(diff);
                    let cons = sess.tape.mean_all(sq);
                    terms.push(sess.tape.scale(cons, 0.3));
                }
            }
            if !pool.is_empty() {
                let src: Vec<usize> = pool.iter().map(|&(s, _)| s).collect();
                let tgt: Vec<usize> = pool.iter().map(|&(_, t)| t).collect();
                let e_s = sess.param(self.ent[0]);
                let e_t = sess.param(self.ent[1]);
                let zs = sess.tape.gather_rows(e_s, Rc::new(src));
                let zt = sess.tape.gather_rows(e_t, Rc::new(tgt));
                let d = sess.tape.sub(zs, zt);
                let sq = sess.tape.square(d);
                let pull = sess.tape.mean_all(sq);
                terms.push(sess.tape.scale(pull, 2.0));
            }
            if terms.is_empty() {
                break;
            }
            let mut loss = terms[0];
            for &t in &terms[1..] {
                loss = sess.tape.add(loss, t);
            }
            let mut grads = sess.backward(loss);
            opt.step(&mut self.store, &mut grads, schedule.lr(epoch));
        }
        let _ = self.dim;
        t0.elapsed().as_secs_f64()
    }

    fn similarity(&self) -> SimilarityMatrix {
        let (s, t) = self.fused_embeddings();
        cosine_similarity(&s, &t)
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn mmea_trains_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::FbYg15k).scaled(60).generate(33);
        let mut m = MmeaAligner::with_profile(16, 12, &ds, 1);
        m.fit(&ds);
        let metrics = m.evaluate(&ds);
        assert!(metrics.num_queries > 0);
        assert_eq!(m.name(), "MMEA");
    }

    #[test]
    fn fused_embedding_concatenates_three_views() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(50).generate(34);
        let m = MmeaAligner::with_profile(8, 1, &ds, 2);
        let (s, t) = m.fused_embeddings();
        assert_eq!(s.cols(), 24);
        assert_eq!(t.cols(), 24);
        assert_eq!(s.rows(), ds.source.num_entities);
    }
}
