//! EVA (Liu et al., AAAI 2021): multi-modal fusion with *global* learned
//! modality weights and a single contrastive objective on the fused
//! embedding. No per-modality losses, no cross-modal attention, no
//! missing-feature handling beyond the noise fill.

use crate::api::Aligner;
use crate::fusion::{SimpleConfig, SimpleModel};
use desalign_eval::SimilarityMatrix;
use desalign_mmkg::AlignmentDataset;
use std::rc::Rc;

/// The EVA baseline.
pub struct EvaAligner {
    model: SimpleModel,
}

impl EvaAligner {
    /// Creates an EVA model with the default laptop-scale profile.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_config(SimpleConfig::default(), dataset, seed)
    }

    pub(crate) fn with_config(cfg: SimpleConfig, dataset: &AlignmentDataset, seed: u64) -> Self {
        Self { model: SimpleModel::new(cfg, dataset, seed) }
    }

    /// Overrides the number of training epochs.
    pub fn with_epochs(dataset: &AlignmentDataset, seed: u64, epochs: usize) -> Self {
        let cfg = SimpleConfig { epochs, ..Default::default() };
        Self::with_config(cfg, dataset, seed)
    }
    /// Creates a model with an explicit hidden dimension and epoch budget
    /// (the benchmark harness profile).
    pub fn with_profile(hidden_dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        let cfg = SimpleConfig { hidden_dim, epochs, ..Default::default() };
        Self::with_config(cfg, dataset, seed)
    }

}

impl Aligner for EvaAligner {
    fn name(&self) -> &'static str {
        "EVA"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        self.model.fit_with(dataset, |sess, enc_s, enc_t, batch, tau| {
            let src: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(s, _)| s).collect());
            let tgt: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(_, t)| t).collect());
            let z1 = sess.tape.gather_rows(enc_s.fused, src);
            let z2 = sess.tape.gather_rows(enc_t.fused, tgt);
            sess.tape.info_nce_bidirectional(z1, z2, tau)
        })
    }

    fn similarity(&self) -> SimilarityMatrix {
        self.model.similarity()
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.model.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn eva_trains_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(2);
        let cfg = SimpleConfig { hidden_dim: 16, epochs: 8, batch_size: 32, ..Default::default() };
        let mut eva = EvaAligner::with_config(cfg, &ds, 1);
        let secs = eva.fit(&ds);
        assert!(secs > 0.0);
        let m = eva.evaluate(&ds);
        assert!(m.num_queries > 0);
        assert_eq!(eva.name(), "EVA");
    }

    #[test]
    fn pseudo_pairs_extend_training_pool() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(3);
        let cfg = SimpleConfig { hidden_dim: 16, epochs: 2, batch_size: 32, ..Default::default() };
        let mut eva = EvaAligner::with_config(cfg, &ds, 1);
        eva.set_pseudo_pairs(vec![ds.test_pairs[0]]);
        let secs = eva.fit(&ds);
        assert!(secs > 0.0);
    }
}
