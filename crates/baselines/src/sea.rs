//! SEA (Pei et al., WWW 2019): semi-supervised entity alignment with
//! awareness of degree difference. Reproduced as translation embeddings
//! plus (a) a neighbour-smoothing term over *unlabeled* entities — the
//! semi-supervised signal — and (b) degree-bucket centering that removes
//! the embedding-norm bias high-degree entities accumulate (the paper's
//! degree-difference adversary, in closed form).

use crate::api::Aligner;
use desalign_eval::{cosine_similarity, SimilarityMatrix};
use desalign_graph::Csr;
use desalign_mmkg::AlignmentDataset;
use desalign_nn::{AdamW, CosineWarmup, ParamId, ParamStore, Session};
use desalign_tensor::{rng_from_seed, uniform_matrix, Matrix, Rng64};
use std::rc::Rc;
use std::time::Instant;

/// The SEA baseline.
pub struct SeaAligner {
    dim: usize,
    epochs: usize,
    store: ParamStore,
    ent: [ParamId; 2],
    rel: [ParamId; 2],
    adj: [Rc<Csr>; 2],
    degrees: [Vec<usize>; 2],
    rng: Rng64,
    pseudo: Vec<(usize, usize)>,
}

impl SeaAligner {
    /// Creates a SEA model.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_profile(64, 80, dataset, seed)
    }

    /// Creates a SEA model with an explicit dimension / epoch budget.
    pub fn with_profile(dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let mut store = ParamStore::new();
        let b = 6.0f32.sqrt() / (dim as f32).sqrt();
        let ent = [
            store.add("ent.s", uniform_matrix(&mut rng, dataset.source.num_entities, dim, -b, b)),
            store.add("ent.t", uniform_matrix(&mut rng, dataset.target.num_entities, dim, -b, b)),
        ];
        let rel = [
            store.add("rel.s", uniform_matrix(&mut rng, dataset.source.num_relations.max(1), dim, -b, b)),
            store.add("rel.t", uniform_matrix(&mut rng, dataset.target.num_relations.max(1), dim, -b, b)),
        ];
        let g_s = dataset.source.graph();
        let g_t = dataset.target.graph();
        let adj = [Rc::new(g_s.normalized_adjacency(true)), Rc::new(g_t.normalized_adjacency(true))];
        let degrees = [g_s.degrees(), g_t.degrees()];
        Self { dim, epochs, store, ent, rel, adj, degrees, rng, pseudo: Vec::new() }
    }

    /// Degree-bucket centering: subtracts each degree bucket's mean vector,
    /// so degree alone no longer separates entities across graphs.
    fn degree_debias(&self, side: usize, emb: &Matrix) -> Matrix {
        let deg = &self.degrees[side];
        let bucket = |d: usize| -> usize {
            match d {
                0..=2 => 0,
                3..=6 => 1,
                7..=14 => 2,
                _ => 3,
            }
        };
        let mut means = vec![vec![0.0f32; self.dim]; 4];
        let mut counts = [0usize; 4];
        for (i, &d) in deg.iter().enumerate() {
            let bkt = bucket(d);
            counts[bkt] += 1;
            for (m, &v) in means[bkt].iter_mut().zip(emb.row(i)) {
                *m += v;
            }
        }
        for (mean, &c) in means.iter_mut().zip(&counts) {
            if c > 0 {
                for m in mean.iter_mut() {
                    *m /= c as f32;
                }
            }
        }
        let mut out = emb.clone();
        for (i, &d) in deg.iter().enumerate() {
            let bkt = bucket(d);
            for (v, &m) in out.row_mut(i).iter_mut().zip(&means[bkt]) {
                *v -= m;
            }
        }
        out
    }
}

impl Aligner for SeaAligner {
    fn name(&self) -> &'static str {
        "SEA"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        let t0 = Instant::now();
        let mut pool = dataset.train_pairs.clone();
        pool.extend(self.pseudo.iter().copied());
        let schedule = CosineWarmup::new(1e-2, self.epochs, 0.1);
        let mut opt = AdamW::new(1e-5);
        let sides = [&dataset.source, &dataset.target];
        #[allow(clippy::needless_range_loop)] // `side` indexes several parallel arrays
        for epoch in 0..self.epochs {
            let mut sess = Session::new(&self.store);
            let mut terms = Vec::new();
            for side in 0..2 {
                let kg = sides[side];
                if kg.rel_triples.is_empty() {
                    continue;
                }
                let k = 512.min(kg.rel_triples.len());
                let mut heads = Vec::with_capacity(k);
                let mut rels = Vec::with_capacity(k);
                let mut tails = Vec::with_capacity(k);
                let mut corrupt = Vec::with_capacity(k);
                for _ in 0..k {
                    let (h, r, t) = kg.rel_triples[self.rng.gen_range(0..kg.rel_triples.len())];
                    heads.push(h);
                    rels.push(r);
                    tails.push(t);
                    corrupt.push(self.rng.gen_range(0..kg.num_entities));
                }
                let ent = sess.param(self.ent[side]);
                let rel = sess.param(self.rel[side]);
                let h = sess.tape.gather_rows(ent, Rc::new(heads));
                let r = sess.tape.gather_rows(rel, Rc::new(rels));
                let t = sess.tape.gather_rows(ent, Rc::new(tails));
                let t_neg = sess.tape.gather_rows(ent, Rc::new(corrupt));
                let pred = sess.tape.add(h, r);
                let dpos = sess.tape.sub(pred, t);
                let dpos = sess.tape.square(dpos);
                let pos = sess.tape.row_sum(dpos);
                let dneg = sess.tape.sub(pred, t_neg);
                let dneg = sess.tape.square(dneg);
                let neg = sess.tape.row_sum(dneg);
                let gap = sess.tape.sub(pos, neg);
                let shifted = sess.tape.add_const(gap, 1.0);
                let hinge = sess.tape.relu(shifted);
                terms.push(sess.tape.mean_all(hinge));

                // Semi-supervised smoothing over all (mostly unlabeled)
                // entities: ‖E − ÃE‖² — SEA's use of the unlabeled mass.
                let smoothed = sess.tape.spmm(Rc::clone(&self.adj[side]), ent);
                let diff = sess.tape.sub(ent, smoothed);
                let sq = sess.tape.square(diff);
                let smooth = sess.tape.mean_all(sq);
                terms.push(sess.tape.scale(smooth, 0.5));
            }
            if !pool.is_empty() {
                let src: Vec<usize> = pool.iter().map(|&(s, _)| s).collect();
                let tgt: Vec<usize> = pool.iter().map(|&(_, t)| t).collect();
                let e_s = sess.param(self.ent[0]);
                let e_t = sess.param(self.ent[1]);
                let zs = sess.tape.gather_rows(e_s, Rc::new(src));
                let zt = sess.tape.gather_rows(e_t, Rc::new(tgt));
                let d = sess.tape.sub(zs, zt);
                let sq = sess.tape.square(d);
                let pull = sess.tape.mean_all(sq);
                terms.push(sess.tape.scale(pull, 2.0));
            }
            if terms.is_empty() {
                break;
            }
            let mut loss = terms[0];
            for &t in &terms[1..] {
                loss = sess.tape.add(loss, t);
            }
            let mut grads = sess.backward(loss);
            opt.step(&mut self.store, &mut grads, schedule.lr(epoch));
        }
        t0.elapsed().as_secs_f64()
    }

    fn similarity(&self) -> SimilarityMatrix {
        let e_s = self.degree_debias(0, self.store.value(self.ent[0]));
        let e_t = self.degree_debias(1, self.store.value(self.ent[1]));
        cosine_similarity(&e_s, &e_t)
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn sea_trains_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(31);
        let mut m = SeaAligner::with_profile(16, 15, &ds, 1);
        m.fit(&ds);
        let metrics = m.evaluate(&ds);
        assert!(metrics.num_queries > 0);
        assert_eq!(m.name(), "SEA");
    }

    #[test]
    fn degree_debias_centers_buckets() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(32);
        let m = SeaAligner::with_profile(8, 1, &ds, 2);
        let emb = m.store.value(m.ent[0]).clone();
        let out = m.degree_debias(0, &emb);
        assert_eq!(out.shape(), emb.shape());
        // Bucket means are ~zero after centering.
        let deg = &m.degrees[0];
        let idx: Vec<usize> = (0..deg.len()).filter(|&i| deg[i] <= 2).collect();
        if idx.len() > 1 {
            let mut mean = vec![0.0f32; 8];
            for &i in &idx {
                for (a, &b) in mean.iter_mut().zip(out.row(i)) {
                    *a += b;
                }
            }
            for a in &mean {
                assert!((a / idx.len() as f32).abs() < 1e-4);
            }
        }
    }
}
