//! The common baseline interface.

use desalign_eval::{evaluate_ranking, AlignmentMetrics, SimilarityMatrix};
use desalign_mmkg::AlignmentDataset;

/// A trainable entity-alignment method.
///
/// The contract mirrors how the paper's evaluation drives every method:
/// train on the seed alignments (plus any injected pseudo seeds), emit a
/// pairwise similarity matrix, rank the test pairs.
pub trait Aligner {
    /// Display name used in result tables.
    fn name(&self) -> &'static str;

    /// Trains (or continues training) on the dataset's seed alignments plus
    /// any pseudo seeds previously set. Returns wall-clock seconds.
    fn fit(&mut self, dataset: &AlignmentDataset) -> f64;

    /// The current source×target similarity matrix.
    fn similarity(&self) -> SimilarityMatrix;

    /// Replaces the pseudo-seed cache (used by the iterative strategy).
    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>);

    /// Evaluates H@k / MRR on the dataset's held-out pairs.
    fn evaluate(&self, dataset: &AlignmentDataset) -> AlignmentMetrics {
        evaluate_ranking(&self.similarity(), &dataset.test_pairs)
    }
}
