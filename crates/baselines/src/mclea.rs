//! MCLEA (Lin et al., COLING 2022): multi-modal contrastive representation
//! learning — per-modality InfoNCE objectives *plus* a joint objective on
//! the fused embedding. Missing features come from the predefined-
//! distribution fill; there is no cross-modal attention and no propagation,
//! which is exactly the gap the paper's analysis attributes its
//! missing-modality sensitivity to.

use crate::api::Aligner;
use crate::fusion::{SimpleConfig, SimpleModel};
use desalign_eval::SimilarityMatrix;
use desalign_mmkg::AlignmentDataset;
use std::rc::Rc;

/// The MCLEA baseline.
pub struct McleaAligner {
    model: SimpleModel,
}

impl McleaAligner {
    /// Creates an MCLEA model with the default laptop-scale profile.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_config(SimpleConfig::default(), dataset, seed)
    }

    pub(crate) fn with_config(cfg: SimpleConfig, dataset: &AlignmentDataset, seed: u64) -> Self {
        Self { model: SimpleModel::new(cfg, dataset, seed) }
    }
    /// Creates a model with an explicit hidden dimension and epoch budget
    /// (the benchmark harness profile).
    pub fn with_profile(hidden_dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        let cfg = SimpleConfig { hidden_dim, epochs, ..Default::default() };
        Self::with_config(cfg, dataset, seed)
    }

}

impl Aligner for McleaAligner {
    fn name(&self) -> &'static str {
        "MCLEA"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        self.model.fit_with(dataset, |sess, enc_s, enc_t, batch, tau| {
            let src: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(s, _)| s).collect());
            let tgt: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(_, t)| t).collect());
            // Joint objective on the fused embedding.
            let z1 = sess.tape.gather_rows(enc_s.fused, Rc::clone(&src));
            let z2 = sess.tape.gather_rows(enc_t.fused, Rc::clone(&tgt));
            let mut loss = sess.tape.info_nce_bidirectional(z1, z2, tau);
            // Intra-modal objectives, uniformly weighted.
            for (hs, ht) in enc_s.modal.iter().zip(&enc_t.modal) {
                let z1 = sess.tape.gather_rows(*hs, Rc::clone(&src));
                let z2 = sess.tape.gather_rows(*ht, Rc::clone(&tgt));
                let lm = sess.tape.info_nce_bidirectional(z1, z2, tau);
                loss = sess.tape.add(loss, lm);
            }
            loss
        })
    }

    fn similarity(&self) -> SimilarityMatrix {
        self.model.similarity()
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.model.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn mclea_trains_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(4);
        let cfg = SimpleConfig { hidden_dim: 16, epochs: 8, batch_size: 32, ..Default::default() };
        let mut m = McleaAligner::with_config(cfg, &ds, 1);
        m.fit(&ds);
        let metrics = m.evaluate(&ds);
        assert!(metrics.num_queries > 0);
        assert_eq!(m.name(), "MCLEA");
    }
}
