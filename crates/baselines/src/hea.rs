//! HEA (Guo et al., Neurocomputing 2021): multi-modal entity alignment in
//! **hyperbolic space** — entity representations live in a Poincaré ball,
//! where tree-like KG structure embeds with low distortion; attribute
//! evidence is merged via Möbius addition and alignment is decided by
//! hyperbolic distance.
//!
//! Optimization is Euclidean-in-ambient-space with projection back into
//! the ball after every step (the standard simplification of full
//! Riemannian Adam; gradients still flow through the exact hyperbolic
//! distance via the tape's `artanh`/`div`/`sqrt` ops).

use crate::api::Aligner;
use crate::hyperbolic::{poincare_distance_matrix, poincare_distance_var, project_to_ball};
use desalign_eval::SimilarityMatrix;
use desalign_mmkg::{AlignmentDataset, FeatureDims, ModalFeatures};
use desalign_nn::{AdamW, CosineWarmup, Linear, ParamId, ParamStore, Session};
use desalign_tensor::{rng_from_seed, uniform_matrix, Matrix, Rng64};
use std::rc::Rc;
use std::time::Instant;

/// The HEA baseline.
pub struct HeaAligner {
    epochs: usize,
    curvature: f32,
    store: ParamStore,
    ent: [ParamId; 2],
    proj_a: Linear,
    attrs: [Matrix; 2],
    rng: Rng64,
    pseudo: Vec<(usize, usize)>,
}

impl HeaAligner {
    /// Creates a HEA model.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_profile(32, 80, dataset, seed)
    }

    /// Creates a HEA model with an explicit dimension / epoch budget.
    pub fn with_profile(dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let mut store = ParamStore::new();
        let dims = FeatureDims::default();
        // Small init keeps points well inside the unit ball.
        let ent = [
            store.add("ent.s", uniform_matrix(&mut rng, dataset.source.num_entities, dim, -0.01, 0.01)),
            store.add("ent.t", uniform_matrix(&mut rng, dataset.target.num_entities, dim, -0.01, 0.01)),
        ];
        let proj_a = Linear::new(&mut store, &mut rng, "proj_a", dims.attribute, dim, false);
        let f_s = ModalFeatures::build(&dataset.source, &dims);
        let f_t = ModalFeatures::build(&dataset.target, &dims);
        Self { epochs, curvature: 1.0, store, ent, proj_a, attrs: [f_s.attribute, f_t.attribute], rng, pseudo: Vec::new() }
    }

    /// Hyperbolic entity representation with attribute evidence merged in
    /// the tangent space before projection (a first-order Möbius merge).
    fn ball_points(&self, side: usize) -> Matrix {
        let mut sess = Session::new(&self.store);
        let e = sess.param(self.ent[side]);
        let a_in = sess.input(self.attrs[side].clone());
        let a = self.proj_a.forward(&mut sess, a_in);
        let a_scaled = sess.tape.scale(a, 0.05);
        let merged = sess.tape.add(e, a_scaled);
        let mut pts = sess.tape.value(merged).clone();
        project_to_ball(&mut pts, self.curvature);
        pts
    }
}

impl Aligner for HeaAligner {
    fn name(&self) -> &'static str {
        "HEA"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        let t0 = Instant::now();
        let mut pool = dataset.train_pairs.clone();
        pool.extend(self.pseudo.iter().copied());
        let schedule = CosineWarmup::new(5e-3, self.epochs, 0.1);
        let mut opt = AdamW::new(0.0);
        let c = self.curvature;
        let sides = [&dataset.source, &dataset.target];
        #[allow(clippy::needless_range_loop)] // `side` indexes several parallel arrays
        for epoch in 0..self.epochs {
            let mut sess = Session::new(&self.store);
            let mut terms = Vec::new();
            // Structure: connected entities should be hyperbolically close,
            // corrupted pairs at least `margin` farther.
            for side in 0..2 {
                let kg = sides[side];
                if kg.rel_triples.is_empty() {
                    continue;
                }
                let k = 384.min(kg.rel_triples.len());
                let mut heads = Vec::with_capacity(k);
                let mut tails = Vec::with_capacity(k);
                let mut corrupt = Vec::with_capacity(k);
                for _ in 0..k {
                    let (h, _, t) = kg.rel_triples[self.rng.gen_range(0..kg.rel_triples.len())];
                    heads.push(h);
                    tails.push(t);
                    corrupt.push(self.rng.gen_range(0..kg.num_entities));
                }
                let e = sess.param(self.ent[side]);
                let a_in = sess.input(self.attrs[side].clone());
                let a = self.proj_a.forward(&mut sess, a_in);
                let a_scaled = sess.tape.scale(a, 0.05);
                let rep = sess.tape.add(e, a_scaled);
                let h = sess.tape.gather_rows(rep, Rc::new(heads));
                let t = sess.tape.gather_rows(rep, Rc::new(tails));
                let t_neg = sess.tape.gather_rows(rep, Rc::new(corrupt));
                let d_pos = poincare_distance_var(&mut sess, h, t, c);
                let d_neg = poincare_distance_var(&mut sess, h, t_neg, c);
                let gap = sess.tape.sub(d_pos, d_neg);
                let shifted = sess.tape.add_const(gap, 0.5);
                let hinge = sess.tape.relu(shifted);
                terms.push(sess.tape.mean_all(hinge));
            }
            // Seeds: hyperbolic pull across graphs with negative margin.
            if !pool.is_empty() {
                let src: Vec<usize> = pool.iter().map(|&(s, _)| s).collect();
                let tgt: Vec<usize> = pool.iter().map(|&(_, t)| t).collect();
                let neg: Vec<usize> = pool.iter().map(|_| self.rng.gen_range(0..dataset.target.num_entities)).collect();
                let e_s = sess.param(self.ent[0]);
                let e_t = sess.param(self.ent[1]);
                let zs = sess.tape.gather_rows(e_s, Rc::new(src));
                let zt = sess.tape.gather_rows(e_t, Rc::new(tgt));
                let zn = sess.tape.gather_rows(e_t, Rc::new(neg));
                let d_pos = poincare_distance_var(&mut sess, zs, zt, c);
                let d_neg = poincare_distance_var(&mut sess, zs, zn, c);
                let pull = sess.tape.mean_all(d_pos);
                terms.push(sess.tape.scale(pull, 2.0));
                let gap = sess.tape.sub(d_pos, d_neg);
                let shifted = sess.tape.add_const(gap, 1.0);
                let hinge = sess.tape.relu(shifted);
                terms.push(sess.tape.mean_all(hinge));
            }
            if terms.is_empty() {
                break;
            }
            let mut loss = terms[0];
            for &t in &terms[1..] {
                loss = sess.tape.add(loss, t);
            }
            let mut grads = sess.backward(loss);
            opt.step(&mut self.store, &mut grads, schedule.lr(epoch));
            // Retraction: project embeddings back into the ball.
            for side in 0..2 {
                project_to_ball(self.store.value_mut(self.ent[side]), c);
            }
        }
        t0.elapsed().as_secs_f64()
    }

    fn similarity(&self) -> SimilarityMatrix {
        // Negative hyperbolic distance as the score.
        let xs = self.ball_points(0);
        let ys = self.ball_points(1);
        SimilarityMatrix::new(poincare_distance_matrix(&xs, &ys, self.curvature).scale(-1.0))
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn hea_trains_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(48);
        let mut m = HeaAligner::with_profile(8, 10, &ds, 1);
        m.fit(&ds);
        assert!(m.evaluate(&ds).num_queries > 0);
        assert_eq!(m.name(), "HEA");
    }

    #[test]
    fn embeddings_stay_inside_the_ball() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(49);
        let mut m = HeaAligner::with_profile(8, 6, &ds, 2);
        m.fit(&ds);
        for side in 0..2 {
            let e = m.store.value(m.ent[side]);
            for i in 0..e.rows() {
                let norm: f32 = e.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
                assert!(norm < 1.0, "row {i} escaped the ball (norm {norm})");
            }
        }
    }

    #[test]
    fn seed_training_reduces_hyperbolic_distance() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(50);
        let mut m = HeaAligner::with_profile(8, 25, &ds, 3);
        let before: f32 = {
            let sim = m.similarity();
            ds.train_pairs.iter().map(|&(s, t)| -sim.scores()[(s, t)]).sum::<f32>() / ds.train_pairs.len() as f32
        };
        m.fit(&ds);
        let after: f32 = {
            let sim = m.similarity();
            ds.train_pairs.iter().map(|&(s, t)| -sim.scores()[(s, t)]).sum::<f32>() / ds.train_pairs.len() as f32
        };
        assert!(after < before, "seed distance should shrink: {before} → {after}");
    }
}
