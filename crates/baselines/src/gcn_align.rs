//! GCN-align (Wang et al., EMNLP 2018): structure + attribute embeddings
//! from a vanilla GCN, no vision modality, single alignment objective.

use crate::api::Aligner;
use crate::fusion::{SimpleConfig, SimpleModel};
use desalign_eval::SimilarityMatrix;
use desalign_mmkg::AlignmentDataset;
use std::rc::Rc;

/// The GCN-align baseline (structure + text attributes only).
pub struct GcnAligner {
    model: SimpleModel,
}

impl GcnAligner {
    /// Creates a GCN-align model with the default laptop-scale profile.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        let cfg = SimpleConfig { use_relation: false, use_visual: false, ..Default::default() };
        Self::with_config(cfg, dataset, seed)
    }

    pub(crate) fn with_config(mut cfg: SimpleConfig, dataset: &AlignmentDataset, seed: u64) -> Self {
        cfg.use_relation = false;
        cfg.use_visual = false;
        Self { model: SimpleModel::new(cfg, dataset, seed) }
    }
    /// Creates a model with an explicit hidden dimension and epoch budget
    /// (the benchmark harness profile).
    pub fn with_profile(hidden_dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        let cfg = SimpleConfig { hidden_dim, epochs, ..Default::default() };
        Self::with_config(cfg, dataset, seed)
    }

}

impl Aligner for GcnAligner {
    fn name(&self) -> &'static str {
        "GCN-align"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        self.model.fit_with(dataset, |sess, enc_s, enc_t, batch, tau| {
            let src: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(s, _)| s).collect());
            let tgt: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(_, t)| t).collect());
            let z1 = sess.tape.gather_rows(enc_s.fused, src);
            let z2 = sess.tape.gather_rows(enc_t.fused, tgt);
            sess.tape.info_nce_bidirectional(z1, z2, tau)
        })
    }

    fn similarity(&self) -> SimilarityMatrix {
        self.model.similarity()
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.model.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn gcn_align_uses_two_modalities() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(6);
        let cfg = SimpleConfig { hidden_dim: 16, epochs: 5, batch_size: 32, ..Default::default() };
        let mut g = GcnAligner::with_config(cfg, &ds, 1);
        assert_eq!(g.model.num_modalities(), 2);
        g.fit(&ds);
        assert!(g.evaluate(&ds).num_queries > 0);
    }
}
