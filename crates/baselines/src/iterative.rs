//! Generic iterative (bootstrapping) wrapper for any [`Aligner`] — the
//! strategy behind the "Iterative" rows of Tables IV and V.

use crate::api::Aligner;
use desalign_eval::{mutual_nearest_neighbours, AlignmentMetrics};
use desalign_mmkg::AlignmentDataset;

/// Result of [`iterative_align`].
#[derive(Clone, Debug)]
pub struct IterativeOutcome {
    /// Metrics after the base (non-iterative) fit.
    pub base: AlignmentMetrics,
    /// Metrics after each bootstrapping round.
    pub rounds: Vec<AlignmentMetrics>,
    /// Pseudo pairs used in the final round.
    pub final_pseudo_pairs: usize,
    /// Total wall-clock seconds across all fits.
    pub seconds: f64,
}

impl IterativeOutcome {
    /// Final metrics (last round, or base when no rounds ran).
    pub fn final_metrics(&self) -> AlignmentMetrics {
        self.rounds.last().copied().unwrap_or(self.base)
    }
}

/// Runs base training plus `rounds` of mutual-nearest-neighbour pseudo-seed
/// mining and retraining — the cache is rebuilt each round (alignment
/// editing).
pub fn iterative_align(
    aligner: &mut dyn Aligner,
    dataset: &AlignmentDataset,
    rounds: usize,
    min_score: f32,
) -> IterativeOutcome {
    let mut seconds = aligner.fit(dataset);
    let base = aligner.evaluate(dataset);
    let mut round_metrics = Vec::with_capacity(rounds);
    let mut final_pseudo = 0;

    let seeded_s: std::collections::HashSet<usize> = dataset.train_pairs.iter().map(|&(s, _)| s).collect();
    let seeded_t: std::collections::HashSet<usize> = dataset.train_pairs.iter().map(|&(_, t)| t).collect();
    let cand_s: Vec<usize> = (0..dataset.source.num_entities).filter(|s| !seeded_s.contains(s)).collect();
    let cand_t: Vec<usize> = (0..dataset.target.num_entities).filter(|t| !seeded_t.contains(t)).collect();

    for _ in 0..rounds {
        let sim = aligner.similarity();
        let mined = mutual_nearest_neighbours(&sim, &cand_s, &cand_t, min_score);
        final_pseudo = mined.len();
        aligner.set_pseudo_pairs(mined.into_iter().map(|(s, t, _)| (s, t)).collect());
        seconds += aligner.fit(dataset);
        round_metrics.push(aligner.evaluate(dataset));
    }

    IterativeOutcome { base, rounds: round_metrics, final_pseudo_pairs: final_pseudo, seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::SimpleConfig;
    use crate::EvaAligner;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn iterative_wrapper_runs_rounds() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(11);
        let cfg = SimpleConfig { hidden_dim: 16, epochs: 5, batch_size: 32, ..Default::default() };
        let mut eva = EvaAligner::with_config(cfg, &ds, 1);
        let outcome = iterative_align(&mut eva, &ds, 2, 0.0);
        assert_eq!(outcome.rounds.len(), 2);
        assert!(outcome.seconds > 0.0);
        assert!(outcome.final_metrics().num_queries > 0);
    }

    #[test]
    fn zero_rounds_is_base_only() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(12);
        let cfg = SimpleConfig { hidden_dim: 16, epochs: 3, batch_size: 32, ..Default::default() };
        let mut eva = EvaAligner::with_config(cfg, &ds, 2);
        let outcome = iterative_align(&mut eva, &ds, 0, 0.5);
        assert!(outcome.rounds.is_empty());
        assert_eq!(outcome.final_metrics(), outcome.base);
    }
}
