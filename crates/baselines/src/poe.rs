//! PoE (Liu et al., ESWC 2019 — the MMKG paper's baseline): **product of
//! experts** over per-modality similarity scores. Each modality is trained
//! as an independent expert; at decision time the experts' (shifted,
//! non-negative) similarities are multiplied — an entity pair must be
//! plausible under *every* modality to score high, which is exactly what
//! makes PoE brittle when a modality is missing.

use crate::api::Aligner;
use crate::fusion::{SimpleConfig, SimpleModel};
use desalign_eval::{cosine_similarity, SimilarityMatrix};
use desalign_mmkg::AlignmentDataset;
use desalign_nn::Session;
use desalign_tensor::Matrix;
use std::rc::Rc;

/// The PoE baseline.
pub struct PoeAligner {
    model: SimpleModel,
}

impl PoeAligner {
    /// Creates a PoE model.
    pub fn new(dataset: &AlignmentDataset, seed: u64) -> Self {
        Self::with_profile(64, 60, dataset, seed)
    }

    /// Creates a PoE model with an explicit dimension / epoch budget.
    pub fn with_profile(hidden_dim: usize, epochs: usize, dataset: &AlignmentDataset, seed: u64) -> Self {
        let cfg = SimpleConfig { hidden_dim, epochs, ..Default::default() };
        Self { model: SimpleModel::new(cfg, dataset, seed) }
    }
}

impl Aligner for PoeAligner {
    fn name(&self) -> &'static str {
        "PoE"
    }

    fn fit(&mut self, dataset: &AlignmentDataset) -> f64 {
        self.model.fit_with(dataset, |sess, enc_s, enc_t, batch, tau| {
            // Independent experts: per-modality contrastive losses only.
            let src: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(s, _)| s).collect());
            let tgt: Rc<Vec<usize>> = Rc::new(batch.iter().map(|&(_, t)| t).collect());
            let mut loss = None;
            for (hs, ht) in enc_s.modal.iter().zip(&enc_t.modal) {
                let z1 = sess.tape.gather_rows(*hs, Rc::clone(&src));
                let z2 = sess.tape.gather_rows(*ht, Rc::clone(&tgt));
                let lm = sess.tape.info_nce_bidirectional(z1, z2, tau);
                loss = Some(match loss {
                    Some(acc) => sess.tape.add(acc, lm),
                    None => lm,
                });
            }
            loss.expect("at least one expert")
        })
    }

    fn similarity(&self) -> SimilarityMatrix {
        // Product of experts in log-space: Σ_m ln((sim_m + 1)/2 + ε).
        let mut sess = Session::new(&self.model.store);
        let enc_s = self.model.forward(&mut sess, 0);
        let enc_t = self.model.forward(&mut sess, 1);
        let mut log_product: Option<Matrix> = None;
        for (&hs, &ht) in enc_s.modal.iter().zip(&enc_t.modal) {
            let sim = cosine_similarity(sess.tape.value(hs), sess.tape.value(ht));
            let log_p = sim.scores().map(|v| (((v + 1.0) * 0.5) + 1e-6).ln());
            log_product = Some(match log_product {
                Some(acc) => acc.add(&log_p),
                None => log_p,
            });
        }
        SimilarityMatrix::new(log_product.expect("at least one expert"))
    }

    fn set_pseudo_pairs(&mut self, pairs: Vec<(usize, usize)>) {
        self.model.pseudo = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_mmkg::{DatasetSpec, SynthConfig};

    #[test]
    fn poe_trains_and_evaluates() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(60).generate(44);
        let mut m = PoeAligner::with_profile(16, 8, &ds, 1);
        m.fit(&ds);
        assert!(m.evaluate(&ds).num_queries > 0);
        assert_eq!(m.name(), "PoE");
    }

    #[test]
    fn product_scores_are_finite_logs() {
        let ds = SynthConfig::preset(DatasetSpec::FbDb15k).scaled(50).generate(45);
        let m = PoeAligner::with_profile(8, 2, &ds, 2);
        let sim = m.similarity();
        assert!(sim.scores().all_finite());
        // Log-products of probabilities are non-positive.
        assert!(sim.scores().max_abs() > 0.0);
        assert!(sim.scores().as_slice().iter().all(|&v| v <= 1e-6));
    }
}
