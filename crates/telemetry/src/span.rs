//! Hierarchical span timers.
//!
//! [`span`] opens an RAII-timed scope; nested guards on the same thread
//! build a `/`-joined path (`fit/epoch/forward`). On drop, the elapsed
//! monotonic time is folded into a global registry keyed by full path.
//! [`span_report`] reconstructs the tree from those paths.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use desalign_util::{json, Json};

/// Aggregate statistics for one span path.
#[derive(Clone, Copy, Debug)]
struct SpanStat {
    calls: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

static REGISTRY: Mutex<BTreeMap<String, SpanStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// The current thread's span path, e.g. `"fit/epoch/forward"`.
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// RAII guard returned by [`span`]; records the elapsed time on drop.
///
/// Guards must be dropped in LIFO order — which ordinary lexical scoping
/// guarantees — because each guard truncates the thread-local path back to
/// the length it had when the guard was created.
#[must_use = "a span guard times the scope it lives in; dropping it immediately records ~0ns"]
pub struct SpanGuard {
    /// `None` when telemetry is disabled: the guard is inert.
    armed: Option<ArmedSpan>,
}

struct ArmedSpan {
    start: Instant,
    /// Length of the thread-local path before this span's name was pushed.
    prev_len: usize,
}

/// Opens a timed span named `name` nested under the thread's current span.
///
/// When telemetry is disabled (see [`crate::enabled`]) this costs one
/// relaxed atomic load and returns an inert guard.
///
/// ```
/// use desalign_telemetry as telemetry;
/// telemetry::set_enabled(Some(true));
/// let _fit = telemetry::span("doc_fit");
/// for _ in 0..3 {
///     let _epoch = telemetry::span("doc_epoch");
/// }
/// drop(_fit);
/// let roots = telemetry::span_report();
/// let fit = roots.iter().find(|n| n.name == "doc_fit").unwrap();
/// assert_eq!(fit.children[0].calls, 3);
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { armed: None };
    }
    let prev_len = PATH.with(|p| {
        let mut p = p.borrow_mut();
        let prev_len = p.len();
        if !p.is_empty() {
            p.push('/');
        }
        p.push_str(name);
        prev_len
    });
    SpanGuard { armed: Some(ArmedSpan { start: Instant::now(), prev_len }) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(armed) = self.armed.take() else { return };
        let elapsed_ns = armed.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        PATH.with(|p| {
            let mut p = p.borrow_mut();
            let mut reg = REGISTRY.lock().unwrap();
            let stat = reg.entry(p.clone()).or_insert(SpanStat {
                calls: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
            stat.calls += 1;
            stat.total_ns = stat.total_ns.saturating_add(elapsed_ns);
            stat.min_ns = stat.min_ns.min(elapsed_ns);
            stat.max_ns = stat.max_ns.max(elapsed_ns);
            p.truncate(armed.prev_len);
        });
    }
}

/// One node of the span tree produced by [`span_report`].
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Last path segment (`"forward"`, not `"fit/epoch/forward"`).
    pub name: String,
    /// Full `/`-joined path from the root.
    pub path: String,
    /// Number of times this span was closed.
    pub calls: u64,
    /// Total nanoseconds across all calls.
    pub total_ns: u64,
    /// Fastest single call, in nanoseconds.
    pub min_ns: u64,
    /// Slowest single call, in nanoseconds.
    pub max_ns: u64,
    /// Child spans, ordered by path.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn placeholder(name: &str, path: &str) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            path: path.to_string(),
            calls: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
            children: Vec::new(),
        }
    }

    fn to_json(&self) -> Json {
        json!({
            "name": self.name.as_str(),
            "path": self.path.as_str(),
            "calls": self.calls as f64,
            "total_ns": self.total_ns as f64,
            "min_ns": self.min_ns as f64,
            "max_ns": self.max_ns as f64,
            "children": Json::Array(self.children.iter().map(SpanNode::to_json).collect()),
        })
    }
}

/// Snapshots the registry and rebuilds the span forest.
///
/// A parent that was never closed itself (e.g. a path recorded only through
/// its children because the process is still inside the parent) appears as
/// a placeholder node with zero calls.
pub fn span_report() -> Vec<SpanNode> {
    let reg = REGISTRY.lock().unwrap();
    let mut roots: Vec<SpanNode> = Vec::new();
    for (path, stat) in reg.iter() {
        let mut level = &mut roots;
        let mut prefix = String::new();
        let mut segments = path.split('/').peekable();
        while let Some(seg) = segments.next() {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(seg);
            let pos = match level.iter().position(|n| n.name == seg) {
                Some(pos) => pos,
                None => {
                    level.push(SpanNode::placeholder(seg, &prefix));
                    level.len() - 1
                }
            };
            if segments.peek().is_none() {
                let node = &mut level[pos];
                node.calls = stat.calls;
                node.total_ns = stat.total_ns;
                node.min_ns = stat.min_ns;
                node.max_ns = stat.max_ns;
            }
            level = &mut level[pos].children;
        }
    }
    roots
}

/// Clears all recorded spans. Thread-local paths of live guards are
/// unaffected; only the aggregate registry is emptied.
pub fn reset_spans() {
    REGISTRY.lock().unwrap().clear();
}

/// The span forest as a JSON array (same shape as [`SpanNode`], with
/// durations in nanoseconds).
pub fn spans_json() -> Json {
    Json::Array(span_report().iter().map(SpanNode::to_json).collect())
}

fn fmt_duration(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render_node(node: &SpanNode, depth: usize, out: &mut String) {
    out.push_str(&"  ".repeat(depth));
    if node.calls == 0 {
        out.push_str(&format!("{}  (open)\n", node.name));
    } else {
        out.push_str(&format!(
            "{}  calls={} total={} mean={} min={} max={}\n",
            node.name,
            node.calls,
            fmt_duration(node.total_ns),
            fmt_duration(node.total_ns / node.calls.max(1)),
            fmt_duration(node.min_ns),
            fmt_duration(node.max_ns),
        ));
    }
    for child in &node.children {
        render_node(child, depth + 1, out);
    }
}

/// Pretty-prints a span forest as an indented text tree, one line per span
/// with calls / total / mean / min / max.
pub fn render_span_tree(roots: &[SpanNode]) -> String {
    let mut out = String::new();
    for root in roots {
        render_node(root, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span names in these tests are prefixed `st_` so they cannot collide
    // with spans recorded by other tests sharing the global registry.

    #[test]
    fn nesting_builds_paths_and_ordering_is_lifo() {
        let _serial = crate::test_guard();
        crate::set_enabled(Some(true));
        {
            let _a = span("st_outer");
            {
                let _b = span("st_mid");
                let _c = span("st_leaf");
            }
            let _d = span("st_mid2");
        }
        let roots = span_report();
        let outer = roots.iter().find(|n| n.name == "st_outer").expect("outer recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.path, "st_outer");
        let names: Vec<&str> = outer.children.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"st_mid") && names.contains(&"st_mid2"));
        let mid = outer.children.iter().find(|c| c.name == "st_mid").unwrap();
        assert_eq!(mid.children[0].name, "st_leaf");
        assert_eq!(mid.children[0].path, "st_outer/st_mid/st_leaf");
        // The parent's total covers its children (timed on the same clock).
        assert!(outer.total_ns >= mid.total_ns);
        crate::set_enabled(None);
    }

    #[test]
    fn repeated_calls_accumulate() {
        let _serial = crate::test_guard();
        crate::set_enabled(Some(true));
        for _ in 0..5 {
            let _g = span("st_repeat");
        }
        let roots = span_report();
        let node = roots.iter().find(|n| n.name == "st_repeat").unwrap();
        assert_eq!(node.calls, 5);
        assert!(node.min_ns <= node.max_ns);
        assert!(node.total_ns >= node.max_ns);
        crate::set_enabled(None);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = crate::test_guard();
        crate::set_enabled(Some(false));
        {
            let _g = span("st_disabled_never_appears");
        }
        crate::set_enabled(Some(true));
        let roots = span_report();
        assert!(roots.iter().all(|n| n.name != "st_disabled_never_appears"));
        crate::set_enabled(None);
    }

    #[test]
    fn render_contains_stats() {
        let _serial = crate::test_guard();
        crate::set_enabled(Some(true));
        {
            let _g = span("st_render");
        }
        let roots = span_report();
        let text = render_span_tree(&roots);
        assert!(text.contains("st_render"));
        assert!(text.contains("calls="));
        crate::set_enabled(None);
    }
}
