//! JSONL metrics sink and the per-epoch training record schema.
//!
//! A [`MetricsSink`] writes one JSON object per line through
//! `desalign-util`'s writer, inheriting its non-finite policy: `NaN`,
//! `Infinity`, and `-Infinity` are written as literals (the Python `json`
//! extension) rather than silently corrupted — a diverged run's metrics
//! must say *NaN*, not `null`.
//!
//! The training loop streams [`EpochRecord`]s through the process-global
//! sink ([`install_sink`] / [`emit`]); `DESALIGN_METRICS_OUT=<path>` makes
//! any binary install a file sink automatically when telemetry is enabled.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use desalign_util::{json, Json};

/// Streams JSON values one-per-line (JSONL) to an arbitrary writer.
///
/// ```
/// use desalign_telemetry::MetricsSink;
/// use desalign_util::json;
///
/// let mut sink = MetricsSink::from_writer(Box::new(std::io::sink()));
/// sink.emit(&json!({ "epoch": 0, "loss": 1.25 }));
/// sink.flush();
/// assert_eq!(sink.emitted(), 1);
/// ```
pub struct MetricsSink {
    out: BufWriter<Box<dyn Write + Send>>,
    /// Lines successfully queued; exposed for tests and reports.
    emitted: u64,
}

impl MetricsSink {
    /// A sink writing to `path` (truncating any existing file).
    pub fn to_file(path: &Path) -> std::io::Result<MetricsSink> {
        let file = File::create(path)?;
        Ok(MetricsSink::from_writer(Box::new(file)))
    }

    /// A sink writing to an arbitrary boxed writer (tests use `Vec<u8>`).
    pub fn from_writer(out: Box<dyn Write + Send>) -> MetricsSink {
        MetricsSink { out: BufWriter::new(out), emitted: 0 }
    }

    /// Writes `record` as one line. I/O errors are swallowed: telemetry
    /// must never abort a training run.
    pub fn emit(&mut self, record: &Json) {
        let mut line = record.to_string();
        line.push('\n');
        if self.out.write_all(line.as_bytes()).is_ok() {
            self.emitted += 1;
        }
    }

    /// Number of records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Flushes buffered lines to the underlying writer.
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for MetricsSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Global sink state: `Uninstalled` means the `DESALIGN_METRICS_OUT`
/// auto-install has not been attempted yet.
enum GlobalSink {
    Uninstalled,
    None,
    Some(MetricsSink),
}

static SINK: Mutex<GlobalSink> = Mutex::new(GlobalSink::Uninstalled);

/// Optional free-form label stamped into every [`EpochRecord`] (e.g. the
/// bench binary and dataset), set once per process by the caller.
static CONTEXT: Mutex<Option<String>> = Mutex::new(None);

/// Installs `sink` as the process-global sink, returning the previous one
/// if any.
pub fn install_sink(sink: MetricsSink) -> Option<MetricsSink> {
    match std::mem::replace(&mut *SINK.lock().unwrap(), GlobalSink::Some(sink)) {
        GlobalSink::Some(prev) => Some(prev),
        _ => None,
    }
}

/// Removes and returns the process-global sink (flushed on drop). Further
/// [`emit`] calls are no-ops until a sink is installed again —
/// `DESALIGN_METRICS_OUT` is not re-consulted.
pub fn take_sink() -> Option<MetricsSink> {
    match std::mem::replace(&mut *SINK.lock().unwrap(), GlobalSink::None) {
        GlobalSink::Some(prev) => Some(prev),
        _ => None,
    }
}

/// Sets the context label stamped into subsequent [`EpochRecord`]s.
pub fn set_context(context: Option<String>) {
    *CONTEXT.lock().unwrap() = context;
}

/// Emits `record` through the global sink; returns whether a sink was
/// present. On first call, if telemetry is enabled and
/// `DESALIGN_METRICS_OUT` names a path, a file sink is installed
/// automatically.
pub fn emit(record: &Json) -> bool {
    let mut slot = SINK.lock().unwrap();
    if let GlobalSink::Uninstalled = *slot {
        *slot = match std::env::var("DESALIGN_METRICS_OUT") {
            Ok(path) if crate::enabled() && !path.is_empty() => {
                match MetricsSink::to_file(Path::new(&path)) {
                    Ok(sink) => GlobalSink::Some(sink),
                    Err(_) => GlobalSink::None,
                }
            }
            _ => GlobalSink::None,
        };
    }
    match *slot {
        GlobalSink::Some(ref mut sink) => {
            sink.emit(record);
            true
        }
        _ => false,
    }
}

/// Evaluation metrics attached to an [`EpochRecord`] when ranking ran that
/// epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalSnapshot {
    /// Hits@1 in `[0, 1]`.
    pub hits_at_1: f32,
    /// Hits@10 in `[0, 1]`.
    pub hits_at_10: f32,
    /// Mean reciprocal rank in `[0, 1]`.
    pub mrr: f32,
}

/// One training epoch's metrics, serialized as a single JSONL object.
///
/// Loss fields follow `LossBreakdown` (Eq. 15–17 of the paper): the joint
/// total, the task-0 and task-k alignment terms, the two modal-consistency
/// terms, and the Dirichlet energy penalty. `dirichlet_energy` is the fused
/// source+target graph energy (Eq. 7), sampled only on trace epochs;
/// `grad_norm` is the pre-clip global gradient norm, computed only when
/// telemetry is on.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRecord {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Joint loss (Eq. 17).
    pub loss_total: f32,
    /// Task-0 alignment loss term.
    pub loss_task0: f32,
    /// Task-k alignment loss term.
    pub loss_taskk: f32,
    /// Modal consistency term for modality k-1 (Eq. 15).
    pub loss_modal_k1: f32,
    /// Modal consistency term for modality k (Eq. 16).
    pub loss_modal_k: f32,
    /// Dirichlet energy penalty term in the loss.
    pub energy_penalty: f32,
    /// Fused Dirichlet energy of source+target graphs, when sampled.
    pub dirichlet_energy: Option<f64>,
    /// Learning rate used this epoch.
    pub lr: f32,
    /// Pre-clip global gradient norm, when computed.
    pub grad_norm: Option<f32>,
    /// Semantic-propagation iterations configured for inference (Alg. 1).
    pub sp_iterations: usize,
    /// Ranking metrics, on epochs where evaluation ran.
    pub eval: Option<EvalSnapshot>,
    /// When this epoch is the first after a checkpoint resume, the epoch
    /// the restored checkpoint was written at; `None` otherwise.
    pub resumed_from: Option<usize>,
    /// Cumulative watchdog rollbacks in this run up to and including this
    /// epoch (see `docs/RELIABILITY.md`).
    pub rollbacks: u64,
}

fn opt_num(v: Option<f64>) -> Json {
    match v {
        Some(v) => Json::Num(v),
        None => Json::Null,
    }
}

impl EpochRecord {
    /// The JSONL object form. Key order is fixed; absent optionals are
    /// `null`; the process context label (see [`set_context`]) is appended
    /// when set.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("epoch".to_string(), Json::Num(self.epoch as f64)),
            ("loss_total".to_string(), Json::Num(self.loss_total as f64)),
            ("loss_task0".to_string(), Json::Num(self.loss_task0 as f64)),
            ("loss_taskk".to_string(), Json::Num(self.loss_taskk as f64)),
            ("loss_modal_k1".to_string(), Json::Num(self.loss_modal_k1 as f64)),
            ("loss_modal_k".to_string(), Json::Num(self.loss_modal_k as f64)),
            ("energy_penalty".to_string(), Json::Num(self.energy_penalty as f64)),
            ("dirichlet_energy".to_string(), opt_num(self.dirichlet_energy)),
            ("lr".to_string(), Json::Num(self.lr as f64)),
            ("grad_norm".to_string(), opt_num(self.grad_norm.map(f64::from))),
            ("sp_iterations".to_string(), Json::Num(self.sp_iterations as f64)),
            (
                "eval".to_string(),
                match self.eval {
                    Some(e) => json!({
                        "hits_at_1": e.hits_at_1 as f64,
                        "hits_at_10": e.hits_at_10 as f64,
                        "mrr": e.mrr as f64,
                    }),
                    None => Json::Null,
                },
            ),
            ("resumed_from".to_string(), opt_num(self.resumed_from.map(|e| e as f64))),
            ("rollbacks".to_string(), Json::Num(self.rollbacks as f64)),
        ];
        if let Some(ctx) = CONTEXT.lock().unwrap().as_deref() {
            obj.push(("context".to_string(), Json::Str(ctx.to_string())));
        }
        Json::Object(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> EpochRecord {
        EpochRecord {
            epoch: 3,
            loss_total: 1.5,
            loss_task0: 0.5,
            loss_taskk: 0.25,
            loss_modal_k1: 0.25,
            loss_modal_k: 0.25,
            energy_penalty: 0.25,
            dirichlet_energy: Some(12.0),
            lr: 1e-3,
            grad_norm: Some(2.0),
            sp_iterations: 10,
            eval: Some(EvalSnapshot { hits_at_1: 0.5, hits_at_10: 0.9, mrr: 0.65 }),
            resumed_from: None,
            rollbacks: 0,
        }
    }

    #[test]
    fn sink_writes_one_line_per_record() {
        let mut sink = MetricsSink::from_writer(Box::new(Vec::new()));
        sink.emit(&record().to_json());
        sink.emit(&record().to_json());
        assert_eq!(sink.emitted(), 2);
    }

    #[test]
    fn record_round_trips_through_parser() {
        let j = record().to_json();
        let text = j.to_string();
        let back = Json::parse(&text).expect("record parses");
        assert_eq!(back.get("epoch").and_then(Json::as_usize), Some(3));
        assert_eq!(
            back.get("eval").and_then(|e| e.get("mrr")).and_then(Json::as_f64),
            Some(0.65f32 as f64)
        );
        assert_eq!(back.get("dirichlet_energy").and_then(Json::as_f64), Some(12.0));
    }

    #[test]
    fn absent_optionals_are_null() {
        let mut r = record();
        r.dirichlet_energy = None;
        r.grad_norm = None;
        r.eval = None;
        let text = r.to_json().to_string();
        assert!(text.contains("\"dirichlet_energy\":null"));
        assert!(text.contains("\"grad_norm\":null"));
        assert!(text.contains("\"eval\":null"));
        assert!(text.contains("\"resumed_from\":null"));
        assert!(text.contains("\"rollbacks\":0"));
    }

    #[test]
    fn resume_and_rollback_fields_serialize() {
        let mut r = record();
        r.resumed_from = Some(7);
        r.rollbacks = 2;
        let text = r.to_json().to_string();
        assert!(text.contains("\"resumed_from\":7"));
        assert!(text.contains("\"rollbacks\":2"));
    }

    #[test]
    fn hostile_non_finite_fields_round_trip() {
        // A diverged run: the sink must emit NaN/Infinity literals (the
        // util JSON policy), and they must parse back, not corrupt.
        let mut r = record();
        r.loss_total = f32::NAN;
        r.grad_norm = Some(f32::INFINITY);
        r.dirichlet_energy = Some(f64::NEG_INFINITY);
        let text = r.to_json().to_string();
        assert!(text.contains("\"loss_total\":NaN"));
        assert!(text.contains("\"grad_norm\":Infinity"));
        assert!(text.contains("\"dirichlet_energy\":-Infinity"));
        let back = Json::parse(&text).expect("non-finite literals parse back");
        assert!(back.get("loss_total").and_then(Json::as_f64).unwrap().is_nan());
    }

    #[test]
    fn context_label_is_appended() {
        let _serial = crate::test_guard();
        set_context(Some("unit-test".to_string()));
        let text = record().to_json().to_string();
        assert!(text.contains("\"context\":\"unit-test\""));
        set_context(None);
        let text = record().to_json().to_string();
        assert!(!text.contains("context"));
    }
}
