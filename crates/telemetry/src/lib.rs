//! Zero-dependency observability for the DESAlign workspace.
//!
//! The paper's core claims are *trajectories*: Dirichlet energy decreasing
//! under Semantic Propagation (Prop. 3–4, Algorithm 1), loss and H@1 under
//! weak supervision (Figs. 3–4). Reproducing and debugging them needs
//! timings and per-epoch metric streams, which this crate provides in three
//! layers — all `std`-only, consistent with the workspace's zero-dependency
//! policy:
//!
//! 1. **Hierarchical span timers** — [`span`] returns an RAII guard that
//!    times the enclosing scope on a monotonic clock. Nested guards build a
//!    per-thread path (`fit/epoch/forward`); a thread-safe global registry
//!    accumulates call count / total / min / max per path. [`span_report`]
//!    turns the registry into a tree, [`render_span_tree`] pretty-prints
//!    it, and [`spans_json`] serializes it.
//! 2. **Counters, gauges, and histograms** — [`counter`] / [`gauge`] /
//!    [`histogram`] hand out cheap clonable handles onto named atomics
//!    ([`Counter`], [`Gauge`], [`Histogram`]); the thread pool uses
//!    counters for batch-utilization accounting, and `desalign-serve`
//!    records per-request latency into histograms for `/metrics`.
//! 3. **A metrics sink** — [`MetricsSink`] streams one JSON object per line
//!    (JSONL) through `desalign-util`'s writer; [`EpochRecord`] is the
//!    fixed per-epoch training schema (losses of Eq. 15–17, Dirichlet
//!    energy, LR, gradient norm, SP iterations, eval metrics). A global
//!    sink ([`install_sink`] / [`emit`]) lets the training loop stream
//!    records without threading a handle through every call site.
//!
//! # Enablement and cost
//!
//! Telemetry is **off by default** and gated by the `DESALIGN_TELEMETRY`
//! environment variable (`1`/`true`/`on`) or a programmatic
//! [`set_enabled`] override. When off, [`span`] returns an inert guard
//! after a single relaxed atomic load and no registry is touched, so the
//! instrumented build stays bit-identical and near-zero-cost. Telemetry
//! never feeds back into computation — enabling it cannot change a single
//! `f32` bit of any result, which `ci.sh` enforces by diffing the
//! end-to-end determinism fingerprint with `DESALIGN_TELEMETRY=1` vs
//! unset.
//!
//! # Invariants
//!
//! - Span guards must be dropped in LIFO order (automatic with ordinary
//!   scoping); a guard dropped out of order would mis-attribute children.
//! - Span paths are **per thread**: work executed on `desalign-parallel`
//!   pool workers (e.g. the second branch of a `par_join`) roots its own
//!   subtree rather than nesting under the submitting thread's span.
//! - Counter handles stay valid across [`reset_metrics`] — resetting
//!   stores zero into the existing atomics instead of dropping them.
//!
//! # Example
//!
//! ```
//! use desalign_telemetry as telemetry;
//!
//! telemetry::set_enabled(Some(true));
//! {
//!     let _outer = telemetry::span("outer");
//!     let _inner = telemetry::span("inner");
//!     telemetry::counter("example.items").add(3);
//! }
//! let roots = telemetry::span_report();
//! let outer = roots.iter().find(|n| n.name == "outer").unwrap();
//! assert_eq!(outer.calls, 1);
//! assert_eq!(outer.children[0].name, "inner");
//! assert_eq!(telemetry::counter("example.items").get(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod sink;
mod span;

pub use metrics::{
    counter, counters_snapshot, gauge, gauges_snapshot, histogram, histograms_snapshot,
    metrics_json, reset_metrics, Counter, Gauge, Histogram, HISTOGRAM_BUCKETS,
};
pub use sink::{emit, install_sink, set_context, take_sink, EpochRecord, EvalSnapshot, MetricsSink};
pub use span::{render_span_tree, reset_spans, span, span_report, spans_json, SpanGuard, SpanNode};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// `set_enabled` state: 0 = follow the environment, 1 = forced off,
/// 2 = forced on.
static FORCED: AtomicU8 = AtomicU8::new(0);
static FROM_ENV: OnceLock<bool> = OnceLock::new();

/// True when telemetry collection is active.
///
/// Resolution order: a [`set_enabled`] override wins; otherwise the
/// `DESALIGN_TELEMETRY` environment variable (`1` / `true` / `on`, read
/// once and cached); otherwise off.
#[inline]
pub fn enabled() -> bool {
    match FORCED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *FROM_ENV.get_or_init(|| {
            matches!(
                std::env::var("DESALIGN_TELEMETRY").as_deref().map(str::trim),
                Ok("1") | Ok("true") | Ok("on")
            )
        }),
    }
}

/// Overrides telemetry enablement process-wide: `Some(true)` forces on,
/// `Some(false)` forces off, `None` restores the environment default.
/// Used by `telemetry_report` and the determinism tests.
pub fn set_enabled(on: Option<bool>) {
    FORCED.store(match on { None => 0, Some(false) => 1, Some(true) => 2 }, Ordering::Relaxed);
}

/// Serializes unit tests that flip the process-global [`set_enabled`]
/// override, so parallel test threads cannot observe each other's state.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_beats_environment() {
        let _serial = test_guard();
        // Whatever the environment says, the override must win both ways.
        set_enabled(Some(true));
        assert!(enabled());
        set_enabled(Some(false));
        assert!(!enabled());
        set_enabled(None);
    }
}
