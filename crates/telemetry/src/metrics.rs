//! Named atomic counters and gauges.
//!
//! [`counter`] and [`gauge`] look a name up in a global registry and hand
//! back a clonable handle onto the underlying atomic, so hot paths can
//! resolve the name once (e.g. in a `OnceLock`) and update lock-free from
//! any thread afterwards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use desalign_util::{json, Json};

static COUNTERS: Mutex<BTreeMap<&'static str, Counter>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<&'static str, Gauge>> = Mutex::new(BTreeMap::new());

/// A monotonically increasing `u64` counter. Cloning is cheap (an `Arc`
/// bump) and all clones share the same atomic.
///
/// ```
/// use desalign_telemetry as telemetry;
/// let c = telemetry::counter("doc.requests");
/// c.incr();
/// c.add(2);
/// assert_eq!(telemetry::counter("doc.requests").get(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an atomic `u64`).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Returns the counter registered under `name`, creating it (at zero) on
/// first use. Unlike spans, counters record regardless of
/// [`crate::enabled`] — callers on hot paths gate on it themselves.
pub fn counter(name: &'static str) -> Counter {
    COUNTERS.lock().unwrap().entry(name).or_default().clone()
}

/// Returns the gauge registered under `name`, creating it (at `0.0`) on
/// first use.
pub fn gauge(name: &'static str) -> Gauge {
    GAUGES.lock().unwrap().entry(name).or_default().clone()
}

/// Snapshot of every registered counter, sorted by name.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    COUNTERS.lock().unwrap().iter().map(|(name, c)| (*name, c.get())).collect()
}

/// Snapshot of every registered gauge, sorted by name.
pub fn gauges_snapshot() -> Vec<(&'static str, f64)> {
    GAUGES.lock().unwrap().iter().map(|(name, g)| (*name, g.get())).collect()
}

/// Zeroes every registered counter and gauge **in place**: handles already
/// held by callers keep pointing at the same atomics, so cached
/// `OnceLock<Counter>` statics survive a reset.
pub fn reset_metrics() {
    for (_, c) in COUNTERS.lock().unwrap().iter() {
        c.0.store(0, Ordering::Relaxed);
    }
    for (_, g) in GAUGES.lock().unwrap().iter() {
        g.0.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// All counters and gauges as one JSON object:
/// `{"counters": {...}, "gauges": {...}}`.
pub fn metrics_json() -> Json {
    let counters = Json::Object(
        counters_snapshot().into_iter().map(|(k, v)| (k.to_string(), Json::Num(v as f64))).collect(),
    );
    let gauges = Json::Object(
        gauges_snapshot().into_iter().map(|(k, v)| (k.to_string(), Json::Num(v))).collect(),
    );
    json!({ "counters": counters, "gauges": gauges })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_atomic() {
        let _serial = crate::test_guard();
        let a = counter("mt_shared");
        let b = counter("mt_shared");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn reset_keeps_handles_live() {
        let _serial = crate::test_guard();
        let c = counter("mt_reset");
        c.add(7);
        let g = gauge("mt_reset_g");
        g.set(1.5);
        reset_metrics();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        // The pre-reset handle still feeds the registry entry.
        c.incr();
        assert_eq!(counter("mt_reset").get(), 1);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let _serial = crate::test_guard();
        let g = gauge("mt_gauge");
        g.set(-0.125);
        assert_eq!(g.get(), -0.125);
        g.set(f64::INFINITY);
        assert!(g.get().is_infinite());
    }

    #[test]
    fn metrics_json_lists_entries() {
        let _serial = crate::test_guard();
        counter("mt_json").add(4);
        let j = metrics_json().to_string();
        assert!(j.contains("mt_json"));
    }
}
