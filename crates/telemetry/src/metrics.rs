//! Named atomic counters and gauges.
//!
//! [`counter`] and [`gauge`] look a name up in a global registry and hand
//! back a clonable handle onto the underlying atomic, so hot paths can
//! resolve the name once (e.g. in a `OnceLock`) and update lock-free from
//! any thread afterwards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use desalign_util::{json, Json};

static COUNTERS: Mutex<BTreeMap<&'static str, Counter>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<&'static str, Gauge>> = Mutex::new(BTreeMap::new());
static HISTOGRAMS: Mutex<BTreeMap<&'static str, Histogram>> = Mutex::new(BTreeMap::new());

/// A monotonically increasing `u64` counter. Cloning is cheap (an `Arc`
/// bump) and all clones share the same atomic.
///
/// ```
/// use desalign_telemetry as telemetry;
/// let c = telemetry::counter("doc.requests");
/// c.incr();
/// c.add(2);
/// assert_eq!(telemetry::counter("doc.requests").get(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an atomic `u64`).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two latency buckets in a [`Histogram`]: bucket `i`
/// counts values `v` (in microseconds) with `2^(i−1) < v ≤ 2^i` (bucket 0
/// holds `v ≤ 1`), and the last bucket absorbs everything larger —
/// `2^30 µs ≈ 18 min`, far beyond any request this workspace serves.
pub const HISTOGRAM_BUCKETS: usize = 31;

/// A lock-free latency histogram over fixed power-of-two microsecond
/// buckets, plus exact count/sum/max for means and hard tails.
///
/// Like [`Counter`], recording is **not** gated on [`crate::enabled`]:
/// serving metrics must stay live even when span collection is off, and
/// an atomic add per request is cheap enough to always pay. Quantiles are
/// read from the bucket upper bounds, so a reported p99 is an upper
/// estimate within a factor of 2 of the true value.
///
/// ```
/// use desalign_telemetry as telemetry;
/// let h = telemetry::histogram("doc.latency_us");
/// h.record(3);
/// h.record(900);
/// assert_eq!(h.count(), 2);
/// assert!(h.quantile(0.5) >= 3.0 && h.quantile(0.99) >= 900.0);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one observation (intended unit: microseconds).
    #[inline]
    pub fn record(&self, value_us: u64) {
        let bucket = (64 - u64::leading_zeros(value_us.saturating_sub(1)) as usize).min(HISTOGRAM_BUCKETS - 1);
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value_us, Ordering::Relaxed);
        self.0.max.fetch_max(value_us, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// The upper bound (in the recording unit) of the bucket containing
    /// quantile `q ∈ [0, 1]`; `0.0` when nothing was recorded. The last
    /// bucket reports the exact observed max instead of its (huge) bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i == HISTOGRAM_BUCKETS - 1 { self.max() as f64 } else { (1u64 << i) as f64 };
            }
        }
        self.max() as f64
    }

    /// Per-bucket counts, index `i` covering `(2^(i−1), 2^i]`.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
        self.0.max.store(0, Ordering::Relaxed);
    }

    /// Summary JSON: count, mean, p50/p90/p99 upper estimates, exact max.
    pub fn summary_json(&self) -> Json {
        let count = self.count();
        let mean = if count == 0 { 0.0 } else { self.sum() as f64 / count as f64 };
        json!({
            "count": count,
            "mean_us": mean,
            "p50_us": self.quantile(0.50),
            "p90_us": self.quantile(0.90),
            "p99_us": self.quantile(0.99),
            "max_us": self.max(),
        })
    }
}

/// Returns the counter registered under `name`, creating it (at zero) on
/// first use. Unlike spans, counters record regardless of
/// [`crate::enabled`] — callers on hot paths gate on it themselves.
pub fn counter(name: &'static str) -> Counter {
    COUNTERS.lock().unwrap().entry(name).or_default().clone()
}

/// Returns the gauge registered under `name`, creating it (at `0.0`) on
/// first use.
pub fn gauge(name: &'static str) -> Gauge {
    GAUGES.lock().unwrap().entry(name).or_default().clone()
}

/// Returns the histogram registered under `name`, creating it (empty) on
/// first use. Like counters, histograms record regardless of
/// [`crate::enabled`].
pub fn histogram(name: &'static str) -> Histogram {
    HISTOGRAMS.lock().unwrap().entry(name).or_default().clone()
}

/// Snapshot of every registered counter, sorted by name.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    COUNTERS.lock().unwrap().iter().map(|(name, c)| (*name, c.get())).collect()
}

/// Snapshot of every registered gauge, sorted by name.
pub fn gauges_snapshot() -> Vec<(&'static str, f64)> {
    GAUGES.lock().unwrap().iter().map(|(name, g)| (*name, g.get())).collect()
}

/// Snapshot handles to every registered histogram, sorted by name.
pub fn histograms_snapshot() -> Vec<(&'static str, Histogram)> {
    HISTOGRAMS.lock().unwrap().iter().map(|(name, h)| (*name, h.clone())).collect()
}

/// Zeroes every registered counter, gauge, and histogram **in place**:
/// handles already held by callers keep pointing at the same atomics, so
/// cached `OnceLock<Counter>` statics survive a reset.
pub fn reset_metrics() {
    for (_, c) in COUNTERS.lock().unwrap().iter() {
        c.0.store(0, Ordering::Relaxed);
    }
    for (_, g) in GAUGES.lock().unwrap().iter() {
        g.0.store(0f64.to_bits(), Ordering::Relaxed);
    }
    for (_, h) in HISTOGRAMS.lock().unwrap().iter() {
        h.reset();
    }
}

/// All counters, gauges, and histogram summaries as one JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
pub fn metrics_json() -> Json {
    let counters = Json::Object(
        counters_snapshot().into_iter().map(|(k, v)| (k.to_string(), Json::Num(v as f64))).collect(),
    );
    let gauges = Json::Object(
        gauges_snapshot().into_iter().map(|(k, v)| (k.to_string(), Json::Num(v))).collect(),
    );
    let histograms = Json::Object(
        histograms_snapshot().into_iter().map(|(k, h)| (k.to_string(), h.summary_json())).collect(),
    );
    json!({ "counters": counters, "gauges": gauges, "histograms": histograms })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_atomic() {
        let _serial = crate::test_guard();
        let a = counter("mt_shared");
        let b = counter("mt_shared");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn reset_keeps_handles_live() {
        let _serial = crate::test_guard();
        let c = counter("mt_reset");
        c.add(7);
        let g = gauge("mt_reset_g");
        g.set(1.5);
        reset_metrics();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        // The pre-reset handle still feeds the registry entry.
        c.incr();
        assert_eq!(counter("mt_reset").get(), 1);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let _serial = crate::test_guard();
        let g = gauge("mt_gauge");
        g.set(-0.125);
        assert_eq!(g.get(), -0.125);
        g.set(f64::INFINITY);
        assert!(g.get().is_infinite());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _serial = crate::test_guard();
        let h = histogram("mt_hist");
        h.reset();
        h.record(0); // bucket 0 (v <= 1)
        h.record(1); // bucket 0
        h.record(2); // bucket 1 (1 < v <= 2)
        h.record(1000); // bucket 10 (512 < v <= 1024)
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1003);
        assert_eq!(h.max(), 1000);
        let b = h.buckets();
        assert_eq!(b[0], 2);
        assert_eq!(b[1], 1);
        assert_eq!(b[10], 1);
        // p50 lands in bucket 0 (upper bound 1); p99 in the last non-empty
        // bucket (upper bound 1024).
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.99), 1024.0);
        // The overflow bucket reports the exact max, not 2^30.
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX as f64);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_survives_reset_metrics() {
        let _serial = crate::test_guard();
        let h = histogram("mt_hist_reset");
        h.record(5);
        reset_metrics();
        assert_eq!(h.count(), 0);
        h.record(7);
        assert_eq!(histogram("mt_hist_reset").count(), 1);
    }

    #[test]
    fn metrics_json_lists_entries() {
        let _serial = crate::test_guard();
        counter("mt_json").add(4);
        let j = metrics_json().to_string();
        assert!(j.contains("mt_json"));
    }
}
