//! Property tests: finite-difference gradient checks over random inputs
//! and random op compositions.

use desalign_autodiff::{check_gradient, Tape};
use desalign_tensor::Matrix;
use desalign_testkit::{check, ensure, gen, Rng64};
use std::rc::Rc;

const CASES: u64 = 24;

// Keep values away from ReLU kinks, ln(0), and the high-curvature
// regime where f32 central differences lose accuracy.
fn matrix(rng: &mut Rng64, rows: usize, cols: usize) -> Matrix {
    gen::matrix(rng, rows, cols, 0.2, 1.4)
}

fn signed(rng: &mut Rng64, rows: usize, cols: usize) -> Matrix {
    gen::matrix(rng, rows, cols, -2.0, 2.0)
}

#[test]
fn grad_of_random_elementwise_chain() {
    check(
        "grad_of_random_elementwise_chain",
        CASES,
        |rng| {
            let num_ops = rng.gen_range(1..4);
            (matrix(rng, 3, 4), gen::usize_vec(rng, num_ops, 5))
        },
        |(x0, ops)| {
            let ops = ops.clone();
            let report = check_gradient(x0, 1e-3, move |t, x| {
                let mut v = x;
                for &op in &ops {
                    v = match op {
                        0 => t.scale(v, 1.3),
                        1 => t.add_const(v, 0.5),
                        2 => t.square(v),
                        3 => t.exp(v),
                        _ => t.ln(v),
                    };
                    // Re-positivize so a following ln stays in-domain, then
                    // squash into (0.2, 1.2) with the differentiable v/(1+v)
                    // so curvature never compounds beyond what f32 central
                    // differences can resolve (also exercises Div).
                    v = t.square(v);
                    let denom = t.add_const(v, 1.0);
                    let squashed = t.div(v, denom);
                    v = t.add_const(squashed, 0.2);
                }
                t.mean_all(v)
            });
            ensure!(report.passes(8e-2), "{report:?}");
            Ok(())
        },
    );
}

#[test]
fn grad_of_bilinear_form() {
    check("grad_of_bilinear_form", CASES, |rng| (signed(rng, 3, 3), signed(rng, 3, 3)), |(x0, y)| {
        let y = y.clone();
        let report = check_gradient(x0, 1e-2, move |t, x| {
            let c = t.constant(y.clone());
            let prod = t.matmul(x, c);
            let xt = t.transpose(x);
            let prod2 = t.matmul(prod, xt);
            let sq = t.square(prod2);
            t.sum_all(sq)
        });
        ensure!(report.passes(5e-2), "{report:?}");
        Ok(())
    });
}

#[test]
fn grad_of_softmax_cross_entropy() {
    check(
        "grad_of_softmax_cross_entropy",
        CASES,
        |rng| (signed(rng, 4, 3), gen::usize_vec(rng, 4, 3)),
        |(x0, targets)| {
            let targets = Rc::new(targets.clone());
            let report = check_gradient(x0, 1e-2, move |t, x| t.cross_entropy_rows(x, targets.clone()));
            ensure!(report.passes(5e-2), "{report:?}");
            Ok(())
        },
    );
}

#[test]
fn grad_of_gather_softmax_scatter() {
    check("grad_of_gather_softmax_scatter", CASES, |rng| signed(rng, 5, 2), |x0| {
        let report = check_gradient(x0, 1e-2, move |t, x| {
            let g = t.gather_rows(x, Rc::new(vec![0, 2, 2, 4, 1]));
            let sm = t.edge_softmax(g, Rc::new(vec![0, 0, 1, 1, 1]));
            let s = t.scatter_add_rows(sm, Rc::new(vec![1, 0, 1, 0, 1]), 2);
            let sq = t.square(s);
            t.sum_all(sq)
        });
        ensure!(report.passes(5e-2), "{report:?}");
        Ok(())
    });
}

#[test]
fn backward_accumulates_like_sum_rule() {
    check("backward_accumulates_like_sum_rule", CASES, |rng| signed(rng, 2, 3), |x0| {
        // L = f(x) + g(x) ⇒ ∂L = ∂f + ∂g: run jointly and separately.
        let joint = {
            let mut t = Tape::new();
            let x = t.leaf(x0.clone());
            let a = t.square(x);
            let sa = t.sum_all(a);
            let b = t.scale(x, 3.0);
            let sb = t.sum_all(b);
            let l = t.add(sa, sb);
            t.backward(l);
            t.grad(x).expect("grad").clone()
        };
        let parts = {
            let mut t = Tape::new();
            let x = t.leaf(x0.clone());
            let a = t.square(x);
            let sa = t.sum_all(a);
            t.backward(sa);
            let ga = t.grad(x).expect("grad").clone();
            let mut t = Tape::new();
            let x = t.leaf(x0.clone());
            let b = t.scale(x, 3.0);
            let sb = t.sum_all(b);
            t.backward(sb);
            ga.add(t.grad(x).expect("grad"))
        };
        ensure!(joint.sub(&parts).max_abs() < 1e-4);
        Ok(())
    });
}

#[test]
fn forward_values_are_always_finite() {
    check("forward_values_are_always_finite", CASES, |rng| signed(rng, 3, 3), |x0| {
        let mut t = Tape::new();
        let x = t.leaf(x0.clone());
        let s = t.softmax_rows(x);
        let l = t.layernorm_rows(s, 1e-5);
        let n = t.l2_normalize_rows(l, 1e-6);
        let m = t.mean_all(n);
        ensure!(t.value(m).all_finite());
        Ok(())
    });
}
