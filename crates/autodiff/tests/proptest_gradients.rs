//! Property tests: finite-difference gradient checks over random inputs
//! and random op compositions.

use desalign_autodiff::{check_gradient, Tape};
use desalign_tensor::Matrix;
use proptest::prelude::*;
use std::rc::Rc;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    // Keep values away from ReLU kinks, ln(0), and the high-curvature
    // regime where f32 central differences lose accuracy.
    proptest::collection::vec(0.2f32..1.4, rows * cols).prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn signed(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols).prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grad_of_random_elementwise_chain(x0 in matrix(3, 4), ops in proptest::collection::vec(0u8..5, 1..4)) {
        let report = check_gradient(&x0, 1e-3, move |t, x| {
            let mut v = x;
            for &op in &ops {
                v = match op {
                    0 => t.scale(v, 1.3),
                    1 => t.add_const(v, 0.5),
                    2 => t.square(v),
                    3 => t.exp(v),
                    _ => t.ln(v),
                };
                // Re-positivize so a following ln stays in-domain, then
                // squash into (0.2, 1.2) with the differentiable v/(1+v)
                // so curvature never compounds beyond what f32 central
                // differences can resolve (also exercises Div).
                v = t.square(v);
                let denom = t.add_const(v, 1.0);
                let squashed = t.div(v, denom);
                v = t.add_const(squashed, 0.2);
            }
            t.mean_all(v)
        });
        prop_assert!(report.passes(8e-2), "{:?}", report);
    }

    #[test]
    fn grad_of_bilinear_form(x0 in signed(3, 3), y in signed(3, 3)) {
        let report = check_gradient(&x0, 1e-2, move |t, x| {
            let c = t.constant(y.clone());
            let prod = t.matmul(x, c);
            let xt = t.transpose(x);
            let prod2 = t.matmul(prod, xt);
            let sq = t.square(prod2);
            t.sum_all(sq)
        });
        prop_assert!(report.passes(5e-2), "{:?}", report);
    }

    #[test]
    fn grad_of_softmax_cross_entropy(x0 in signed(4, 3), targets in proptest::collection::vec(0usize..3, 4)) {
        let report = check_gradient(&x0, 1e-2, move |t, x| {
            t.cross_entropy_rows(x, Rc::new(targets.clone()))
        });
        prop_assert!(report.passes(5e-2), "{:?}", report);
    }

    #[test]
    fn grad_of_gather_softmax_scatter(x0 in signed(5, 2)) {
        let report = check_gradient(&x0, 1e-2, move |t, x| {
            let g = t.gather_rows(x, Rc::new(vec![0, 2, 2, 4, 1]));
            let sm = t.edge_softmax(g, Rc::new(vec![0, 0, 1, 1, 1]));
            let s = t.scatter_add_rows(sm, Rc::new(vec![1, 0, 1, 0, 1]), 2);
            let sq = t.square(s);
            t.sum_all(sq)
        });
        prop_assert!(report.passes(5e-2), "{:?}", report);
    }

    #[test]
    fn backward_accumulates_like_sum_rule(x0 in signed(2, 3)) {
        // L = f(x) + g(x) ⇒ ∂L = ∂f + ∂g: run jointly and separately.
        let joint = {
            let mut t = Tape::new();
            let x = t.leaf(x0.clone());
            let a = t.square(x);
            let sa = t.sum_all(a);
            let b = t.scale(x, 3.0);
            let sb = t.sum_all(b);
            let l = t.add(sa, sb);
            t.backward(l);
            t.grad(x).expect("grad").clone()
        };
        let parts = {
            let mut t = Tape::new();
            let x = t.leaf(x0.clone());
            let a = t.square(x);
            let sa = t.sum_all(a);
            t.backward(sa);
            let ga = t.grad(x).expect("grad").clone();
            let mut t = Tape::new();
            let x = t.leaf(x0.clone());
            let b = t.scale(x, 3.0);
            let sb = t.sum_all(b);
            t.backward(sb);
            ga.add(t.grad(x).expect("grad"))
        };
        prop_assert!(joint.sub(&parts).max_abs() < 1e-4);
    }

    #[test]
    fn forward_values_are_always_finite(x0 in signed(3, 3)) {
        let mut t = Tape::new();
        let x = t.leaf(x0);
        let s = t.softmax_rows(x);
        let l = t.layernorm_rows(s, 1e-5);
        let n = t.l2_normalize_rows(l, 1e-6);
        let m = t.mean_all(n);
        prop_assert!(t.value(m).all_finite());
    }
}
