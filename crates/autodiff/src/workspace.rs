//! Pooled buffer allocation for backward-pass gradients.
//!
//! Every training step rebuilds its [`Tape`](crate::Tape), and every
//! backward pass allocates one gradient matrix per reached node — the same
//! shapes, step after step. A [`Workspace`] keeps those buffers alive
//! between tapes: when a tape is dropped its gradient buffers return to the
//! pool, and the next backward pass takes them back instead of asking the
//! system allocator. Shapes are static across a training run, so after a
//! one-step warmup the pool serves **every** gradient allocation and the
//! fresh-allocation counter goes flat (asserted by `desalign-core`'s
//! steady-state test and the CI tape-allocation check).
//!
//! The workspace is a plain size-keyed free list, not an arena: buffers are
//! pooled by exact element count, so a hit always has the right length and
//! reuse never changes a value, a shape, or a bit of any result. Allocation
//! behaviour is observable via [`Workspace::stats`] and the
//! `tape.ws_fresh` / `tape.ws_reused` telemetry counters.

use desalign_tensor::Matrix;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A shareable handle to a [`Workspace`]; clone it into every
/// [`Tape::with_workspace`](crate::Tape::with_workspace) that should share
/// one pool. Single-threaded by design, like the tape itself.
pub type SharedWorkspace = Rc<RefCell<Workspace>>;

/// Creates a fresh shared workspace.
pub fn shared_workspace() -> SharedWorkspace {
    Rc::new(RefCell::new(Workspace::new()))
}

/// Allocation counters of a [`Workspace`] (monotone over its lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Buffers the pool could not serve and had to allocate.
    pub fresh: u64,
    /// Buffers served from the pool.
    pub reused: u64,
    /// Buffers currently parked in the pool.
    pub pooled: usize,
}

/// A size-keyed pool of `f32` buffers backing gradient matrices.
#[derive(Default)]
pub struct Workspace {
    free: BTreeMap<usize, Vec<Vec<f32>>>,
    fresh: u64,
    reused: u64,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocation counters and current pool occupancy.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            fresh: self.fresh,
            reused: self.reused,
            pooled: self.free.values().map(Vec::len).sum(),
        }
    }

    /// Returns a buffer of exactly `len` elements, pooled if available.
    /// Contents are unspecified.
    fn take(&mut self, len: usize) -> Vec<f32> {
        if let Some(buf) = self.free.get_mut(&len).and_then(Vec::pop) {
            self.reused += 1;
            if desalign_telemetry::enabled() {
                desalign_telemetry::counter("tape.ws_reused").add(1);
            }
            return buf;
        }
        self.fresh += 1;
        if desalign_telemetry::enabled() {
            desalign_telemetry::counter("tape.ws_fresh").add(1);
        }
        vec![0.0; len]
    }

    /// Returns a matrix's buffer to the pool. Zero-length buffers are
    /// dropped (nothing to reuse).
    pub fn recycle(&mut self, m: Matrix) {
        let buf = m.into_vec();
        if !buf.is_empty() {
            self.free.entry(buf.len()).or_default().push(buf);
        }
    }

    /// A zeroed `rows × cols` matrix.
    pub fn zeros(&mut self, rows: usize, cols: usize) -> Matrix {
        self.full(rows, cols, 0.0)
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn full(&mut self, rows: usize, cols: usize, value: f32) -> Matrix {
        let mut buf = self.take(checked_len(rows, cols));
        buf.fill(value);
        Matrix::from_vec(rows, cols, buf)
    }

    /// A `rows × cols` matrix with **unspecified contents** (possibly stale
    /// values from a recycled buffer). Callers must overwrite every element
    /// before any is read.
    pub fn uninit(&mut self, rows: usize, cols: usize) -> Matrix {
        let buf = self.take(checked_len(rows, cols));
        Matrix::from_vec(rows, cols, buf)
    }

    /// A pooled copy of `src` — same shape, same bits.
    pub fn clone_of(&mut self, src: &Matrix) -> Matrix {
        let mut buf = self.take(src.len());
        buf.copy_from_slice(src.as_slice());
        Matrix::from_vec(src.rows(), src.cols(), buf)
    }

    /// A pooled `src · c` — element order and rounding identical to
    /// [`Matrix::scale`].
    pub fn scaled(&mut self, src: &Matrix, c: f32) -> Matrix {
        let mut out = self.clone_of(src);
        for v in out.as_mut_slice() {
            *v *= c;
        }
        out
    }

    /// A pooled Hadamard product `a ⊙ b` — identical to
    /// [`Matrix::hadamard`].
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        b.expect_shape(a.rows(), a.cols(), "Workspace::hadamard");
        let mut out = self.uninit(a.rows(), a.cols());
        for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
            *o = x * y;
        }
        out
    }
}

fn checked_len(rows: usize, cols: usize) -> usize {
    rows.checked_mul(cols).expect("Workspace: rows * cols overflows usize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_round_trip_reuses_buffers() {
        let mut ws = Workspace::new();
        let a = ws.zeros(3, 4);
        let b = ws.zeros(2, 2);
        assert_eq!(ws.stats().fresh, 2);
        ws.recycle(a);
        ws.recycle(b);
        assert_eq!(ws.stats().pooled, 2);
        // Exact-size hits come from the pool; a new size allocates.
        let c = ws.uninit(4, 3); // same 12-element buffer, different shape
        assert_eq!(ws.stats().reused, 1);
        assert_eq!(c.shape(), (4, 3));
        let _d = ws.zeros(5, 5);
        assert_eq!(ws.stats().fresh, 3);
    }

    #[test]
    fn helpers_match_tensor_kernels_bitwise() {
        let mut ws = Workspace::new();
        let a = Matrix::from_rows(&[&[1.5, -0.0, 3.25], &[-2.0, 0.125, 7.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0, -1.0], &[0.5, -0.0, 3.0]]);
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ws.clone_of(&a)), bits(&a));
        assert_eq!(bits(&ws.scaled(&a, -1.0)), bits(&a.scale(-1.0)));
        assert_eq!(bits(&ws.hadamard(&a, &b)), bits(&a.hadamard(&b)));
        assert_eq!(bits(&ws.full(2, 2, 0.75)), bits(&Matrix::full(2, 2, 0.75)));
    }

    #[test]
    fn stale_pool_contents_never_leak_through_zeros() {
        let mut ws = Workspace::new();
        let poisoned = ws.full(2, 2, f32::NAN);
        ws.recycle(poisoned);
        let z = ws.zeros(2, 2);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(ws.stats().reused, 1);
    }
}
