//! Composite operators built from tape primitives.
//!
//! These are the recurring sub-expressions of the DESAlign architecture,
//! packaged so `desalign-nn` and `desalign-core` stay readable: dense linear
//! layers, cosine-similarity logits, the InfoNCE contrastive loss of
//! Eq. 16–17, and the differentiable Dirichlet energy of Definition 3.

use crate::{Tape, Var};
use desalign_graph::Csr;
use std::rc::Rc;

impl Tape {
    /// Dense linear layer `x × w (+ bias)`.
    pub fn linear(&mut self, x: Var, w: Var, bias: Option<Var>) -> Var {
        let y = self.matmul(x, w);
        match bias {
            Some(b) => self.add_broadcast_row(y, b),
            None => y,
        }
    }

    /// Differentiable Dirichlet energy `ℒ(X) = tr(XᵀΔX) = ⟨X, ΔX⟩`
    /// (Definition 3) for a constant Laplacian.
    pub fn dirichlet_energy(&mut self, laplacian: Rc<Csr>, x: Var) -> Var {
        let lx = self.spmm(laplacian, x);
        let prod = self.mul(x, lx);
        self.sum_all(prod)
    }

    /// Temperature-scaled similarity logits between two row-normalized
    /// embedding sets: `logits = (Ẑ₁ Ẑ₂ᵀ) / τ`, the `γ_m` kernel of Eq. 16.
    pub fn cosine_logits(&mut self, z1: Var, z2: Var, tau: f32) -> Var {
        let n1 = self.l2_normalize_rows(z1, 1e-6);
        let n2 = self.l2_normalize_rows(z2, 1e-6);
        let n2t = self.transpose(n2);
        let sim = self.matmul(n1, n2t);
        self.scale(sim, 1.0 / tau)
    }

    /// Bidirectional in-batch InfoNCE loss (Eq. 16–17 with φ = 1):
    ///
    /// `L = ½ (CE(logits, diag) + CE(logitsᵀ, diag))`
    ///
    /// where row `i` of `z1` aligns with row `i` of `z2` and all other
    /// in-batch rows act as negatives.
    pub fn info_nce_bidirectional(&mut self, z1: Var, z2: Var, tau: f32) -> Var {
        let logits = self.cosine_logits(z1, z2, tau);
        let n = self.value(logits).rows();
        let targets = Rc::new((0..n).collect::<Vec<_>>());
        let fwd = self.cross_entropy_rows(logits, Rc::clone(&targets));
        let logits_t = self.transpose(logits);
        let bwd = self.cross_entropy_rows(logits_t, targets);
        let s = self.add(fwd, bwd);
        self.scale(s, 0.5)
    }

    /// Weighted bidirectional InfoNCE: per-pair weights `φ` (n×1, constant)
    /// multiply each pair's loss term — the min-confidence weighting
    /// `φ_m(e¹ᵢ, e²ᵢ)` of Eq. 17.
    ///
    /// Implemented as a weighted mean of per-row cross-entropies. To keep
    /// the op set small the per-row CE is expressed with softmax + gather
    /// instead of a dedicated fused op.
    pub fn info_nce_weighted(&mut self, z1: Var, z2: Var, tau: f32, phi: Var) -> Var {
        let logits = self.cosine_logits(z1, z2, tau);
        let n = self.value(logits).rows();
        self.value(phi).expect_shape(n, 1, "info_nce_weighted: phi");
        let fwd = self.weighted_ce_diag(logits, phi);
        let logits_t = self.transpose(logits);
        let bwd = self.weighted_ce_diag(logits_t, phi);
        let s = self.add(fwd, bwd);
        self.scale(s, 0.5)
    }

    /// Weighted mean over rows of `−log softmax(logits)_{i,i}` with weights
    /// `phi` (n×1): `Σᵢ φᵢ · CEᵢ / n`.
    fn weighted_ce_diag(&mut self, logits: Var, phi: Var) -> Var {
        let n = self.value(logits).rows();
        let probs = self.softmax_rows(logits);
        // Extract the diagonal via a constant mask and row-sum.
        let mut mask = desalign_tensor::Matrix::zeros(n, n);
        for i in 0..n {
            mask[(i, i)] = 1.0;
        }
        let mask = self.constant(mask);
        let diag_only = self.mul(probs, mask);
        let p_diag = self.row_sum(diag_only); // n×1, p_{i,i}
        let safe = self.add_const(p_diag, 1e-12);
        let neg_log = self.neg_log(safe);
        let weighted = self.mul(neg_log, phi);
        let total = self.sum_all(weighted);
        self.scale(total, 1.0 / n.max(1) as f32)
    }

    /// `−ln(x)` element-wise, for strictly positive inputs.
    fn neg_log(&mut self, x: Var) -> Var {
        let lg = self.ln(x);
        self.scale(lg, -1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradient;
    use desalign_graph::UndirectedGraph;
    use desalign_tensor::{normal_matrix, rng_from_seed, Matrix};

    #[test]
    fn dirichlet_energy_matches_graph_crate() {
        let g = UndirectedGraph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let lap = Rc::new(g.laplacian());
        let x = normal_matrix(&mut rng_from_seed(1), 5, 3, 0.0, 1.0);
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let e = t.dirichlet_energy(Rc::clone(&lap), xv);
        let expect = desalign_graph::dirichlet_energy(&lap, &x);
        assert!((t.value(e)[(0, 0)] - expect).abs() < 1e-4);
    }

    #[test]
    fn dirichlet_energy_gradient_is_2lx() {
        // ∇ℒ = 2ΔX (the gradient flow driver of §IV-C).
        let g = UndirectedGraph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let lap = Rc::new(g.laplacian());
        let x = normal_matrix(&mut rng_from_seed(2), 4, 2, 0.0, 1.0);
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let e = t.dirichlet_energy(Rc::clone(&lap), xv);
        t.backward(e);
        let grad = t.grad(xv).expect("grad");
        let expect = lap.spmm(&x).scale(2.0);
        assert!(grad.sub(&expect).max_abs() < 1e-4);
    }

    #[test]
    fn info_nce_prefers_aligned_pairs() {
        let mut rng = rng_from_seed(3);
        let z = normal_matrix(&mut rng, 6, 8, 0.0, 1.0);
        let noise = normal_matrix(&mut rng, 6, 8, 0.0, 1.0);
        // Identical embeddings → low loss; unrelated → higher loss.
        let mut t = Tape::new();
        let a = t.leaf(z.clone());
        let b = t.constant(z.clone());
        let aligned = t.info_nce_bidirectional(a, b, 0.1);
        let c = t.constant(noise);
        let unaligned = t.info_nce_bidirectional(a, c, 0.1);
        assert!(t.value(aligned)[(0, 0)] < t.value(unaligned)[(0, 0)]);
    }

    #[test]
    fn weighted_info_nce_matches_unweighted_with_unit_phi() {
        let mut rng = rng_from_seed(4);
        let z1 = normal_matrix(&mut rng, 5, 6, 0.0, 1.0);
        let z2 = normal_matrix(&mut rng, 5, 6, 0.0, 1.0);
        let mut t = Tape::new();
        let a = t.leaf(z1);
        let b = t.leaf(z2);
        let phi = t.constant(Matrix::full(5, 1, 1.0));
        let wtd = t.info_nce_weighted(a, b, 0.2, phi);
        let plain = t.info_nce_bidirectional(a, b, 0.2);
        assert!((t.value(wtd)[(0, 0)] - t.value(plain)[(0, 0)]).abs() < 1e-4);
    }

    #[test]
    fn grad_info_nce() {
        let z2 = normal_matrix(&mut rng_from_seed(5), 4, 5, 0.0, 1.0);
        let z1 = normal_matrix(&mut rng_from_seed(6), 4, 5, 0.0, 1.0);
        let report = check_gradient(&z1, 1e-2, move |t, x| {
            let other = t.constant(z2.clone());
            t.info_nce_bidirectional(x, other, 0.5)
        });
        assert!(report.passes(5e-2), "{report:?}");
    }

    #[test]
    fn grad_weighted_info_nce() {
        let z2 = normal_matrix(&mut rng_from_seed(7), 4, 5, 0.0, 1.0);
        let z1 = normal_matrix(&mut rng_from_seed(8), 4, 5, 0.0, 1.0);
        let phi_vals = Matrix::from_rows(&[&[0.9], &[0.1], &[0.5], &[1.0]]);
        let report = check_gradient(&z1, 1e-2, move |t, x| {
            let other = t.constant(z2.clone());
            let phi = t.constant(phi_vals.clone());
            t.info_nce_weighted(x, other, 0.5, phi)
        });
        assert!(report.passes(5e-2), "{report:?}");
    }
}
