//! Tape-based reverse-mode automatic differentiation over matrices.
//!
//! The paper's training strategy (Multi-Modal Semantic Learning, §IV-B)
//! needs gradients through a GAT, per-modality projections, a cross-modal
//! transformer block, contrastive losses, and Dirichlet-energy regularizers.
//! PyTorch supplies this for the authors; since no mature Rust equivalent
//! exists for this workload, this crate implements exactly the operator set
//! the architecture requires — nothing more — with every backward rule
//! verified against central finite differences (see `grad_check`).
//!
//! # Design
//!
//! A [`Tape`] is an append-only arena of nodes. Each op method evaluates its
//! forward result eagerly and records the recipe; [`Tape::backward`] walks
//! the arena in reverse, accumulating gradients. Handles ([`Var`]) are
//! `Copy` indices, so expressions read linearly:
//!
//! ```
//! use desalign_autodiff::Tape;
//! use desalign_tensor::Matrix;
//!
//! let mut t = Tape::new();
//! let x = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let w = t.leaf(Matrix::from_rows(&[&[3.0], &[4.0]]));
//! let y = t.matmul(x, w);           // 1x1 = [[11]]
//! let loss = t.sum_all(y);
//! t.backward(loss);
//! assert_eq!(t.grad(w).unwrap().as_slice(), &[1.0, 2.0]); // dL/dw = xᵀ
//! ```
//!
//! Tapes are rebuilt every training step; persistent parameter state (values,
//! Adam moments) lives in `desalign-nn`'s parameter store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grad_check;
mod op;
mod ops_fused;
mod tape;
mod workspace;

pub use grad_check::{check_gradient, GradCheckReport};
pub use tape::{Tape, Var};
pub use workspace::{shared_workspace, SharedWorkspace, Workspace, WorkspaceStats};
