//! The operator set and backward rules.

use crate::workspace::Workspace;
use desalign_graph::Csr;
use desalign_tensor::Matrix;
use std::rc::Rc;

/// One recorded operation. Parent node ids are stored inline.
#[derive(Clone)]
pub(crate) enum Op {
    /// Trainable input; gradient is accumulated and kept.
    Leaf,
    /// Non-trainable input; gradients are not propagated into it.
    Constant,
    /// `a + b`
    Add(usize, usize),
    /// `a - b`
    Sub(usize, usize),
    /// Element-wise `a ⊙ b`
    Mul(usize, usize),
    /// `a * c` for a compile-time scalar
    Scale(usize, f32),
    /// `a + c` element-wise scalar shift (the shift is not needed in
    /// backward, hence unread)
    AddConst(usize, #[allow(dead_code)] f32),
    /// Matrix product `a × b`
    MatMul(usize, usize),
    /// Sparse constant × dense variable
    SpMM(Rc<Csr>, usize),
    /// Transpose
    Transpose(usize),
    /// `max(x, 0)`
    Relu(usize),
    /// `max(x, slope·x)`
    LeakyRelu(usize, f32),
    /// `exp(x)`
    Exp(usize),
    /// `x²`
    Square(usize),
    /// `ln(x)` (element-wise natural log)
    Ln(usize),
    /// Element-wise division `a ⊘ b`
    Div(usize, usize),
    /// `√x` (element-wise)
    Sqrt(usize),
    /// `artanh(x)` (element-wise, |x| < 1)
    Artanh(usize),
    /// Row-wise softmax
    SoftmaxRows(usize),
    /// Row-wise layer normalization (no affine), with epsilon
    LayerNormRows(usize, f32),
    /// Row-wise ℓ2 normalization with clamped norm
    L2NormalizeRows(usize, f32),
    /// Horizontal concatenation; stores parents and their column widths
    ConcatCols(Vec<usize>),
    /// Column slice `[start, end)` of the parent
    SliceCols(usize, usize, usize),
    /// Row gather by shared index list
    GatherRows(usize, Rc<Vec<usize>>),
    /// Row scatter-add into `n_out` rows (the count is not needed in
    /// backward, hence unread)
    ScatterAddRows(usize, Rc<Vec<usize>>, #[allow(dead_code)] usize),
    /// Per-destination-segment softmax over edge rows (GAT attention)
    EdgeSoftmax(usize, Rc<Vec<usize>>),
    /// Sum of all elements → 1×1
    SumAll(usize),
    /// Mean of all elements → 1×1
    MeanAll(usize),
    /// Per-row sum → n×1
    RowSum(usize),
    /// Per-column sum → 1×m
    ColSum(usize),
    /// `a (n×m) ⊙ broadcast(b (n×1))`
    MulBroadcastCol(usize, usize),
    /// `a (n×m) ⊙ broadcast(b (1×m))`
    MulBroadcastRow(usize, usize),
    /// `a (n×m) + broadcast(b (1×m))` (bias)
    AddBroadcastRow(usize, usize),
    /// Fused softmax cross-entropy over rows with integer targets → 1×1
    CrossEntropyRows(usize, Rc<Vec<usize>>),
}

impl Op {
    /// Parent node ids of this op.
    pub(crate) fn parents(&self) -> Vec<usize> {
        match self {
            Op::Leaf | Op::Constant => vec![],
            Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::MatMul(a, b)
            | Op::Div(a, b)
            | Op::MulBroadcastCol(a, b)
            | Op::MulBroadcastRow(a, b)
            | Op::AddBroadcastRow(a, b) => vec![*a, *b],
            Op::Scale(a, _)
            | Op::AddConst(a, _)
            | Op::SpMM(_, a)
            | Op::Transpose(a)
            | Op::Relu(a)
            | Op::LeakyRelu(a, _)
            | Op::Exp(a)
            | Op::Square(a)
            | Op::Ln(a)
            | Op::Sqrt(a)
            | Op::Artanh(a)
            | Op::SoftmaxRows(a)
            | Op::LayerNormRows(a, _)
            | Op::L2NormalizeRows(a, _)
            | Op::SliceCols(a, _, _)
            | Op::GatherRows(a, _)
            | Op::ScatterAddRows(a, _, _)
            | Op::EdgeSoftmax(a, _)
            | Op::SumAll(a)
            | Op::MeanAll(a)
            | Op::RowSum(a)
            | Op::ColSum(a)
            | Op::CrossEntropyRows(a, _) => vec![*a],
            Op::ConcatCols(parts) => parts.clone(),
        }
    }
}

/// Computes the gradient contributions `(parent_id, ∂L/∂parent)` of one node
/// given its output value `y`, upstream gradient `g`, and read access to
/// parent values.
///
/// Every gradient matrix is allocated through the [`Workspace`] so that
/// buffers recycled from previous steps are reused; the arithmetic is
/// bit-identical to the historical allocate-per-matrix implementation
/// (each workspace helper replicates the corresponding `Matrix` kernel's
/// element order exactly, and the `_into` product variants run the same
/// tiled kernels).
pub(crate) fn backward_contributions<'a>(
    op: &Op,
    y: &Matrix,
    g: &Matrix,
    value_of: &impl Fn(usize) -> &'a Matrix,
    ws: &mut Workspace,
) -> Vec<(usize, Matrix)> {
    match op {
        Op::Leaf | Op::Constant => vec![],
        Op::Add(a, b) => vec![(*a, ws.clone_of(g)), (*b, ws.clone_of(g))],
        Op::Sub(a, b) => vec![(*a, ws.clone_of(g)), (*b, ws.scaled(g, -1.0))],
        Op::Mul(a, b) => {
            let (va, vb) = (value_of(*a), value_of(*b));
            vec![(*a, ws.hadamard(g, vb)), (*b, ws.hadamard(g, va))]
        }
        Op::Scale(a, c) => vec![(*a, ws.scaled(g, *c))],
        Op::AddConst(a, _) => vec![(*a, ws.clone_of(g))],
        Op::MatMul(a, b) => {
            let (va, vb) = (value_of(*a), value_of(*b));
            let mut ga = ws.uninit(g.rows(), vb.rows());
            g.matmul_nt_into(vb, &mut ga);
            let mut gb = ws.uninit(va.cols(), g.cols());
            va.matmul_tn_into(g, &mut gb);
            vec![(*a, ga), (*b, gb)]
        }
        Op::SpMM(s, a) => {
            let mut gx = ws.zeros(s.cols(), g.cols());
            s.spmm_t_into(g, &mut gx);
            vec![(*a, gx)]
        }
        Op::Transpose(a) => {
            let mut gx = ws.uninit(g.cols(), g.rows());
            g.transpose_into(&mut gx);
            vec![(*a, gx)]
        }
        Op::Relu(a) => {
            let va = value_of(*a);
            let mut gx = ws.clone_of(g);
            for (gv, &xv) in gx.as_mut_slice().iter_mut().zip(va.as_slice()) {
                if xv <= 0.0 {
                    *gv = 0.0;
                }
            }
            vec![(*a, gx)]
        }
        Op::LeakyRelu(a, slope) => {
            let va = value_of(*a);
            let mut gx = ws.clone_of(g);
            for (gv, &xv) in gx.as_mut_slice().iter_mut().zip(va.as_slice()) {
                if xv <= 0.0 {
                    *gv *= slope;
                }
            }
            vec![(*a, gx)]
        }
        Op::Exp(a) => vec![(*a, ws.hadamard(g, y))],
        Op::Div(a, b) => {
            let (va, vb) = (value_of(*a), value_of(*b));
            let mut ga = ws.clone_of(g);
            for (gv, &bv) in ga.as_mut_slice().iter_mut().zip(vb.as_slice()) {
                *gv /= bv;
            }
            let mut gb = ws.hadamard(g, va);
            for (gv, &bv) in gb.as_mut_slice().iter_mut().zip(vb.as_slice()) {
                *gv /= -(bv * bv);
            }
            vec![(*a, ga), (*b, gb)]
        }
        Op::Sqrt(a) => {
            // y = √x ⇒ dx = g / (2y)
            let mut gx = ws.clone_of(g);
            for (gv, &yv) in gx.as_mut_slice().iter_mut().zip(y.as_slice()) {
                *gv /= 2.0 * yv.max(1e-12);
            }
            vec![(*a, gx)]
        }
        Op::Artanh(a) => {
            // d artanh(x)/dx = 1 / (1 − x²)
            let va = value_of(*a);
            let mut gx = ws.clone_of(g);
            for (gv, &xv) in gx.as_mut_slice().iter_mut().zip(va.as_slice()) {
                *gv /= 1.0 - xv * xv;
            }
            vec![(*a, gx)]
        }
        Op::Ln(a) => {
            let va = value_of(*a);
            let mut gx = ws.clone_of(g);
            for (gv, &xv) in gx.as_mut_slice().iter_mut().zip(va.as_slice()) {
                *gv /= xv;
            }
            vec![(*a, gx)]
        }
        Op::Square(a) => {
            let va = value_of(*a);
            let mut gx = ws.hadamard(g, va);
            for v in gx.as_mut_slice() {
                *v *= 2.0;
            }
            vec![(*a, gx)]
        }
        Op::SoftmaxRows(a) => {
            // dx = y ⊙ (g − ⟨g, y⟩_row · 1)
            let mut gx = ws.hadamard(g, y);
            for i in 0..gx.rows() {
                // gx holds g⊙y; finish dx = g⊙y − y·Σ_row(g⊙y) in place.
                let dot: f32 = gx.row(i).iter().sum();
                for (gv, &yv) in gx.row_mut(i).iter_mut().zip(y.row(i)) {
                    *gv -= yv * dot;
                }
            }
            vec![(*a, gx)]
        }
        Op::LayerNormRows(a, eps) => {
            // y = (x − μ)/σ with σ = sqrt(var + eps).
            // dx = (g − mean(g) − y · mean(g ⊙ y)) / σ, per row.
            let va = value_of(*a);
            let cols = va.cols().max(1) as f32;
            let mut gx = ws.uninit(va.rows(), va.cols());
            for i in 0..va.rows() {
                let xr = va.row(i);
                let mean = xr.iter().sum::<f32>() / cols;
                let var = xr.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols;
                let sigma = (var + eps).sqrt();
                let gr = g.row(i);
                let yr = y.row(i);
                let g_mean = gr.iter().sum::<f32>() / cols;
                let gy_mean = gr.iter().zip(yr).map(|(gv, yv)| gv * yv).sum::<f32>() / cols;
                for ((out, &gv), &yv) in gx.row_mut(i).iter_mut().zip(gr).zip(yr) {
                    *out = (gv - g_mean - yv * gy_mean) / sigma;
                }
            }
            vec![(*a, gx)]
        }
        Op::L2NormalizeRows(a, eps) => {
            let va = value_of(*a);
            let mut gx = ws.uninit(va.rows(), va.cols());
            for i in 0..va.rows() {
                let xr = va.row(i);
                let norm = xr.iter().map(|v| v * v).sum::<f32>().sqrt();
                let gr = g.row(i);
                if norm > *eps {
                    // dx = (g − y ⟨y, g⟩) / ‖x‖
                    let yr = y.row(i);
                    let ydotg: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                    for ((out, &gv), &yv) in gx.row_mut(i).iter_mut().zip(gr).zip(yr) {
                        *out = (gv - yv * ydotg) / norm;
                    }
                } else {
                    // Clamped regime: forward was y = x / eps (constant norm).
                    for (out, &gv) in gx.row_mut(i).iter_mut().zip(gr) {
                        *out = gv / eps;
                    }
                }
            }
            vec![(*a, gx)]
        }
        Op::ConcatCols(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            let mut off = 0;
            for &p in parts {
                let w = value_of(p).cols();
                let mut gp = ws.uninit(g.rows(), w);
                for i in 0..g.rows() {
                    gp.row_mut(i).copy_from_slice(&g.row(i)[off..off + w]);
                }
                out.push((p, gp));
                off += w;
            }
            out
        }
        Op::SliceCols(a, start, end) => {
            let va = value_of(*a);
            let mut gx = ws.zeros(va.rows(), va.cols());
            for i in 0..gx.rows() {
                gx.row_mut(i)[*start..*end].copy_from_slice(g.row(i));
            }
            vec![(*a, gx)]
        }
        Op::GatherRows(a, idx) => {
            // Scatter-add with a pooled zeroed output — same accumulation
            // order as `Matrix::scatter_add_rows`.
            let va = value_of(*a);
            let mut gx = ws.zeros(va.rows(), g.cols());
            for (i, &r) in idx.iter().enumerate() {
                assert!(r < va.rows(), "GatherRows backward: index {r} out of bounds ({} rows)", va.rows());
                for (o, &s) in gx.row_mut(r).iter_mut().zip(g.row(i)) {
                    *o += s;
                }
            }
            vec![(*a, gx)]
        }
        Op::ScatterAddRows(a, idx, _) => {
            let mut gx = ws.uninit(idx.len(), g.cols());
            for (i, &r) in idx.iter().enumerate() {
                gx.row_mut(i).copy_from_slice(g.row(r));
            }
            vec![(*a, gx)]
        }
        Op::EdgeSoftmax(a, dst) => {
            // Per segment s and column c:
            // dx_e = y_e (g_e − Σ_{e'∈s} y_{e'} g_{e'})
            let n_segments = dst.iter().copied().max().map_or(0, |m| m + 1);
            let cols = y.cols();
            let mut seg_dot = vec![0.0f32; n_segments * cols];
            for (e, &d) in dst.iter().enumerate() {
                for c in 0..cols {
                    seg_dot[d * cols + c] += y[(e, c)] * g[(e, c)];
                }
            }
            let mut gx = ws.uninit(y.rows(), cols);
            for (e, &d) in dst.iter().enumerate() {
                for c in 0..cols {
                    gx[(e, c)] = y[(e, c)] * (g[(e, c)] - seg_dot[d * cols + c]);
                }
            }
            vec![(*a, gx)]
        }
        Op::SumAll(a) => {
            let va = value_of(*a);
            let scalar = g[(0, 0)];
            vec![(*a, ws.full(va.rows(), va.cols(), scalar))]
        }
        Op::MeanAll(a) => {
            let va = value_of(*a);
            let scalar = g[(0, 0)] / va.len().max(1) as f32;
            vec![(*a, ws.full(va.rows(), va.cols(), scalar))]
        }
        Op::RowSum(a) => {
            let va = value_of(*a);
            let mut gx = ws.uninit(va.rows(), va.cols());
            for i in 0..va.rows() {
                let gv = g[(i, 0)];
                for out in gx.row_mut(i) {
                    *out = gv;
                }
            }
            vec![(*a, gx)]
        }
        Op::ColSum(a) => {
            let va = value_of(*a);
            let mut gx = ws.uninit(va.rows(), va.cols());
            for i in 0..va.rows() {
                gx.row_mut(i).copy_from_slice(g.row(0));
            }
            vec![(*a, gx)]
        }
        Op::MulBroadcastCol(a, b) => {
            let (va, vb) = (value_of(*a), value_of(*b));
            let mut ga = ws.clone_of(g);
            for i in 0..ga.rows() {
                let s = vb[(i, 0)];
                for v in ga.row_mut(i) {
                    *v *= s;
                }
            }
            let mut gb = ws.uninit(va.rows(), 1);
            for i in 0..va.rows() {
                gb[(i, 0)] = g.row(i).iter().zip(va.row(i)).map(|(gv, av)| gv * av).sum();
            }
            vec![(*a, ga), (*b, gb)]
        }
        Op::MulBroadcastRow(a, b) => {
            let (va, vb) = (value_of(*a), value_of(*b));
            let mut ga = ws.clone_of(g);
            for i in 0..ga.rows() {
                for (v, &s) in ga.row_mut(i).iter_mut().zip(vb.row(0)) {
                    *v *= s;
                }
            }
            let mut gb = ws.zeros(1, va.cols());
            for i in 0..va.rows() {
                for ((out, gv), av) in gb.row_mut(0).iter_mut().zip(g.row(i)).zip(va.row(i)) {
                    *out += gv * av;
                }
            }
            vec![(*a, ga), (*b, gb)]
        }
        Op::AddBroadcastRow(a, b) => {
            let va = value_of(*a);
            let mut gb = ws.zeros(1, va.cols());
            for i in 0..va.rows() {
                for (out, gv) in gb.row_mut(0).iter_mut().zip(g.row(i)) {
                    *out += gv;
                }
            }
            vec![(*a, ws.clone_of(g)), (*b, gb)]
        }
        Op::CrossEntropyRows(a, targets) => {
            // Forward stored loss = mean_i(−log p_{i,t_i}). Backward:
            // dx = (softmax(x) − onehot) · g / B
            let va = value_of(*a);
            let probs = va.softmax_rows();
            let scale = g[(0, 0)] / va.rows().max(1) as f32;
            let mut gx = ws.scaled(&probs, scale);
            for (i, &t) in targets.iter().enumerate() {
                gx[(i, t)] -= scale;
            }
            vec![(*a, gx)]
        }
    }
}
