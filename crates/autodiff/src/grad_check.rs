//! Finite-difference gradient verification.
//!
//! Every backward rule in this crate is validated by comparing the autodiff
//! gradient of a scalar loss against a central finite-difference estimate.
//! The checker is exported so higher layers (`desalign-nn`, `desalign-core`)
//! can verify their composite modules the same way.

use crate::{Tape, Var};
use desalign_tensor::Matrix;

/// Outcome of a gradient check.
#[derive(Clone, Debug)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Maximum relative difference (with an absolute floor to ignore noise
    /// near zero).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// True if both error measures are under `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Checks the gradient of `build` — a function that records a scalar loss
/// for a given input leaf — at the point `x0`.
///
/// Central differences with step `h` are used; `f32` arithmetic limits
/// practical tolerances to ~1e-2 relative for well-scaled problems.
pub fn check_gradient(x0: &Matrix, h: f32, build: impl Fn(&mut Tape, Var) -> Var) -> GradCheckReport {
    // Analytic gradient.
    let mut tape = Tape::new();
    let x = tape.leaf(x0.clone());
    let loss = build(&mut tape, x);
    tape.backward(loss);
    let analytic = tape.grad(x).expect("input leaf should receive a gradient").clone();

    // Numeric gradient.
    let eval = |m: &Matrix| -> f32 {
        let mut t = Tape::new();
        let v = t.leaf(m.clone());
        let l = build(&mut t, v);
        t.value(l)[(0, 0)]
    };
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let mut pert = x0.clone();
    for i in 0..x0.rows() {
        for j in 0..x0.cols() {
            let orig = pert[(i, j)];
            pert[(i, j)] = orig + h;
            let f_plus = eval(&pert);
            pert[(i, j)] = orig - h;
            let f_minus = eval(&pert);
            pert[(i, j)] = orig;
            let numeric = (f_plus - f_minus) / (2.0 * h);
            let a = analytic[(i, j)];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1e-3);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }
    GradCheckReport { max_abs_err: max_abs, max_rel_err: max_rel }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desalign_graph::UndirectedGraph;
    use desalign_tensor::{normal_matrix, rng_from_seed};
    use std::rc::Rc;

    const H: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        normal_matrix(&mut rng_from_seed(seed), rows, cols, 0.0, 1.0)
    }

    #[test]
    fn grad_add_sub_mul() {
        let x0 = random(3, 4, 1);
        let other = random(3, 4, 2);
        for op in 0..3usize {
            let other = other.clone();
            let report = check_gradient(&x0, H, move |t, x| {
                let c = t.constant(other.clone());
                let y = match op {
                    0 => t.add(x, c),
                    1 => t.sub(x, c),
                    _ => t.mul(x, c),
                };
                let sq = t.square(y);
                t.sum_all(sq)
            });
            assert!(report.passes(TOL), "op {op}: {report:?}");
        }
    }

    #[test]
    fn grad_matmul_both_sides() {
        let x0 = random(3, 2, 3);
        let w = random(2, 4, 4);
        let report = check_gradient(&x0, H, move |t, x| {
            let wv = t.constant(w.clone());
            let y = t.matmul(x, wv);
            let sq = t.square(y);
            t.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");

        let w0 = random(2, 4, 5);
        let x = random(3, 2, 6);
        let report = check_gradient(&w0, H, move |t, wv| {
            let xv = t.constant(x.clone());
            let y = t.matmul(xv, wv);
            let sq = t.square(y);
            t.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn grad_spmm() {
        let g = UndirectedGraph::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let a = Rc::new(g.normalized_adjacency(true));
        let x0 = random(4, 3, 7);
        let report = check_gradient(&x0, H, move |t, x| {
            let y = t.spmm(Rc::clone(&a), x);
            let sq = t.square(y);
            t.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn grad_activations() {
        let x0 = random(3, 3, 8).map(|v| v + 0.3); // keep away from kinks
        for op in 0..4usize {
            let report = check_gradient(&x0, 1e-3, move |t, x| {
                let y = match op {
                    0 => t.relu(x),
                    1 => t.leaky_relu(x, 0.2),
                    2 => t.exp(x),
                    _ => t.square(x),
                };
                t.sum_all(y)
            });
            assert!(report.passes(TOL), "op {op}: {report:?}");
        }
    }

    #[test]
    fn grad_softmax_rows() {
        let x0 = random(3, 4, 9);
        let target = random(3, 4, 10);
        let report = check_gradient(&x0, H, move |t, x| {
            let s = t.softmax_rows(x);
            let tv = t.constant(target.clone());
            let d = t.sub(s, tv);
            let sq = t.square(d);
            t.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn grad_layernorm_rows() {
        let x0 = random(3, 5, 11);
        let target = random(3, 5, 12);
        let report = check_gradient(&x0, H, move |t, x| {
            let s = t.layernorm_rows(x, 1e-3);
            let tv = t.constant(target.clone());
            let d = t.sub(s, tv);
            let sq = t.square(d);
            t.sum_all(sq)
        });
        assert!(report.passes(5e-2), "{report:?}");
    }

    #[test]
    fn grad_l2_normalize_rows() {
        let x0 = random(3, 4, 13).map(|v| v + 2.0); // away from the clamp
        let target = random(3, 4, 14);
        let report = check_gradient(&x0, H, move |t, x| {
            let s = t.l2_normalize_rows(x, 1e-6);
            let tv = t.constant(target.clone());
            let d = t.sub(s, tv);
            let sq = t.square(d);
            t.sum_all(sq)
        });
        assert!(report.passes(5e-2), "{report:?}");
    }

    #[test]
    fn grad_concat_and_slice() {
        let x0 = random(2, 3, 15);
        let report = check_gradient(&x0, H, move |t, x| {
            let c = t.concat_cols(&[x, x]);
            let s = t.slice_cols(c, 1, 5);
            let sq = t.square(s);
            t.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn grad_gather_scatter() {
        let x0 = random(4, 3, 16);
        let report = check_gradient(&x0, H, move |t, x| {
            let g = t.gather_rows(x, Rc::new(vec![0, 2, 2, 3]));
            let s = t.scatter_add_rows(g, Rc::new(vec![1, 1, 0, 2]), 3);
            let sq = t.square(s);
            t.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn grad_edge_softmax() {
        let x0 = random(6, 2, 17);
        let target = random(6, 2, 18);
        let dst = vec![0usize, 0, 1, 1, 1, 2];
        let report = check_gradient(&x0, H, move |t, x| {
            let s = t.edge_softmax(x, Rc::new(dst.clone()));
            let tv = t.constant(target.clone());
            let d = t.sub(s, tv);
            let sq = t.square(d);
            t.sum_all(sq)
        });
        assert!(report.passes(5e-2), "{report:?}");
    }

    #[test]
    fn grad_reductions_and_broadcasts() {
        let x0 = random(3, 4, 19);
        let scale_col = random(3, 1, 20);
        let scale_row = random(1, 4, 21);
        let report = check_gradient(&x0, H, move |t, x| {
            let sc = t.constant(scale_col.clone());
            let sr = t.constant(scale_row.clone());
            let a = t.mul_broadcast_col(x, sc);
            let b = t.mul_broadcast_row(a, sr);
            let c = t.add_broadcast_row(b, sr);
            let rs = t.row_sum(c);
            let sq = t.square(rs);
            t.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn grad_broadcast_scale_parameters() {
        // Gradient with respect to the broadcast operand itself.
        let s0 = random(1, 4, 22);
        let x = random(3, 4, 23);
        let report = check_gradient(&s0, H, move |t, s| {
            let xv = t.constant(x.clone());
            let y = t.mul_broadcast_row(xv, s);
            let sq = t.square(y);
            t.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");

        let s0 = random(3, 1, 24);
        let x = random(3, 4, 25);
        let report = check_gradient(&s0, H, move |t, s| {
            let xv = t.constant(x.clone());
            let y = t.mul_broadcast_col(xv, s);
            let sq = t.square(y);
            t.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn grad_div_sqrt_artanh() {
        let x0 = random(3, 3, 40).map(|v| v.abs() * 0.2 + 0.3); // in (0.3, ~1)
        let denom = random(3, 3, 41).map(|v| v.abs() + 1.0);
        let report = check_gradient(&x0, 1e-3, move |t, x| {
            let d = t.constant(denom.clone());
            let q = t.div(x, d);
            let r = t.sqrt(q);
            let half = t.scale(r, 0.5); // keep |·| < 1 for artanh
            let a = t.artanh(half);
            let sq = t.square(a);
            t.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn grad_div_wrt_denominator() {
        let d0 = random(2, 3, 42).map(|v| v.abs() + 1.0);
        let num = random(2, 3, 43);
        let report = check_gradient(&d0, 1e-3, move |t, d| {
            let n = t.constant(num.clone());
            let q = t.div(n, d);
            let sq = t.square(q);
            t.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn grad_cross_entropy() {
        let x0 = random(4, 5, 26);
        let report = check_gradient(&x0, H, move |t, x| {
            t.cross_entropy_rows(x, Rc::new(vec![0, 3, 2, 1]))
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn grad_col_sum_and_mean() {
        let x0 = random(3, 4, 27);
        let report = check_gradient(&x0, H, move |t, x| {
            let cs = t.col_sum(x);
            let sq = t.square(cs);
            let s = t.sum_all(sq);
            let m = t.mean_all(x);
            let m2 = t.square(m);
            t.add(s, m2)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn grad_transpose_and_scale() {
        let x0 = random(2, 3, 28);
        let report = check_gradient(&x0, H, move |t, x| {
            let tr = t.transpose(x);
            let sc = t.scale(tr, 1.5);
            let sh = t.add_const(sc, 0.5);
            let sq = t.square(sh);
            t.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }
}
